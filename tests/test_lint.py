"""Static hygiene gates: ruff (when installed) and repo cleanliness.

The ruff gate carries the ``lint`` marker so CI can run it in its own
session (``pytest -m lint``) alongside ``-m perf``; in environments
without ruff on PATH it skips rather than fails, keeping the tier-1
suite self-contained.
"""

import shutil
import subprocess
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.mark.lint
def test_ruff_check_clean():
    ruff = shutil.which("ruff")
    if ruff is None:
        pytest.skip("ruff is not installed in this environment")
    result = subprocess.run(
        [ruff, "check", "."],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    assert result.returncode == 0, result.stdout + result.stderr


def test_no_bytecode_tracked():
    result = subprocess.run(
        ["git", "ls-files"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    if result.returncode != 0:
        pytest.skip("not a git checkout")
    offenders = [
        line
        for line in result.stdout.splitlines()
        if line.endswith(".pyc") or "__pycache__" in line
    ]
    assert offenders == []


def test_gitignore_covers_bytecode():
    gitignore = (REPO_ROOT / ".gitignore").read_text()
    assert "__pycache__/" in gitignore
    assert "*.py[cod]" in gitignore
