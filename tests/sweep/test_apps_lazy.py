"""The three application sweeps on the lazy path, pinned to eager.

Each app keeps an ``eager=True`` escape hatch that runs the original
one-block (or one-proposal-at-a-time) code. These pins are the
refactor's safety net: the lazy DAG path must reproduce the eager
results *bitwise* — same delays, same RNG streams, same accepted
descent steps — at every chunk size tried.
"""

import tracemalloc

import numpy as np
import pytest

from repro.apps import (
    WireSizingProblem,
    h_tree,
    perturbed_clock_tree,
    sweep_widths,
    tune_clock_tree,
)
from repro.apps.variation import (
    VariationModel,
    _staged_factor_values,
    sample_delays,
)
from repro.circuit import fig5_tree


@pytest.fixture(scope="module")
def tree():
    return fig5_tree()


class TestSampleDelaysLazy:
    @pytest.mark.parametrize("chunk_size", [1, 52, 53, 60, None])
    def test_bitwise_identical_to_eager(self, tree, chunk_size):
        kwargs = dict(
            samples=53, exact_samples=3, seed=11,
            variation=VariationModel(0.15, 0.1, 0.2),
        )
        lazy = sample_delays(tree, "n7", chunk_size=chunk_size, **kwargs)
        eager = sample_delays(tree, "n7", eager=True, **kwargs)
        assert lazy.rlc.values.tobytes() == eager.rlc.values.tobytes()
        assert lazy.rc.values.tobytes() == eager.rc.values.tobytes()
        assert lazy.exact.values.tobytes() == eager.exact.values.tobytes()

    def test_rng_stream_is_chunk_invariant(self, tree):
        variation = VariationModel()
        small = sample_delays(
            tree, "n7", variation, samples=40, seed=3, chunk_size=7
        )
        large = sample_delays(
            tree, "n7", variation, samples=40, seed=3, chunk_size=1000
        )
        assert small.rlc.values.tobytes() == large.rlc.values.tobytes()


class TestStagedFactorMemory:
    def test_eager_staging_no_longer_holds_all_blocks(self):
        """Satellite regression: the eager factor matrix is staged
        through one generator in blocks, so its peak transient memory
        is the output block plus O(one stage), not three full copies
        of the (S, 3, n) matrix as the old expression built."""
        sections, samples = 24, 4000
        sig = np.array([0.15, 0.1, 0.2])
        nominal = np.array([25.0, 5e-9, 0.5e-12])[:, None] * np.ones(sections)
        output_bytes = samples * 3 * sections * 8

        tracemalloc.start()
        values = _staged_factor_values(
            sections, sig, nominal, samples, seed=5, stage=256
        )
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert values.shape == (samples, 3, sections)
        assert peak < 2 * output_bytes

    def test_staged_values_match_one_shot_draw(self):
        sig = np.array([0.15, 0.1, 0.2])
        nominal = np.array([25.0, 5e-9, 0.5e-12])[:, None] * np.ones(8)
        rng = np.random.default_rng(5)
        z = rng.standard_normal((100, 8, 3))
        reference = (
            np.exp(-0.5 * sig * sig + sig * z).transpose(0, 2, 1) * nominal
        )
        staged = _staged_factor_values(8, sig, nominal, 100, seed=5, stage=13)
        assert staged.tobytes() == reference.tobytes()


class TestSweepWidthsLazy:
    @pytest.mark.parametrize("model", ["rlc", "rc"])
    def test_bitwise_identical_to_eager(self, model):
        problem = WireSizingProblem()
        widths = np.linspace(problem.min_width, problem.max_width, 37)
        lazy = sweep_widths(problem, widths, model, chunk_size=10)
        eager = sweep_widths(problem, widths, model, eager=True)
        assert lazy.tobytes() == eager.tobytes()

    def test_empty_grid(self):
        problem = WireSizingProblem()
        assert sweep_widths(problem, []).size == 0


class TestTuneClockTreeLazy:
    def test_cascade_descent_matches_eager_probing(self):
        tree = perturbed_clock_tree(h_tree(levels=3), 0.15, seed=5)
        lazy = tune_clock_tree(tree)
        eager = tune_clock_tree(tree, eager=True)
        assert lazy.objective_trace == eager.objective_trace
        assert lazy.iterations == eager.iterations
        assert set(lazy.widths) == set(eager.widths)
        assert all(lazy.widths[k] == eager.widths[k] for k in eager.widths)
        assert lazy.skew_after == eager.skew_after

    def test_budget_capped_cascade_matches(self):
        tree = perturbed_clock_tree(h_tree(levels=3), 0.25, seed=2)
        lazy = tune_clock_tree(tree, iterations=7, initial_step=0.2)
        eager = tune_clock_tree(tree, iterations=7, initial_step=0.2,
                                eager=True)
        assert lazy.iterations == eager.iterations
        assert lazy.objective_trace == eager.objective_trace
        assert all(lazy.widths[k] == eager.widths[k] for k in eager.widths)
