"""The expression layer: axes, hash-consing, and bitwise chunk grids.

The whole lazy story rests on two invariants proved here: structurally
identical expressions intern to the *same* node object (so the compiler
can deduplicate by identity), and every axis materializes chunk slices
bitwise-identical to the full eager grid (so chunking can never change
a result).
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.sweep import (
    as_expr,
    clip,
    const,
    cross,
    exp,
    linspace,
    log,
    log_sample,
    lognormal_factors,
    scenario_space,
    sqrt,
    values_axis,
    zip_axes,
)


class TestInterning:
    def test_same_axis_interns_to_same_object(self):
        a = linspace("w", 0.5, 2.0, 64)
        b = linspace("w", 0.5, 2.0, 64)
        assert a is b

    def test_different_points_is_a_different_axis(self):
        assert linspace("w", 0.5, 2.0, 64) is not linspace("w", 0.5, 2.0, 65)

    def test_structurally_equal_expressions_share_nodes(self):
        axis = linspace("w", 0.5, 2.0, 8)
        vec = np.arange(5.0)
        left = axis.values * const(vec)
        right = axis.values * const(vec)
        assert left is right

    def test_scalar_const_distinguishes_signed_zero(self):
        assert const(0.0) is not const(-0.0)
        assert const(1.0) is const(1.0)

    def test_array_const_interns_by_content(self):
        assert const(np.arange(4.0)) is const(np.arange(4.0))
        assert const(np.arange(4.0)) is not const(np.arange(5.0))

    def test_array_const_is_defensively_copied(self):
        source = np.arange(4.0)
        node = const(source)
        source[0] = 99.0
        assert const(np.arange(4.0)) is node

    def test_operator_sugar_builds_shared_tree(self):
        axis = linspace("w", 0.5, 2.0, 8)
        tree = exp(log(axis.values + 1.0) * 0.5) - sqrt(axis.values)
        again = exp(log(axis.values + 1.0) * 0.5) - sqrt(axis.values)
        assert tree is again

    def test_bare_axis_is_not_an_expression(self):
        axis = linspace("w", 0.5, 2.0, 8)
        with pytest.raises(ConfigurationError, match="values"):
            as_expr(axis)


class TestAxisGrids:
    @pytest.mark.parametrize("points", [1, 2, 7, 101])
    def test_linspace_chunks_match_numpy_bitwise(self, points):
        axis = linspace("r", 10.0, 250.0, points)
        full = np.linspace(10.0, 250.0, points)
        for lo in range(points):
            for hi in range(lo, points + 1):
                chunk = axis.take(np.arange(lo, hi))
                assert chunk.tobytes() == full[lo:hi].tobytes()

    def test_log_sample_endpoints_exact(self):
        axis = log_sample("c", 1e-15, 1e-9, 37)
        grid = axis.take(np.arange(37))
        assert grid[0] == 1e-15
        assert grid[-1] == 1e-9
        assert np.all(np.diff(np.log(grid)) > 0)

    def test_log_sample_rejects_nonpositive(self):
        with pytest.raises(ConfigurationError):
            log_sample("c", 0.0, 1.0, 8)

    def test_values_axis_round_trips(self):
        data = np.array([3.0, 1.0, 4.0, 1.5])
        axis = values_axis("v", data)
        assert axis.take(np.arange(4)).tobytes() == data.tobytes()

    def test_values_axis_rejects_non_vector(self):
        with pytest.raises(ConfigurationError):
            values_axis("v", np.zeros((2, 2)))
        with pytest.raises(ConfigurationError):
            values_axis("v", np.array([]))


class TestScenarioSpace:
    def test_zip_requires_equal_sizes(self):
        with pytest.raises(ConfigurationError):
            zip_axes(linspace("a", 0, 1, 4), linspace("b", 0, 1, 5))

    def test_duplicate_names_rejected(self):
        with pytest.raises(ConfigurationError):
            zip_axes(linspace("a", 0, 1, 4), values_axis("a", np.ones(4)))

    def test_cross_size_is_product(self):
        space = cross(linspace("a", 0, 1, 4), linspace("b", 0, 1, 5))
        assert space.size == 20

    def test_cross_indices_are_odometer_ordered(self):
        a = linspace("a", 0.0, 3.0, 4)
        b = linspace("b", 0.0, 4.0, 5)
        space = cross(a, b)
        idx_a = space.axis_indices(a, 0, 20)
        idx_b = space.axis_indices(b, 0, 20)
        assert idx_a.tolist() == [i // 5 for i in range(20)]
        assert idx_b.tolist() == [i % 5 for i in range(20)]

    def test_cross_forbids_sequential_axes(self):
        mc = lognormal_factors(
            "mc", sigmas=np.full(3, 0.1), sections=4, samples=8, seed=1
        )
        with pytest.raises(ConfigurationError):
            cross(mc, linspace("w", 0.5, 2.0, 4))

    def test_scenario_space_needs_axes(self):
        with pytest.raises(ConfigurationError):
            scenario_space()


class TestFactorAxes:
    def test_chunked_draws_prefix_the_full_stream(self):
        axis = lognormal_factors(
            "mc", sigmas=np.array([0.1, 0.05, 0.2]),
            sections=6, samples=32, seed=9,
        )
        rng = axis.start_stream()
        first = axis.draw(rng, 20)
        rest = axis.draw(rng, 12)
        eager = axis.draw(axis.start_stream(), 32)
        chunked = np.concatenate([first, rest])
        assert chunked.tobytes() == eager.tobytes()

    def test_take_is_forbidden(self):
        axis = lognormal_factors(
            "mc", sigmas=np.full(3, 0.1), sections=4, samples=8, seed=1
        )
        with pytest.raises(ConfigurationError):
            axis.take(np.arange(4))

    def test_sigmas_shape_checked(self):
        with pytest.raises(ConfigurationError):
            lognormal_factors(
                "mc", sigmas=np.ones(4), sections=4, samples=8, seed=1
            )


class TestClip:
    def test_clip_interns_by_bounds(self):
        axis = linspace("w", 0.0, 2.0, 8)
        assert clip(axis.values, 0.25, 4.0) is clip(axis.values, 0.25, 4.0)
        assert clip(axis.values, 0.25, 4.0) is not clip(axis.values, 0.5, 4.0)
