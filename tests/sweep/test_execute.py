"""The chunked executor: bitwise chunk-boundary equivalence.

The acceptance contract of the lazy layer — chunking is purely an
execution strategy. Every chunk size must reproduce the eager
one-block :func:`analyze_batch` result bit for bit, on every backend
the planner can route a chunk to, and the telemetry must account for
every chunk staged.
"""

import numpy as np
import pytest

from repro.circuit import fig5_tree
from repro.engine import compile_tree
from repro.engine.table import analyze_batch
from repro.errors import ConfigurationError
from repro.runtime import ExecutionContext, RuntimeConfig
from repro.sweep import (
    compile_sweep,
    const,
    iter_sweep,
    linspace,
    lognormal_factors,
    run_sweep,
    scenario_space,
    zip_axes,
)
from repro.sweep.execute import _ChunkContext

S = 103
METRICS = ("delay_50", "t_rc", "rise_time")


@pytest.fixture(scope="module")
def compiled():
    return compile_tree(fig5_tree())


@pytest.fixture(scope="module")
def sweep(compiled):
    axis = linspace("scale", 0.5, 2.0, S)
    return compile_sweep(
        scenario_space(axis),
        resistance=axis.values * const(compiled.resistance),
        inductance=const(compiled.inductance),
        capacitance=axis.values * const(compiled.capacitance),
    )


@pytest.fixture(scope="module")
def eager(compiled):
    scale = np.linspace(0.5, 2.0, S)
    rlc = np.empty((S, 3, compiled.size))
    rlc[:, 0, :] = scale[:, None] * compiled.resistance
    rlc[:, 1, :] = compiled.inductance
    rlc[:, 2, :] = scale[:, None] * compiled.capacitance
    return analyze_batch(compiled, rlc, metrics=METRICS)


def collect(sweep, compiled, chunk_size, **kwargs):
    columns = {metric: np.empty(S) for metric in METRICS}
    sink = "n7"
    with ExecutionContext(kwargs.pop("config", None)) as context:
        for lo, batch in iter_sweep(
            sweep,
            compiled,
            chunk_size=chunk_size,
            metrics=METRICS,
            context=context,
            **kwargs,
        ):
            hi = lo + batch.scenarios
            for metric in METRICS:
                columns[metric][lo:hi] = batch.column(metric, sink)
        stats = context.stats()["sweep"]
    return columns, stats


class TestChunkBoundaries:
    @pytest.mark.parametrize("chunk_size", [1, S - 1, S, S + 7])
    def test_bitwise_identical_to_eager(
        self, sweep, compiled, eager, chunk_size
    ):
        columns, stats = collect(sweep, compiled, chunk_size)
        for metric in METRICS:
            reference = eager.column(metric, "n7")
            assert columns[metric].tobytes() == reference.tobytes()
        assert stats["chunks"] == -(-S // chunk_size)

    def test_sharded_chunks_match_serial(self, sweep, compiled, eager):
        config = RuntimeConfig(workers=2, sharded_min_cells=1)
        columns, stats = collect(sweep, compiled, 32, config=config)
        for metric in METRICS:
            reference = eager.column(metric, "n7")
            assert columns[metric].tobytes() == reference.tobytes()
        assert stats["backends"].get("sharded", 0) > 0

    def test_forced_backend_respected(self, sweep, compiled, eager):
        columns, stats = collect(sweep, compiled, 64, backend="compiled")
        assert columns["delay_50"].tobytes() == eager.column(
            "delay_50", "n7"
        ).tobytes()
        assert stats["backends"] == {"compiled": 2}


class TestTelemetry:
    def test_sweep_group_accounts_every_chunk(self, sweep, compiled):
        _, stats = collect(sweep, compiled, 25)
        assert stats["runs"] == 1
        assert stats["chunks"] == 5
        assert stats["unique_nodes"] == sweep.unique_nodes
        assert stats["total_refs"] == sweep.total_refs
        assert stats["cse_hits"] == sweep.cse_hits
        assert stats["peak_chunk_bytes"] == 25 * 3 * compiled.size * 8


class TestRunSweep:
    def test_columns_cover_all_scenarios(self, sweep, compiled, eager):
        with ExecutionContext() as context:
            result = run_sweep(
                sweep,
                compiled,
                nodes=("n7", "n4"),
                metrics=("delay_50",),
                chunk_size=17,
                context=context,
            )
        assert result.scenarios == S
        assert result.chunks == -(-S // 17)
        for node in ("n7", "n4"):
            assert result.column("delay_50", node).tobytes() == eager.column(
                "delay_50", node
            ).tobytes()

    def test_missing_column_is_a_clear_error(self, sweep, compiled):
        with ExecutionContext() as context:
            result = run_sweep(
                sweep, compiled, nodes=("n7",), context=context
            )
        with pytest.raises(ConfigurationError):
            result.column("delay_50", "n1")


class TestMonteCarloChunks:
    def test_chunked_rng_matches_one_eager_draw(self, compiled):
        axis = lognormal_factors(
            "mc",
            sigmas=np.array([0.15, 0.1, 0.2]),
            sections=compiled.size,
            samples=S,
            seed=42,
        )
        sweep = compile_sweep(
            scenario_space(axis),
            resistance=axis.resistance * const(compiled.resistance),
            inductance=axis.inductance * const(compiled.inductance),
            capacitance=axis.capacitance * const(compiled.capacitance),
        )
        factors = axis.draw(axis.start_stream(), S)
        rlc = factors * np.stack(
            (compiled.resistance, compiled.inductance, compiled.capacitance)
        )
        eager = analyze_batch(compiled, rlc, metrics=("delay_50",))
        for chunk_size in (1, 13, S, S + 7):
            with ExecutionContext() as context:
                result = run_sweep(
                    sweep,
                    compiled,
                    nodes=("n7",),
                    chunk_size=chunk_size,
                    context=context,
                )
            assert result.column("delay_50", "n7").tobytes() == eager.column(
                "delay_50", "n7"
            ).tobytes()


class TestZipSpaces:
    def test_two_axis_zip_matches_eager(self, compiled):
        r_axis = linspace("r", 0.8, 1.2, S)
        c_axis = linspace("c", 0.9, 1.1, S)
        sweep = compile_sweep(
            zip_axes(r_axis, c_axis),
            resistance=r_axis.values * const(compiled.resistance),
            inductance=const(compiled.inductance),
            capacitance=c_axis.values * const(compiled.capacitance),
        )
        r = np.linspace(0.8, 1.2, S)
        c = np.linspace(0.9, 1.1, S)
        rlc = np.empty((S, 3, compiled.size))
        rlc[:, 0, :] = r[:, None] * compiled.resistance
        rlc[:, 1, :] = compiled.inductance
        rlc[:, 2, :] = c[:, None] * compiled.capacitance
        eager = analyze_batch(compiled, rlc, metrics=("delay_50",))
        with ExecutionContext() as context:
            result = run_sweep(
                sweep, compiled, nodes=("n7",), chunk_size=10, context=context
            )
        assert result.column("delay_50", "n7").tobytes() == eager.column(
            "delay_50", "n7"
        ).tobytes()


class TestValidation:
    def test_chunk_size_validated_eagerly(self, sweep, compiled):
        with ExecutionContext() as context:
            with pytest.raises(ConfigurationError):
                iter_sweep(sweep, compiled, chunk_size=0, context=context)

    def test_out_of_order_sequential_chunk_rejected(self, compiled):
        axis = lognormal_factors(
            "mc",
            sigmas=np.full(3, 0.1),
            sections=compiled.size,
            samples=S,
            seed=1,
        )
        space = scenario_space(axis)
        streams = {axis: {"rng": axis.start_stream(), "next": 0}}
        context = _ChunkContext(space, 4, 8, streams)
        with pytest.raises(ConfigurationError, match="chunk order"):
            context.draw_block(axis)
