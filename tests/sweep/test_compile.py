"""The DAG compiler: CSE accounting and topological evaluation order."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.sweep import (
    compile_sweep,
    const,
    exp,
    linspace,
    log,
    scenario_space,
)


@pytest.fixture
def axis():
    return linspace("w", 0.5, 2.0, 16)


class TestCompile:
    def test_shared_subtree_counted_once(self, axis):
        shared = exp(log(axis.values + 1.0) * 0.5)
        sweep = compile_sweep(
            scenario_space(axis),
            resistance=shared * 2.0,
            inductance=shared * 3.0,
            capacitance=shared * 4.0,
        )
        # The shared chain appears once in the unique-node order but is
        # referenced from all three roots.
        assert sweep.cse_hits >= 2
        assert sweep.total_refs > sweep.unique_nodes
        assert shared in sweep.order

    def test_order_is_topological(self, axis):
        sweep = compile_sweep(
            scenario_space(axis),
            resistance=axis.values * 2.0 + 1.0,
            inductance=const(0.0),
            capacitance=axis.values * 2.0,
        )
        position = {node: i for i, node in enumerate(sweep.order)}
        for node in sweep.order:
            for dep in node.deps:
                assert position[dep] < position[node]

    def test_roots_cover_all_three_elements(self, axis):
        r = axis.values + 1.0
        sweep = compile_sweep(
            scenario_space(axis),
            resistance=r,
            inductance=const(0.0),
            capacitance=const(1e-12),
        )
        assert sweep.roots == (r, const(0.0), const(1e-12))

    def test_cse_flag_preserved(self, axis):
        space = scenario_space(axis)
        kwargs = dict(
            resistance=axis.values,
            inductance=const(0.0),
            capacitance=axis.values,
        )
        assert compile_sweep(space, **kwargs).cse
        assert not compile_sweep(space, cse=False, **kwargs).cse

    def test_foreign_axis_rejected(self, axis):
        other = linspace("other", 1.0, 2.0, 16)
        with pytest.raises(ConfigurationError):
            compile_sweep(
                scenario_space(axis),
                resistance=other.values,
                inductance=const(0.0),
                capacitance=axis.values,
            )

    def test_scalar_roots_are_coerced(self, axis):
        sweep = compile_sweep(
            scenario_space(axis),
            resistance=25.0,
            inductance=0.0,
            capacitance=axis.values * 1e-12,
        )
        assert sweep.roots[0] is const(25.0)

    def test_space_type_checked(self, axis):
        with pytest.raises(ConfigurationError):
            compile_sweep(
                axis,
                resistance=axis.values,
                inductance=const(0.0),
                capacitance=axis.values,
            )

    def test_identical_description_compiles_identically(self, axis):
        def build():
            shared = exp(axis.values * 0.25)
            return compile_sweep(
                scenario_space(axis),
                resistance=shared + 1.0,
                inductance=const(0.0),
                capacitance=shared * 1e-12,
            )

        first, second = build(), build()
        assert first.order == second.order
        assert first.cse_hits == second.cse_hits
        assert np.array_equal(
            [n._uid for n in first.order], [n._uid for n in second.order]
        )
