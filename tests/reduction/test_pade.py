"""Unit tests for the Pade-from-moments machinery."""

import numpy as np
import pytest

from repro.errors import ReductionError
from repro.reduction import PoleResidueModel, pade_poles_residues


def moments_of(poles, residues, count):
    """m_j = -sum r / p^(j+1): build a moment list from a known model."""
    poles = np.asarray(poles, dtype=complex)
    residues = np.asarray(residues, dtype=complex)
    return [
        float(np.real((-residues / poles ** (j + 1)).sum())) for j in range(count)
    ]


def unit_gain_residues(poles):
    """Residues of H = prod(-p_k) / prod(s - p_k): unit dc gain."""
    poles = np.asarray(poles, dtype=complex)
    numerator = np.prod(-poles)
    out = []
    for i, p in enumerate(poles):
        others = np.delete(poles, i)
        out.append(numerator / np.prod(p - others))
    return np.asarray(out)


class TestRecovery:
    """Pade must exactly recover a model from its own moments."""

    def test_two_real_poles(self):
        # H = p1 p2 / ((s - p1)(s - p2)): unit dc gain, two real poles.
        poles = [-1e9, -5e9]
        residues = [1.25e9, -1.25e9]
        m = moments_of(poles, residues, 4)
        assert m[0] == pytest.approx(1.0)
        model = pade_poles_residues(m, 2)
        assert sorted(p.real for p in model.poles) == pytest.approx(
            sorted(poles), rel=1e-6
        )

    def test_complex_pair(self):
        poles = np.array([-1e9 + 4e9j, -1e9 - 4e9j])
        # Residues for unit DC gain of the canonical 2nd-order system.
        wn2 = abs(poles[0]) ** 2
        r = wn2 / (poles[0] - poles[1])
        residues = np.array([r, -r])
        m = moments_of(poles, residues, 4)
        model = pade_poles_residues(m, 2)
        recovered = sorted(model.poles, key=lambda p: p.imag)
        expected = sorted(poles, key=lambda p: p.imag)
        for a, b in zip(recovered, expected):
            assert a == pytest.approx(b, rel=1e-6)
        assert model.dc_gain() == pytest.approx(1.0, rel=1e-6)

    def test_three_poles(self):
        poles = [-0.5e9, -2e9, -8e9]
        residues = unit_gain_residues(poles)
        m = moments_of(poles, residues, 6)
        assert m[0] == pytest.approx(1.0)
        model = pade_poles_residues(m, 3)
        assert sorted(p.real for p in model.poles) == pytest.approx(
            sorted(poles), rel=1e-5
        )

    def test_model_moments_round_trip(self):
        poles = [-1e9, -3e9]
        residues = unit_gain_residues(poles)
        m = moments_of(poles, residues, 6)
        model = pade_poles_residues(m, 2)
        np.testing.assert_allclose(model.moments(5), m, rtol=1e-6)


class TestStabilityHandling:
    def test_unstable_moments_flagged(self):
        # A RHP pole produces an unstable Pade model.
        poles = [-1e9, 2e9]
        residues = unit_gain_residues(poles)
        m = moments_of(poles, residues, 4)
        model = pade_poles_residues(m, 2)
        assert not model.is_stable()

    def test_stable_only_filters(self):
        poles = [-1e9, 2e9]
        residues = unit_gain_residues(poles)
        m = moments_of(poles, residues, 4)
        model = pade_poles_residues(m, 2, stable_only=True)
        assert model.is_stable()
        assert model.order == 1

    def test_unstable_step_response_raises(self):
        model = PoleResidueModel(poles=(2e9 + 0j,), residues=(1e9 + 0j,))
        t = np.linspace(0, 1e-6, 100)
        with pytest.raises(ReductionError, match="unstable"):
            model.step_response(t)


class TestValidation:
    def test_insufficient_moments(self):
        with pytest.raises(ReductionError, match="need 4 moments"):
            pade_poles_residues([1.0, -1e-10, 1e-20], 2)

    def test_unnormalized_rejected(self):
        with pytest.raises(ReductionError, match="normalized"):
            pade_poles_residues([2.0, -1e-10, 1e-20, -1e-30], 2)

    def test_positive_m1_rejected(self):
        with pytest.raises(ReductionError, match="m_1"):
            pade_poles_residues([1.0, 1e-10, 1e-20, 1e-30], 2)

    def test_order_zero_rejected(self):
        with pytest.raises(ReductionError):
            pade_poles_residues([1.0, -1e-10], 0)

    def test_singular_for_degenerate_system(self):
        # Moments of a pure single pole cannot support a 2-pole fit.
        m = moments_of([-1e9], unit_gain_residues([-1e9]), 4)
        with pytest.raises(ReductionError, match="singular|fewer"):
            pade_poles_residues(m, 2)


class TestPoleResidueModel:
    @pytest.fixture
    def model(self):
        # Canonical underdamped pair, unit dc gain.
        poles = np.array([-1e9 + 3e9j, -1e9 - 3e9j])
        wn2 = abs(poles[0]) ** 2
        r = wn2 / (poles[0] - poles[1])
        return PoleResidueModel(
            poles=tuple(poles), residues=(complex(r), complex(-r))
        )

    def test_dc_gain(self, model):
        assert model.dc_gain() == pytest.approx(1.0)

    def test_step_response_limits(self, model):
        t = np.linspace(0, 2e-8, 2000)
        v = model.step_response(t)
        assert v[0] == pytest.approx(0.0, abs=1e-9)
        assert v[-1] == pytest.approx(1.0, rel=1e-3)

    def test_impulse_is_step_slope(self, model):
        t = np.linspace(0, 1e-8, 20001)
        numeric = np.gradient(model.step_response(t), t)
        analytic = model.impulse_response(t)
        np.testing.assert_allclose(
            analytic[5:-5], numeric[5:-5], atol=3e-3 * np.abs(analytic).max()
        )

    def test_transfer_function_at_origin(self, model):
        assert complex(model.transfer_function(0.0)).real == pytest.approx(
            model.dc_gain()
        )

    def test_dominant_time_constant(self, model):
        assert model.dominant_time_constant() == pytest.approx(1e-9)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ReductionError):
            PoleResidueModel(poles=(-1e9 + 0j,), residues=())

    def test_empty_rejected(self):
        with pytest.raises(ReductionError):
            PoleResidueModel(poles=(), residues=())
