"""Unit tests for the Arnoldi (Krylov) reducer."""

import numpy as np
import pytest

from repro.circuit import balanced_tree, fig5_tree
from repro.errors import ReductionError
from repro.reduction import arnoldi_model
from repro.simulation import ExactSimulator


class TestMomentMatching:
    def test_order_q_matches_q_moments(self, fig8):
        """Arnoldi on K_q(A^-1, A^-1 b) matches the first q moments."""
        from repro.analysis import exact_moments

        q = 4
        reduction = arnoldi_model(fig8, "out", q)
        expected = exact_moments(fig8, q - 1)["out"]
        np.testing.assert_allclose(
            reduction.model.moments(q - 1), expected, rtol=1e-6
        )

    def test_full_order_reproduces_exact_response(self, fig8):
        sim = ExactSimulator(fig8)
        full = sim.order
        reduction = arnoldi_model(fig8, "out", full)
        t = sim.time_grid(points=1001)
        np.testing.assert_allclose(
            reduction.model.step_response(t),
            sim.step_response("out", t),
            atol=1e-6,
        )

    def test_reduced_matrices_shapes(self, fig8):
        reduction = arnoldi_model(fig8, "out", 5)
        assert reduction.order == 5
        assert reduction.a_reduced.shape == (5, 5)
        assert reduction.b_reduced.shape == (5,)
        assert reduction.c_reduced.shape == (5,)


class TestKrylovCollapse:
    def test_balanced_tree_collapses_at_effective_order(self, fig5):
        """Section V-B pole-zero cancellation, seen through Krylov: the
        14-state balanced Fig. 5 tree has only 6 reachable/observable
        poles at a sink, so the Krylov space collapses at dimension 6."""
        assert arnoldi_model(fig5, "n7", 6).order == 6
        with pytest.raises(ReductionError, match="collapsed"):
            arnoldi_model(fig5, "n7", 7)

    def test_branching_16_collapses_even_earlier(self):
        # 2 levels of branching 16: 272 sections, but a sink sees only
        # a 2-level ladder -> 4 effective poles.
        tree = balanced_tree(2, 16, resistance=25.0, inductance=5e-9,
                             capacitance=0.5e-12)
        sink = tree.leaves()[0]
        assert arnoldi_model(tree, sink, 4).order == 4
        with pytest.raises(ReductionError, match="collapsed"):
            arnoldi_model(tree, sink, 5)


class TestValidation:
    def test_order_bounds(self, fig8):
        with pytest.raises(ReductionError):
            arnoldi_model(fig8, "out", 0)
        with pytest.raises(ReductionError, match="exceeds"):
            arnoldi_model(fig8, "out", 1000)

    def test_unknown_node(self, fig8):
        with pytest.raises(ReductionError):
            arnoldi_model(fig8, "nope", 2)
