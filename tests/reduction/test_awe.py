"""Unit tests for the AWE baseline against the exact simulator."""

import numpy as np
import pytest

from repro.circuit import balanced_tree, fig8_tree, scale_tree_to_zeta, fig5_tree
from repro.errors import ReductionError
from repro.reduction import awe_delay_50, awe_model, awe_step_metrics
from repro.simulation import ExactSimulator, measure


@pytest.fixture
def exact_fig8_metrics(fig8):
    sim = ExactSimulator(fig8)
    t = sim.time_grid(points=8001, span_factor=14.0)
    return measure(t, sim.step_response("out", t))


class TestAccuracyLadder:
    def test_delay_error_decreases_with_order(self, fig8, exact_fig8_metrics):
        """AWE's selling point: accuracy improves with q."""
        reference = exact_fig8_metrics.delay_50
        errors = []
        for order in (2, 6, 8):
            delay = awe_delay_50(fig8, "out", order)
            errors.append(abs(delay - reference) / reference)
        # AWE converges non-monotonically, but high order must win.
        assert errors[2] < errors[0]
        assert errors[2] < 0.01

    def test_high_order_matches_waveform(self, fig8):
        sim = ExactSimulator(fig8)
        t = sim.time_grid(points=2001)
        reference = sim.step_response("out", t)
        model = awe_model(fig8, "out", 8)
        np.testing.assert_allclose(
            model.step_response(t), reference, atol=2e-2
        )

    def test_model_matches_exact_moments(self, fig8):
        from repro.analysis import exact_moments

        model = awe_model(fig8, "out", 3)
        expected = exact_moments(fig8, 5)["out"]
        np.testing.assert_allclose(model.moments(5), expected, rtol=1e-6)


class TestBalancedTreeCancellation:
    """Section V-B: a balanced tree's sinks see only n effective poles
    (one per level), so AWE saturates exactly there."""

    def test_exact_at_level_count(self, fig5):
        sim = ExactSimulator(fig5)
        t = sim.time_grid(points=2001)
        reference = sim.step_response("n7", t)
        model = awe_model(fig5, "n7", 6)  # 3 levels -> 6 poles (L + C each)
        np.testing.assert_allclose(model.step_response(t), reference, atol=1e-6)

    def test_moment_matrix_singular_beyond(self, fig5):
        with pytest.raises(ReductionError, match="fewer|singular"):
            awe_model(fig5, "n7", 8)


class TestInterface:
    def test_unknown_node(self, fig8):
        with pytest.raises(ReductionError):
            awe_model(fig8, "nope", 2)

    def test_step_metrics_bundle(self, fig8, exact_fig8_metrics):
        metrics = awe_step_metrics(fig8, "out", order=5)
        assert metrics.delay_50 == pytest.approx(
            exact_fig8_metrics.delay_50, rel=0.10
        )
        assert metrics.rise_time == pytest.approx(
            exact_fig8_metrics.rise_time, rel=0.20
        )

    def test_order_two_on_underdamped_tree(self, fig5):
        ringing = scale_tree_to_zeta(fig5, "n7", 0.5)
        model = awe_model(ringing, "n7", 2)
        assert model.order == 2
        assert model.dc_gain() == pytest.approx(1.0, rel=1e-9)

    def test_larger_tree(self):
        tree = balanced_tree(4, 2, resistance=20.0, inductance=2e-9,
                             capacitance=0.2e-12)
        sink = tree.leaves()[0]
        sim = ExactSimulator(tree)
        t = sim.time_grid(points=8001, span_factor=14.0)
        reference = measure(t, sim.step_response(sink, t)).delay_50
        assert awe_delay_50(tree, sink, 6) == pytest.approx(reference, rel=0.02)
