"""Unit tests for the Kahng-Muddu two-pole baseline."""

import numpy as np
import pytest

from repro.analysis import exact_moments
from repro.circuit import scale_tree_to_zeta, single_line
from repro.errors import ReductionError
from repro.reduction import KahngMudduModel, kahng_muddu_model
from repro.simulation import ExactSimulator, measure


class TestMomentMatching:
    def test_from_moments_inverts(self):
        model = KahngMudduModel(b1=1e-10, b2=2e-21)
        m1 = -model.b1
        m2 = model.b1**2 - model.b2
        again = KahngMudduModel.from_moments(m1, m2)
        assert again.b1 == pytest.approx(model.b1)
        assert again.b2 == pytest.approx(model.b2)

    def test_tree_model_matches_exact_m1_m2(self, fig8):
        model = kahng_muddu_model(fig8, "out")
        m = exact_moments(fig8, 2)["out"]
        assert model.b1 == pytest.approx(-m[1])
        assert model.b2 == pytest.approx(m[1] ** 2 - m[2])

    def test_invalid_coefficients_rejected(self):
        with pytest.raises(ReductionError):
            KahngMudduModel(b1=-1e-10, b2=1e-21)
        with pytest.raises(ReductionError):
            KahngMudduModel(b1=1e-10, b2=-1e-21)

    def test_unknown_node(self, fig8):
        with pytest.raises(ReductionError):
            kahng_muddu_model(fig8, "nope")


class TestCaseDispatch:
    """The three-formula structure the equivalent-Elmore paper removes."""

    def test_single_rlc_section_cases(self):
        def model_for(r):
            line = single_line(1, resistance=r, inductance=1e-9,
                               capacitance=1e-12)
            return kahng_muddu_model(line, "n1")

        # zeta = (R/2) sqrt(C/L): R = 20 -> 0.316 (complex),
        # R = 63.2456 -> 1.0 (repeated), R = 200 -> 3.16 (real).
        assert model_for(20.0).case == "complex"
        assert model_for(200.0).case == "real"
        critical_r = 2.0 * np.sqrt(1e-9 / 1e-12)
        assert model_for(critical_r).case == "repeated"

    def test_poles_match_case(self, fig5):
        ringing = kahng_muddu_model(scale_tree_to_zeta(fig5, "n7", 0.4), "n7")
        assert ringing.case == "complex"
        p1, p2 = ringing.poles()
        assert p1 == p2.conjugate()
        damped = kahng_muddu_model(scale_tree_to_zeta(fig5, "n7", 3.0), "n7")
        assert damped.case == "real"
        assert all(abs(p.imag) < 1e-3 * abs(p.real) for p in damped.poles())


class TestStepResponse:
    @pytest.mark.parametrize("target_zeta", [0.4, 1.0, 2.5])
    def test_limits(self, fig5, target_zeta):
        model = kahng_muddu_model(
            scale_tree_to_zeta(fig5, "n7", target_zeta), "n7"
        )
        t = np.linspace(0, 30 * model.dominant_time_constant(), 3000)
        v = model.step_response(t)
        assert v[0] == pytest.approx(0.0, abs=1e-9)
        assert v[-1] == pytest.approx(1.0, rel=1e-3)

    def test_continuity_across_cases(self, fig5):
        """Responses just each side of critical damping must agree —
        verifying the three formulae agree at their seams."""
        base = kahng_muddu_model(scale_tree_to_zeta(fig5, "n7", 1.0), "n7")
        t = np.linspace(0, 10 * base.dominant_time_constant(), 500)
        just_under = KahngMudduModel(b1=base.b1, b2=base.b1**2 / 4 * (1 - 1e-6))
        just_over = KahngMudduModel(b1=base.b1, b2=base.b1**2 / 4 * (1 + 1e-6))
        np.testing.assert_allclose(
            just_under.step_response(t), just_over.step_response(t), atol=1e-4
        )

    def test_delay_reasonable_vs_exact(self, fig8):
        sim = ExactSimulator(fig8)
        t = sim.time_grid(points=8001, span_factor=14.0)
        reference = measure(t, sim.step_response("out", t)).delay_50
        model = kahng_muddu_model(fig8, "out")
        assert model.delay_50() == pytest.approx(reference, rel=0.25)

    def test_rise_time_positive(self, fig8):
        model = kahng_muddu_model(fig8, "out")
        assert model.rise_time() > 0
