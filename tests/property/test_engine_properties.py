"""Property tests pinning the vectorized engine to its references.

Three implementations of the same mathematics must agree on arbitrary
topologies: the engine's level-vectorized sweeps, the dict-based O(n)
recursion of :mod:`repro.analysis.moments`, and the O(n^2) path-tracing
oracle of :mod:`repro.circuit.paths`. The tolerance is 1e-12 relative —
the engine's segmented ``cumsum`` may associate sums differently than
the sequential dict loop, but only at the few-ulp level.
"""

import math

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis import TreeAnalyzer, second_order_sums
from repro.circuit import RLCTree, Section
from repro.circuit.paths import (
    all_elmore_inductance_sums,
    all_elmore_resistance_sums,
)
from repro.engine import compile_tree, timing_table

RELTOL = 1e-12

positive_resistance = st.floats(0.1, 1e4)
positive_inductance = st.floats(1e-12, 1e-7)
positive_capacitance = st.floats(1e-16, 1e-10)


@st.composite
def sections(draw, rc_limit_fraction=0.0):
    inductance = draw(positive_inductance)
    if rc_limit_fraction and draw(st.floats(0.0, 1.0)) < rc_limit_fraction:
        inductance = 0.0
    return Section(
        draw(positive_resistance),
        inductance,
        draw(positive_capacitance),
    )


@st.composite
def rlc_trees(draw, min_sections=1, max_sections=16, shape="random",
              rc_limit_fraction=0.0):
    """Random, chain, or star topologies with optional RC-limit sections."""
    count = draw(st.integers(min_sections, max_sections))
    tree = RLCTree()
    names = ["in"]
    for i in range(1, count + 1):
        if shape == "chain":
            parent = names[-1]
        elif shape == "star":
            parent = names[min(1, len(names) - 1)]
        else:
            parent = names[draw(st.integers(0, len(names) - 1))]
        name = f"n{i}"
        tree.add_section(
            name, parent, section=draw(sections(rc_limit_fraction))
        )
        names.append(name)
    return tree


def assert_close(got, want, context):
    if math.isinf(want):
        assert math.isinf(got), context
        return
    scale = max(abs(got), abs(want))
    assert abs(got - want) <= RELTOL * scale, (context, got, want)


def check_tree(tree):
    compiled = compile_tree(tree, cache=False)
    t_rc_vec, t_lc_vec = compiled.second_order_sums()

    t_rc_dict, t_lc_dict = second_order_sums(tree)
    oracle_rc = all_elmore_resistance_sums(tree)
    oracle_lc = all_elmore_inductance_sums(tree)

    fast = TreeAnalyzer(tree)
    slow = TreeAnalyzer(tree, use_engine=False)
    table = timing_table(tree, cache=False)
    assert table is not None

    for i, node in enumerate(compiled.names):
        assert_close(float(t_rc_vec[i]), t_rc_dict[node], ("t_rc/dict", node))
        assert_close(float(t_lc_vec[i]), t_lc_dict[node], ("t_lc/dict", node))
        assert_close(float(t_rc_vec[i]), oracle_rc[node], ("t_rc/oracle", node))
        assert_close(float(t_lc_vec[i]), oracle_lc[node], ("t_lc/oracle", node))

        a, b = fast.timing(node), slow.timing(node)
        for metric in (
            "zeta",
            "omega_n",
            "delay_50",
            "rise_time",
            "overshoot",
            "settling",
        ):
            assert_close(
                getattr(a, metric), getattr(b, metric), (metric, node)
            )


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(tree=rlc_trees())
def test_engine_matches_dicts_and_oracle_random(tree):
    check_tree(tree)


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(tree=rlc_trees(min_sections=8, max_sections=24, shape="chain"))
def test_engine_matches_on_deep_chains(tree):
    check_tree(tree)


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(tree=rlc_trees(min_sections=8, max_sections=24, shape="star"))
def test_engine_matches_on_wide_stars(tree):
    check_tree(tree)


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(tree=rlc_trees(rc_limit_fraction=0.5))
def test_engine_matches_with_rc_limit_nodes(tree):
    check_tree(tree)


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(tree=rlc_trees(min_sections=1, max_sections=1))
def test_engine_matches_on_single_section(tree):
    check_tree(tree)


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(tree=rlc_trees(), scale=st.floats(0.5, 2.0))
def test_cache_never_serves_stale_values(tree, scale):
    """A topology-cache hit must re-read every element value."""
    first = compile_tree(tree)
    perturbed = tree.map_sections(
        lambda name, s: Section(
            s.resistance * scale, s.inductance * scale, s.capacitance * scale
        )
    )
    second = compile_tree(perturbed)
    assert second.topology is first.topology
    for i, name in enumerate(second.names):
        section = perturbed.section(name)
        assert second.resistance[i] == section.resistance
        assert second.inductance[i] == section.inductance
        assert second.capacitance[i] == section.capacitance

    t_rc_dict, t_lc_dict = second_order_sums(perturbed)
    t_rc_vec, t_lc_vec = second.second_order_sums()
    for i, name in enumerate(second.names):
        assert_close(float(t_rc_vec[i]), t_rc_dict[name], ("t_rc", name))
        assert_close(float(t_lc_vec[i]), t_lc_dict[name], ("t_lc", name))
