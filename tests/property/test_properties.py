"""Property-based tests (hypothesis) on the library's core invariants.

These are the load-bearing mathematical facts the paper relies on:
Elmore-sum monotonicity, impedance/time scaling laws, unconditional
stability of positive-element trees, continuity of the closed-form delay,
and agreement between the O(n) recursion and the O(n^2) oracle on
arbitrary topologies.
"""

import math

import numpy as np
import pytest
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.analysis import (
    SecondOrderModel,
    delay_50_from_sums,
    scaled_delay,
    scaled_delay_exact,
    scaled_rise,
    second_order_sums,
)
from repro.circuit import RLCTree, Section, dumps, loads
from repro.circuit.paths import (
    all_elmore_inductance_sums,
    all_elmore_resistance_sums,
)
from repro.simulation import ExactSimulator

# -- strategies -------------------------------------------------------------

positive_resistance = st.floats(0.1, 1e4)
positive_inductance = st.floats(1e-12, 1e-7)
positive_capacitance = st.floats(1e-16, 1e-10)


@st.composite
def sections(draw):
    return Section(
        draw(positive_resistance),
        draw(positive_inductance),
        draw(positive_capacitance),
    )


@st.composite
def rlc_trees(draw, min_sections=1, max_sections=12):
    """Random topology: node i attaches to a uniformly chosen earlier node."""
    count = draw(st.integers(min_sections, max_sections))
    tree = RLCTree()
    names = ["in"]
    for i in range(1, count + 1):
        parent = names[draw(st.integers(0, len(names) - 1))]
        name = f"n{i}"
        tree.add_section(name, parent, section=draw(sections()))
        names.append(name)
    return tree


zetas = st.floats(0.02, 8.0)

COMMON = dict(
    deadline=None, suppress_health_check=[HealthCheck.too_slow], max_examples=40
)


# -- recursion vs oracle ------------------------------------------------------


class TestRecursionEqualsOracle:
    @given(tree=rlc_trees())
    @settings(**COMMON)
    def test_sums_match_naive_path_intersection(self, tree):
        t_rc, t_lc = second_order_sums(tree)
        oracle_rc = all_elmore_resistance_sums(tree)
        oracle_lc = all_elmore_inductance_sums(tree)
        for node in tree.nodes:
            assert math.isclose(t_rc[node], oracle_rc[node], rel_tol=1e-10)
            assert math.isclose(t_lc[node], oracle_lc[node], rel_tol=1e-10)


class TestElmoreSumProperties:
    @given(tree=rlc_trees(min_sections=2))
    @settings(**COMMON)
    def test_sums_grow_along_paths(self, tree):
        """T_RC and T_LC are non-decreasing from root to sink."""
        t_rc, t_lc = second_order_sums(tree)
        for node in tree.nodes:
            parent = tree.parent(node)
            if parent == tree.root:
                continue
            assert t_rc[node] >= t_rc[parent] - 1e-30
            assert t_lc[node] >= t_lc[parent] - 1e-30

    @given(tree=rlc_trees(), factor=st.floats(1.1, 10.0))
    @settings(**COMMON)
    def test_monotone_in_resistance(self, tree, factor):
        """Growing any resistance never decreases any T_RC."""
        t_rc_before, _ = second_order_sums(tree)
        grown = tree.scaled(resistance_factor=factor)
        t_rc_after, _ = second_order_sums(grown)
        for node in tree.nodes:
            assert t_rc_after[node] >= t_rc_before[node]

    @given(tree=rlc_trees(), factor=st.floats(0.1, 10.0))
    @settings(**COMMON)
    def test_scaling_laws(self, tree, factor):
        """T_RC scales linearly with R and C; T_LC with L and C."""
        t_rc, t_lc = second_order_sums(tree)
        scaled_tree = tree.scaled(resistance_factor=factor,
                                  inductance_factor=factor)
        s_rc, s_lc = second_order_sums(scaled_tree)
        for node in tree.nodes:
            assert math.isclose(s_rc[node], factor * t_rc[node], rel_tol=1e-9)
            assert math.isclose(s_lc[node], factor * t_lc[node], rel_tol=1e-9)


class TestStability:
    @given(tree=rlc_trees(max_sections=8))
    @settings(**COMMON)
    def test_every_positive_tree_is_stable(self, tree):
        """All exact poles of a positive-element RLC tree lie strictly in
        the left half plane (passivity)."""
        simulator = ExactSimulator(tree)
        assert simulator.is_stable()

    @given(tree=rlc_trees(max_sections=8))
    @settings(**COMMON)
    def test_dc_gain_is_one_everywhere(self, tree):
        # rel_tol reflects eigensolver rounding when element values span
        # many decades, not a modeling error; drawn trees have been
        # observed past 1e-4.
        simulator = ExactSimulator(tree)
        for node in tree.nodes:
            assert math.isclose(simulator.dc_gain(node), 1.0, rel_tol=1e-3)

    @given(tree=rlc_trees(max_sections=8))
    @settings(**COMMON)
    def test_closed_form_model_always_stable(self, tree):
        """The paper's headline: the second-order model is stable for any
        tree (unlike AWE)."""
        t_rc, t_lc = second_order_sums(tree)
        for node in tree.nodes:
            model = SecondOrderModel.from_sums(t_rc[node], t_lc[node])
            for pole in model.poles():
                assert pole.real < 0.0


class TestClosedFormDelay:
    @given(zeta=zetas)
    @settings(**COMMON)
    def test_fit_tracks_exact_within_4_percent(self, zeta):
        assert abs(scaled_delay(zeta) - scaled_delay_exact(zeta)) <= (
            0.04 * scaled_delay_exact(zeta)
        )

    @given(zeta=zetas)
    @settings(**COMMON)
    def test_rise_exceeds_delay_gap(self, zeta):
        """10-90% rise is always longer than 0-50% minus 0-10% window; in
        particular both metrics are positive and rise > 0.4 * delay."""
        delay = scaled_delay(zeta)
        rise = scaled_rise(zeta)
        assert delay > 0 and rise > 0
        assert rise > 0.4 * delay

    @given(
        t_rc=st.floats(1e-12, 1e-8),
        ratio=st.floats(1e-4, 0.49),
    )
    @settings(**COMMON)
    def test_delay_continuous_in_t_lc(self, t_rc, ratio):
        """Small changes in T_LC produce small changes in delay — the
        continuity that makes the formula optimizer-friendly."""
        t_lc = (ratio * t_rc) ** 2  # zeta = 1/(2 ratio): spans both regimes
        base = delay_50_from_sums(t_rc, t_lc)
        nearby = delay_50_from_sums(t_rc, t_lc * 1.001)
        assert abs(nearby - base) < 0.01 * base

    @given(t_rc=st.floats(1e-12, 1e-8))
    @settings(**COMMON)
    def test_rc_limit_recovers_elmore(self, t_rc):
        tiny = (t_rc * 1e-4) ** 2
        rlc = delay_50_from_sums(t_rc, tiny)
        rc = delay_50_from_sums(t_rc, 0.0)
        assert math.isclose(rlc, rc, rel_tol=0.02)


class TestScaledResponse:
    @given(zeta=zetas, wn=st.floats(1e8, 1e12))
    @settings(**COMMON)
    def test_time_scaling_identity(self, zeta, wn):
        """Eq. 32: responses at different wn are pure time scalings."""
        model = SecondOrderModel(zeta=zeta, omega_n=wn)
        tau = np.linspace(0.0, 10.0, 50)
        direct = model.step_response(tau / wn)
        scaled = model.scaled_step_response(tau)
        np.testing.assert_allclose(direct, scaled, atol=1e-12)

    @given(zeta=zetas)
    @settings(**COMMON)
    def test_response_bounded(self, zeta):
        """Step response stays within [0, 2): max overshoot < 100%."""
        model = SecondOrderModel(zeta=zeta, omega_n=1.0)
        tau = np.linspace(0.0, 100.0, 2000)
        v = model.scaled_step_response(tau)
        assert np.all(v >= -1e-12)
        assert np.all(v < 2.0)


class TestNetlistRoundTrip:
    @given(tree=rlc_trees())
    @settings(**COMMON)
    def test_dumps_loads_identity(self, tree):
        again = loads(dumps(tree))
        assert set(again.nodes) == set(tree.nodes)
        for node in tree.nodes:
            assert again.section(node) == tree.section(node)


@st.composite
def narrow_range_trees(draw, max_sections=6):
    """Trees whose element values span at most ~2 decades, so a uniform
    fixed-step grid can resolve every mode (the wild-range case is the
    exact solver's job, not the fixed-step integrator's)."""
    count = draw(st.integers(1, max_sections))
    tree = RLCTree()
    names = ["in"]
    for i in range(1, count + 1):
        parent = names[draw(st.integers(0, len(names) - 1))]
        section = Section(
            draw(st.floats(5.0, 200.0)),
            draw(st.floats(0.5e-9, 10e-9)),
            draw(st.floats(0.05e-12, 1e-12)),
        )
        tree.add_section(f"n{i}", parent, section=section)
        names.append(f"n{i}")
    return tree


class TestSimulatorAgreement:
    @given(tree=narrow_range_trees())
    @settings(deadline=None, max_examples=15,
              suppress_health_check=[HealthCheck.too_slow])
    def test_exact_equals_trapezoidal(self, tree):
        from repro.simulation import StepSource, TrapezoidalSimulator, rms_error

        simulator = ExactSimulator(tree)
        sink = tree.leaves()[0]
        horizon = simulator.time_grid(points=2)[-1]
        assume(np.isfinite(horizon) and horizon > 0)
        # Size the step to the fastest mode: ~100 points per ringing
        # cycle keeps accumulated trapezoidal phase error negligible
        # even for high-Q (low-zeta) examples (at 60/cycle the worst
        # draws land right on the bound below).
        fastest = float(np.max(np.abs(simulator.poles())))
        cycles = horizon * fastest / (2 * math.pi)
        points = int(min(max(4001, 100 * cycles), 200001))
        t = np.linspace(0.0, horizon, points)
        reference = simulator.step_response(sink, t)
        candidate = TrapezoidalSimulator(tree).run(StepSource(), sink, t)
        # Phase error still accumulates linearly with cycle count for the
        # highest-Q draws, so the bound is looser than the fixed-tree
        # cross-checks in tests/simulation/test_transient.py.
        assert rms_error(reference, candidate) < 2e-2
