"""Property tests pinning the delta-update engine to full recomputes.

The incremental analyzer's contract is that *any* sequence of edits —
value edits, bulk loads, attach/detach — leaves it within 1e-12 relative
of a from-scratch evaluation of its own snapshot, at every node, under
every flush-threshold setting including the 0.0 (flush every edit) and
1.0 (defer almost always) boundaries. Hypothesis drives abstract edit
scripts that are resolved against the analyzer's evolving node set, so
structural edits and value edits interleave freely.
"""

import math

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.circuit import RLCTree, Section
from repro.engine import IncrementalAnalyzer, evaluate

RELTOL = 1e-12
# Derived metrics pass the sums through the fitted kernels, whose local
# condition number can amplify few-ulp sum drift by a small factor — the
# sums are pinned at RELTOL, the metrics get one decade of headroom.
METRIC_RELTOL = 1e-11

# Element values span about one decade: the optimization-loop regime the
# 1e-12 contract targets. A delta update that collapses a sum by many
# orders of magnitude pays for it in cancellation (absolute error ~eps
# times the *old* magnitude), as any incremental method does — that is
# what IncrementalAnalyzer.recompute() is for, not something a tight
# relative pin can survive under 6-decade value swings.
positive_resistance = st.floats(10.0, 100.0)
positive_inductance = st.floats(1e-9, 1e-8)
positive_capacitance = st.floats(1e-13, 1e-12)


@st.composite
def sections(draw, rc_limit_fraction=0.0):
    inductance = draw(positive_inductance)
    if rc_limit_fraction and draw(st.floats(0.0, 1.0)) < rc_limit_fraction:
        inductance = 0.0
    return Section(
        draw(positive_resistance),
        inductance,
        draw(positive_capacitance),
    )


@st.composite
def rlc_trees(draw, min_sections=2, max_sections=10, rc_limit_fraction=0.0):
    count = draw(st.integers(min_sections, max_sections))
    tree = RLCTree()
    names = ["in"]
    for i in range(1, count + 1):
        parent = names[draw(st.integers(0, len(names) - 1))]
        name = f"n{i}"
        tree.add_section(
            name, parent, section=draw(sections(rc_limit_fraction))
        )
        names.append(name)
    return tree


@st.composite
def value_edits(draw):
    """(kind, node-pick, payload) resolved against the live node set."""
    kind = draw(st.sampled_from(
        ["resistance", "inductance", "capacitance", "section", "scale"]
    ))
    pick = draw(st.integers(0, 10 ** 6))
    if kind == "resistance":
        payload = draw(positive_resistance)
    elif kind == "inductance":
        payload = draw(positive_inductance)
    elif kind == "capacitance":
        payload = draw(positive_capacitance)
    elif kind == "section":
        payload = draw(sections())
    else:
        payload = (
            draw(st.floats(0.5, 2.0)),
            draw(st.floats(0.5, 2.0)),
            draw(st.floats(0.5, 2.0)),
        )
    return kind, pick, payload


@st.composite
def structural_edits(draw):
    kind = draw(st.sampled_from(["attach", "detach"]))
    pick = draw(st.integers(0, 10 ** 6))
    if kind == "attach":
        payload = draw(st.lists(sections(), min_size=1, max_size=3))
    else:
        payload = None
    return kind, pick, payload


def apply_edit(analyzer, edit, serial):
    kind, pick, payload = edit
    names = analyzer.names
    node = names[pick % len(names)]
    if kind == "resistance":
        analyzer.set_resistance(node, payload)
    elif kind == "inductance":
        if payload == 0.0 and analyzer.section(node).resistance == 0.0:
            return
        analyzer.set_inductance(node, payload)
    elif kind == "capacitance":
        analyzer.set_capacitance(node, payload)
    elif kind == "section":
        analyzer.set_section(node, payload)
    elif kind == "scale":
        rf, lf, cf = payload
        analyzer.scale_segment(
            node,
            resistance_factor=rf,
            inductance_factor=lf,
            capacitance_factor=cf,
        )
    elif kind == "attach":
        subtree = RLCTree("handle")
        parent = "handle"
        for i, section in enumerate(payload):
            child = f"a{serial}_{i}"
            subtree.add_section(child, parent, section=section)
            parent = child
        analyzer.attach_subtree(node, subtree)
    elif kind == "detach":
        # Keep at least one section so the analyzer never goes empty.
        subtree_size = sum(
            1
            for other in names
            if other == node or _is_descendant(analyzer, other, node)
        )
        if subtree_size < analyzer.size:
            analyzer.detach_subtree(node)


def _is_descendant(analyzer, node, ancestor):
    tree = analyzer.tree()
    current = node
    while current != tree.root:
        current = tree.parent(current)
        if current == ancestor:
            return True
    return False


def assert_pinned_to_oracle(analyzer):
    table = evaluate(analyzer.snapshot(), analyzer.settle_band)
    for node in analyzer.names:
        t_rc, t_lc = analyzer.sums(node)
        assert math.isclose(
            t_rc, table.value("t_rc", node), rel_tol=RELTOL, abs_tol=0.0
        )
        assert math.isclose(
            t_lc, table.value("t_lc", node), rel_tol=RELTOL, abs_tol=0.0
        )
        got = analyzer.value("delay_50", node)
        want = table.value("delay_50", node)
        assert math.isclose(got, want, rel_tol=METRIC_RELTOL, abs_tol=0.0)


COMMON = dict(
    deadline=None, suppress_health_check=[HealthCheck.too_slow],
    max_examples=25,
)


class TestValueEditSequences:
    @given(
        tree=rlc_trees(rc_limit_fraction=0.3),
        edits=st.lists(value_edits(), min_size=1, max_size=12),
        threshold=st.sampled_from([0.0, 0.25, 1.0]),
    )
    @settings(**COMMON)
    def test_every_prefix_matches_full_recompute(self, tree, edits,
                                                 threshold):
        """After every single edit the analyzer equals its own snapshot's
        full evaluation — including at the flush-threshold boundaries."""
        analyzer = IncrementalAnalyzer(tree, flush_threshold=threshold)
        for serial, edit in enumerate(edits):
            apply_edit(analyzer, edit, serial)
            assert_pinned_to_oracle(analyzer)

    @given(
        tree=rlc_trees(),
        edits=st.lists(value_edits(), min_size=1, max_size=12),
    )
    @settings(**COMMON)
    def test_thresholds_agree_with_each_other(self, tree, edits):
        """0.0 and 1.0 thresholds run different flush schedules but land
        on the same sums (different only in summation order)."""
        eager = IncrementalAnalyzer(tree, flush_threshold=0.0)
        lazy = IncrementalAnalyzer(tree, flush_threshold=1.0)
        for serial, edit in enumerate(edits):
            apply_edit(eager, edit, serial)
            apply_edit(lazy, edit, serial)
        for node in eager.names:
            e_rc, e_lc = eager.sums(node)
            l_rc, l_lc = lazy.sums(node)
            assert math.isclose(e_rc, l_rc, rel_tol=RELTOL, abs_tol=0.0)
            assert math.isclose(e_lc, l_lc, rel_tol=RELTOL, abs_tol=0.0)

    @given(
        tree=rlc_trees(),
        edits=st.lists(value_edits(), min_size=1, max_size=10),
    )
    @settings(**COMMON)
    def test_session_burst_matches_oracle(self, tree, edits):
        analyzer = IncrementalAnalyzer(tree, flush_threshold=0.0)
        with analyzer.session() as session:
            for serial, edit in enumerate(edits):
                kind, pick, payload = edit
                node = analyzer.names[pick % len(analyzer.names)]
                if kind == "resistance":
                    session.set_resistance(node, payload)
                elif kind == "inductance":
                    if payload == 0.0 and (
                        analyzer.section(node).resistance == 0.0
                    ):
                        continue
                    session.set_inductance(node, payload)
                elif kind == "capacitance":
                    session.set_capacitance(node, payload)
                elif kind == "section":
                    session.set_section(node, payload)
                else:
                    rf, lf, cf = payload
                    session.scale_segment(
                        node,
                        resistance_factor=rf,
                        inductance_factor=lf,
                        capacitance_factor=cf,
                    )
        assert_pinned_to_oracle(analyzer)


class TestStructuralEditSequences:
    @given(
        tree=rlc_trees(max_sections=8),
        edits=st.lists(
            st.one_of(value_edits(), structural_edits()),
            min_size=1,
            max_size=8,
        ),
        threshold=st.sampled_from([0.0, 0.25, 1.0]),
    )
    @settings(**COMMON)
    def test_mixed_edits_match_full_recompute(self, tree, edits, threshold):
        """Interleaved value and attach/detach edits stay pinned."""
        analyzer = IncrementalAnalyzer(tree, flush_threshold=threshold)
        for serial, edit in enumerate(edits):
            apply_edit(analyzer, edit, serial)
        assert_pinned_to_oracle(analyzer)

    @given(tree=rlc_trees(max_sections=8))
    @settings(**COMMON)
    def test_detach_attach_round_trip_restores_sums(self, tree):
        analyzer = IncrementalAnalyzer(tree)
        reference = {node: analyzer.sums(node) for node in analyzer.names}
        victim = analyzer.names[-1]
        parent = tree.parent(victim)
        detached = analyzer.detach_subtree(victim)
        analyzer.attach_subtree(parent, detached)
        assert set(analyzer.names) == set(reference)
        for node, (t_rc, t_lc) in reference.items():
            got_rc, got_lc = analyzer.sums(node)
            assert math.isclose(got_rc, t_rc, rel_tol=RELTOL, abs_tol=0.0)
            assert math.isclose(got_lc, t_lc, rel_tol=RELTOL, abs_tol=0.0)


class TestTableAgreement:
    @given(
        tree=rlc_trees(rc_limit_fraction=0.3),
        edits=st.lists(value_edits(), min_size=1, max_size=10),
        threshold=st.sampled_from([0.0, 0.25, 1.0]),
    )
    @settings(**COMMON)
    def test_timing_table_matches_snapshot_evaluation(self, tree, edits,
                                                      threshold):
        """The flush+partial-refresh table equals a fresh full table."""
        analyzer = IncrementalAnalyzer(tree, flush_threshold=threshold)
        analyzer.timing_table()  # prime the metric cache
        for serial, edit in enumerate(edits):
            apply_edit(analyzer, edit, serial)
        table = analyzer.timing_table()
        full = evaluate(analyzer.snapshot(), analyzer.settle_band)
        # settling (ceil'd cycle count) and overshoot (threshold cutoff)
        # are discontinuous in the sums, so few-ulp flush drift can land
        # on either side of a step; the unit suite pins them bitwise on
        # identical state instead.
        for node in analyzer.names:
            for metric in ("t_rc", "t_lc", "zeta", "delay_50",
                           "rise_time"):
                got = table.value(metric, node)
                want = full.value(metric, node)
                tol = RELTOL if metric in ("t_rc", "t_lc") else METRIC_RELTOL
                if math.isinf(want):
                    assert math.isinf(got)
                else:
                    assert math.isclose(
                        got, want, rel_tol=tol, abs_tol=0.0
                    ), (node, metric)

    @given(
        tree=rlc_trees(),
        edits=st.lists(value_edits(), min_size=1, max_size=8),
    )
    @settings(**COMMON)
    def test_metric_at_matches_table(self, tree, edits):
        analyzer = IncrementalAnalyzer(tree, flush_threshold=1.0)
        for serial, edit in enumerate(edits):
            apply_edit(analyzer, edit, serial)
        nodes = list(analyzer.names)
        vector = analyzer.metric_at("delay_50", nodes)
        full = evaluate(analyzer.snapshot(), analyzer.settle_band)
        for k, node in enumerate(nodes):
            assert math.isclose(
                float(vector[k]),
                full.value("delay_50", node),
                rel_tol=METRIC_RELTOL,
                abs_tol=0.0,
            )
