"""Property-based tests for the extension modules.

Same philosophy as test_properties.py: the invariants here are the
facts the extensions lean on — passivity of coupled pairs, causality
and unit DC gain of the distributed line, gradient consistency, and
structural tree invariants.
"""

import math

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis import TreeAnalyzer, delay_sensitivities
from repro.circuit import RLCTree, Section
from repro.simulation import (
    CoupledLines,
    TransmissionLine,
    crosstalk_noise,
)

COMMON = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
    max_examples=25,
)


@st.composite
def coupled_pairs(draw):
    section = Section(
        draw(st.floats(1.0, 100.0)),
        draw(st.floats(0.5e-9, 10e-9)),
        draw(st.floats(0.05e-12, 1e-12)),
    )
    coupling_c = draw(st.floats(0.0, 0.5e-12))
    mutual = draw(st.floats(0.0, 0.9)) * section.inductance
    sections = draw(st.integers(2, 6))
    return CoupledLines(sections, section, coupling_c, mutual)


@st.composite
def transmission_lines(draw):
    return TransmissionLine(
        resistance=draw(st.floats(10.0, 5e4)),
        inductance=draw(st.floats(0.05e-6, 1e-6)),
        capacitance=draw(st.floats(0.05e-9, 0.5e-9)),
        length=draw(st.floats(0.5e-3, 20e-3)),
        source_resistance=draw(st.floats(0.0, 200.0)),
        load_capacitance=draw(st.floats(0.0, 200e-15)),
    )


@st.composite
def small_trees(draw):
    count = draw(st.integers(2, 10))
    tree = RLCTree()
    names = ["in"]
    for i in range(1, count + 1):
        parent = names[draw(st.integers(0, len(names) - 1))]
        section = Section(
            draw(st.floats(1.0, 200.0)),
            draw(st.floats(0.1e-9, 10e-9)),
            draw(st.floats(0.05e-12, 1e-12)),
        )
        tree.add_section(f"n{i}", parent, section=section)
        names.append(f"n{i}")
    return tree


class TestCoupledProperties:
    @given(pair=coupled_pairs())
    @settings(**COMMON)
    def test_passivity(self, pair):
        """Any physical coupling (|M| < L, Cc >= 0) keeps the pair stable."""
        assert pair.is_stable()

    @given(pair=coupled_pairs())
    @settings(**COMMON)
    def test_superposition(self, pair):
        """(1,0) drive = half the even drive plus half the odd drive."""
        t = pair.time_grid(points=301)
        direct_a, direct_v = pair.step_response(t, 1.0, 0.0)
        even_a, even_v = pair.step_response(t, 1.0, 1.0)
        odd_a, odd_v = pair.step_response(t, 1.0, -1.0)
        np.testing.assert_allclose(direct_a, 0.5 * (even_a + odd_a),
                                   atol=1e-9)
        np.testing.assert_allclose(direct_v, 0.5 * (even_v + odd_v),
                                   atol=1e-9)

    @given(pair=coupled_pairs())
    @settings(**COMMON)
    def test_noise_bounded_by_mode_overshoots(self, pair):
        """The victim is (even - odd)/2 and each mode's step response
        stays below 2 V (second-order overshoot ceiling), so the noise
        can exceed the swing at resonant coupling but never 2x it."""
        noise = crosstalk_noise(pair, points=2001)
        assert noise.peak_fraction <= 2.0


class TestTransmissionLineProperties:
    @given(line=transmission_lines())
    @settings(**COMMON)
    def test_dc_gain_unity(self, line):
        assert abs(complex(line.transfer_function(1e-3))) == pytest.approx(
            1.0, rel=1e-4
        )

    @given(line=transmission_lines())
    @settings(**COMMON)
    def test_resonant_peak_bounded_by_damping(self, line):
        """An open line resonates with Q set by the total series loss:
        the peak magnitude is at most ~Z0 / (Rs + R_t/2) (a nearly
        lossless open line legitimately reaches thousands). Guard that
        the computed response respects that physical ceiling."""
        f = np.geomspace(1e6, 2.0 / line.time_of_flight, 60)
        magnitude = np.abs(line.frequency_response(f))
        assert np.all(np.isfinite(magnitude))
        damping = line.source_resistance + 0.5 * line.total_resistance
        ceiling = 2.0 + 2.0 * line.characteristic_impedance / max(
            damping, 1e-9
        )
        assert magnitude.max() < ceiling

    @given(line=transmission_lines())
    @settings(deadline=None, max_examples=10,
              suppress_health_check=[HealthCheck.too_slow])
    def test_step_response_settles_to_one(self, line):
        # Horizon must cover all three decay mechanisms: the RC charging
        # of an overdamped draw, the reflections of a low-loss line
        # (which decay with the series L/R time constant when the source
        # is soft), and a few flights.
        total_c = line.capacitance * line.length + line.load_capacitance
        total_l = line.inductance * line.length
        total_r = line.total_resistance + line.source_resistance
        tau_rc = total_r * total_c
        tau_ring = 2.0 * total_l / total_r
        end = max(
            30.0 * line.time_of_flight, 12.0 * tau_rc, 12.0 * tau_ring
        )
        t = np.array([end])
        assert float(line.step_response(t)[0]) == pytest.approx(1.0, abs=2e-2)


class TestSensitivityProperties:
    @given(tree=small_trees(), bump=st.floats(0.01, 0.2))
    @settings(**COMMON)
    def test_gradient_predicts_small_perturbations(self, tree, bump):
        """First-order prediction: bumping one section's R by a small
        fraction moves the delay by ~ dD/dR * delta."""
        sink = tree.leaves()[-1]
        report = delay_sensitivities(tree, sink)
        target = tree.path_to(sink)[0]  # a section surely on the path
        section = tree.section(target)
        delta = section.resistance * bump * 0.01  # keep it truly small
        bumped = tree.map_sections(
            lambda n, s: Section(
                s.resistance + delta, s.inductance, s.capacitance
            )
            if n == target
            else s
        )
        predicted = report.value + report.wrt_resistance(target) * delta
        actual = TreeAnalyzer(bumped).delay_50(sink)
        assert actual == pytest.approx(predicted, rel=1e-3)

    @given(tree=small_trees())
    @settings(**COMMON)
    def test_gradient_value_matches_analyzer(self, tree):
        sink = tree.leaves()[0]
        assert delay_sensitivities(tree, sink).value == pytest.approx(
            TreeAnalyzer(tree).delay_50(sink)
        )


class TestTreeStructureProperties:
    @given(tree=small_trees())
    @settings(**COMMON)
    def test_traversals_are_permutations(self, tree):
        assert sorted(tree.preorder()) == sorted(tree.nodes)
        assert sorted(tree.postorder()) == sorted(tree.nodes)

    @given(tree=small_trees())
    @settings(**COMMON)
    def test_subtree_sizes_sum(self, tree):
        """sum over nodes of |subtree| = sum over nodes of depth —
        both count (ancestor, descendant) pairs including self."""
        by_subtree = sum(len(tree.subtree(n)) for n in tree.nodes)
        by_depth = sum(tree.level(n) for n in tree.nodes)
        assert by_subtree == by_depth

    @given(tree=small_trees())
    @settings(**COMMON)
    def test_downstream_capacitance_consistent(self, tree):
        total = sum(
            tree.section(c).capacitance for c in tree.children(tree.root)
            for _ in [0]
        )
        del total
        for node in tree.nodes:
            expected = tree.section(node).capacitance + sum(
                tree.downstream_capacitance(c) for c in tree.children(node)
            )
            assert tree.downstream_capacitance(node) == pytest.approx(expected)
