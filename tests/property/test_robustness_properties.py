"""Property-based fuzz of the validation layer (ISSUE satellite).

Two directions:

* **soundness** — everything the honest builders in
  ``repro.circuit.builders`` produce passes :func:`validate_tree`
  (no false positives on legitimate circuits);
* **completeness** — every constructor-invalid mutation the fault
  injector applies is flagged at error severity (no false negatives on
  corrupted circuits).
"""

import math

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.circuit import RLCTree, Section
from repro.circuit.builders import (
    asymmetric_tree,
    balanced_tree,
    fig5_tree,
    fig8_tree,
    ladder,
    random_tree,
    single_line,
)
from repro.errors import ReproError
from repro.robustness import (
    GuardedAnalyzer,
    RepairPolicy,
    perturb,
    sanitize,
    validate_tree,
)

pytestmark = pytest.mark.robustness

positive_resistance = st.floats(0.1, 1e4)
positive_inductance = st.floats(1e-12, 1e-7)
positive_capacitance = st.floats(1e-16, 1e-10)


@st.composite
def sections(draw):
    return Section(
        draw(positive_resistance),
        draw(positive_inductance),
        draw(positive_capacitance),
    )


@st.composite
def built_trees(draw):
    """A tree from one of the public builders, with drawn parameters."""
    builder = draw(st.sampled_from(
        ["single_line", "balanced", "asymmetric", "ladder", "random",
         "fig5", "fig8"]
    ))
    if builder == "single_line":
        return single_line(draw(st.integers(1, 20)),
                           section=draw(sections()))
    if builder == "balanced":
        return balanced_tree(draw(st.integers(1, 4)),
                             draw(st.integers(1, 3)),
                             section=draw(sections()))
    if builder == "asymmetric":
        return asymmetric_tree(draw(st.integers(1, 4)),
                               draw(st.floats(0.2, 0.9)),
                               section=draw(sections()))
    if builder == "ladder":
        count = draw(st.integers(1, 8))
        return ladder([draw(sections()) for _ in range(count)])
    if builder == "random":
        seed = draw(st.integers(0, 2**31))
        return random_tree(draw(st.integers(1, 25)),
                           np.random.default_rng(seed))
    if builder == "fig5":
        return fig5_tree(section=draw(sections()))
    return fig8_tree()


COMMON = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
    max_examples=60,
)


class TestBuildersAlwaysValidate:
    @given(tree=built_trees())
    @settings(**COMMON)
    def test_no_error_diagnostics(self, tree):
        report = validate_tree(tree)
        assert report.ok, report.summary()
        # Builders construct through Section, so constructor-invalid
        # codes can never appear.
        for code in ("non-finite-element", "negative-element",
                     "zero-impedance"):
            assert not report.by_code(code)

    @given(tree=built_trees())
    @settings(**COMMON)
    def test_sanitize_is_identity(self, tree):
        repaired, _ = sanitize(tree, RepairPolicy.repair_all())
        assert repaired is tree


class TestInjectorAlwaysFlagged:
    @given(
        tree=built_trees(),
        seed=st.integers(0, 2**31),
        count=st.integers(1, 5),
    )
    @settings(**COMMON)
    def test_invalid_mutations_are_error_severity(self, tree, seed, count):
        rng = np.random.default_rng(seed)
        mutated, mutations = perturb(tree, rng, count=count)
        report = validate_tree(mutated)
        invalid = [m for m in mutations
                   if m.startswith(("nan-", "inf-", "negative-",
                                    "zero-impedance"))]
        if invalid:
            assert not report.ok, (
                f"mutations {mutations} escaped validation: "
                f"{report.summary()}"
            )
            flagged = {d.node for d in report.errors()}
            for mutation in invalid:
                node = mutation.split("@", 1)[1]
                assert node in flagged, (
                    f"{mutation} not attributed to its node "
                    f"({report.summary()})"
                )

    @given(
        tree=built_trees(),
        seed=st.integers(0, 2**31),
    )
    @settings(deadline=None,
              suppress_health_check=[HealthCheck.too_slow],
              max_examples=25)
    def test_guarded_invariant_on_mutated_trees(self, tree, seed):
        rng = np.random.default_rng(seed)
        mutated, _ = perturb(tree, rng, count=3)
        try:
            guarded = GuardedAnalyzer(
                mutated, policy=RepairPolicy.repair_all()
            )
        except ReproError:
            return
        node = guarded.tree.nodes[-1]
        try:
            value = guarded.delay_50(node)
        except ReproError:
            return
        assert math.isfinite(value)
