"""Unit tests for optimal repeater insertion on RLC lines."""

import math

import pytest

from repro.apps import (
    LineParameters,
    RepeaterLibrary,
    bakoglu_rc,
    optimize_repeaters,
    stage_delay,
    total_path_delay,
)
from repro.errors import ReproError


@pytest.fixture
def library():
    return RepeaterLibrary()


@pytest.fixture
def rc_line():
    """A long resistive line: 10 mm at 30 ohm/mm, 0.2 pF/mm."""
    return LineParameters(resistance=300.0, inductance=0.0,
                          capacitance=2e-12)


@pytest.fixture
def rlc_line():
    """Same line with heavy inductance (2 nH/mm)."""
    return LineParameters(resistance=300.0, inductance=20e-9,
                          capacitance=2e-12)


class TestValidation:
    def test_library_validation(self):
        with pytest.raises(ReproError):
            RepeaterLibrary(unit_resistance=0.0)
        with pytest.raises(ReproError):
            RepeaterLibrary(intrinsic_delay=-1.0)
        with pytest.raises(ReproError):
            RepeaterLibrary(max_size=0.5)

    def test_line_validation(self):
        with pytest.raises(ReproError):
            LineParameters(resistance=0.0, inductance=0.0, capacitance=1e-12)
        with pytest.raises(ReproError):
            LineParameters(resistance=1.0, inductance=-1e-9,
                           capacitance=1e-12)

    def test_model_validation(self, rc_line, library):
        with pytest.raises(ReproError):
            optimize_repeaters(rc_line, library, model="spice")

    def test_stage_count_validation(self, rc_line, library):
        with pytest.raises(ReproError):
            stage_delay(rc_line, library, 0, 10.0, "rc")


class TestLibraryScaling:
    def test_size_scales_r_and_c(self, library):
        assert library.output_resistance(10.0) == pytest.approx(
            library.unit_resistance / 10.0
        )
        assert library.input_capacitance(10.0) == pytest.approx(
            library.unit_capacitance * 10.0
        )


class TestBakoglu:
    def test_formula(self, rc_line, library):
        plan = bakoglu_rc(rc_line, library)
        k = math.sqrt(
            0.4 * 300.0 * 2e-12 / (0.7 * 1000.0 * 2e-15)
        )
        assert plan.count == round(k) - 1
        h = math.sqrt(1000.0 * 2e-12 / (300.0 * 2e-15))
        assert plan.size == pytest.approx(min(h, library.max_size))

    def test_short_line_needs_no_repeaters(self, library):
        stub = LineParameters(resistance=5.0, inductance=0.0,
                              capacitance=20e-15)
        assert bakoglu_rc(stub, library).count == 0

    def test_size_clamped(self, rc_line):
        tiny_max = RepeaterLibrary(max_size=10.0)
        assert bakoglu_rc(rc_line, tiny_max).size == 10.0


class TestStageDelay:
    def test_more_stages_faster_per_stage(self, rc_line, library):
        one = stage_delay(rc_line, library, 1, 50.0, "rc")
        four = stage_delay(rc_line, library, 4, 50.0, "rc")
        assert four < one

    def test_last_stage_faster_without_load(self, rc_line, library):
        loaded = stage_delay(rc_line, library, 4, 50.0, "rc", last=False)
        final = stage_delay(rc_line, library, 4, 50.0, "rc", last=True)
        assert final < loaded

    def test_rlc_stage_differs_from_rc(self, rlc_line, library):
        rc = stage_delay(rlc_line, library, 2, 50.0, "rc")
        rlc = stage_delay(rlc_line, library, 2, 50.0, "rlc")
        assert rc != rlc

    def test_total_combines_stages(self, rc_line, library):
        count, size = 3, 40.0
        inner = stage_delay(rc_line, library, 4, size, "rc", last=False)
        final = stage_delay(rc_line, library, 4, size, "rc", last=True)
        expected = 3 * (inner + library.intrinsic_delay) + final
        assert total_path_delay(rc_line, library, count, size, "rc") == (
            pytest.approx(expected)
        )


class TestOptimization:
    def test_repeaters_help_long_rc_line(self, rc_line, library):
        plan = optimize_repeaters(rc_line, library, "rc")
        unrepeated = total_path_delay(rc_line, library, 0, plan.size, "rc")
        assert plan.count > 0
        assert plan.total_delay < unrepeated

    def test_optimum_beats_neighbors(self, rc_line, library):
        plan = optimize_repeaters(rc_line, library, "rc")
        for other in (plan.count - 1, plan.count + 1):
            if other < 0:
                continue
            neighbor = total_path_delay(
                rc_line, library, other, plan.size, "rc"
            )
            assert plan.total_delay <= neighbor + 1e-18

    def test_optimum_close_to_bakoglu_on_rc_line(self, rc_line, library):
        numeric = optimize_repeaters(rc_line, library, "rc")
        closed = bakoglu_rc(rc_line, library)
        # Same decade; Bakoglu's 0.4/0.7 constants differ from eq. 35.
        assert abs(numeric.count - closed.count) <= closed.count
        assert numeric.total_delay <= closed.total_delay

    def test_inductance_reduces_repeater_count(self, library):
        """The follow-on paper's headline result."""
        counts = []
        for inductance in (0.0, 4e-9, 20e-9):
            line = LineParameters(resistance=300.0, inductance=inductance,
                                  capacitance=2e-12)
            counts.append(optimize_repeaters(line, library, "rlc").count)
        assert counts[0] >= counts[1] >= counts[2]
        assert counts[2] < counts[0]

    def test_rc_model_blind_to_inductance(self, rc_line, rlc_line, library):
        no_l = optimize_repeaters(rc_line, library, "rc")
        heavy_l = optimize_repeaters(rlc_line, library, "rc")
        assert no_l.count == heavy_l.count
        assert no_l.size == pytest.approx(heavy_l.size, rel=1e-3)

    def test_stage_count_property(self, rc_line, library):
        plan = optimize_repeaters(rc_line, library, "rc")
        assert plan.stage_count == plan.count + 1
