"""Unit tests for Monte-Carlo variation analysis and linearized sigma."""

import math

import numpy as np
import pytest

from repro.apps import (
    DelaySamples,
    VariationModel,
    VariationStudy,
    linearized_sigma,
    sample_delays,
)
from repro.circuit import fig5_tree, scale_tree_to_zeta
from repro.errors import ConfigurationError, ReproError


@pytest.fixture(scope="module")
def tree():
    return scale_tree_to_zeta(fig5_tree(), "n7", 0.7)


@pytest.fixture(scope="module")
def study(tree):
    return sample_delays(
        tree, "n7", VariationModel(), samples=300, exact_samples=25, seed=1
    )


class TestVariationModel:
    def test_validation(self):
        with pytest.raises(ReproError):
            VariationModel(sigma_resistance=-0.1)
        with pytest.raises(ReproError):
            VariationModel(sigma_capacitance=1.0)

    def test_sample_tree_positive_values(self, tree):
        rng = np.random.default_rng(0)
        perturbed = VariationModel(0.3, 0.3, 0.3).sample_tree(tree, rng)
        for _, section in perturbed.sections():
            assert section.resistance > 0
            assert section.inductance > 0
            assert section.capacitance > 0

    def test_zero_sigma_is_identity(self, tree):
        rng = np.random.default_rng(0)
        same = VariationModel(0.0, 0.0, 0.0).sample_tree(tree, rng)
        for name in tree.nodes:
            assert same.section(name).resistance == pytest.approx(
                tree.section(name).resistance
            )

    def test_lognormal_mean_preserving(self, tree):
        """The -sigma^2/2 shift keeps E[factor] = 1, so the mean sampled
        value stays near nominal."""
        rng = np.random.default_rng(7)
        model = VariationModel(0.2, 0.2, 0.2)
        total = 0.0
        draws = 400
        for _ in range(draws):
            perturbed = model.sample_tree(tree, rng)
            total += perturbed.section("n1").resistance
        nominal = tree.section("n1").resistance
        assert total / draws == pytest.approx(nominal, rel=0.03)


class TestSampleDelays:
    def test_shapes(self, study):
        assert study.rlc.values.shape == (300,)
        assert study.exact.values.shape == (25,)

    def test_distribution_sane(self, study):
        assert study.rlc.sigma > 0
        assert study.rlc.quantile(0.01) < study.rlc.mean < study.rlc.p99

    def test_rlc_mean_tracks_exact(self, study):
        assert study.rlc.mean == pytest.approx(study.exact.mean, rel=0.10)

    def test_rc_mean_is_biased_low(self, study):
        # Elmore ignores inductance: on this underdamped tree its whole
        # distribution sits ~30% below reality.
        assert study.rc.mean < 0.85 * study.exact.mean

    def test_rlc_ranks_samples_better(self, study):
        assert study.rank_correlation("rlc") > 0.85
        assert study.rank_correlation("rlc") > study.rank_correlation("rc")

    def test_deterministic_per_seed(self, tree):
        a = sample_delays(tree, "n7", VariationModel(), samples=50, seed=3)
        b = sample_delays(tree, "n7", VariationModel(), samples=50, seed=3)
        np.testing.assert_array_equal(a.rlc.values, b.rlc.values)

    def test_validation(self, tree):
        with pytest.raises(ReproError):
            sample_delays(tree, "n7", VariationModel(), samples=1)
        with pytest.raises(ReproError):
            sample_delays(tree, "n7", VariationModel(), samples=10,
                          exact_samples=11)
        with pytest.raises(ReproError):
            sample_delays(tree, "zzz", VariationModel())

    def test_rank_correlation_needs_exact(self, tree):
        study = sample_delays(tree, "n7", VariationModel(), samples=20)
        with pytest.raises(ReproError):
            study.rank_correlation()


class TestLinearizedSigma:
    def test_matches_monte_carlo(self, tree, study):
        nominal, sigma = linearized_sigma(tree, "n7", VariationModel())
        assert nominal == pytest.approx(study.rlc.mean, rel=0.02)
        assert sigma == pytest.approx(study.rlc.sigma, rel=0.20)

    def test_scales_with_variation(self, tree):
        _, small = linearized_sigma(
            tree, "n7", VariationModel(0.05, 0.025, 0.05)
        )
        _, large = linearized_sigma(tree, "n7", VariationModel(0.2, 0.1, 0.2))
        assert large == pytest.approx(4 * small, rel=1e-6)

    def test_zero_variation_zero_sigma(self, tree):
        _, sigma = linearized_sigma(tree, "n7", VariationModel(0.0, 0.0, 0.0))
        assert sigma == 0.0


class TestDegenerateSampleCounts:
    """The ddof=1 / rank-correlation degenerate cases are rejected or NaN."""

    def test_exact_samples_of_one_rejected(self, tree):
        with pytest.raises(ConfigurationError, match=r"exact_samples"):
            sample_delays(
                tree, "n7", VariationModel(), samples=10, exact_samples=1
            )

    def test_negative_exact_samples_rejected(self, tree):
        with pytest.raises(ConfigurationError, match=r"non-negative"):
            sample_delays(
                tree, "n7", VariationModel(), samples=10, exact_samples=-1
            )

    def test_single_sample_sigma_is_nan_not_warning(self):
        # np.std(ddof=1) on one value divides by zero; under the suite's
        # promoted warnings that was a crash. It must be a quiet NaN.
        assert math.isnan(DelaySamples(values=np.array([1.0])).sigma)

    def test_empty_sigma_is_nan(self):
        assert math.isnan(DelaySamples(values=np.empty(0)).sigma)

    def test_two_samples_have_a_sigma(self):
        assert DelaySamples(values=np.array([1.0, 3.0])).sigma == (
            pytest.approx(math.sqrt(2.0))
        )

    def test_rank_correlation_needs_two_exact_samples(self):
        lone = DelaySamples(values=np.array([1.0]))
        pair = DelaySamples(values=np.array([1.0, 2.0]))
        study = VariationStudy(node="n7", rlc=pair, rc=pair, exact=lone)
        with pytest.raises(ConfigurationError, match=r"at least 2 exact"):
            study.rank_correlation()

    def test_rank_correlation_fine_with_two(self):
        pair = DelaySamples(values=np.array([1.0, 2.0]))
        study = VariationStudy(node="n7", rlc=pair, rc=pair, exact=pair)
        assert study.rank_correlation() == pytest.approx(1.0)


class TestShardedSampling:
    """workers= routes through the dispatch pool with bitwise-equal draws."""

    def test_workers_bitwise_identical(self, tree):
        serial = sample_delays(
            tree, "n7", VariationModel(), samples=40, seed=11
        )
        sharded = sample_delays(
            tree, "n7", VariationModel(), samples=40, seed=11, workers=2
        )
        np.testing.assert_array_equal(serial.rlc.values, sharded.rlc.values)
        np.testing.assert_array_equal(serial.rc.values, sharded.rc.values)

    def test_workers_one_is_serial_path(self, tree):
        serial = sample_delays(
            tree, "n7", VariationModel(), samples=20, seed=4
        )
        explicit = sample_delays(
            tree, "n7", VariationModel(), samples=20, seed=4, workers=1
        )
        np.testing.assert_array_equal(serial.rlc.values, explicit.rlc.values)

    def test_rng_stream_unaffected_by_workers(self, tree):
        """The exact-simulation draws share the same factor rows either way."""
        serial = sample_delays(
            tree, "n7", VariationModel(), samples=12, exact_samples=3,
            seed=8,
        )
        sharded = sample_delays(
            tree, "n7", VariationModel(), samples=12, exact_samples=3,
            seed=8, workers=2,
        )
        np.testing.assert_array_equal(
            serial.exact.values, sharded.exact.values
        )
        assert serial.rank_correlation() == sharded.rank_correlation()
