"""Unit tests for gradient-based clock skew tuning."""

import pytest

from repro.apps import (
    apply_widths,
    h_tree,
    model_skew,
    perturbed_clock_tree,
    skew_report,
    tune_clock_tree,
)
from repro.circuit import single_line
from repro.errors import ReproError


@pytest.fixture(scope="module")
def mismatched():
    return perturbed_clock_tree(h_tree(levels=3), 0.15, seed=5)


@pytest.fixture(scope="module")
def result(mismatched):
    return tune_clock_tree(mismatched)


class TestApplyWidths:
    def test_width_scaling(self, mismatched):
        sized = apply_widths(mismatched, {"n1": 2.0})
        base = mismatched.section("n1")
        assert sized.section("n1").resistance == pytest.approx(
            base.resistance / 2
        )
        assert sized.section("n1").capacitance == pytest.approx(
            base.capacitance * 2
        )
        assert sized.section("n1").inductance == pytest.approx(
            base.inductance
        )

    def test_missing_widths_default_to_one(self, mismatched):
        same = apply_widths(mismatched, {})
        for name in mismatched.nodes:
            assert same.section(name) == mismatched.section(name)


class TestModelSkew:
    def test_balanced_tree_zero(self):
        assert model_skew(h_tree(levels=3)) == pytest.approx(0.0, abs=1e-16)

    def test_mismatched_positive(self, mismatched):
        assert model_skew(mismatched) > 0


class TestTuning:
    def test_model_skew_collapses(self, mismatched, result):
        assert result.skew_before == pytest.approx(model_skew(mismatched))
        assert result.improvement > 0.8

    def test_objective_monotone(self, result):
        trace = result.objective_trace
        assert all(b <= a for a, b in zip(trace, trace[1:]))

    def test_widths_within_bounds(self, result):
        assert all(0.25 <= w <= 4.0 for w in result.widths.values())

    def test_exact_simulated_skew_improves(self, mismatched, result):
        """The honest check: tuning steered by the closed form must
        shrink the *exact* skew, not just its own estimate."""
        before = skew_report(mismatched).exact_skew
        after = skew_report(result.tuned_tree).exact_skew
        assert after < 0.5 * before

    def test_balanced_tree_is_a_fixed_point(self):
        balanced = h_tree(levels=3)
        result = tune_clock_tree(balanced, iterations=5)
        assert result.skew_after <= result.skew_before + 1e-18
        assert result.improvement == pytest.approx(0.0, abs=1e-6)

    def test_custom_bounds_respected(self, mismatched):
        result = tune_clock_tree(
            mismatched, iterations=10, min_width=0.8, max_width=1.25
        )
        assert all(0.8 <= w <= 1.25 for w in result.widths.values())

    def test_validation(self, mismatched):
        with pytest.raises(ReproError):
            tune_clock_tree(single_line(3))  # one sink
        with pytest.raises(ReproError):
            tune_clock_tree(mismatched, iterations=0)
        with pytest.raises(ReproError):
            tune_clock_tree(mismatched, min_width=1.5)
