"""The apps' incremental fast paths against their scalar escape hatches.

Each optimization loop routed through the delta-update engine keeps a
``use_incremental=False`` escape hatch running the original scalar
evaluation. The two paths are the same arithmetic on the same values, so
these tests demand *identical* decisions — same widths, same buffer
placements, same evaluation counts — not merely close objectives.
"""

import numpy as np
import pytest
from numpy.random import default_rng

from repro.apps import (
    Buffer,
    WireSizingProblem,
    h_tree,
    insert_buffers,
    optimize_width,
    perturbed_clock_tree,
    tune_clock_tree,
)
from repro.circuit import RLCTree, Section, random_tree, single_line
from repro.engine import compile_tree


class TestWireSizingIncremental:
    @pytest.fixture(scope="class")
    def problem(self):
        return WireSizingProblem(num_sections=24)

    @pytest.mark.parametrize("model", ["rc", "rlc"])
    def test_matches_escape_hatch(self, problem, model):
        fast = optimize_width(problem, model=model)
        slow = optimize_width(problem, model=model, use_incremental=False)
        assert fast.width == pytest.approx(slow.width, rel=1e-9)
        assert fast.delay == pytest.approx(slow.delay, rel=1e-9)
        assert fast.evaluations == slow.evaluations
        assert fast.model == slow.model == model

    @pytest.mark.parametrize("model", ["rc", "rlc"])
    def test_value_vectors_match_tree_compile_bitwise(self, problem, model):
        for width in (problem.min_width, 1e-6, problem.max_width):
            r, l, c = problem.value_vectors(width, model)
            compiled = compile_tree(problem.tree(width, model))
            template = problem.compiled_template(model)
            assert template.names == compiled.names
            assert np.array_equal(r, np.asarray(compiled.resistance))
            assert np.array_equal(l, np.asarray(compiled.inductance))
            assert np.array_equal(c, np.asarray(compiled.capacitance))

    def test_template_is_reused(self, problem):
        assert problem.compiled_template("rlc") is problem.compiled_template(
            "rlc"
        )


class TestBufferInsertionIncremental:
    @pytest.fixture
    def buffer_cell(self):
        return Buffer(
            output_resistance=25.0,
            input_capacitance=15e-15,
            intrinsic_delay=15e-12,
        )

    def test_driving_delays_matches_scalar_bitwise(self, buffer_cell):
        loads = default_rng(3).uniform(0.0, 1e-12, 50)
        vector = buffer_cell.driving_delays(loads)
        for k, load in enumerate(loads):
            assert vector[k] == buffer_cell.driving_delay(float(load))

    @pytest.mark.parametrize("model", ["rc", "rlc"])
    def test_line_matches_escape_hatch(self, buffer_cell, model):
        line = single_line(
            12, resistance=120.0, inductance=1e-9, capacitance=0.4e-12
        )
        fast = insert_buffers(line, buffer_cell, model=model)
        slow = insert_buffers(
            line, buffer_cell, model=model, use_incremental=False
        )
        assert fast.buffer_nodes == slow.buffer_nodes
        assert fast.required_at_root == slow.required_at_root
        assert fast.root_capacitance == slow.root_capacitance

    @pytest.mark.parametrize("model", ["rc", "rlc"])
    def test_random_trees_match_escape_hatch(self, buffer_cell, model):
        rng = default_rng(11)
        for trial in range(5):
            tree = random_tree(18, rng)
            sinks = tree.leaves()
            required = {s: float(rng.uniform(0.0, 1e-9)) for s in sinks}
            pins = {s: float(rng.uniform(0.0, 5e-14)) for s in sinks}
            fast = insert_buffers(
                tree,
                buffer_cell,
                sink_required=required,
                sink_capacitance=pins,
                model=model,
                driver_resistance=30.0,
            )
            slow = insert_buffers(
                tree,
                buffer_cell,
                sink_required=required,
                sink_capacitance=pins,
                model=model,
                driver_resistance=30.0,
                use_incremental=False,
            )
            assert fast.buffer_nodes == slow.buffer_nodes, (model, trial)
            assert fast.required_at_root == slow.required_at_root
            assert fast.root_capacitance == slow.root_capacitance


class TestClockTuningIncremental:
    @pytest.fixture(scope="class")
    def mismatched(self):
        return perturbed_clock_tree(h_tree(levels=3), 0.15, seed=5)

    def test_matches_escape_hatch(self, mismatched):
        fast = tune_clock_tree(mismatched, iterations=8)
        slow = tune_clock_tree(mismatched, iterations=8,
                               use_incremental=False)
        assert set(fast.widths) == set(slow.widths)
        for name in fast.widths:
            assert fast.widths[name] == pytest.approx(
                slow.widths[name], rel=1e-9
            )
        assert fast.skew_after == pytest.approx(slow.skew_after, rel=1e-9)
        assert fast.iterations == slow.iterations

    def test_still_reduces_skew(self, mismatched):
        result = tune_clock_tree(mismatched)
        assert result.skew_after < result.skew_before
