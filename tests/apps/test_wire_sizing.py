"""Unit tests for continuous wire sizing."""

import numpy as np
import pytest

from repro.apps import WireSizingProblem, optimize_width, sweep_widths
from repro.errors import ReproError


@pytest.fixture(scope="module")
def problem():
    return WireSizingProblem()


class TestPhysicalModel:
    def test_resistance_thins_with_width(self, problem):
        assert problem.wire_resistance(1e-6) > problem.wire_resistance(2e-6)

    def test_capacitance_grows_with_width(self, problem):
        assert problem.wire_capacitance(2e-6) > problem.wire_capacitance(1e-6)

    def test_inductance_shrinks_with_width(self, problem):
        assert problem.wire_inductance(2e-6) < problem.wire_inductance(1e-6)

    def test_tree_totals(self, problem):
        width = 1e-6
        tree = problem.tree(width)
        # Driver section + wire sections; wire totals match the model.
        wire_r = tree.total_resistance() - problem.driver_resistance
        assert wire_r == pytest.approx(problem.wire_resistance(width))
        wire_c = tree.total_capacitance() - problem.load_capacitance - 1e-18
        assert wire_c == pytest.approx(problem.wire_capacitance(width), rel=1e-6)

    def test_rc_variant_tree_has_no_inductance(self, problem):
        assert problem.tree(1e-6, model="rc").is_rc()

    def test_width_bounds_enforced(self, problem):
        with pytest.raises(ReproError):
            problem.delay(problem.max_width * 2)

    def test_parameter_validation(self):
        with pytest.raises(ReproError):
            WireSizingProblem(length=-1.0)
        with pytest.raises(ReproError):
            WireSizingProblem(min_width=2e-6, max_width=1e-6)


class TestOptimization:
    def test_interior_optimum(self, problem):
        result = optimize_width(problem)
        assert problem.min_width * 1.5 < result.width < problem.max_width * 0.9

    def test_optimum_beats_bounds(self, problem):
        result = optimize_width(problem)
        assert result.delay < problem.delay(problem.min_width)
        assert result.delay < problem.delay(problem.max_width)

    def test_optimum_is_local_minimum(self, problem):
        result = optimize_width(problem)
        for factor in (0.9, 1.1):
            assert problem.delay(result.width * factor) >= result.delay - 1e-18

    def test_rc_and_rlc_choose_different_widths(self, problem):
        rc = optimize_width(problem, "rc")
        rlc = optimize_width(problem, "rlc")
        assert rc.width != pytest.approx(rlc.width, rel=1e-3)

    def test_result_delay_matches_problem(self, problem):
        result = optimize_width(problem)
        assert problem.delay(result.width, result.model) == pytest.approx(
            result.delay
        )

    def test_evaluation_count_reported(self, problem):
        result = optimize_width(problem)
        assert result.evaluations > 5

    def test_unknown_model_rejected(self, problem):
        with pytest.raises(ReproError):
            optimize_width(problem, "hspice")


class TestDelayCurveShape:
    def test_unimodal_over_width(self, problem):
        """The delay-vs-width curve should fall then rise (one minimum)."""
        widths = np.geomspace(problem.min_width, problem.max_width, 25)
        delays = [problem.delay(w) for w in widths]
        diffs = np.sign(np.diff(delays))
        # Sign changes from -1 to +1 at most once.
        transitions = sum(
            1 for a, b in zip(diffs, diffs[1:]) if a < 0 <= b
        )
        assert transitions <= 1


class TestSweepWidths:
    WIDTHS = np.geomspace(0.3e-6, 8e-6, 9)

    def test_serial_matches_per_width_delay(self, problem):
        delays = sweep_widths(problem, self.WIDTHS)
        expected = [problem.delay(w) for w in self.WIDTHS]
        np.testing.assert_array_equal(delays, expected)

    @pytest.mark.parametrize("model", ["rc", "rlc"])
    def test_workers_bitwise_identical(self, problem, model):
        serial = sweep_widths(problem, self.WIDTHS, model=model)
        sharded = sweep_widths(problem, self.WIDTHS, model=model, workers=2)
        np.testing.assert_array_equal(serial, sharded)

    def test_sweep_brackets_the_optimum(self, problem):
        result = optimize_width(problem)
        delays = sweep_widths(problem, self.WIDTHS, workers=2)
        assert delays.min() >= result.delay - 1e-18
        assert delays.min() <= 1.2 * result.delay

    def test_empty_grid(self, problem):
        assert sweep_widths(problem, []).shape == (0,)

    def test_unknown_model_rejected(self, problem):
        with pytest.raises(ReproError):
            sweep_widths(problem, self.WIDTHS, model="hspice")

    def test_out_of_range_width_rejected(self, problem):
        with pytest.raises(ReproError):
            sweep_widths(problem, [problem.max_width * 2], workers=2)
