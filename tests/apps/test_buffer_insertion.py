"""Unit tests for van Ginneken buffer insertion with RC/RLC delays."""

import math

import pytest

from repro.apps import Buffer, insert_buffers, wire_segment_delay
from repro.circuit import RLCTree, Section, single_line
from repro.errors import ReproError


@pytest.fixture
def buffer_cell():
    return Buffer(
        output_resistance=25.0, input_capacitance=15e-15, intrinsic_delay=15e-12
    )


@pytest.fixture
def long_line():
    """A long resistive line where buffering clearly pays off."""
    return single_line(12, resistance=120.0, inductance=1e-9, capacitance=0.4e-12)


class TestBuffer:
    def test_driving_delay_formula(self, buffer_cell):
        load = 1e-13
        expected = 15e-12 + math.log(2) * 25.0 * load
        assert buffer_cell.driving_delay(load) == pytest.approx(expected)

    def test_validation(self):
        with pytest.raises(ReproError):
            Buffer(output_resistance=0.0, input_capacitance=1e-15)
        with pytest.raises(ReproError):
            Buffer(output_resistance=10.0, input_capacitance=-1e-15)


class TestWireSegmentDelay:
    def test_rc_model_ignores_inductance(self):
        with_l = wire_segment_delay(10.0, 5e-9, 1e-13, 1e-13, "rc")
        without_l = wire_segment_delay(10.0, 0.0, 1e-13, 1e-13, "rc")
        assert with_l == without_l
        assert with_l == pytest.approx(math.log(2) * 10.0 * 2e-13)

    def test_rlc_model_sees_inductance(self):
        rc = wire_segment_delay(10.0, 0.0, 1e-13, 1e-13, "rlc")
        rlc = wire_segment_delay(10.0, 5e-9, 1e-13, 1e-13, "rlc")
        assert rlc != rc

    def test_zero_load_zero_delay(self):
        assert wire_segment_delay(10.0, 1e-9, 0.0, 0.0, "rlc") == 0.0


class TestInsertion:
    def test_buffering_improves_long_line(self, long_line, buffer_cell):
        unbuffered = insert_buffers(
            long_line, buffer_cell, model="rc", candidate_nodes=[]
        )
        buffered = insert_buffers(long_line, buffer_cell, model="rc")
        assert buffered.buffer_count > 0
        assert buffered.required_at_root > unbuffered.required_at_root

    def test_required_equals_negative_delay_for_zero_required(
        self, long_line, buffer_cell
    ):
        # With sink required = 0, -required_at_root is the path delay.
        result = insert_buffers(long_line, buffer_cell, model="rc")
        assert result.required_at_root < 0.0

    def test_no_candidates_means_no_buffers(self, long_line, buffer_cell):
        result = insert_buffers(
            long_line, buffer_cell, candidate_nodes=[]
        )
        assert result.buffer_count == 0
        assert result.root_capacitance == pytest.approx(
            long_line.total_capacitance()
        )

    def test_buffer_placements_are_tree_nodes(self, long_line, buffer_cell):
        result = insert_buffers(long_line, buffer_cell)
        assert set(result.buffer_nodes) <= set(long_line.nodes)

    def test_branching_tree(self, buffer_cell):
        tree = RLCTree()
        tree.add_section("t", "in", section=Section(80.0, 1e-9, 0.4e-12))
        for side in ("a", "b"):
            parent = "t"
            for i in range(6):
                name = f"{side}{i}"
                tree.add_section(name, parent,
                                 section=Section(80.0, 1e-9, 0.4e-12))
                parent = name
        result = insert_buffers(tree, buffer_cell)
        assert result.buffer_count > 0

    def test_sink_required_times_respected(self, buffer_cell):
        line = single_line(4, resistance=50.0, inductance=0.5e-9,
                           capacitance=0.2e-12)
        generous = insert_buffers(
            line, buffer_cell, sink_required={"n4": 1e-9}
        )
        tight = insert_buffers(line, buffer_cell, sink_required={"n4": 0.0})
        assert generous.required_at_root == pytest.approx(
            tight.required_at_root + 1e-9
        )

    def test_sink_capacitance_hurts(self, buffer_cell):
        line = single_line(4, resistance=50.0, inductance=0.5e-9,
                           capacitance=0.2e-12)
        light = insert_buffers(line, buffer_cell)
        heavy = insert_buffers(
            line, buffer_cell, sink_capacitance={"n4": 1e-12}
        )
        assert heavy.required_at_root < light.required_at_root

    def test_driver_resistance_charged(self, long_line, buffer_cell):
        free = insert_buffers(long_line, buffer_cell)
        driven = insert_buffers(long_line, buffer_cell, driver_resistance=100.0)
        assert driven.required_at_root < free.required_at_root

    def test_rc_vs_rlc_models_differ(self, buffer_cell):
        # Strong inductance: the RLC model sees less delay per segment
        # (inductive lines are faster than RC predicts at low damping).
        line = single_line(10, resistance=30.0, inductance=8e-9,
                           capacitance=0.3e-12)
        rc = insert_buffers(line, buffer_cell, model="rc")
        rlc = insert_buffers(line, buffer_cell, model="rlc")
        assert rc.required_at_root != rlc.required_at_root

    def test_validation(self, long_line, buffer_cell):
        with pytest.raises(ReproError, match="unknown delay model"):
            insert_buffers(long_line, buffer_cell, model="spice")
        with pytest.raises(ReproError, match="candidate"):
            insert_buffers(long_line, buffer_cell, candidate_nodes=["zzz"])
        with pytest.raises(ReproError):
            insert_buffers(RLCTree(), buffer_cell)


class TestOptimalityOnSmallInstance:
    def test_dp_matches_brute_force(self, buffer_cell):
        """On a 6-node line, enumerate all 2^6 placements and verify the
        DP finds the best one."""
        from itertools import combinations

        line = single_line(6, resistance=100.0, inductance=0.8e-9,
                           capacitance=0.3e-12)
        model = "rlc"

        def evaluate(placements):
            """Path delay with buffers at `placements` (set of nodes)."""
            delay = 0.0
            cap = 0.0
            for node in reversed(line.nodes):  # n6 ... n1 walking up
                if node in placements:
                    delay += buffer_cell.driving_delay(cap)
                    cap = buffer_cell.input_capacitance
                section = line.section(node)
                delay += wire_segment_delay(
                    section.resistance, section.inductance,
                    section.capacitance, cap, model,
                )
                cap += section.capacitance
            return -delay

        best = max(
            (
                evaluate(set(chosen))
                for k in range(7)
                for chosen in combinations(line.nodes, k)
            )
        )
        result = insert_buffers(line, buffer_cell, model=model)
        assert result.required_at_root == pytest.approx(best, rel=1e-12)
