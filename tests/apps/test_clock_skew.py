"""Unit tests for the clock-skew fidelity study."""

import pytest

from repro.apps import h_tree, perturbed_clock_tree, skew_report
from repro.circuit import Section
from repro.errors import ReproError


class TestHTree:
    def test_structure(self):
        tree = h_tree(levels=3)
        assert tree.size == 2 + 4 + 8
        assert len(tree.leaves()) == 8

    def test_taper_progression(self):
        tree = h_tree(levels=3, taper=2.0)
        level1 = tree.section("n1")
        level3 = tree.section(tree.leaves()[0])
        assert level3.resistance == pytest.approx(4 * level1.resistance)
        assert level3.capacitance == pytest.approx(level1.capacitance / 4)

    def test_uniform_when_taper_one(self):
        tree = h_tree(levels=3, taper=1.0)
        assert len({s for _, s in tree.sections()}) == 1

    def test_custom_trunk(self):
        trunk = Section(5.0, 2e-9, 2e-12)
        tree = h_tree(levels=2, trunk=trunk)
        assert tree.section("n1") == trunk

    def test_validation(self):
        with pytest.raises(ReproError):
            h_tree(levels=0)
        with pytest.raises(ReproError):
            h_tree(levels=2, taper=-1.0)


class TestPerturbation:
    def test_deterministic_per_seed(self):
        base = h_tree(levels=3)
        a = perturbed_clock_tree(base, 0.1, seed=5)
        b = perturbed_clock_tree(base, 0.1, seed=5)
        assert all(a.section(n) == b.section(n) for n in a.nodes)

    def test_seeds_differ(self):
        base = h_tree(levels=3)
        a = perturbed_clock_tree(base, 0.1, seed=1)
        b = perturbed_clock_tree(base, 0.1, seed=2)
        assert any(a.section(n) != b.section(n) for n in a.nodes)

    def test_zero_spread_is_identity(self):
        base = h_tree(levels=2)
        same = perturbed_clock_tree(base, 0.0, seed=0)
        for node in base.nodes:
            assert same.section(node).resistance == pytest.approx(
                base.section(node).resistance
            )

    def test_negative_spread_rejected(self):
        with pytest.raises(ReproError):
            perturbed_clock_tree(h_tree(2), -0.1)


class TestSkewReport:
    @pytest.fixture(scope="class")
    def report(self):
        tree = perturbed_clock_tree(h_tree(levels=3), 0.12, seed=3)
        return skew_report(tree)

    def test_balanced_tree_zero_skew(self):
        report = skew_report(h_tree(levels=3))
        assert report.exact_skew == pytest.approx(0.0, abs=1e-14)
        assert report.rlc_skew == pytest.approx(0.0, abs=1e-14)
        assert report.rc_skew == pytest.approx(0.0, abs=1e-14)

    def test_perturbed_tree_nonzero_skew(self, report):
        assert report.exact_skew > 0
        assert report.rlc_skew > 0
        assert report.rc_skew > 0

    def test_rows_cover_all_sinks(self, report):
        rows = report.rows()
        assert len(rows) == len(report.sinks)
        for sink, exact, rlc, rc in rows:
            assert exact > 0 and rlc > 0 and rc > 0

    def test_rlc_correlates_better_on_inductive_tree(self, report):
        """The headline fidelity result: on an inductance-dominated
        clock tree the RLC equivalent delay ranks sinks like the exact
        simulation; the RC Elmore delay ranks them worse."""
        assert report.rlc_rank_correlation > 0.7
        assert report.rlc_rank_correlation > report.rc_rank_correlation

    def test_rlc_skew_closer_to_exact_on_average(self):
        """Any single perturbation seed is noisy; averaged over seeds the
        RLC model's skew estimate must beat the RC Elmore one."""
        rlc_gaps, rc_gaps = [], []
        for seed in range(5):
            rep = skew_report(
                perturbed_clock_tree(h_tree(levels=3), 0.12, seed=seed)
            )
            rlc_gaps.append(abs(rep.rlc_skew - rep.exact_skew))
            rc_gaps.append(abs(rep.rc_skew - rep.exact_skew))
        assert sum(rlc_gaps) < sum(rc_gaps)

    def test_delays_in_physical_range(self, report):
        for sink in report.sinks:
            assert 0 < report.exact_delays[sink] < 1e-6
