"""TimingTable vs the scalar analyzer, and fast-path eligibility."""

import math

import numpy as np
import pytest

from repro.analysis import TreeAnalyzer
from repro.circuit import fig5_tree, single_line
from repro.engine import (
    clear_topology_cache,
    compile_tree,
    evaluate,
    fast_path_eligible,
    timing_table,
)
from repro.errors import ReductionError, TopologyError
from repro.robustness.faults import _bypass

METRICS = (
    "t_rc",
    "t_lc",
    "zeta",
    "omega_n",
    "delay_50",
    "rise_time",
    "overshoot",
    "settling",
)


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_topology_cache()
    yield
    clear_topology_cache()


def rel_err(a, b):
    if a == b:
        return 0.0
    return abs(a - b) / max(abs(a), abs(b))


class TestTableMatchesScalar:
    def test_every_metric_every_node(self, fig5, random_rlc, rc_line, line3):
        for tree in (fig5, random_rlc, rc_line, line3):
            table = timing_table(tree)
            scalar = TreeAnalyzer(tree, use_engine=False)
            for node in tree.nodes:
                timing = scalar.timing(node)
                for metric in METRICS:
                    got = table.value(metric, node)
                    want = getattr(timing, metric)
                    if math.isinf(want):
                        assert math.isinf(got)
                    else:
                        assert rel_err(got, want) <= 1e-12, (node, metric)

    def test_settling_time_alias(self, fig5):
        table = timing_table(fig5)
        assert table.value("settling_time", "n7") == table.value(
            "settling", "n7"
        )

    def test_column_attribute_access(self, fig5):
        table = timing_table(fig5)
        assert np.array_equal(table.delay_50, table.column("delay_50"))
        assert table.delay_50.shape == (fig5.size,)

    def test_elmore_delay_column(self, fig5):
        table = timing_table(fig5)
        scalar = TreeAnalyzer(fig5, use_engine=False)
        for i, node in enumerate(table.names):
            assert rel_err(
                float(table.metrics.elmore_delay[i]), scalar.elmore_delay(node)
            ) <= 1e-12

    def test_unknown_metric_rejected(self, fig5):
        with pytest.raises(ReductionError):
            timing_table(fig5).column("slew")

    def test_unknown_node_rejected(self, fig5):
        with pytest.raises(TopologyError):
            timing_table(fig5).value("delay_50", "zzz")

    def test_timings_match_report(self, fig5):
        table = timing_table(fig5)
        scalar = TreeAnalyzer(fig5, use_engine=False)
        rows = table.timings()
        assert [row.node for row in rows] == list(fig5.nodes)
        for row, want in zip(rows, scalar.report()):
            assert rel_err(row.delay_50, want.delay_50) <= 1e-12

    def test_settle_band_respected(self, fig5):
        loose = timing_table(fig5, settle_band=0.4)
        tight = timing_table(fig5, settle_band=0.02)
        assert np.all(loose.settling <= tight.settling)


class TestEligibility:
    def test_nan_resistance_disables_fast_path(self, fig5):
        bad = fig5.map_sections(
            lambda name, s: _bypass(s, resistance=float("nan"))
            if name == "n3"
            else s
        )
        assert timing_table(bad) is None

    def test_eligibility_predicate(self):
        assert fast_path_eligible(np.array([1.0, 2.0]), np.array([0.0, 1.0]))
        assert not fast_path_eligible(np.array([1.0]), np.array([-1.0]))
        assert not fast_path_eligible(np.array([0.0]), np.array([1.0]))
        assert not fast_path_eligible(np.array([np.nan]), np.array([1.0]))

    def test_evaluate_skips_domain_checks(self, fig5):
        table = evaluate(compile_tree(fig5))
        assert np.all(np.isfinite(table.delay_50))


class TestAnalyzerIntegration:
    def test_fast_path_engaged_on_clean_tree(self, fig5):
        analyzer = TreeAnalyzer(fig5)
        assert analyzer.timing_table() is not None

    def test_use_engine_false_disables(self, fig5):
        analyzer = TreeAnalyzer(fig5, use_engine=False)
        assert analyzer.timing_table() is None

    def test_accessors_read_the_table(self, fig5):
        analyzer = TreeAnalyzer(fig5)
        table = analyzer.timing_table()
        for node in fig5.nodes:
            assert analyzer.delay_50(node) == table.value("delay_50", node)
            assert analyzer.zeta(node) == table.value("zeta", node)
            assert analyzer.settling_time(node) == table.value(
                "settling", node
            )

    def test_engine_vs_scalar_analyzer(self, random_rlc):
        fast = TreeAnalyzer(random_rlc)
        slow = TreeAnalyzer(random_rlc, use_engine=False)
        for node in random_rlc.nodes:
            a, b = fast.timing(node), slow.timing(node)
            for metric in METRICS:
                assert rel_err(getattr(a, metric), getattr(b, metric)) <= 1e-12

    def test_report_all_matches_report(self, fig5):
        analyzer = TreeAnalyzer(fig5)
        assert analyzer.report_all() == analyzer.report()

    def test_rc_limit_semantics_preserved(self, rc_line):
        analyzer = TreeAnalyzer(rc_line)
        assert analyzer.timing_table() is not None
        timing = analyzer.timing("n5")
        assert timing.zeta == math.inf
        assert timing.omega_n == math.inf
        assert timing.overshoot == 0.0
        assert timing.delay_50 == pytest.approx(
            math.log(2.0) * timing.t_rc, rel=1e-12
        )

    def test_unknown_node_raises_on_fast_path(self, fig5):
        with pytest.raises(TopologyError):
            TreeAnalyzer(fig5).timing("zzz")

    def test_single_section_tree(self):
        tree = single_line(
            1, resistance=10.0, inductance=2e-9, capacitance=0.2e-12
        )
        fast = TreeAnalyzer(tree)
        slow = TreeAnalyzer(tree, use_engine=False)
        assert fast.timing("n1").delay_50 == pytest.approx(
            slow.timing("n1").delay_50, rel=1e-12
        )
