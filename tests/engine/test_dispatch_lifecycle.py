"""Deterministic lifecycles of the dispatch layer's process resources.

The pool and the shared-memory blocks both follow the same rule: scope
them with a context manager for deterministic teardown, with the
``atexit`` hook only as a last-resort fallback. These tests exercise the
context-manager paths — creation, reuse, teardown on success and on
error, and idempotent close — without relying on interpreter exit.
"""

import numpy as np
import pytest

from repro.circuit import fig5_tree, random_tree
from repro.engine import analyze_many, dispatch_pool
from repro.engine.dispatch import (
    SharedBlock,
    _live_blocks,
    pool_size,
    shared_memory_available,
    shutdown_pool,
)
from repro.errors import ReproError

pytestmark = pytest.mark.skipif(
    not shared_memory_available(), reason="no shared memory on platform"
)


@pytest.fixture(autouse=True)
def no_leaked_pool():
    shutdown_pool()
    yield
    shutdown_pool()


class TestDispatchPoolScope:
    def test_pool_lives_only_inside_block(self):
        assert pool_size() == 0
        with dispatch_pool(2):
            assert pool_size() == 2
        assert pool_size() == 0

    def test_teardown_happens_on_error(self):
        with pytest.raises(RuntimeError, match="boom"):
            with dispatch_pool(2):
                assert pool_size() == 2
                raise RuntimeError("boom")
        assert pool_size() == 0

    def test_too_few_workers_rejected(self):
        with pytest.raises(ReproError):
            with dispatch_pool(1):
                pass  # pragma: no cover - never entered

    def test_dispatch_inside_scope_reuses_pool(self):
        from numpy.random import default_rng

        trees = [fig5_tree(), random_tree(10, default_rng(0))]
        with dispatch_pool(2) as pool:
            outcomes = analyze_many(trees, workers=2)
            assert pool_size() == 2
            # Same pool object is still the live one after dispatching.
            from repro.engine.dispatch import get_pool

            assert get_pool(2) is pool
        assert pool_size() == 0
        from repro.engine import TimingTable

        assert len(outcomes) == len(trees)
        assert all(isinstance(o, TimingTable) for o in outcomes)


class TestSharedBlockScope:
    def test_context_manager_closes_and_unregisters(self):
        data = np.arange(12.0).reshape(3, 4)
        with SharedBlock(data) as block:
            assert block in _live_blocks
            assert block.ref.shape == (3, 4)
        assert block not in _live_blocks
        # The segment is gone: attaching by name must fail.
        from multiprocessing import shared_memory

        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=block.ref.name)

    def test_close_is_idempotent(self):
        block = SharedBlock(np.ones(4))
        block.close()
        block.close()
        assert block not in _live_blocks

    def test_block_copies_data(self):
        from repro.engine.dispatch import _attach_block

        data = np.array([1.0, 2.0, 3.0])
        with SharedBlock(data) as block:
            data[0] = 99.0  # mutating the source is invisible
            segment, view = _attach_block(block.ref)
            try:
                assert view.tolist() == [1.0, 2.0, 3.0]
            finally:
                segment.close()

    def test_exception_inside_block_still_cleans_up(self):
        with pytest.raises(ValueError, match="inner"):
            with SharedBlock(np.zeros(2)) as block:
                raise ValueError("inner")
        assert block not in _live_blocks
