"""Deterministic lifecycles of the dispatch layer's process resources.

The pool and the shared-memory blocks both follow the same rule: scope
them with a context manager for deterministic teardown, with the
``atexit`` hook only as a last-resort fallback. These tests exercise the
context-manager paths — creation, reuse, teardown on success and on
error, and idempotent close — without relying on interpreter exit.
"""

import numpy as np
import pytest

from repro.circuit import fig5_tree, random_tree
from repro.engine import analyze_many, dispatch_pool
from repro.engine.dispatch import (
    SharedBlock,
    _arenas,
    _atexit_cleanup,
    _live_blocks,
    arena_info,
    dispatch_telemetry,
    get_arena,
    get_pool,
    pool_generation,
    pool_size,
    rebuild_pool,
    release_arenas,
    shared_memory_available,
    shutdown_pool,
    worker_cache_infos,
)
from repro.errors import ReproError

pytestmark = pytest.mark.skipif(
    not shared_memory_available(), reason="no shared memory on platform"
)


@pytest.fixture(autouse=True)
def no_leaked_pool():
    shutdown_pool()
    release_arenas()
    yield
    shutdown_pool()
    release_arenas()


class TestDispatchPoolScope:
    def test_pool_lives_only_inside_block(self):
        assert pool_size() == 0
        with dispatch_pool(2):
            assert pool_size() == 2
        assert pool_size() == 0

    def test_teardown_happens_on_error(self):
        with pytest.raises(RuntimeError, match="boom"):
            with dispatch_pool(2):
                assert pool_size() == 2
                raise RuntimeError("boom")
        assert pool_size() == 0

    def test_too_few_workers_rejected(self):
        with pytest.raises(ReproError):
            with dispatch_pool(1):
                pass  # pragma: no cover - never entered

    def test_dispatch_inside_scope_reuses_pool(self):
        from numpy.random import default_rng

        trees = [fig5_tree(), random_tree(10, default_rng(0))]
        with dispatch_pool(2) as pool:
            outcomes = analyze_many(trees, workers=2)
            assert pool_size() == 2
            # Same pool object is still the live one after dispatching.
            from repro.engine.dispatch import get_pool

            assert get_pool(2) is pool
        assert pool_size() == 0
        from repro.engine import TimingTable

        assert len(outcomes) == len(trees)
        assert all(isinstance(o, TimingTable) for o in outcomes)


class TestSharedBlockScope:
    def test_context_manager_closes_and_unregisters(self):
        data = np.arange(12.0).reshape(3, 4)
        with SharedBlock(data) as block:
            assert block in _live_blocks
            assert block.ref.shape == (3, 4)
        assert block not in _live_blocks
        # The segment is gone: attaching by name must fail.
        from multiprocessing import shared_memory

        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=block.ref.name)

    def test_close_is_idempotent(self):
        block = SharedBlock(np.ones(4))
        block.close()
        block.close()
        assert block not in _live_blocks

    def test_block_copies_data(self):
        from repro.engine.dispatch import _attach_block

        data = np.array([1.0, 2.0, 3.0])
        with SharedBlock(data) as block:
            data[0] = 99.0  # mutating the source is invisible
            segment, view = _attach_block(block.ref)
            try:
                assert view.tolist() == [1.0, 2.0, 3.0]
            finally:
                segment.close()

    def test_exception_inside_block_still_cleans_up(self):
        with pytest.raises(ValueError, match="inner"):
            with SharedBlock(np.zeros(2)) as block:
                raise ValueError("inner")
        assert block not in _live_blocks


class TestSupervisedLifecycle:
    """Edge cases introduced by pool rebuilds and supervision."""

    def test_nested_dispatch_pool_reuses_and_defers_teardown(self):
        # The inner scope must not tear down the pool the outer scope
        # still owns; only the outermost exit shuts it down.
        with dispatch_pool(2) as outer:
            with dispatch_pool(2) as inner:
                assert inner is outer
                assert pool_size() == 2
            assert pool_size() == 2  # inner exit is a no-op
        assert pool_size() == 0

    def test_get_pool_after_rebuild_returns_fresh_executor(self):
        first = get_pool(2)
        generation = pool_generation()
        rebuilt = rebuild_pool()
        assert rebuilt is not None
        assert rebuilt is not first
        assert pool_generation() == generation + 1
        assert get_pool(2) is rebuilt  # cached, no second rebuild
        assert pool_size() == 2

    def test_rebuild_without_pool_is_a_no_op(self):
        assert pool_size() == 0
        generation = pool_generation()
        assert rebuild_pool() is None
        assert pool_generation() == generation

    def test_shutdown_pool_is_idempotent(self):
        get_pool(2)
        shutdown_pool()
        shutdown_pool()  # second call: nothing to do, must not raise
        assert pool_size() == 0

    def test_worker_cache_infos_on_half_dead_pool(self):
        import os
        import signal

        pool = get_pool(2)
        # Force workers to spawn, then kill one out from under the pool.
        infos = worker_cache_infos(timeout=15.0)
        assert infos  # healthy baseline: every worker answered
        victim = next(iter(pool._processes.values()))
        os.kill(victim.pid, signal.SIGKILL)
        # The probe must return (possibly partial), never hang or raise.
        infos = worker_cache_infos(timeout=5.0)
        assert isinstance(infos, dict)
        assert victim.pid not in infos

    def test_shared_block_survives_pool_rebuild(self):
        # Blocks are parent-owned; a rebuild must not unlink them.
        from multiprocessing import shared_memory

        with SharedBlock(np.arange(6.0)) as block:
            get_pool(2)
            rebuild_pool()
            attached = shared_memory.SharedMemory(name=block.ref.name)
            attached.close()
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=block.ref.name)

    def test_atexit_cleanup_unlinks_blocks_by_name(self):
        from multiprocessing import shared_memory

        block = SharedBlock(np.zeros(3))
        name = block.ref.name
        get_pool(2)
        _atexit_cleanup()
        assert pool_size() == 0
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)

    def test_atexit_cleanup_survives_a_poisoned_block(self):
        from multiprocessing import shared_memory

        bad = SharedBlock(np.zeros(2))
        bad.close()
        _live_blocks.add(bad)  # simulate a block whose close() will fail
        good = SharedBlock(np.zeros(2))
        name = good.ref.name
        _atexit_cleanup()  # must not propagate the double-close
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)


class TestArenaLifecycle:
    """The persistent, parent-owned, grow-only shared-memory arenas."""

    def test_begin_within_capacity_reuses_the_segment(self):
        arena = get_arena("test-reuse")
        arena.begin(1024)
        name, generation = arena.name, arena.generation
        hits = dispatch_telemetry()["arena_hits"]
        arena.begin(512)  # fits: same segment, no re-map
        assert arena.name == name
        assert arena.generation == generation
        assert dispatch_telemetry()["arena_hits"] == hits + 1

    def test_growth_replaces_segment_and_unlinks_the_old_one(self):
        from multiprocessing import shared_memory

        arena = get_arena("test-grow")
        arena.begin(1024)
        old_name, old_generation = arena.name, arena.generation
        arena.begin(10 * arena.capacity)
        assert arena.generation == old_generation + 1
        assert arena.name != old_name
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=old_name)

    def test_growth_is_at_least_geometric(self):
        # Growing by one byte at a time must not re-map per call.
        arena = get_arena("test-geometric")
        arena.begin(4096)
        first = arena.capacity
        arena.begin(first + 1)
        assert arena.capacity >= 2 * first

    def test_allocate_hands_out_disjoint_views(self):
        arena = get_arena("test-alloc")
        arena.begin(8 * (6 + 8))
        first_host, first_view = arena.allocate((2, 3))
        second_host, second_view = arena.allocate((8,))
        first_host[:] = 1.0
        second_host[:] = 2.0
        assert first_host.tolist() == [[1.0] * 3] * 2
        assert second_view.offset >= first_view.offset + first_view.nbytes

    def test_allocate_beyond_reservation_raises(self):
        arena = get_arena("test-overflow")
        arena.begin(64)
        with pytest.raises(ReproError):
            arena.allocate((1000, 1000))

    def test_release_arenas_unlinks_everything(self):
        from multiprocessing import shared_memory

        arena = get_arena("test-release")
        arena.begin(256)
        name = arena.name
        release_arenas()
        assert arena_info() == {}
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)

    def test_sharded_batch_populates_and_reuses_the_batch_arena(self):
        from repro.engine import analyze_batch
        from repro.engine.compiled import compile_tree
        from repro.engine.sharded import analyze_batch_sharded

        ct = compile_tree(fig5_tree())
        rng = np.random.default_rng(7)
        rlc = rng.uniform(0.5, 2.0, size=(64, 3, ct.size))
        serial = analyze_batch(ct, rlc)
        with dispatch_pool(2):
            before = dispatch_telemetry()
            first = analyze_batch_sharded(ct, rlc, shards=2, workers=2)
            second = analyze_batch_sharded(ct, rlc, shards=2, workers=2)
            after = dispatch_telemetry()
        assert "batch" in arena_info()
        # Second call reuses the first call's segment.
        assert after["arena_hits"] > before["arena_hits"]
        # Results travel through the arena, not the pickle channel.
        assert after["bytes_returned"] == before["bytes_returned"]
        assert after["bytes_shipped"] > before["bytes_shipped"]
        for name in ("t_rc", "delay_50", "settling"):
            expected = getattr(serial.metrics, name)
            for timing in (first, second):
                got = getattr(timing.metrics, name)
                assert np.array_equal(got, expected, equal_nan=True)

    def test_arena_results_survive_pool_rebuild(self):
        # Workers attach by segment name; a fresh pool generation must
        # still read the parent's current arena and produce identical
        # results.
        from repro.engine import analyze_batch
        from repro.engine.compiled import compile_tree
        from repro.engine.sharded import analyze_batch_sharded

        ct = compile_tree(fig5_tree())
        rng = np.random.default_rng(11)
        rlc = rng.uniform(0.5, 2.0, size=(32, 3, ct.size))
        serial = analyze_batch(ct, rlc)
        with dispatch_pool(2):
            analyze_batch_sharded(ct, rlc, shards=2, workers=2)
            generation = pool_generation()
            rebuild_pool()
            assert pool_generation() == generation + 1
            again = analyze_batch_sharded(ct, rlc, shards=2, workers=2)
        assert np.array_equal(
            again.metrics.delay_50, serial.metrics.delay_50, equal_nan=True
        )

    def test_arena_grows_across_calls_without_stale_reads(self):
        # A bigger second batch forces growth (new segment name);
        # workers must follow the rename, not read the dead segment.
        from repro.engine import analyze_batch
        from repro.engine.compiled import compile_tree
        from repro.engine.sharded import analyze_batch_sharded

        ct = compile_tree(fig5_tree())
        rng = np.random.default_rng(13)
        small = rng.uniform(0.5, 2.0, size=(8, 3, ct.size))
        big = rng.uniform(0.5, 2.0, size=(512, 3, ct.size))
        with dispatch_pool(2):
            analyze_batch_sharded(ct, small, shards=2, workers=2)
            first_generation = arena_info()["batch"]["generation"]
            sharded = analyze_batch_sharded(ct, big, shards=2, workers=2)
            assert arena_info()["batch"]["generation"] > first_generation
        serial = analyze_batch(ct, big)
        assert np.array_equal(
            sharded.metrics.rise_time,
            serial.metrics.rise_time,
            equal_nan=True,
        )

    def test_atexit_cleanup_releases_arenas(self):
        from multiprocessing import shared_memory

        arena = get_arena("test-atexit")
        arena.begin(128)
        name = arena.name
        _atexit_cleanup()
        assert not _arenas
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)
