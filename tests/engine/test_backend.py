"""The pluggable array-backend seam under the compiled kernels.

Two contracts are pinned here:

1. **Bitwise identity on NumPy** — the NumPy backend's methods are the
   literal pre-seam operations, so every kernel routed through the seam
   produces bit-for-bit the arrays the engine produced before the seam
   existed.
2. **Correct fallbacks for non-NumPy backends** — a fake "device"
   backend (no accelerator needed) exercises the base-class portable
   paths: host round-trip ``add_reduceat``, the scatter-free level
   sweeps, and the ingest/emit transfers — all bitwise identical to the
   NumPy reference, because the fallback *is* the reference computation
   plus lossless float64 transfers.
"""

import numpy as np
import pytest

from repro.circuit import balanced_tree, fig5_tree, random_tree
from repro.engine import analyze_batch, compile_tree, evaluate
from repro.engine.backend import (
    ARRAY_BACKEND_NAMES,
    ArrayBackend,
    NumpyBackend,
    active_array_backend,
    available_array_backends,
    detect_array_backend,
    get_array_backend,
    register_array_backend,
    set_array_backend,
    use_array_backend,
)
from repro.engine.kernels import METRIC_NAMES, metrics_from_sums
from repro.errors import ConfigurationError


class FakeDeviceBackend(ArrayBackend):
    """A 'device' that is NumPy underneath but hides every shortcut.

    ``supports_scatter = False`` forces the level sweeps onto the
    host-NumPy fallback path, and the inherited base-class methods
    exercise the portable ``add_reduceat`` round-trip and the
    ``nullcontext`` errstate — the exact code a real accelerator
    backend without those natives would run.
    """

    name = "fake-device"
    xp = np
    supports_scatter = False

    def __init__(self):
        self.asarray_calls = 0

    def asarray(self, array):
        self.asarray_calls += 1
        return np.asarray(array, dtype=np.float64)


register_array_backend("fake-device", FakeDeviceBackend, replace=True)


@pytest.fixture(autouse=True)
def numpy_active():
    """Every test starts and ends on the NumPy backend."""
    set_array_backend("numpy")
    yield
    set_array_backend("numpy")


@pytest.fixture
def batch_inputs():
    ct = compile_tree(fig5_tree())
    rng = np.random.default_rng(42)
    rlc = rng.uniform(0.5, 2.0, size=(40, 3, ct.size))
    return ct, rlc


class TestNumpyBackendIsTheReference:
    """The default backend's ops are literally the pre-seam NumPy calls."""

    def test_asarray_is_identity_on_float64(self):
        ops = get_array_backend("numpy")
        x = np.array([1.0, 2.0, 3.0])
        assert ops.asarray(x) is x
        assert ops.to_numpy(x) is x

    def test_add_reduceat_matches_numpy(self):
        ops = get_array_backend("numpy")
        rng = np.random.default_rng(0)
        data = rng.normal(size=(4, 9))
        starts = np.array([0, 3, 5], dtype=np.intp)
        expected = np.add.reduceat(data, starts, axis=-1)
        assert np.array_equal(ops.add_reduceat(data, starts, axis=-1), expected)

    def test_errstate_silences_invalid_lanes(self):
        ops = get_array_backend("numpy")
        with ops.errstate():
            out = np.sqrt(np.array([-1.0]))  # must not warn/raise
        assert np.isnan(out[0])

    def test_is_numpy_flag(self):
        assert get_array_backend("numpy").is_numpy
        assert NumpyBackend().supports_scatter


class TestFakeDeviceFallbacks:
    """The base-class portable paths, pinned bitwise against NumPy."""

    def test_base_add_reduceat_round_trip_is_bitwise(self):
        fake = get_array_backend("fake-device")
        rng = np.random.default_rng(1)
        data = rng.normal(size=(3, 12))
        starts = np.array([0, 4, 7, 11], dtype=np.intp)
        expected = np.add.reduceat(data, starts, axis=-1)
        assert np.array_equal(fake.add_reduceat(data, starts, -1), expected)

    def test_metrics_from_sums_identical_through_fake_backend(self):
        rng = np.random.default_rng(2)
        t_rc = rng.uniform(1e-12, 1e-9, size=(5, 8))
        t_lc = rng.uniform(1e-24, 1e-19, size=(5, 8))
        t_lc[0, 0] = 0.0  # one RC-limit lane
        reference = metrics_from_sums(t_rc, t_lc)
        with np.errstate(all="ignore"):
            with use_array_backend("fake-device"):
                routed = metrics_from_sums(t_rc, t_lc)
        for name in METRIC_NAMES:
            assert np.array_equal(
                getattr(routed, name), getattr(reference, name), equal_nan=True
            ), name

    def test_level_sweeps_identical_without_scatter(self):
        # Branching topology: accumulate/descend take the level-group
        # path, which must run on host NumPy for scatter-free backends.
        ct = compile_tree(
            balanced_tree(3, resistance=5.0, inductance=2e-9,
                          capacitance=3e-13)
        )
        reference = evaluate(ct)
        with np.errstate(all="ignore"):
            with use_array_backend("fake-device"):
                routed = evaluate(ct)
        for name in METRIC_NAMES:
            assert np.array_equal(
                getattr(routed.metrics, name),
                getattr(reference.metrics, name),
                equal_nan=True,
            ), name

    def test_batch_identical_through_fake_backend(self, batch_inputs):
        ct, rlc = batch_inputs
        reference = analyze_batch(ct, rlc)
        with np.errstate(all="ignore"):
            with use_array_backend("fake-device"):
                routed = analyze_batch(ct, rlc)
        for name in METRIC_NAMES:
            assert np.array_equal(
                getattr(routed.metrics, name),
                getattr(reference.metrics, name),
                equal_nan=True,
            ), name
        # The transfers actually ran through the backend's ingest hook.
        assert get_array_backend("fake-device").asarray_calls > 0

    def test_random_trees_identical_through_fake_backend(self):
        for seed in range(4):
            tree = random_tree(15, np.random.default_rng(seed))
            ct = compile_tree(tree)
            reference = evaluate(ct)
            with np.errstate(all="ignore"):
                with use_array_backend("fake-device"):
                    routed = evaluate(ct)
            assert np.array_equal(
                routed.metrics.delay_50,
                reference.metrics.delay_50,
                equal_nan=True,
            )


class TestRegistryAndDetection:
    def test_numpy_always_available(self):
        availability = available_array_backends()
        assert availability["numpy"] is True
        # The accelerator entries exist whether or not the libraries do.
        for name in ARRAY_BACKEND_NAMES:
            assert name in availability

    def test_auto_detects_without_raising(self):
        backend = detect_array_backend()
        assert isinstance(backend, ArrayBackend)
        # On a CPU-only box with no accelerator libraries this must be
        # the NumPy floor; with one installed, anything registered is
        # acceptable.
        if not availability_beyond_numpy():
            assert backend.name == "numpy"

    def test_get_auto_equals_detect(self):
        assert get_array_backend("auto").name == detect_array_backend().name

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown array backend"):
            get_array_backend("tpu")

    def test_unusable_backend_rejected_with_reason(self):
        availability = available_array_backends()
        unusable = [name for name, ok in availability.items() if not ok]
        if not unusable:  # pragma: no cover - accelerator-equipped box
            pytest.skip("every registered backend is available here")
        with pytest.raises(ConfigurationError, match="not usable"):
            get_array_backend(unusable[0])

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigurationError, match="already registered"):
            register_array_backend("fake-device", FakeDeviceBackend)

    def test_replace_and_instance_reset(self):
        register_array_backend("fake-device", FakeDeviceBackend, replace=True)
        fresh = get_array_backend("fake-device")
        assert fresh.asarray_calls == 0

    def test_empty_name_rejected(self):
        with pytest.raises(ConfigurationError, match="non-empty"):
            register_array_backend("", FakeDeviceBackend)


class TestActiveBackendScoping:
    def test_use_scopes_and_restores(self):
        assert active_array_backend().name == "numpy"
        with use_array_backend("fake-device") as ops:
            assert ops.name == "fake-device"
            assert active_array_backend() is ops
        assert active_array_backend().name == "numpy"

    def test_use_none_is_a_no_op(self):
        before = active_array_backend()
        with use_array_backend(None) as ops:
            assert ops is before
        assert active_array_backend() is before

    def test_restores_on_exception(self):
        with pytest.raises(RuntimeError, match="boom"):
            with use_array_backend("fake-device"):
                raise RuntimeError("boom")
        assert active_array_backend().name == "numpy"

    def test_set_switches_globally(self):
        set_array_backend("fake-device")
        assert active_array_backend().name == "fake-device"
        set_array_backend("numpy")
        assert active_array_backend().name == "numpy"

    def test_accepts_instances(self):
        instance = get_array_backend("fake-device")
        assert get_array_backend(instance) is instance
        with use_array_backend(instance):
            assert active_array_backend() is instance


def availability_beyond_numpy() -> bool:
    """True when a real accelerator backend is importable here."""
    availability = available_array_backends()
    return any(
        availability.get(name, False) for name in ("cupy", "mlx")
    )
