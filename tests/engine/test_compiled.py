"""Tree flattening: structure arrays, sweeps, and the topology cache."""

import numpy as np
import pytest

from repro.analysis.moments import (
    capacitive_loads,
    exact_moments,
    second_order_sums,
    weighted_path_sums,
)
from repro.circuit import RLCTree, Section, fig5_tree, random_tree
from repro.engine import (
    CompiledTopology,
    CompiledTree,
    clear_topology_cache,
    compile_tree,
    topology_cache_info,
    topology_fingerprint,
)
from repro.errors import ReductionError, TopologyError


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_topology_cache()
    yield
    clear_topology_cache()


def as_dict(compiled, values):
    return dict(zip(compiled.names, np.asarray(values).tolist()))


class TestTopologyArrays:
    def test_names_follow_tree_order(self, fig5):
        compiled = compile_tree(fig5)
        assert compiled.names == fig5.nodes

    def test_parent_slots(self, fig5):
        compiled = compile_tree(fig5)
        topo = compiled.topology
        n = topo.size
        for i, name in enumerate(topo.names):
            parent = fig5.parent(name)
            expected = n if parent == fig5.root else topo.index[parent]
            assert topo.parent[i] == expected

    def test_children_match_tree(self, fig5):
        topo = compile_tree(fig5).topology
        for i, name in enumerate(topo.names):
            children = [topo.names[j] for j in topo.children(i)]
            assert children == list(fig5.children(name))
        roots = [topo.names[j] for j in topo.children(topo.size)]
        assert roots == list(fig5.children(fig5.root))

    def test_unknown_node_raises(self, fig5):
        topo = compile_tree(fig5).topology
        with pytest.raises(TopologyError):
            topo.node_index("zzz")

    def test_value_vector_shape_checked(self, fig5):
        compiled = compile_tree(fig5)
        with pytest.raises(ReductionError):
            compiled.with_values(np.ones(3), np.ones(3), np.ones(3))


class TestSweepsMatchDicts:
    def test_capacitive_loads(self, fig5, random_rlc):
        for tree in (fig5, random_rlc):
            compiled = compile_tree(tree)
            expected = capacitive_loads(tree)
            got = as_dict(compiled, compiled.capacitive_loads())
            assert got == pytest.approx(expected, rel=1e-12)

    def test_second_order_sums(self, fig5, random_rlc, rc_line):
        for tree in (fig5, random_rlc, rc_line):
            compiled = compile_tree(tree)
            t_rc, t_lc = second_order_sums(tree)
            got_rc, got_lc = compiled.second_order_sums()
            assert as_dict(compiled, got_rc) == pytest.approx(t_rc, rel=1e-12)
            assert as_dict(compiled, got_lc) == pytest.approx(t_lc, rel=1e-12)

    def test_weighted_path_sums(self, random_rlc):
        compiled = compile_tree(random_rlc)
        rng = np.random.default_rng(3)
        w_r = {name: rng.uniform(0.1, 2.0) for name in random_rlc.nodes}
        w_l = {name: rng.uniform(0.1, 2.0) for name in random_rlc.nodes}
        expected = weighted_path_sums(random_rlc, w_r, w_l)
        got = compiled.weighted_path_sums(
            np.array([w_r[n] for n in compiled.names]),
            np.array([w_l[n] for n in compiled.names]),
        )
        assert as_dict(compiled, got) == pytest.approx(expected, rel=1e-12)

    def test_exact_moments(self, fig5, random_rlc):
        for tree in (fig5, random_rlc):
            compiled = compile_tree(tree)
            expected = exact_moments(tree, 4)
            got = compiled.exact_moments(4)
            assert got.shape == (5, tree.size)
            for i, name in enumerate(compiled.names):
                assert got[:, i].tolist() == pytest.approx(
                    expected[name], rel=1e-12
                )

    def test_negative_moment_order_rejected(self, fig5):
        with pytest.raises(ReductionError):
            compile_tree(fig5).exact_moments(-1)

    def test_batch_dims_match_per_scenario(self, random_rlc):
        compiled = compile_tree(random_rlc)
        rng = np.random.default_rng(5)
        weights = rng.uniform(0.5, 1.5, size=(4, compiled.size))
        stacked = compiled.topology.accumulate(weights)
        for s in range(4):
            single = compiled.topology.accumulate(weights[s])
            assert np.allclose(stacked[s], single, rtol=1e-15, atol=0.0)


class TestTopologyCache:
    def test_hit_on_value_perturbation(self, fig5):
        compile_tree(fig5)
        perturbed = fig5.map_sections(
            lambda name, s: Section(
                s.resistance * 1.1, s.inductance * 0.9, s.capacitance * 1.2
            )
        )
        compile_tree(perturbed)
        info = topology_cache_info()
        assert info["misses"] == 1
        assert info["hits"] == 1

    def test_hit_serves_fresh_values(self, fig5):
        first = compile_tree(fig5)
        perturbed = fig5.map_sections(
            lambda name, s: Section(
                s.resistance * 2.0, s.inductance, s.capacitance
            )
        )
        second = compile_tree(perturbed)
        assert second.topology is first.topology
        assert np.array_equal(second.resistance, 2.0 * first.resistance)

    def test_replace_section_values_picked_up(self, fig5):
        compile_tree(fig5)
        fig5.replace_section("n3", Section(99.0, 1e-9, 2e-12))
        compiled = compile_tree(fig5)
        i = compiled.topology.node_index("n3")
        assert compiled.resistance[i] == 99.0

    def test_different_topology_misses(self, fig5, line3):
        compile_tree(fig5)
        compile_tree(line3)
        assert topology_cache_info()["misses"] == 2

    def test_fingerprint_excludes_values(self, fig5):
        perturbed = fig5.map_sections(
            lambda name, s: Section(
                s.resistance * 3.0, s.inductance, s.capacitance
            )
        )
        assert topology_fingerprint(fig5) == topology_fingerprint(perturbed)

    def test_cache_bypass(self, fig5):
        compile_tree(fig5, cache=False)
        info = topology_cache_info()
        assert info["size"] == 0 and info["misses"] == 0

    def test_eviction_bounds_size(self):
        rng = np.random.default_rng(0)
        maxsize = topology_cache_info()["maxsize"]
        for k in range(maxsize + 5):
            tree = RLCTree()
            for i in range(k + 1):
                tree.add_section(
                    f"n{i}",
                    "in" if i == 0 else f"n{i - 1}",
                    resistance=1.0,
                    inductance=1e-9,
                    capacitance=1e-13,
                )
            compile_tree(tree)
        assert topology_cache_info()["size"] == maxsize


class TestCacheThreadSafety:
    """compile_tree's module-global LRU is hammered from many threads."""

    @staticmethod
    def _line(sections):
        tree = RLCTree()
        for i in range(sections):
            tree.add_section(
                f"n{i}",
                "in" if i == 0 else f"n{i - 1}",
                resistance=1.0 + i,
                inductance=1e-9,
                capacitance=1e-13,
            )
        return tree

    def test_concurrent_compiles_keep_counters_consistent(self):
        import threading

        trees = [self._line(k + 2) for k in range(8)]
        rounds = 30
        workers = 8
        errors = []
        barrier = threading.Barrier(workers)

        def hammer(offset):
            try:
                barrier.wait()
                for i in range(rounds):
                    compile_tree(trees[(offset + i) % len(trees)])
            except Exception as exc:  # pragma: no cover - the assertion
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(k,)) for k in range(workers)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        info = topology_cache_info()
        calls = workers * rounds
        # Every call either hit or missed — a lost update under a race
        # would break this invariant.
        assert info["hits"] + info["misses"] == calls
        assert len(trees) <= info["misses"] < calls
        assert info["size"] == len(trees)

    def test_concurrent_eviction_respects_maxsize(self):
        import threading

        maxsize = topology_cache_info()["maxsize"]
        trees = [self._line(k + 2) for k in range(maxsize + 10)]
        workers = 4
        barrier = threading.Barrier(workers)

        def churn(offset):
            barrier.wait()
            for i, tree in enumerate(trees):
                compile_tree(trees[(offset * 7 + i) % len(trees)])

        threads = [
            threading.Thread(target=churn, args=(k,)) for k in range(workers)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        info = topology_cache_info()
        assert info["size"] <= maxsize
        assert info["hits"] + info["misses"] == workers * len(trees)

    def test_racing_same_topology_shares_one_entry(self, fig5):
        import threading

        results = []
        barrier = threading.Barrier(6)

        def compile_same():
            barrier.wait()
            results.append(compile_tree(fig5))

        threads = [threading.Thread(target=compile_same) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        info = topology_cache_info()
        assert info["size"] == 1
        assert info["hits"] + info["misses"] == 6
        # Whatever interleaving happened, callers end up on one cached
        # topology object after the race settles.
        assert len({id(r.topology) for r in results}) <= 2
        assert compile_tree(fig5).topology is results[-1].topology


class TestAccumulatePrecision:
    """Segmented sums must not cancel across sibling segments.

    A cumsum-then-subtract segmented sum carries absolute error at the
    scale of the whole level's total; a node whose subtree sum is
    epsilon-sized next to siblings carrying huge sums then fails any
    relative comparison against the dict-based reference.
    """

    def test_tiny_subtree_next_to_huge_siblings(self):
        tree = RLCTree()
        # Two level-1 parents: "big" feeds enormous weights, "small"
        # feeds the smallest representable section values.
        tree.add_section("big", "in", resistance=1e4, inductance=1e-7,
                         capacitance=1e-10)
        tree.add_section("small", "in", resistance=0.1, inductance=1e-12,
                         capacitance=1e-16)
        for k in range(6):
            tree.add_section(f"b{k}", "big", resistance=1e4,
                             inductance=1e-7, capacitance=1e-10)
        tree.add_section("s0", "small", resistance=0.1, inductance=1e-12,
                         capacitance=1e-16)
        compiled = compile_tree(tree, cache=False)
        expected = capacitive_loads(tree)
        got = compiled.capacitive_loads()
        for i, name in enumerate(compiled.names):
            assert float(got[i]) == pytest.approx(
                expected[name], rel=1e-14, abs=0.0
            ), name

    def test_second_order_sums_stay_relative(self):
        tree = RLCTree()
        tree.add_section("a", "in", resistance=1e4, inductance=1e-7,
                         capacitance=1e-10)
        tree.add_section("tiny", "a", resistance=0.1, inductance=1e-12,
                         capacitance=1e-16)
        for k in range(5):
            tree.add_section(f"fat{k}", "a", resistance=1e4,
                             inductance=1e-7, capacitance=1e-10)
        compiled = compile_tree(tree, cache=False)
        t_rc_ref, t_lc_ref = second_order_sums(tree)
        t_rc, t_lc = compiled.second_order_sums()
        for i, name in enumerate(compiled.names):
            assert float(t_rc[i]) == pytest.approx(
                t_rc_ref[name], rel=1e-12
            ), name
            assert float(t_lc[i]) == pytest.approx(
                t_lc_ref[name], rel=1e-12
            ), name
