"""The incremental delta-update engine: edits, flushes, and structure.

Every assertion here has the same shape: apply edits through
:class:`IncrementalAnalyzer`, then compare against a full recompute of
the analyzer's own :meth:`snapshot` — the oracle the module docstring
promises agreement with. Point queries are additionally pinned to the
vectorized table *bitwise* (``==``, not approx): ``_scalar_metrics``
runs the same ``np.float64`` scalar-ufunc operations as
``metrics_from_sums``, so any drift between the two paths is a bug.
"""

import math

import numpy as np
import pytest

from repro.apps.buffer_insertion import wire_segment_delay
from repro.circuit import RLCTree, Section, fig5_tree, random_tree
from repro.engine import (
    CompiledTree,
    EditSession,
    IncrementalAnalyzer,
    cache_info,
    clear_incremental_counters,
    clear_topology_cache,
    compile_tree,
    evaluate,
    incremental_cache_info,
    segment_delays,
)
from repro.errors import (
    ConfigurationError,
    ElementValueError,
    ReductionError,
    TopologyError,
)

METRICS = ("t_rc", "t_lc", "zeta", "omega_n", "delay_50", "rise_time",
           "overshoot", "settling_time")


@pytest.fixture(autouse=True)
def fresh_caches():
    clear_topology_cache()
    clear_incremental_counters()
    yield
    clear_topology_cache()
    clear_incremental_counters()


def oracle(analyzer):
    """Full recompute of the analyzer's current values."""
    return evaluate(analyzer.snapshot(), analyzer.settle_band)


def assert_matches_oracle(analyzer, rel=1e-12):
    table = oracle(analyzer)
    for node in analyzer.names:
        t_rc, t_lc = analyzer.sums(node)
        assert t_rc == pytest.approx(table.value("t_rc", node), rel=rel)
        assert t_lc == pytest.approx(table.value("t_lc", node), rel=rel)
        assert analyzer.value("delay_50", node) == pytest.approx(
            table.value("delay_50", node), rel=rel
        )


def chain_tree(n, r=100.0, l=1e-9, c=1e-13):
    tree = RLCTree()
    parent = "in"
    for i in range(n):
        tree.add_section(f"n{i}", parent, section=Section(r, l, c))
        parent = f"n{i}"
    return tree


class TestConstruction:
    def test_accepts_rlc_tree_and_compiled(self, fig5):
        from_tree = IncrementalAnalyzer(fig5)
        from_compiled = IncrementalAnalyzer(compile_tree(fig5))
        for node in fig5.nodes:
            assert from_tree.sums(node) == from_compiled.sums(node)

    def test_initial_state_matches_evaluate(self, fig5, random_rlc):
        for tree in (fig5, random_rlc):
            analyzer = IncrementalAnalyzer(tree)
            table = evaluate(compile_tree(tree))
            for node in tree.nodes:
                t_rc, t_lc = analyzer.sums(node)
                assert t_rc == table.value("t_rc", node)
                assert t_lc == table.value("t_lc", node)

    def test_identity_properties(self, fig5):
        analyzer = IncrementalAnalyzer(
            fig5, settle_band=0.05, flush_threshold=0.5
        )
        compiled = compile_tree(fig5)
        assert analyzer.names == compiled.names
        assert analyzer.size == compiled.topology.size
        assert analyzer.settle_band == 0.05
        assert analyzer.flush_threshold == 0.5
        assert analyzer.pending_edits == 0
        assert analyzer.dirty_fraction == 0.0

    def test_bad_settle_band_raises(self, fig5):
        with pytest.raises(ConfigurationError):
            IncrementalAnalyzer(fig5, settle_band=0.0)

    @pytest.mark.parametrize("threshold", [-0.1, 1.5, math.nan])
    def test_bad_flush_threshold_raises(self, fig5, threshold):
        with pytest.raises(ConfigurationError):
            IncrementalAnalyzer(fig5, flush_threshold=threshold)

    def test_wrong_tree_type_raises(self):
        with pytest.raises(ConfigurationError):
            IncrementalAnalyzer({"not": "a tree"})

    def test_section_accessor_round_trips(self, fig5):
        analyzer = IncrementalAnalyzer(fig5)
        for node in fig5.nodes:
            assert analyzer.section(node) == fig5.section(node)

    def test_tree_materializes_current_state(self, fig5):
        analyzer = IncrementalAnalyzer(fig5)
        analyzer.set_resistance("n2", 123.0)
        rebuilt = analyzer.tree()
        assert rebuilt.section("n2").resistance == 123.0
        assert set(rebuilt.nodes) == set(fig5.nodes)


class TestValueEdits:
    @pytest.mark.parametrize("method,value", [
        ("set_resistance", 777.0),
        ("set_inductance", 3e-9),
        ("set_capacitance", 4e-13),
    ])
    def test_single_edit_matches_oracle(self, fig5, method, value):
        analyzer = IncrementalAnalyzer(fig5, flush_threshold=1.0)
        getattr(analyzer, method)("n3", value)
        assert_matches_oracle(analyzer)

    def test_edit_updates_section_view(self, fig5):
        analyzer = IncrementalAnalyzer(fig5)
        analyzer.set_capacitance("n1", 9e-13)
        assert analyzer.section("n1").capacitance == 9e-13

    def test_set_section_replaces_all_three(self, fig5):
        analyzer = IncrementalAnalyzer(fig5, flush_threshold=1.0)
        target = Section(55.0, 2e-9, 6e-13)
        analyzer.set_section("n2", target)
        assert analyzer.section("n2") == target
        assert_matches_oracle(analyzer)

    def test_set_section_into_rc_limit(self, fig5):
        """L -> 0 passes through the not-both-zero invariant."""
        analyzer = IncrementalAnalyzer(fig5, flush_threshold=1.0)
        analyzer.set_section("n4", Section(10.0, 0.0, 1e-13))
        assert analyzer.section("n4").inductance == 0.0
        assert_matches_oracle(analyzer)

    def test_scale_segment_per_element(self, fig5):
        analyzer = IncrementalAnalyzer(fig5, flush_threshold=1.0)
        before = analyzer.section("n3")
        analyzer.scale_segment(
            "n3", resistance_factor=2.0, capacitance_factor=0.5
        )
        after = analyzer.section("n3")
        assert after.resistance == before.resistance * 2.0
        assert after.inductance == before.inductance
        assert after.capacitance == before.capacitance * 0.5
        assert_matches_oracle(analyzer)

    def test_noop_edit_adds_no_pending(self, fig5):
        analyzer = IncrementalAnalyzer(fig5, flush_threshold=1.0)
        analyzer.set_resistance("n1", fig5.section("n1").resistance)
        assert analyzer.pending_edits == 0
        assert incremental_cache_info()["edits"] == 0

    def test_long_edit_sequence_matches_oracle(self, rng):
        tree = random_tree(30, rng)
        analyzer = IncrementalAnalyzer(tree, flush_threshold=0.25)
        names = analyzer.names
        for k in range(100):
            node = names[int(rng.integers(len(names)))]
            which = k % 3
            if which == 0:
                analyzer.set_resistance(node, float(rng.uniform(1.0, 1e3)))
            elif which == 1:
                analyzer.set_inductance(node, float(rng.uniform(1e-11, 1e-8)))
            else:
                analyzer.set_capacitance(node, float(rng.uniform(1e-15, 1e-12)))
        assert_matches_oracle(analyzer)

    def test_recompute_rezeros_state(self, fig5):
        analyzer = IncrementalAnalyzer(fig5, flush_threshold=1.0)
        analyzer.set_capacitance("n5", 8e-13)
        assert analyzer.pending_edits > 0
        analyzer.recompute()
        assert analyzer.pending_edits == 0
        assert_matches_oracle(analyzer)


class TestPointQueriesPinTable:
    """The O(1) scalar kernel must match the vectorized table bit for bit."""

    def test_value_equals_table_bitwise(self, fig5, random_rlc, rc_line):
        for tree in (fig5, random_rlc, rc_line):
            analyzer = IncrementalAnalyzer(tree)
            table = analyzer.timing_table()
            for node in analyzer.names:
                for metric in METRICS:
                    assert analyzer.value(metric, node) == table.value(
                        metric, node
                    ), (node, metric)

    def test_value_after_edits_equals_fresh_table_bitwise(self, fig5):
        analyzer = IncrementalAnalyzer(fig5, flush_threshold=1.0)
        analyzer.set_resistance("n2", 250.0)
        analyzer.set_capacitance("n4", 2e-13)
        analyzer.flush()
        table = analyzer.timing_table()
        for node in analyzer.names:
            for metric in METRICS:
                assert analyzer.value(metric, node) == table.value(
                    metric, node
                )

    def test_timing_matches_value_fields(self, fig5):
        analyzer = IncrementalAnalyzer(fig5)
        for node in analyzer.names:
            timing = analyzer.timing(node)
            assert timing.node == node
            assert timing.delay_50 == analyzer.value("delay_50", node)
            assert timing.rise_time == analyzer.value("rise_time", node)
            assert timing.zeta == analyzer.value("zeta", node)

    def test_metric_at_matches_point_queries(self, fig5):
        analyzer = IncrementalAnalyzer(fig5, flush_threshold=1.0)
        analyzer.set_capacitance("n3", 5e-13)
        nodes = list(analyzer.names)
        vector = analyzer.metric_at("delay_50", nodes)
        for k, node in enumerate(nodes):
            assert vector[k] == analyzer.value("delay_50", node)

    def test_rc_limit_zeta_is_inf(self, rc_line):
        analyzer = IncrementalAnalyzer(rc_line)
        sink = rc_line.leaves()[0]
        assert math.isinf(analyzer.value("zeta", sink))
        assert analyzer.value("t_lc", sink) == 0.0


class TestFlushStrategies:
    def test_threshold_zero_flushes_every_edit(self, fig5):
        analyzer = IncrementalAnalyzer(fig5, flush_threshold=0.0)
        analyzer.set_resistance("n1", 500.0)
        assert analyzer.pending_edits == 0
        assert incremental_cache_info()["auto_flushes"] == 1
        assert_matches_oracle(analyzer)

    def test_threshold_one_defers_to_bulk_query(self, fig5):
        analyzer = IncrementalAnalyzer(fig5, flush_threshold=1.0)
        for node in analyzer.names:
            analyzer.set_resistance(node, 321.0)
        assert incremental_cache_info()["auto_flushes"] == 0
        assert analyzer.pending_edits > 0
        analyzer.timing_table()  # flushes
        assert analyzer.pending_edits == 0
        assert_matches_oracle(analyzer)

    def test_dirty_fraction_tracks_pending(self, fig5):
        analyzer = IncrementalAnalyzer(fig5, flush_threshold=1.0)
        analyzer.set_resistance("n1", 500.0)
        assert analyzer.dirty_fraction == pytest.approx(1 / analyzer.size)

    def test_leaf_resistance_edit_flushes_targeted(self):
        tree = chain_tree(10)
        analyzer = IncrementalAnalyzer(tree, flush_threshold=1.0)
        analyzer.set_resistance("n9", 200.0)  # single-slot offset, weight 1
        analyzer.flush()
        counters = incremental_cache_info()
        assert counters["targeted_flushes"] == 1
        assert counters["bulk_flushes"] == 0
        assert_matches_oracle(analyzer)

    def test_leaf_capacitance_edit_flushes_bulk(self):
        tree = chain_tree(10)
        analyzer = IncrementalAnalyzer(tree, flush_threshold=1.0)
        # C edit at the leaf leaves an offset at every ancestor; the
        # aggregate subtree weight (10+9+...+1) exceeds n, so the flush
        # takes the one-pass descend strategy.
        analyzer.set_capacitance("n9", 5e-13)
        analyzer.flush()
        counters = incremental_cache_info()
        assert counters["bulk_flushes"] == 1
        assert counters["targeted_flushes"] == 0
        assert_matches_oracle(analyzer)

    def test_both_strategies_agree(self):
        """Targeted and bulk flushes differ only in summation order."""
        tree = chain_tree(12)
        targeted = IncrementalAnalyzer(tree, flush_threshold=1.0)
        bulk = IncrementalAnalyzer(tree, flush_threshold=1.0)
        targeted.set_resistance("n11", 404.0)
        bulk.set_resistance("n11", 404.0)
        bulk.set_capacitance("n11", 7e-13)  # pushes weight past n
        bulk.set_capacitance("n11", tree.section("n11").capacitance)
        targeted.flush()
        bulk.flush()
        for node in targeted.names:
            t, b = targeted.sums(node), bulk.sums(node)
            assert t[0] == pytest.approx(b[0], rel=1e-12)
            assert t[1] == pytest.approx(b[1], rel=1e-12)

    def test_flush_without_pending_is_noop(self, fig5):
        analyzer = IncrementalAnalyzer(fig5)
        analyzer.flush()
        counters = incremental_cache_info()
        assert counters["targeted_flushes"] == 0
        assert counters["bulk_flushes"] == 0


class TestValidation:
    @pytest.mark.parametrize("value", [-1.0, math.nan, math.inf])
    def test_bad_values_raise(self, fig5, value):
        analyzer = IncrementalAnalyzer(fig5)
        with pytest.raises(ElementValueError):
            analyzer.set_resistance("n1", value)
        with pytest.raises(ElementValueError):
            analyzer.set_capacitance("n1", value)

    def test_zero_impedance_branch_rejected(self, fig5):
        analyzer = IncrementalAnalyzer(fig5)
        analyzer.set_inductance("n1", 0.0)
        with pytest.raises(ElementValueError):
            analyzer.set_resistance("n1", 0.0)

    def test_rejected_edit_leaves_state_unchanged(self, fig5):
        analyzer = IncrementalAnalyzer(fig5, flush_threshold=1.0)
        before = analyzer.section("n1")
        with pytest.raises(ElementValueError):
            analyzer.set_capacitance("n1", -1e-12)
        assert analyzer.section("n1") == before
        assert analyzer.pending_edits == 0

    def test_set_section_needs_section(self, fig5):
        analyzer = IncrementalAnalyzer(fig5)
        with pytest.raises(ElementValueError):
            analyzer.set_section("n1", (1.0, 2.0, 3.0))

    def test_unknown_node_raises(self, fig5):
        analyzer = IncrementalAnalyzer(fig5)
        with pytest.raises(TopologyError):
            analyzer.set_resistance("zzz", 1.0)
        with pytest.raises(TopologyError):
            analyzer.sums("zzz")

    def test_set_values_shape_checked(self, fig5):
        analyzer = IncrementalAnalyzer(fig5)
        with pytest.raises(ReductionError):
            analyzer.set_values(resistance=np.ones(3))

    def test_out_of_domain_sums_raise_on_query(self, fig5):
        """set_values trusts vectors; the query re-checks the domain."""
        analyzer = IncrementalAnalyzer(fig5)
        n = analyzer.size
        analyzer.set_values(resistance=np.full(n, -1.0))
        sink = fig5_tree().leaves()[0]
        with pytest.raises(ElementValueError):
            analyzer.value("delay_50", sink)
        with pytest.raises(ElementValueError):
            analyzer.metric_at("delay_50", [sink])


class TestBulkValues:
    def test_set_values_matches_with_values(self, fig5, rng):
        analyzer = IncrementalAnalyzer(fig5)
        compiled = compile_tree(fig5)
        n = analyzer.size
        r = rng.uniform(1.0, 1e3, n)
        l = rng.uniform(1e-11, 1e-8, n)
        c = rng.uniform(1e-15, 1e-12, n)
        analyzer.set_values(resistance=r, inductance=l, capacitance=c)
        table = evaluate(compiled.with_values(r, l, c))
        for node in analyzer.names:
            t_rc, t_lc = analyzer.sums(node)
            assert t_rc == pytest.approx(table.value("t_rc", node), rel=1e-12)
            assert t_lc == pytest.approx(table.value("t_lc", node), rel=1e-12)

    def test_none_elements_keep_current_values(self, fig5):
        analyzer = IncrementalAnalyzer(fig5)
        before_r = [analyzer.section(n).resistance for n in analyzer.names]
        analyzer.set_values(capacitance=np.full(analyzer.size, 2e-13))
        after_r = [analyzer.section(n).resistance for n in analyzer.names]
        assert after_r == before_r
        assert analyzer.section(analyzer.names[0]).capacitance == 2e-13

    def test_set_values_clears_pending(self, fig5):
        analyzer = IncrementalAnalyzer(fig5, flush_threshold=1.0)
        analyzer.set_resistance("n1", 999.0)
        assert analyzer.pending_edits > 0
        analyzer.set_values(capacitance=np.full(analyzer.size, 1e-13))
        assert analyzer.pending_edits == 0
        assert incremental_cache_info()["bulk_value_loads"] == 1
        assert_matches_oracle(analyzer)


class TestEditSession:
    def test_defers_autoflush_until_close(self, fig5):
        analyzer = IncrementalAnalyzer(fig5, flush_threshold=0.0)
        with analyzer.session() as session:
            session.set_resistance("n1", 111.0)
            session.set_resistance("n2", 222.0)
            assert analyzer.pending_edits > 0  # no mid-burst flush
            assert incremental_cache_info()["auto_flushes"] == 0
        assert analyzer.pending_edits == 0
        assert incremental_cache_info()["auto_flushes"] == 1
        assert_matches_oracle(analyzer)

    def test_mid_session_queries_are_exact(self, fig5):
        analyzer = IncrementalAnalyzer(fig5, flush_threshold=0.0)
        with analyzer.session() as session:
            session.set_capacitance("n3", 6e-13)
            assert_matches_oracle(analyzer)

    def test_counts_edits(self, fig5):
        analyzer = IncrementalAnalyzer(fig5, flush_threshold=1.0)
        session = analyzer.session()
        session.set_resistance("n1", 50.0)
        session.set_section("n2", Section(10.0, 1e-9, 1e-13))
        session.scale_segment("n3", capacitance_factor=2.0)
        assert session.edits == 3

    def test_close_is_idempotent(self, fig5):
        analyzer = IncrementalAnalyzer(fig5, flush_threshold=0.0)
        session = analyzer.session()
        session.set_resistance("n1", 42.0)
        session.close()
        session.close()
        assert incremental_cache_info()["auto_flushes"] == 1

    def test_session_type(self, fig5):
        assert isinstance(IncrementalAnalyzer(fig5).session(), EditSession)


class TestStructuralEdits:
    def branch(self, prefix="x", count=3):
        subtree = RLCTree("handle")
        parent = "handle"
        for i in range(count):
            subtree.add_section(
                f"{prefix}{i}", parent, section=Section(50.0, 1e-9, 2e-13)
            )
            parent = f"{prefix}{i}"
        return subtree

    def test_attach_matches_fresh_evaluate(self, fig5):
        analyzer = IncrementalAnalyzer(fig5)
        analyzer.attach_subtree("n4", self.branch())
        assert "x0" in analyzer.names
        assert_matches_oracle(analyzer)
        table = evaluate(compile_tree(analyzer.tree()))
        assert analyzer.value("delay_50", "x2") == pytest.approx(
            table.value("delay_50", "x2"), rel=1e-12
        )

    def test_attach_empty_subtree_is_noop(self, fig5):
        analyzer = IncrementalAnalyzer(fig5)
        before = incremental_cache_info()["structural_recompiles"]
        analyzer.attach_subtree("n1", RLCTree("empty"))
        assert incremental_cache_info()["structural_recompiles"] == before
        assert analyzer.names == compile_tree(fig5).names

    def test_attach_name_clash_raises_before_mutation(self, fig5):
        analyzer = IncrementalAnalyzer(fig5)
        clash = RLCTree("h")
        clash.add_section("n2", "h", section=Section(1.0, 1e-9, 1e-13))
        with pytest.raises(TopologyError):
            analyzer.attach_subtree("n1", clash)
        assert analyzer.names == compile_tree(fig5).names

    def test_attach_to_unknown_parent_raises(self, fig5):
        analyzer = IncrementalAnalyzer(fig5)
        with pytest.raises(TopologyError):
            analyzer.attach_subtree("nope", self.branch())

    def test_detach_returns_subtree_and_shrinks(self, fig5):
        analyzer = IncrementalAnalyzer(fig5)
        full_size = analyzer.size
        detached = analyzer.detach_subtree("n2")
        assert set(detached.nodes) == {"n2", "n4", "n5"}
        assert analyzer.size == full_size - 3
        assert_matches_oracle(analyzer)

    def test_detach_attach_round_trips(self, fig5):
        analyzer = IncrementalAnalyzer(fig5)
        reference = {
            node: analyzer.sums(node) for node in analyzer.names
        }
        parent = fig5.parent("n2")
        detached = analyzer.detach_subtree("n2")
        analyzer.attach_subtree(parent, detached)
        assert set(analyzer.names) == set(reference)
        for node, (t_rc, t_lc) in reference.items():
            got_rc, got_lc = analyzer.sums(node)
            assert got_rc == pytest.approx(t_rc, rel=1e-12)
            assert got_lc == pytest.approx(t_lc, rel=1e-12)

    def test_structural_edit_after_value_edits(self, fig5):
        analyzer = IncrementalAnalyzer(fig5, flush_threshold=1.0)
        analyzer.set_resistance("n1", 640.0)
        analyzer.attach_subtree("n2", self.branch("y", 2))
        assert analyzer.section("n1").resistance == 640.0
        assert_matches_oracle(analyzer)

    def test_session_structural_edits(self, fig5):
        analyzer = IncrementalAnalyzer(fig5)
        with analyzer.session() as session:
            session.attach_subtree("n3", self.branch("z", 2))
            detached = session.detach_subtree("z0")
            assert session.edits == 2
        assert set(detached.nodes) == {"z0", "z1"}
        assert_matches_oracle(analyzer)


class TestTimingTableLifecycle:
    def test_tables_are_immutable_across_edits(self, fig5):
        analyzer = IncrementalAnalyzer(fig5)
        first = analyzer.timing_table()
        stash = np.array(first.metrics.delay_50, copy=True)
        analyzer.set_resistance("n1", 5e3)
        second = analyzer.timing_table()
        assert np.array_equal(np.asarray(first.metrics.delay_50), stash)
        assert not np.array_equal(
            np.asarray(second.metrics.delay_50), stash
        )

    def test_small_edit_triggers_partial_refresh(self):
        tree = chain_tree(20)
        analyzer = IncrementalAnalyzer(tree, flush_threshold=0.25)
        analyzer.timing_table()
        assert incremental_cache_info()["full_metric_refreshes"] == 1
        analyzer.set_resistance("n19", 333.0)  # stale region: one leaf
        analyzer.timing_table()
        counters = incremental_cache_info()
        assert counters["partial_metric_refreshes"] == 1
        assert counters["full_metric_refreshes"] == 1

    def test_partial_refresh_matches_full(self):
        tree = chain_tree(20)
        analyzer = IncrementalAnalyzer(tree, flush_threshold=0.25)
        analyzer.timing_table()
        analyzer.set_resistance("n19", 333.0)
        partial = analyzer.timing_table()
        full = oracle(analyzer)
        for node in analyzer.names:
            for metric in METRICS:
                got = partial.value(metric, node)
                want = full.value(metric, node)
                if math.isinf(want):
                    assert math.isinf(got)
                else:
                    assert got == pytest.approx(want, rel=1e-12)

    def test_clean_table_rebuild_is_free(self, fig5):
        analyzer = IncrementalAnalyzer(fig5)
        analyzer.timing_table()
        analyzer.timing_table()
        assert incremental_cache_info()["full_metric_refreshes"] == 1


class TestCounters:
    def test_keys_are_stable(self):
        assert set(incremental_cache_info()) == {
            "analyzers", "edits", "lazy_queries", "auto_flushes",
            "targeted_flushes", "bulk_flushes", "full_metric_refreshes",
            "partial_metric_refreshes", "bulk_value_loads",
            "full_recomputes", "structural_recompiles",
        }

    def test_lifecycle_bumps(self, fig5):
        analyzer = IncrementalAnalyzer(fig5, flush_threshold=1.0)
        analyzer.set_resistance("n1", 77.0)
        analyzer.sums("n5")
        counters = incremental_cache_info()
        assert counters["analyzers"] == 1
        assert counters["edits"] == 1
        assert counters["lazy_queries"] >= 1
        assert counters["full_recomputes"] == 1  # construction sweep

    def test_clear_resets_everything(self, fig5):
        IncrementalAnalyzer(fig5)
        clear_incremental_counters()
        assert all(v == 0 for v in incremental_cache_info().values())

    def test_engine_cache_info_aggregates_groups(self, fig5):
        IncrementalAnalyzer(fig5)
        info = cache_info()
        assert set(info) == {"topology", "incremental"}
        assert info["incremental"]["analyzers"] == 1
        assert "preorder_builds" in info["topology"]


class TestSegmentDelays:
    def test_matches_scalar_bitwise(self, rng):
        n = 64
        r = rng.uniform(1.0, 1e3, n)
        l = rng.uniform(1e-11, 1e-8, n)
        c = rng.uniform(1e-15, 1e-12, n)
        loads = rng.uniform(0.0, 1e-12, n)
        for model in ("rc", "rlc"):
            vector = segment_delays(r, l, c, loads, model)
            for k in range(n):
                assert vector[k] == wire_segment_delay(
                    r[k], l[k], c[k], loads[k], model
                ), (model, k)

    def test_scalar_elements_broadcast(self):
        loads = np.array([1e-13, 2e-13, 0.0])
        vector = segment_delays(100.0, 1e-9, 1e-13, loads)
        for k, load in enumerate(loads):
            assert vector[k] == wire_segment_delay(
                100.0, 1e-9, 1e-13, float(load), "rlc"
            )

    def test_nonpositive_total_load_is_zero(self):
        vector = segment_delays(100.0, 1e-9, 0.0, np.array([0.0, 1e-13]))
        assert vector[0] == 0.0
        assert vector[1] > 0.0

    def test_unknown_model_raises(self):
        with pytest.raises(ConfigurationError):
            segment_delays(1.0, 0.0, 1e-13, np.array([1e-13]), model="elmore")

    def test_bad_live_lane_raises(self):
        with pytest.raises(ElementValueError):
            segment_delays(0.0, 1e-9, 1e-13, np.array([1e-13]))
