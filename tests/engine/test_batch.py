"""Batch evaluation: S scenarios x n nodes in one pass."""

import numpy as np
import pytest

from repro.analysis import TreeAnalyzer
from repro.circuit import Section
from repro.engine import (
    analyze_batch,
    clear_topology_cache,
    compile_tree,
    evaluate,
    metrics_from_sums,
    timing_table,
)
from repro.errors import ConfigurationError, ReductionError, TopologyError


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_topology_cache()
    yield
    clear_topology_cache()


def factor_block(rng, scenarios, size):
    return rng.uniform(0.5, 1.5, size=(scenarios, 3, size))


def scenario_tree(tree, names, values):
    index = {name: i for i, name in enumerate(names)}

    def rebuild(name, _section):
        i = index[name]
        return Section(values[0, i], values[1, i], values[2, i])

    return tree.map_sections(rebuild)


class TestBatchMatchesLoop:
    def test_rlc_block_vs_per_scenario_analyzers(self, random_rlc):
        compiled = compile_tree(random_rlc)
        rng = np.random.default_rng(11)
        nominal = np.stack(
            [compiled.resistance, compiled.inductance, compiled.capacitance]
        )
        block = factor_block(rng, 6, compiled.size) * nominal
        batch = analyze_batch(compiled, block)
        assert batch.scenarios == 6
        for s in range(6):
            tree = scenario_tree(random_rlc, compiled.names, block[s])
            scalar = TreeAnalyzer(tree, use_engine=False)
            for node in random_rlc.nodes:
                want = scalar.timing(node)
                got = batch.scenario(s)
                assert got.value("delay_50", node) == pytest.approx(
                    want.delay_50, rel=1e-12
                )
                assert got.value("settling", node) == pytest.approx(
                    want.settling, rel=1e-12
                )

    def test_column_is_per_scenario_series(self, fig5):
        compiled = compile_tree(fig5)
        rng = np.random.default_rng(2)
        nominal = np.stack(
            [compiled.resistance, compiled.inductance, compiled.capacitance]
        )
        block = factor_block(rng, 5, compiled.size) * nominal
        batch = analyze_batch(compiled, block)
        column = batch.column("delay_50", "n7")
        assert column.shape == (5,)
        for s in range(5):
            assert column[s] == batch.scenario(s).value("delay_50", "n7")

    def test_per_element_matrices(self, fig5):
        compiled = compile_tree(fig5)
        rng = np.random.default_rng(4)
        r = compiled.resistance * rng.uniform(0.5, 1.5, (3, compiled.size))
        batch = analyze_batch(compiled, resistance=r)
        full = analyze_batch(
            compiled,
            resistance=r,
            inductance=np.broadcast_to(
                compiled.inductance, (3, compiled.size)
            ),
            capacitance=np.broadcast_to(
                compiled.capacitance, (3, compiled.size)
            ),
        )
        assert np.array_equal(batch.delay_50, full.delay_50)

    def test_nominal_vector_broadcasts(self, fig5):
        compiled = compile_tree(fig5)
        batch = analyze_batch(compiled, capacitance=compiled.capacitance)
        assert batch.scenarios == 1
        scalar = TreeAnalyzer(fig5, use_engine=False)
        for node in fig5.nodes:
            assert batch.column("delay_50", node)[0] == pytest.approx(
                scalar.delay_50(node), rel=1e-12
            )


class TestBatchValidation:
    def test_block_and_matrices_mutually_exclusive(self, fig5):
        compiled = compile_tree(fig5)
        block = np.ones((2, 3, compiled.size))
        with pytest.raises(ReductionError):
            analyze_batch(
                compiled, block, resistance=np.ones((2, compiled.size))
            )

    def test_block_shape_checked(self, fig5):
        compiled = compile_tree(fig5)
        with pytest.raises(ReductionError):
            analyze_batch(compiled, np.ones((2, 2, compiled.size)))

    def test_needs_some_values(self, fig5):
        with pytest.raises(ReductionError):
            analyze_batch(compile_tree(fig5))

    def test_scenario_counts_must_agree(self, fig5):
        compiled = compile_tree(fig5)
        with pytest.raises(ReductionError):
            analyze_batch(
                compiled,
                resistance=np.ones((2, compiled.size)),
                capacitance=np.ones((3, compiled.size)),
            )

    def test_matrix_shape_checked(self, fig5):
        compiled = compile_tree(fig5)
        with pytest.raises(ReductionError):
            analyze_batch(compiled, resistance=np.ones((2, 3)))

    def test_unknown_node_rejected(self, fig5):
        compiled = compile_tree(fig5)
        batch = analyze_batch(
            compiled, capacitance=compiled.capacitance
        )
        with pytest.raises(TopologyError):
            batch.column("delay_50", "zzz")

    def test_metric_selection_matches_full_run(self, fig5):
        compiled = compile_tree(fig5)
        rng = np.random.default_rng(9)
        nominal = np.stack(
            [compiled.resistance, compiled.inductance, compiled.capacitance]
        )
        block = factor_block(rng, 4, compiled.size) * nominal
        full = analyze_batch(compiled, block)
        subset = analyze_batch(compiled, block, metrics=("delay_50",))
        assert np.array_equal(subset.delay_50, full.delay_50)
        assert np.array_equal(subset.t_rc, full.t_rc)
        with pytest.raises(ReductionError):
            subset.column("overshoot", "n7")
        with pytest.raises(ReductionError):
            subset.scenario(0).column("settling")
        assert subset.scenario(1).value("delay_50", "n7") == full.scenario(
            1
        ).value("delay_50", "n7")

    def test_unknown_metric_selection_rejected(self, fig5):
        compiled = compile_tree(fig5)
        with pytest.raises(ReductionError):
            analyze_batch(
                compiled,
                capacitance=compiled.capacitance,
                metrics=("slew",),
            )

    def test_out_of_domain_scenarios_come_out_nan(self, fig5):
        compiled = compile_tree(fig5)
        c = np.broadcast_to(compiled.capacitance, (2, compiled.size)).copy()
        c[1] = -c[1]  # negative capacitance: T_LC < 0, outside the forms
        batch = analyze_batch(compiled, capacitance=c)
        assert np.all(np.isfinite(batch.delay_50[0]))
        assert np.all(np.isnan(batch.delay_50[1]))


class TestSettleBandDomain:
    """The vectorized paths validate settle_band like the scalar analyzer."""

    BAD = (0.0, -0.5, 1.0, 1.5)

    @pytest.mark.parametrize("band", BAD)
    def test_metrics_from_sums_rejects(self, fig5, band):
        compiled = compile_tree(fig5)
        t_rc, t_lc = compiled.second_order_sums()
        with pytest.raises(ConfigurationError, match=r"settle_band"):
            metrics_from_sums(t_rc, t_lc, band)

    @pytest.mark.parametrize("band", BAD)
    def test_evaluate_rejects(self, fig5, band):
        with pytest.raises(ConfigurationError, match=r"settle_band"):
            evaluate(compile_tree(fig5), settle_band=band)

    @pytest.mark.parametrize("band", BAD)
    def test_timing_table_rejects(self, fig5, band):
        with pytest.raises(ConfigurationError, match=r"settle_band"):
            timing_table(fig5, settle_band=band)

    @pytest.mark.parametrize("band", BAD)
    def test_analyze_batch_rejects(self, fig5, band):
        compiled = compile_tree(fig5)
        block = np.stack(
            [compiled.resistance, compiled.inductance, compiled.capacitance]
        )[np.newaxis]
        with pytest.raises(ConfigurationError, match=r"settle_band"):
            analyze_batch(compiled, block, settle_band=band)

    def test_message_matches_scalar_analyzer(self, fig5):
        """Engine and scalar analyzer report the identical message."""
        with pytest.raises(ConfigurationError) as engine_err:
            evaluate(compile_tree(fig5), settle_band=2.0)
        with pytest.raises(ConfigurationError) as scalar_err:
            TreeAnalyzer(fig5, settle_band=2.0, use_engine=False)
        assert str(engine_err.value) == str(scalar_err.value)

    def test_boundaries_of_valid_domain_accepted(self, fig5):
        compiled = compile_tree(fig5)
        for band in (1e-9, 0.5, 1.0 - 1e-9):
            table = evaluate(compiled, settle_band=band)
            assert np.all(np.isfinite(table.settling))


class TestColumnCopySemantics:
    """BatchTiming.column returns an owned copy, not a live view."""

    def _batch(self, fig5, scenarios=4):
        compiled = compile_tree(fig5)
        rng = np.random.default_rng(9)
        nominal = np.stack(
            [compiled.resistance, compiled.inductance, compiled.capacitance]
        )
        block = factor_block(rng, scenarios, compiled.size) * nominal
        return analyze_batch(compiled, block)

    def test_column_owns_its_data(self, fig5):
        column = self._batch(fig5).column("delay_50", "n7")
        assert column.base is None

    def test_mutating_column_leaves_batch_intact(self, fig5):
        batch = self._batch(fig5)
        before = batch.delay_50.copy()
        column = batch.column("delay_50", "n7")
        column[:] = -1.0
        np.testing.assert_array_equal(batch.delay_50, before)

    def test_column_does_not_pin_the_block(self, fig5):
        """A kept column must not keep the full (S, n) matrix alive."""
        column = self._batch(fig5).column("settling", "n3")
        assert column.nbytes == column.size * column.itemsize
        assert column.flags.owndata
