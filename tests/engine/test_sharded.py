"""Sharded dispatch: multi-tree sets, scenario shards, error capture."""

import numpy as np
import pytest

from repro.circuit import random_tree, single_line
from repro.engine import (
    ShardError,
    ShardOutcome,
    analyze_batch,
    analyze_batch_sharded,
    analyze_many,
    clear_topology_cache,
    compile_tree,
    evaluate,
    shutdown_pool,
)
from repro.engine import sharded as sharded_mod
from repro.engine.sharded import _shard_slices
from repro.errors import ConfigurationError, DispatchError

WORKERS = 2


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_topology_cache()
    yield
    clear_topology_cache()


@pytest.fixture(scope="module", autouse=True)
def pool_teardown():
    yield
    shutdown_pool()


def tree_set(count=6, size=12):
    return [random_tree(size, np.random.default_rng(seed)) for seed in range(count)]


def scenario_block(compiled, scenarios, seed=0):
    rng = np.random.default_rng(seed)
    nominal = np.stack(
        [compiled.resistance, compiled.inductance, compiled.capacitance]
    )
    return rng.uniform(0.5, 1.5, (scenarios, 3, compiled.size)) * nominal


class TestShardSlices:
    def test_covers_everything_in_order(self):
        slices = _shard_slices(10, 3)
        assert slices == [(0, 4), (4, 7), (7, 10)]

    def test_single_shard(self):
        assert _shard_slices(5, 1) == [(0, 5)]

    def test_more_shards_than_scenarios_never_requested(self):
        # analyze_batch_sharded clamps shards to S before slicing.
        slices = _shard_slices(4, 4)
        assert [stop - start for start, stop in slices] == [1, 1, 1, 1]


class TestAnalyzeMany:
    def test_matches_serial_evaluate_bitwise(self):
        trees = tree_set()
        results = analyze_many(trees, workers=WORKERS)
        assert len(results) == len(trees)
        for tree, table in zip(trees, results):
            assert not isinstance(table, ShardError)
            reference = evaluate(compile_tree(tree))
            assert table.names == reference.names
            for metric in ("t_rc", "delay_50", "settling", "overshoot"):
                np.testing.assert_array_equal(
                    table.column(metric), reference.column(metric)
                )

    def test_serial_fallback_is_identical(self):
        trees = tree_set(count=4)
        parallel = analyze_many(trees, workers=WORKERS)
        serial = analyze_many(trees, workers=0)
        for a, b in zip(parallel, serial):
            np.testing.assert_array_equal(a.delay_50, b.delay_50)

    def test_accepts_compiled_trees(self):
        trees = [compile_tree(t) for t in tree_set(count=3)]
        results = analyze_many(trees, workers=WORKERS)
        for ct, table in zip(trees, results):
            np.testing.assert_array_equal(
                table.delay_50, evaluate(ct).delay_50
            )

    def test_deterministic_input_ordering(self):
        trees = tree_set(count=5)
        first = analyze_many(trees, workers=WORKERS)
        second = analyze_many(trees, workers=WORKERS)
        for a, b in zip(first, second):
            np.testing.assert_array_equal(a.delay_50, b.delay_50)
        # Order follows the input, not completion: sinks differ per tree.
        for tree, table in zip(trees, first):
            assert table.names == tree.nodes

    def test_poisoned_tree_fails_alone(self):
        trees = tree_set(count=3)
        good = compile_tree(trees[0])
        poisoned = good.with_values(
            np.full(good.size, np.nan), good.inductance, good.capacitance
        )
        results = analyze_many(
            [trees[1], poisoned, trees[2]], workers=WORKERS
        )
        assert isinstance(results[0], type(evaluate(good)))
        assert isinstance(results[1], ShardError)
        assert isinstance(results[2], type(evaluate(good)))
        error = results[1]
        assert error.scope == "tree"
        assert error.shard == 1
        assert error.error_type == "ElementValueError"
        diagnostic = error.diagnostic
        assert diagnostic.code == "shard-failure"
        assert "tree 1" in diagnostic.message

    def test_metric_selection(self):
        trees = tree_set(count=2)
        results = analyze_many(
            trees, metrics=("delay_50",), workers=WORKERS
        )
        full = analyze_many(trees, workers=WORKERS)
        for sel, ref in zip(results, full):
            np.testing.assert_array_equal(sel.delay_50, ref.delay_50)
            with pytest.raises(Exception):
                sel.column("overshoot")

    def test_settle_band_validated_up_front(self):
        with pytest.raises(ConfigurationError):
            analyze_many(tree_set(count=1), settle_band=0.0)

    def test_rc_limit_trees_supported(self):
        rc = single_line(4, resistance=50.0, inductance=0.0,
                         capacitance=0.1e-12)
        table = analyze_many([rc], workers=WORKERS)[0]
        np.testing.assert_array_equal(
            table.delay_50, evaluate(compile_tree(rc)).delay_50
        )


class TestAnalyzeBatchSharded:
    def test_bitwise_identical_to_serial(self, fig5):
        compiled = compile_tree(fig5)
        block = scenario_block(compiled, 23)
        serial = analyze_batch(compiled, block)
        for shards in (1, 2, 4):
            sharded = analyze_batch_sharded(
                compiled, block, shards=shards, workers=WORKERS
            )
            for metric in ("t_rc", "t_lc", "delay_50", "rise_time",
                           "overshoot", "settling"):
                np.testing.assert_array_equal(
                    getattr(sharded, metric), getattr(serial, metric)
                )

    def test_serial_fallback_when_one_shard(self, fig5):
        compiled = compile_tree(fig5)
        block = scenario_block(compiled, 7)
        one = analyze_batch_sharded(compiled, block, shards=1)
        serial = analyze_batch(compiled, block)
        np.testing.assert_array_equal(one.delay_50, serial.delay_50)

    def test_workers_one_runs_in_process(self, fig5):
        compiled = compile_tree(fig5)
        block = scenario_block(compiled, 9)
        sharded = analyze_batch_sharded(
            compiled, block, shards=3, workers=1
        )
        serial = analyze_batch(compiled, block)
        np.testing.assert_array_equal(sharded.delay_50, serial.delay_50)

    def test_metric_selection_matches_serial(self, fig5):
        compiled = compile_tree(fig5)
        block = scenario_block(compiled, 11)
        sharded = analyze_batch_sharded(
            compiled, block, metrics=("delay_50",), shards=2, workers=WORKERS
        )
        serial = analyze_batch(compiled, block, metrics=("delay_50",))
        np.testing.assert_array_equal(sharded.delay_50, serial.delay_50)
        np.testing.assert_array_equal(sharded.t_rc, serial.t_rc)
        with pytest.raises(Exception):
            sharded.column("settling", "n7")

    def test_shards_clamped_to_scenarios(self, fig5):
        compiled = compile_tree(fig5)
        block = scenario_block(compiled, 3)
        sharded = analyze_batch_sharded(
            compiled, block, shards=16, workers=WORKERS
        )
        serial = analyze_batch(compiled, block)
        np.testing.assert_array_equal(sharded.delay_50, serial.delay_50)

    def test_invalid_shards_rejected(self, fig5):
        compiled = compile_tree(fig5)
        with pytest.raises(ConfigurationError):
            analyze_batch_sharded(
                compiled, scenario_block(compiled, 4), shards=0
            )

    def test_settle_band_validated_before_dispatch(self, fig5):
        compiled = compile_tree(fig5)
        with pytest.raises(ConfigurationError):
            analyze_batch_sharded(
                compiled, scenario_block(compiled, 4), settle_band=1.5,
                shards=2,
            )


class TestPerShardFailure:
    def test_failed_shard_reports_survivors_keep_results(self, fig5):
        compiled = compile_tree(fig5)
        block = scenario_block(compiled, 20)
        serial = analyze_batch(compiled, block)
        with pytest.raises(DispatchError) as excinfo:
            analyze_batch_sharded(
                compiled, block, shards=4, workers=WORKERS, fault_shards=(2,)
            )
        error = excinfo.value
        assert len(error.shard_errors) == 1
        assert len(error.partial) == 3
        failed = error.shard_errors[0]
        assert failed.shard == 2
        assert failed.scope == "scenarios"
        assert failed.diagnostic.code == "shard-failure"
        assert "scenarios 10:15" in failed.detail
        # The surviving shards' results match the serial rows exactly.
        for outcome in error.partial:
            assert isinstance(outcome, ShardOutcome)
            np.testing.assert_array_equal(
                outcome.timing.delay_50,
                serial.delay_50[outcome.start:outcome.stop],
            )

    def test_all_shards_failing_still_structured(self, fig5):
        compiled = compile_tree(fig5)
        block = scenario_block(compiled, 8)
        with pytest.raises(DispatchError) as excinfo:
            analyze_batch_sharded(
                compiled, block, shards=2, workers=WORKERS,
                fault_shards=(0, 1),
            )
        assert len(excinfo.value.shard_errors) == 2
        assert excinfo.value.partial == ()

    def test_fault_injection_works_in_serial_fallback(self, fig5):
        compiled = compile_tree(fig5)
        block = scenario_block(compiled, 8)
        with pytest.raises(DispatchError):
            analyze_batch_sharded(
                compiled, block, shards=2, workers=0, fault_shards=(1,)
            )


class TestPoolCacheInfo:
    def test_aggregates_parent_and_workers(self, fig5):
        compiled = compile_tree(fig5)
        block = scenario_block(compiled, 12)
        analyze_batch_sharded(compiled, block, shards=4, workers=WORKERS)
        info = sharded_mod.topology_cache_info()
        assert set(info) >= {"hits", "misses", "size", "parent", "workers"}
        assert len(info["workers"]) == WORKERS
        # Every worker that evaluated a shard decoded or reused the
        # shipped payload: pool-wide misses plus hits cover the lookups.
        pool_lookups = sum(
            w["hits"] + w["misses"] for w in info["workers"].values()
        )
        assert pool_lookups >= 1
        assert info["hits"] >= info["parent"]["hits"]

    def test_empty_without_pool(self):
        shutdown_pool()
        info = sharded_mod.topology_cache_info()
        assert info["workers"] == {}
        assert info["parent"]["size"] == info["size"]
