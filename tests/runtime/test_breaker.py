"""Unit tests for the per-backend circuit breakers.

All state-machine behaviour is exercised on an injected fake clock, so
cooldowns are deterministic and the suite never sleeps.
"""

import pytest

from repro.errors import ConfigurationError
from repro.runtime import BreakerBoard, CircuitBreaker


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture
def clock():
    return FakeClock()


class TestCircuitBreaker:
    def test_starts_closed_and_allows(self, clock):
        breaker = CircuitBreaker(threshold=3, cooldown=10.0, clock=clock)
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_opens_after_threshold_consecutive_failures(self, clock):
        breaker = CircuitBreaker(threshold=3, cooldown=10.0, clock=clock)
        breaker.record_failure("a")
        breaker.record_failure("b")
        assert breaker.state == "closed"
        breaker.record_failure("c")
        assert breaker.state == "open"
        assert not breaker.allow()

    def test_success_resets_the_consecutive_count(self, clock):
        breaker = CircuitBreaker(threshold=2, cooldown=10.0, clock=clock)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_trip_opens_immediately(self, clock):
        breaker = CircuitBreaker(threshold=5, cooldown=10.0, clock=clock)
        breaker.trip("pool rebuilt")
        assert breaker.state == "open"
        assert not breaker.allow()

    def test_half_open_after_cooldown(self, clock):
        breaker = CircuitBreaker(threshold=1, cooldown=10.0, clock=clock)
        breaker.record_failure()
        assert breaker.state == "open"
        clock.advance(9.9)
        assert breaker.state == "open"
        clock.advance(0.2)
        assert breaker.state == "half_open"
        assert breaker.allow()  # the probe is admitted

    def test_probe_success_closes(self, clock):
        breaker = CircuitBreaker(threshold=1, cooldown=10.0, clock=clock)
        breaker.record_failure()
        clock.advance(11.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"

    def test_probe_failure_reopens_for_full_cooldown(self, clock):
        breaker = CircuitBreaker(threshold=1, cooldown=10.0, clock=clock)
        breaker.record_failure()
        clock.advance(11.0)
        assert breaker.allow()
        breaker.record_failure("probe died")
        assert breaker.state == "open"
        clock.advance(9.0)
        assert breaker.state == "open"
        clock.advance(2.0)
        assert breaker.state == "half_open"

    def test_transitions_recorded_in_snapshot(self, clock):
        breaker = CircuitBreaker(threshold=1, cooldown=10.0, clock=clock)
        breaker.trip("pool rebuilt")
        clock.advance(11.0)
        breaker.allow()
        breaker.record_success()
        snap = breaker.snapshot()
        assert snap["state"] == "closed"
        transitions = [t["to"] for t in snap["transitions"]]
        assert transitions == ["open", "closed"]
        assert "pool rebuilt" in snap["transitions"][0]["reason"]

    def test_reset_returns_to_pristine(self, clock):
        breaker = CircuitBreaker(threshold=1, cooldown=10.0, clock=clock)
        breaker.trip("x")
        breaker.reset()
        assert breaker.state == "closed"
        assert breaker.snapshot()["transitions"] == []

    def test_validation(self, clock):
        with pytest.raises(ConfigurationError):
            CircuitBreaker(threshold=0)
        with pytest.raises(ConfigurationError):
            CircuitBreaker(cooldown=-1.0)


class TestBreakerBoard:
    def test_breakers_created_lazily_and_cached(self, clock):
        board = BreakerBoard(threshold=2, cooldown=5.0, clock=clock)
        first = board.breaker("sharded")
        assert board.breaker("sharded") is first
        assert board.snapshot().keys() == {"sharded"}

    def test_open_backends_only_lists_open(self, clock):
        board = BreakerBoard(threshold=1, cooldown=10.0, clock=clock)
        board.breaker("sharded").trip("dead pool")
        board.breaker("compiled").record_success()
        assert board.open_backends() == ("sharded",)
        # Half-open breakers admit their probe: not "unavailable".
        clock.advance(11.0)
        assert board.open_backends() == ()

    def test_reset_clears_everything(self, clock):
        board = BreakerBoard(threshold=1, cooldown=10.0, clock=clock)
        board.breaker("sharded").trip("x")
        board.reset()
        assert board.open_backends() == ()
        assert board.snapshot() == {}
