"""RuntimeConfig validation and the deprecated-alias funnel."""

import warnings

import numpy as np
import pytest

from repro.apps.buffer_insertion import Buffer, insert_buffers
from repro.apps.variation import VariationModel, sample_delays
from repro.apps.wire_sizing import WireSizingProblem, optimize_width
from repro.circuit import single_line
from repro.errors import ConfigurationError
from repro.runtime import (
    RuntimeConfig,
    reset_deprecation_warnings,
    warn_deprecated_alias,
)


class TestValidation:
    def test_defaults_are_valid(self):
        config = RuntimeConfig()
        assert config.backend is None
        assert not config.parallel

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"backend": "turbo"},
            {"workers": -1},
            {"shards": 0},
            {"flush_threshold": 1.5},
            {"flush_threshold": -0.1},
            {"point_scalar_max": -1},
            {"sharded_min_cells": -1},
        ],
    )
    def test_bad_values_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            RuntimeConfig(**kwargs)

    def test_parallel_needs_more_than_one_worker(self):
        assert not RuntimeConfig(workers=1).parallel
        assert RuntimeConfig(workers=2).parallel

    def test_with_copies_validate(self):
        config = RuntimeConfig()
        assert config.with_backend("scalar").backend == "scalar"
        assert config.with_workers(4).workers == 4
        assert config.with_backend("scalar") is not config
        with pytest.raises(ConfigurationError):
            config.with_backend("turbo")


class TestAliasWarnings:
    @pytest.fixture(autouse=True)
    def rearm(self):
        reset_deprecation_warnings()
        yield
        reset_deprecation_warnings()

    def test_warns_exactly_once_per_site(self):
        with pytest.warns(DeprecationWarning, match="repro.runtime alias"):
            warn_deprecated_alias("f", "flag", "config=...")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            warn_deprecated_alias("f", "flag", "config=...")  # silent now
        # A different (func, kwarg) pair still warns.
        with pytest.warns(DeprecationWarning):
            warn_deprecated_alias("g", "flag", "config=...")

    def test_sample_delays_workers_alias(self, fig5):
        with pytest.warns(
            DeprecationWarning, match=r"sample_delays\(workers=\.\.\.\)"
        ):
            study = sample_delays(
                fig5, "n7", VariationModel(), samples=4, workers=1
            )
        assert np.all(np.isfinite(study.rlc.values))

    def test_optimize_width_alias(self):
        problem = WireSizingProblem(num_sections=6)
        with pytest.warns(
            DeprecationWarning, match=r"optimize_width\(use_incremental"
        ):
            old = optimize_width(problem, use_incremental=True)
        new = optimize_width(
            problem, config=RuntimeConfig(backend="incremental")
        )
        assert old.width == new.width

    def test_insert_buffers_alias(self):
        line = single_line(
            6, resistance=100.0, inductance=1e-9, capacitance=0.3e-12
        )
        cell = Buffer(output_resistance=30.0, input_capacitance=10e-15)
        with pytest.warns(
            DeprecationWarning, match=r"insert_buffers\(use_incremental"
        ):
            old = insert_buffers(line, cell, use_incremental=False)
        new = insert_buffers(line, cell, config=RuntimeConfig(backend="scalar"))
        assert old.buffer_nodes == new.buffer_nodes
        assert old.required_at_root == new.required_at_root
