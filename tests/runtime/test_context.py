"""ExecutionContext: sessions, stats, lifecycle, default resolution."""

import pytest

from repro.engine import compile_tree
from repro.engine.dispatch import pool_size
from repro.errors import ConfigurationError, ReproError
from repro.runtime import (
    ExecutionContext,
    RuntimeConfig,
    Workload,
    default_context,
    reset_default_context,
    resolve_context,
    set_default_context,
)


class TestSessions:
    def test_kind_inference(self, fig5):
        context = ExecutionContext()
        assert context.session(fig5).backend == "compiled"  # table
        assert context.session(fig5, kind="point").backend == "scalar"
        assert context.session(fig5, edits_expected=5).backend == "incremental"

    def test_forced_backend_beats_inference(self, fig5):
        context = ExecutionContext()
        session = context.session(fig5, kind="point", backend="compiled")
        assert session.backend == "compiled"
        assert session.plan.forced is True

    def test_config_backend_applies_to_every_session(self, fig5):
        context = ExecutionContext(RuntimeConfig(backend="scalar"))
        session = context.session(fig5)
        assert session.backend == "scalar"

    def test_plan_provenance_reaches_caller(self, fig5):
        session = ExecutionContext().session(fig5, kind="point")
        assert "point_scalar_max" in session.plan.reasons[0]


class TestStats:
    def test_mixed_workload_counters(self, fig5):
        context = ExecutionContext()
        context.session(fig5, kind="point").value("delay_50", "n7")
        context.session(fig5).report()
        editor = context.session(fig5, edits_expected=2).editor()
        editor.set_resistance("n1", 20.0)
        editor.value("delay_50", "n7")

        stats = context.stats()
        assert stats["dispatch"]["scalar"] == 2  # open + one value
        assert stats["dispatch"]["compiled"] == 2  # open + report
        assert stats["dispatch"]["incremental"] == 1  # open (direct edits)
        assert stats["workloads"]["point"] == 2
        assert stats["workloads"]["table"] == 2
        assert stats["workloads"]["edit"] == 1
        assert stats["plans"]["auto"] == 3
        assert stats["plans"]["forced"] == 0
        assert set(stats["caches"]) == {"topology", "incremental"}
        assert "workers" in stats["pool"]
        for phase, seconds in stats["phases"].items():
            assert seconds >= 0.0, phase

    def test_track_counts_external_engine_work(self, fig5):
        context = ExecutionContext()
        with context.track("compiled", "batch"):
            pass
        assert context.stats()["dispatch"]["compiled"] == 1
        assert context.stats()["workloads"]["batch"] == 1
        with pytest.raises(ConfigurationError):
            context.track("turbo", "batch")

    def test_reset(self, fig5):
        context = ExecutionContext()
        context.session(fig5)
        context.reset_stats()
        assert context.stats()["dispatch"] == {}
        assert context.stats()["plans"] == {
            "auto": 0, "forced": 0, "degraded": 0
        }

    def test_forced_plans_counted(self, fig5):
        context = ExecutionContext()
        context.plan(Workload("table", tree_size=9), backend="compiled")
        assert context.stats()["plans"]["forced"] == 1

    def test_registered_stats_group_rides_along(self, fig5):
        """The seam the service layer uses: external stat providers."""
        context = ExecutionContext()
        calls = {"count": 0}

        def provider():
            calls["count"] += 1
            return {"inflight": 3}

        context.add_stats_group("service", provider)
        stats = context.stats()
        assert stats["service"] == {"inflight": 3}
        assert calls["count"] == 1

    def test_registered_group_survives_reset(self, fig5):
        """A counter reset must not unhook a live service's stats."""
        context = ExecutionContext()
        context.add_stats_group("service", lambda: {"up": True})
        context.reset_stats()
        assert context.stats()["service"] == {"up": True}


class TestLifecycle:
    def test_close_is_idempotent(self):
        context = ExecutionContext()
        assert not context.closed
        context.close()
        context.close()
        assert context.closed

    def test_exception_still_tears_down(self, fig5):
        """The context-manager bugfix: teardown must run on the error path."""
        with pytest.raises(ReproError):
            with ExecutionContext() as context:
                context.session(fig5)
                raise ConfigurationError("boom")
        assert context.closed

    def test_close_shuts_worker_pool(self, fig5, line3):
        with ExecutionContext(RuntimeConfig(workers=2)) as context:
            results = context.analyze_many([fig5, line3])
            assert all(not isinstance(r, Exception) for r in results)
            assert pool_size() > 0
        assert pool_size() == 0


class TestDefaultContext:
    def test_default_is_a_singleton_until_closed(self):
        reset_default_context()
        first = default_context()
        assert default_context() is first
        first.close()
        assert default_context() is not first
        reset_default_context()

    def test_set_default(self):
        mine = ExecutionContext(RuntimeConfig(backend="scalar"))
        set_default_context(mine)
        try:
            assert default_context() is mine
            assert resolve_context() is mine
        finally:
            reset_default_context()

    def test_resolve_precedence(self):
        context = ExecutionContext()
        assert resolve_context(context) is context
        ephemeral = resolve_context(None, RuntimeConfig(workers=1))
        assert ephemeral is not default_context()
        assert ephemeral.config.workers == 1
        with pytest.raises(ConfigurationError, match="not both"):
            resolve_context(context, RuntimeConfig())

    def test_batch_workload_metadata(self, fig5):
        context = ExecutionContext()
        compiled = compile_tree(fig5)
        import numpy as np

        nominal = np.stack(
            [compiled.resistance, compiled.inductance, compiled.capacitance]
        )
        batch = context.batch(compiled, nominal[None].repeat(3, axis=0))
        assert batch.column("delay_50", "n7").shape == (3,)
        assert context.stats()["workloads"]["batch"] == 1
