"""Routing decisions: boundaries, forced overrides, provenance."""

import pytest

from repro.errors import ConfigurationError
from repro.runtime import (
    BACKEND_NAMES,
    WORKLOAD_KINDS,
    ExecutionPlan,
    RuntimeConfig,
    Workload,
    plan,
)


class TestWorkload:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            Workload(kind="stream")

    def test_cells_is_scenarios_times_nodes(self):
        assert Workload(kind="batch", tree_size=30, scenarios=100).cells == 3000
        assert Workload(kind="batch").cells == 0


class TestAutoRouting:
    """The decision table of the module docstring, edge by edge."""

    @pytest.mark.parametrize(
        "workload, config, expected",
        [
            # point: scalar up to and including point_scalar_max
            (Workload("point", tree_size=1), RuntimeConfig(), "scalar"),
            (Workload("point", tree_size=64), RuntimeConfig(), "scalar"),
            (Workload("point", tree_size=65), RuntimeConfig(), "compiled"),
            (
                Workload("point", tree_size=10),
                RuntimeConfig(point_scalar_max=9),
                "compiled",
            ),
            # table: always one vectorized pass
            (Workload("table", tree_size=3), RuntimeConfig(), "compiled"),
            (Workload("table", tree_size=5000), RuntimeConfig(), "compiled"),
            # batch: sharded only with workers > 1 AND enough cells
            (
                Workload("batch", tree_size=64, scenarios=64),
                RuntimeConfig(workers=4),
                "sharded",
            ),
            (
                Workload("batch", tree_size=64, scenarios=63),
                RuntimeConfig(workers=4),
                "compiled",
            ),
            (
                Workload("batch", tree_size=64, scenarios=64),
                RuntimeConfig(workers=1),
                "compiled",
            ),
            (
                Workload("batch", tree_size=64, scenarios=64),
                RuntimeConfig(),
                "compiled",
            ),
            (
                Workload("batch", tree_size=10, scenarios=10),
                RuntimeConfig(workers=2, sharded_min_cells=100),
                "sharded",
            ),
            # edit: delta updates are the whole point
            (Workload("edit", tree_size=8), RuntimeConfig(), "incremental"),
            (
                Workload("edit", tree_size=8, edit_count=10 ** 6),
                RuntimeConfig(workers=16),
                "incremental",
            ),
            # many: pool only with workers > 1 and at least two trees
            (
                Workload("many", tree_count=2),
                RuntimeConfig(workers=2),
                "sharded",
            ),
            (
                Workload("many", tree_count=1),
                RuntimeConfig(workers=8),
                "compiled",
            ),
            (Workload("many", tree_count=50), RuntimeConfig(), "compiled"),
        ],
    )
    def test_boundary(self, workload, config, expected):
        decision = plan(workload, config)
        assert decision.backend == expected
        assert decision.forced is False
        assert decision.reasons  # provenance is never empty

    def test_reasons_are_human_readable(self):
        decision = plan(Workload("point", tree_size=65))
        assert "point_scalar_max" in decision.reasons[0]
        assert "65" in decision.reasons[0]
        assert "point -> compiled [auto]" in str(decision)


class TestForcedOverride:
    @pytest.mark.parametrize("backend", BACKEND_NAMES)
    @pytest.mark.parametrize("kind", WORKLOAD_KINDS)
    def test_forced_always_wins(self, backend, kind):
        decision = plan(Workload(kind, tree_size=8), backend=backend)
        assert decision.backend == backend
        assert decision.forced is True
        assert "forced by call" in decision.reasons[0]

    def test_config_backend_forces_too(self):
        decision = plan(
            Workload("table", tree_size=8),
            RuntimeConfig(backend="scalar"),
        )
        assert decision.backend == "scalar"
        assert "forced by config" in decision.reasons[0]

    def test_call_beats_config(self):
        decision = plan(
            Workload("table", tree_size=8),
            RuntimeConfig(backend="scalar"),
            backend="incremental",
        )
        assert decision.backend == "incremental"
        assert "forced by call" in decision.reasons[0]

    def test_unknown_forced_backend_rejected(self):
        with pytest.raises(ConfigurationError):
            plan(Workload("table"), backend="turbo")

    def test_plan_is_a_value(self):
        decision = plan(Workload("edit"))
        assert isinstance(decision, ExecutionPlan)
        assert decision.workload.kind == "edit"
