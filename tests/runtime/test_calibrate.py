"""The measured serial/sharded crossover and its planner integration.

Everything here is deterministic: timings are injected through
``run_calibration``'s ``measure`` hook, so the fits, the break-even
solutions and the routing decisions are exact — no wall clock, no box
dependence. One small real-measurement test runs the actual
microbenchmark end to end (marked ``perf``-free: it only asserts the
calibration is well-formed, not that sharding wins on this machine).
"""

import warnings
from contextlib import contextmanager

import numpy as np
import pytest

from repro.runtime import (
    CrossoverCalibration,
    ExecutionContext,
    RuntimeConfig,
    Workload,
    load_calibration,
    plan,
    plan_shards,
    reset_calibration_warnings,
    run_calibration,
    save_calibration,
)
from repro.errors import ConfigurationError


@pytest.fixture(autouse=True)
def rearm_calibration_warnings():
    reset_calibration_warnings()
    yield
    reset_calibration_warnings()


@contextmanager
def warnings_catcher():
    """Record every warning that fires inside the block."""
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        yield caught


def linear_measure(
    serial_overhead, serial_per_cell, sharded_overhead, sharded_per_cell
):
    """A deterministic measure hook with exact linear cost curves."""

    def measure(mode, scenarios, cells):
        if mode == "serial":
            return serial_overhead + serial_per_cell * cells
        return sharded_overhead + sharded_per_cell * cells

    return measure


#: Sharded pays a big fixed overhead but a 4x smaller slope: the
#: curves cross at (5e-4 - 1e-6) / (1e-8 - 0.25e-8) = 66533.2 cells.
CROSSING = linear_measure(1e-6, 1e-8, 5e-4, 0.25e-8)

#: Sharded is slower at every size (steeper slope): never wins.
NEVER = linear_measure(1e-6, 1e-8, 5e-4, 2e-8)


class TestFitAndBreakeven:
    def test_recovers_the_exact_crossing(self):
        calibration = run_calibration(workers=4, measure=CROSSING)
        assert calibration.workers == 4
        assert calibration.breakeven_cells == 66534  # ceil of 66533.2
        assert calibration.serial_per_cell == pytest.approx(1e-8)
        assert calibration.sharded_per_cell == pytest.approx(0.25e-8)
        assert calibration.serial_overhead == pytest.approx(1e-6, abs=1e-9)
        assert calibration.sharded_overhead == pytest.approx(5e-4)

    def test_never_wins_when_sharded_slope_is_steeper(self):
        calibration = run_calibration(workers=4, measure=NEVER)
        assert calibration.breakeven_cells is None
        assert not calibration.sharded_wins(10**12)

    def test_one_worker_never_wins_whatever_the_fit_says(self):
        # Even a measure hook claiming sharded is faster cannot make a
        # one-worker box route to the pool.
        impossible = linear_measure(1e-6, 1e-8, 0.0, 1e-10)
        calibration = run_calibration(workers=1, measure=impossible)
        assert calibration.breakeven_cells is None

    def test_sharded_wins_is_a_threshold(self):
        calibration = run_calibration(workers=4, measure=CROSSING)
        below = calibration.breakeven_cells - 1
        assert not calibration.sharded_wins(below)
        assert calibration.sharded_wins(calibration.breakeven_cells)

    def test_predictions_match_the_injected_curves(self):
        calibration = run_calibration(workers=4, measure=CROSSING)
        assert calibration.predicted_serial(10**6) == pytest.approx(
            1e-6 + 1e-8 * 10**6
        )
        assert calibration.predicted_sharded(10**6) == pytest.approx(
            5e-4 + 0.25e-8 * 10**6
        )

    def test_samples_are_recorded(self):
        calibration = run_calibration(
            workers=4, sizes=(64, 256), measure=CROSSING
        )
        assert len(calibration.samples) == 2
        for cells, serial_s, sharded_s in calibration.samples:
            assert serial_s == CROSSING("serial", 0, cells)
            assert sharded_s == CROSSING("sharded", 0, cells)

    def test_input_validation(self):
        with pytest.raises(ConfigurationError):
            run_calibration(workers=4, repeats=0, measure=CROSSING)
        with pytest.raises(ConfigurationError):
            run_calibration(workers=4, sizes=(), measure=CROSSING)


class TestNonPhysicalFitsAreClamped:
    """Regression: a negative fitted intercept must not survive.

    The shipped BENCH_crossover.json once carried
    ``serial_overhead = -0.0012``, making ``predicted_serial()``
    negative for small batches and skewing ``_breakeven``.
    """

    #: Serial samples lying exactly on a line with a *negative*
    #: intercept; sharded on a crossing line with a smaller slope.
    NEGATIVE_INTERCEPT = staticmethod(
        linear_measure(-1.2e-3, 1.6e-7, 4.3e-4, 0.4e-7)
    )

    def test_fitted_overheads_clamp_at_zero(self):
        calibration = run_calibration(
            workers=4, measure=self.NEGATIVE_INTERCEPT
        )
        assert calibration.serial_overhead == 0.0
        assert calibration.sharded_overhead == pytest.approx(4.3e-4)

    def test_predicted_costs_are_never_negative(self):
        calibration = run_calibration(
            workers=4, measure=self.NEGATIVE_INTERCEPT
        )
        for cells in (0, 1, 64, 4096):
            assert calibration.predicted_serial(cells) >= 0.0
            assert calibration.predicted_sharded(cells) >= 0.0

    def test_breakeven_uses_the_clamped_intercept(self):
        # With the raw fit, the crossing would be at
        # (4.3e-4 - (-1.2e-3)) / (1.6e-7 - 0.4e-7) = 13583.3 cells;
        # clamping the serial intercept to 0 moves it to
        # 4.3e-4 / 1.2e-7 = 3583.3 -> ceil 3584. Pin the clamped value.
        calibration = run_calibration(
            workers=4, measure=self.NEGATIVE_INTERCEPT
        )
        assert calibration.breakeven_cells == 3584
        assert not calibration.sharded_wins(3583)
        assert calibration.sharded_wins(3584)

    def test_direct_construction_clamps_too(self):
        # load_calibration of a legacy file with negative coefficients
        # goes through the same constructor clamp.
        calibration = CrossoverCalibration(
            workers=2,
            serial_overhead=-0.0012,
            serial_per_cell=1.6e-7,
            sharded_overhead=4.3e-4,
            sharded_per_cell=2.2e-7,
            breakeven_cells=None,
        )
        assert calibration.serial_overhead == 0.0
        assert calibration.predicted_serial(1) > 0.0


class TestPersistence:
    def test_round_trip(self, tmp_path):
        calibration = run_calibration(workers=4, measure=CROSSING)
        path = save_calibration(calibration, tmp_path / "cal.json")
        assert load_calibration(path) == calibration

    def test_round_trip_preserves_never_wins(self, tmp_path):
        calibration = run_calibration(workers=4, measure=NEVER)
        path = save_calibration(calibration, tmp_path / "cal.json")
        assert load_calibration(path).breakeven_cells is None

    def test_missing_file_raises_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_calibration(tmp_path / "absent.json")

    def test_corrupt_file_degrades_to_uncalibrated_with_warning(
        self, tmp_path
    ):
        # Regression: a truncated/garbled file used to raise
        # ConfigurationError and take the whole context down with it.
        bad = tmp_path / "bad.json"
        bad.write_text("{\"workers\": \"many\"}")
        with pytest.warns(RuntimeWarning, match="corrupt"):
            assert load_calibration(bad) is None
        bad.write_text("not json at all")
        reset_calibration_warnings()
        with pytest.warns(RuntimeWarning, match="continuing uncalibrated"):
            assert load_calibration(bad) is None

    def test_truncated_write_is_impossible_mid_save(
        self, tmp_path, monkeypatch
    ):
        # Atomicity regression: crash the serializer mid-save and the
        # previously persisted calibration must survive intact.
        path = tmp_path / "cal.json"
        good = run_calibration(workers=4, measure=CROSSING)
        save_calibration(good, path)

        import os as _os

        def exploding_replace(src, dst):
            raise OSError("simulated crash before rename")

        monkeypatch.setattr(_os, "replace", exploding_replace)
        with pytest.raises(OSError, match="simulated crash"):
            save_calibration(run_calibration(workers=2, measure=NEVER), path)
        monkeypatch.undo()
        assert load_calibration(path) == good
        # No temp droppings left behind in the directory.
        assert [p.name for p in tmp_path.iterdir()] == ["cal.json"]

    def test_corrupt_file_warns_only_once(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("]")
        with pytest.warns(RuntimeWarning):
            load_calibration(bad)
        with warnings_catcher() as caught:
            load_calibration(bad)
        assert caught == []


class TestPlannerIntegration:
    def test_batch_routes_by_breakeven_not_static_threshold(self):
        calibration = run_calibration(workers=4, measure=CROSSING)
        # Static threshold would say sharded (cells >= 4096); the
        # measured break-even says serial — measurement wins.
        config = RuntimeConfig(workers=4, calibration=calibration)
        below = plan(
            Workload(kind="batch", tree_size=33, scenarios=500), config
        )
        assert below.workload.cells == 16500
        assert below.backend == "compiled"
        assert any("break-even" in reason for reason in below.reasons)
        above = plan(
            Workload(kind="batch", tree_size=33, scenarios=5000), config
        )
        assert above.backend == "sharded"

    def test_never_wins_calibration_pins_everything_serial(self):
        calibration = run_calibration(workers=4, measure=NEVER)
        config = RuntimeConfig(workers=4, calibration=calibration)
        huge = plan(
            Workload(kind="batch", tree_size=1000, scenarios=10**6), config
        )
        assert huge.backend == "compiled"

    def test_without_calibration_static_threshold_still_applies(self):
        config = RuntimeConfig(workers=4)
        decision = plan(
            Workload(kind="batch", tree_size=100, scenarios=100), config
        )
        assert decision.backend == "sharded"
        assert any("sharded_min_cells" in r for r in decision.reasons)

    def test_forced_backend_beats_calibration(self):
        calibration = run_calibration(workers=4, measure=NEVER)
        config = RuntimeConfig(workers=4, calibration=calibration)
        decision = plan(
            Workload(kind="batch", tree_size=10, scenarios=10),
            config,
            backend="sharded",
        )
        assert decision.backend == "sharded"
        assert decision.forced

    def test_config_rejects_calibration_without_protocol(self):
        with pytest.raises(ConfigurationError, match="sharded_wins"):
            RuntimeConfig(calibration={"breakeven_cells": 5})


class TestPlanShards:
    def test_without_calibration_one_shard_per_worker(self):
        assert plan_shards(10**6, 8) == 8
        assert plan_shards(10**6, 8, None) == 8

    def test_small_batches_get_fewer_larger_shards(self):
        calibration = run_calibration(workers=8, measure=CROSSING)
        breakeven = calibration.breakeven_cells
        # Just past break-even: ~2 shards, each carrying ~breakeven/2
        # cells, not 8 slivers drowning in dispatch overhead.
        assert plan_shards(breakeven, 8, calibration) == 2
        assert plan_shards(10 * breakeven, 8, calibration) == 8

    def test_never_below_one_or_above_workers(self):
        calibration = run_calibration(workers=8, measure=CROSSING)
        assert plan_shards(1, 8, calibration) == 1
        assert plan_shards(10**12, 8, calibration) == 8
        assert plan_shards(10**12, 1, calibration) == 1


class TestContextIntegration:
    def test_calibrate_installs_and_returns_the_model(self):
        with ExecutionContext(RuntimeConfig(workers=4)) as context:
            calibration = context.calibrate(measure=CROSSING)
            assert isinstance(calibration, CrossoverCalibration)
            assert context.config.calibration is calibration
            decision = context.plan(
                Workload(kind="batch", tree_size=33, scenarios=500)
            )
            assert decision.backend == "compiled"

    def test_calibrated_routing_is_never_slower_than_serial(self):
        # The locally verifiable form of the acceptance gate: every
        # batch below the measured break-even runs on the in-process
        # engine (zero dispatch overhead == serial cost), and results
        # are bitwise identical however the call is routed.
        from repro.circuit import fig5_tree
        from repro.engine import analyze_batch, compile_tree

        ct = compile_tree(fig5_tree())
        rng = np.random.default_rng(5)
        rlc = rng.uniform(0.5, 2.0, size=(30, 3, ct.size))
        calibration = run_calibration(workers=4, measure=CROSSING)
        config = RuntimeConfig(workers=4, calibration=calibration)
        with ExecutionContext(config) as context:
            routed = context.batch(ct, rlc)
            stats = context.stats()
        assert stats["dispatch"].get("sharded", 0) == 0
        serial = analyze_batch(ct, rlc)
        assert np.array_equal(
            routed.metrics.delay_50, serial.metrics.delay_50, equal_nan=True
        )

    def test_workers_mismatch_ignores_calibration_with_warning(self):
        # Regression: a calibration measured at workers=2 used to drive
        # routing for a context configured with 8 workers.
        calibration = run_calibration(workers=2, measure=CROSSING)
        config = RuntimeConfig(workers=8, calibration=calibration)
        with pytest.warns(RuntimeWarning, match="workers=2"):
            context = ExecutionContext(config)
        with context:
            # The stale model is gone: batch routing falls back to the
            # static sharded_min_cells threshold.
            assert context.config.calibration is None
            decision = context.plan(
                Workload(kind="batch", tree_size=100, scenarios=100)
            )
            assert any("sharded_min_cells" in r for r in decision.reasons)
            assert context.stats()["calibration_stale"] is True

    def test_matching_workers_keeps_calibration(self):
        calibration = run_calibration(workers=4, measure=CROSSING)
        with ExecutionContext(
            RuntimeConfig(workers=4, calibration=calibration)
        ) as context:
            assert context.config.calibration is calibration
            assert context.stats()["calibration_stale"] is False

    def test_workers_mismatch_warns_once_per_shape(self):
        calibration = run_calibration(workers=2, measure=CROSSING)
        config = RuntimeConfig(workers=8, calibration=calibration)
        with pytest.warns(RuntimeWarning):
            ExecutionContext(config).close()
        with warnings_catcher() as caught:
            ExecutionContext(config).close()
        assert caught == []

    def test_real_measurement_round_trips(self):
        # One genuine (tiny) microbenchmark: whatever this box can do,
        # the calibration must be well-formed and self-consistent.
        calibration = run_calibration(
            workers=1, sizes=(16, 64), repeats=1
        )
        assert calibration.workers == 1
        assert calibration.breakeven_cells is None  # one worker
        assert len(calibration.samples) == 2
        assert all(s > 0 and p > 0 for _, s, p in calibration.samples)
