"""The backend registry and cross-backend result equivalence.

The acceptance bar for routing: every backend answers every metric with
**bitwise-identical** values on in-domain trees, so the planner's choice
is purely a cost decision. These tests pin that equivalence on the
paper's Fig. 5 tree, for sessions and for batches.
"""

import numpy as np
import pytest

from repro.engine import compile_tree
from repro.errors import ConfigurationError
from repro.runtime import (
    BACKEND_NAMES,
    BackendRegistry,
    ExecutionContext,
    ScalarBackend,
    default_registry,
)

METRICS = (
    "delay_50",
    "rise_time",
    "overshoot",
    "settling",
    "t_rc",
    "t_lc",
    "zeta",
    "omega_n",
    "elmore_delay",
)


class TestRegistry:
    def test_default_registry_holds_the_four(self):
        registry = default_registry()
        assert registry.names() == BACKEND_NAMES
        for name in BACKEND_NAMES:
            assert name in registry
            assert registry.get(name).name == name

    def test_unknown_backend_raises(self):
        with pytest.raises(ConfigurationError, match="unknown backend"):
            default_registry().get("turbo")

    def test_duplicate_registration_rejected(self):
        registry = BackendRegistry.with_defaults()
        with pytest.raises(ConfigurationError, match="already registered"):
            registry.register(ScalarBackend())
        registry.register(ScalarBackend(), replace=True)  # explicit wins

    def test_capability_surface(self):
        registry = default_registry()
        assert registry.get("scalar").supports("point")
        assert not registry.get("scalar").supports("batch")
        assert registry.get("incremental").supports("edit")
        assert not registry.get("incremental").supports("many")
        with pytest.raises(ConfigurationError, match="does not support"):
            registry.get("scalar").require("batch")

    def test_plan_surfaces_capability_mismatch(self, fig5):
        context = ExecutionContext()
        compiled = compile_tree(fig5)
        block = np.stack(
            [compiled.resistance, compiled.inductance, compiled.capacitance]
        )[None]
        with pytest.raises(ConfigurationError, match="does not support"):
            context.batch(compiled, block, backend="scalar")


class TestSessionEquivalence:
    """Auto-routed == every forced backend, bit for bit."""

    @pytest.fixture(scope="class")
    def reference(self):
        """Node -> metric -> value from the forced scalar sweep."""
        from repro.circuit import fig5_tree

        tree = fig5_tree()
        session = ExecutionContext().session(tree, backend="scalar")
        return {
            node: {m: session.value(m, node) for m in METRICS}
            for node in tree.nodes
        }

    @pytest.mark.parametrize("backend", [None, *BACKEND_NAMES])
    def test_bitwise_identical_metrics(self, fig5, reference, backend):
        session = ExecutionContext().session(fig5, backend=backend)
        for node, expected in reference.items():
            for metric, want in expected.items():
                got = session.value(metric, node)
                assert got == want, (backend, node, metric)

    def test_compiled_tree_source(self, fig5, reference):
        compiled = compile_tree(fig5)
        for backend in ("compiled", "incremental"):
            session = ExecutionContext().session(compiled, backend=backend)
            for node, expected in reference.items():
                got = session.value("delay_50", node)
                assert got == expected["delay_50"], backend

    def test_scalar_needs_a_tree(self, fig5):
        with pytest.raises(ConfigurationError, match="RLCTree"):
            ExecutionContext().session(
                compile_tree(fig5), backend="scalar"
            )

    def test_timing_and_report_agree(self, fig5):
        context = ExecutionContext()
        rows = {
            backend: context.session(fig5, backend=backend).report()
            for backend in ("scalar", "compiled", "incremental")
        }
        for a, b in zip(rows["scalar"], rows["compiled"]):
            assert a == b
        for a, b in zip(rows["scalar"], rows["incremental"]):
            assert a == b

    def test_editor_only_on_incremental(self, fig5):
        context = ExecutionContext()
        session = context.session(fig5, backend="incremental")
        session.editor()  # live analyzer, no error
        with pytest.raises(ConfigurationError, match="edit streams"):
            context.session(fig5, backend="compiled").editor()


class TestBatchEquivalence:
    def test_forced_backends_match_bitwise(self, fig5, rng):
        compiled = compile_tree(fig5)
        nominal = np.stack(
            [compiled.resistance, compiled.inductance, compiled.capacitance]
        )
        factors = rng.uniform(0.5, 2.0, size=(20, 3, compiled.size))
        block = factors * nominal

        context = ExecutionContext()
        auto = context.batch(compiled, block, metrics=("delay_50", "t_rc"))
        for backend in ("compiled", "sharded"):
            forced = context.batch(
                compiled, block, metrics=("delay_50", "t_rc"), backend=backend
            )
            for metric in ("delay_50", "t_rc"):
                for node in compiled.names:
                    assert np.array_equal(
                        forced.column(metric, node),
                        auto.column(metric, node),
                    ), (backend, metric, node)

    def test_analyze_many_matches_per_tree_sessions(self, fig5, line3):
        context = ExecutionContext()
        tables = context.analyze_many([fig5, line3])
        for tree, table in zip((fig5, line3), tables):
            session = context.session(tree)
            for node in tree.nodes:
                assert table.value("delay_50", node) == session.value(
                    "delay_50", node
                )
