"""Planner-level graceful degradation when circuit breakers are open.

The contract: a tripped backend is routed around along
``sharded -> compiled -> scalar``, the plan records the walk in its
provenance (``degraded``/``degraded_from`` plus reasons), a forced
backend is never rerouted, and capability floors hold — batch/many
never degrade below the compiled kernels. Context-level behaviour
(warn-once notice, stats counters) rides the same machinery.
"""

import warnings

import pytest

from repro.runtime import (
    ExecutionContext,
    RuntimeConfig,
    Workload,
    plan,
    reset_degradation_warnings,
)


@pytest.fixture(autouse=True)
def rearm_warnings():
    reset_degradation_warnings()
    yield
    reset_degradation_warnings()


PARALLEL = RuntimeConfig(workers=4)


def big_batch():
    return Workload(kind="batch", tree_size=100, scenarios=1000)


class TestPlannerDegradation:
    def test_healthy_routing_unchanged(self):
        decision = plan(big_batch(), PARALLEL)
        assert decision.backend == "sharded"
        assert not decision.degraded
        assert decision.degraded_from is None

    def test_open_sharded_degrades_batch_to_compiled(self):
        decision = plan(big_batch(), PARALLEL, unavailable=("sharded",))
        assert decision.backend == "compiled"
        assert decision.degraded
        assert decision.degraded_from == "sharded"
        assert any("breaker open" in reason for reason in decision.reasons)
        assert "degraded from sharded" in str(decision)

    def test_open_sharded_degrades_many_to_compiled(self):
        workload = Workload(kind="many", tree_count=8)
        decision = plan(workload, PARALLEL, unavailable=("sharded",))
        assert decision.backend == "compiled"
        assert decision.degraded_from == "sharded"

    def test_batch_never_degrades_below_compiled(self):
        # Even with both parallel backends tripped, batch needs the
        # compiled kernels: the walk stops at the capability floor.
        decision = plan(
            big_batch(), PARALLEL, unavailable=("sharded", "compiled")
        )
        assert decision.backend == "compiled"
        assert decision.degraded  # it did leave sharded
        assert any("needs the compiled kernels" in r for r in decision.reasons)

    def test_point_degrades_compiled_to_scalar(self):
        workload = Workload(kind="point", tree_size=1000)
        decision = plan(workload, RuntimeConfig(), unavailable=("compiled",))
        assert decision.backend == "scalar"
        assert decision.degraded_from == "compiled"

    def test_forced_backend_ignores_open_breaker(self):
        decision = plan(
            big_batch(),
            PARALLEL,
            backend="sharded",
            unavailable=("sharded",),
        )
        assert decision.backend == "sharded"
        assert decision.forced
        assert not decision.degraded
        assert any("ignored" in reason for reason in decision.reasons)

    def test_unrelated_open_breaker_is_no_op(self):
        decision = plan(big_batch(), PARALLEL, unavailable=("scalar",))
        assert decision.backend == "sharded"
        assert not decision.degraded


class TestContextDegradation:
    def test_tripped_breaker_degrades_and_counts(self, fig5):
        context = ExecutionContext(RuntimeConfig(workers=4))
        context.breakers.breaker("sharded").trip("test trip")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            results = context.analyze_many([fig5, fig5, fig5])
        assert len(results) == 3
        stats = context.stats()
        assert stats["plans"]["degraded"] == 1
        assert stats["dispatch"] == {"compiled": 1}
        assert stats["breakers"]["sharded"]["state"] == "open"

    def test_degradation_warns_once_per_route(self, fig5):
        context = ExecutionContext(RuntimeConfig(workers=4))
        context.breakers.breaker("sharded").trip("test trip")
        with pytest.warns(RuntimeWarning, match="repro.runtime degraded"):
            context.analyze_many([fig5, fig5])
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            context.analyze_many([fig5, fig5])  # silent the second time

    def test_closed_breaker_keeps_sharded_route(self, fig5):
        context = ExecutionContext(RuntimeConfig(workers=4))
        decision = context.plan(Workload(kind="many", tree_count=4))
        assert decision.backend == "sharded"
        assert not decision.degraded

    def test_stats_snapshot_has_supervision_group(self):
        context = ExecutionContext()
        stats = context.stats()
        assert "supervision" in stats
        for key in ("timeouts", "retries", "rebuilds", "worker_deaths"):
            assert key in stats["supervision"]
        assert "generation" in stats["pool"]
