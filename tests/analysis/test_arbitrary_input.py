"""Unit tests for the Section-IV iterative method (shaped-input metrics)."""

import math

import numpy as np
import pytest

from repro.analysis import (
    SecondOrderModel,
    TreeAnalyzer,
    input_crossing,
    response_metrics,
    scaled_delay_exact,
    scaled_rise_exact,
)
from repro.circuit import fig5_tree, scale_tree_to_zeta
from repro.errors import ElementValueError, SimulationError
from repro.simulation import (
    ExactSimulator,
    ExponentialSource,
    PWLSource,
    RampSource,
    StepSource,
    measures,
)

WN = 1e10


class TestInputCrossing:
    def test_step(self):
        assert input_crossing(StepSource(delay=2e-9), 0.5) == 2e-9

    def test_ramp(self):
        src = RampSource(rise_time=4e-9, delay=1e-9)
        assert input_crossing(src, 0.5) == pytest.approx(3e-9)
        assert input_crossing(src, 0.25) == pytest.approx(2e-9)

    def test_exponential(self):
        src = ExponentialSource(tau=1e-9)
        assert input_crossing(src, 0.5) == pytest.approx(math.log(2) * 1e-9)
        assert input_crossing(src, 0.9) == pytest.approx(src.rise_time_90)

    def test_pwl(self):
        src = PWLSource.from_points([(0.0, 0.0), (2e-9, 1.0)])
        assert input_crossing(src, 0.5) == pytest.approx(1e-9)

    def test_crossing_is_on_waveform(self):
        for src in (
            RampSource(rise_time=3e-9),
            ExponentialSource(tau=0.7e-9),
            PWLSource.from_points([(0.0, 0.0), (1e-9, 0.4), (3e-9, 1.0)]),
        ):
            t = input_crossing(src, 0.5)
            assert float(src(t)) == pytest.approx(0.5 * src.final_value,
                                                  rel=1e-6)

    def test_level_validation(self):
        with pytest.raises(SimulationError):
            input_crossing(StepSource(), 1.5)


class TestStepConsistency:
    """With a step input the iterative method must land on the exact
    scaled crossings (not the fit — the true values)."""

    @pytest.mark.parametrize("zeta", [0.3, 0.8, 1.0, 2.0])
    def test_matches_exact_scaled_metrics(self, zeta):
        model = SecondOrderModel(zeta=zeta, omega_n=WN)
        metrics = response_metrics(model)
        assert metrics.delay_50 == pytest.approx(
            scaled_delay_exact(zeta) / WN, rel=1e-6
        )
        assert metrics.rise_time == pytest.approx(
            scaled_rise_exact(zeta) / WN, rel=1e-6
        )

    def test_step_overshoot_matches_eq39(self):
        from repro.analysis import overshoot_fraction

        model = SecondOrderModel(zeta=0.4, omega_n=WN)
        metrics = response_metrics(model)
        assert metrics.overshoot == pytest.approx(
            overshoot_fraction(model, 1), rel=1e-3
        )

    def test_step_input_crossing_zero(self):
        model = SecondOrderModel(zeta=1.0, omega_n=WN)
        metrics = response_metrics(model)
        assert metrics.input_t50 == 0.0
        assert metrics.t50_absolute == metrics.delay_50


class TestShapedInputs:
    def test_slow_ramp_delay_is_first_moment(self):
        """For an input much slower than the node, the output is the
        input delayed by the transfer function's group delay at DC —
        i.e. the first moment ``2 zeta / w_n`` (Elmore's original time
        constant), *not* the 50%-crossing step delay."""
        model = SecondOrderModel(zeta=0.3, omega_n=WN)
        slow = response_metrics(
            model, RampSource(rise_time=2e4 / WN)
        ).delay_50
        assert slow == pytest.approx(2 * 0.3 / WN, rel=1e-3)
        # and that is clearly different from the step delay at low zeta
        assert slow < 0.7 * response_metrics(model).delay_50

    def test_fast_exponential_approaches_step_metrics(self):
        model = SecondOrderModel(zeta=0.7, omega_n=WN)
        step = response_metrics(model)
        fast = response_metrics(model, ExponentialSource(tau=1e-5 / WN))
        assert fast.delay_50 == pytest.approx(step.delay_50, rel=1e-3)
        assert fast.rise_time == pytest.approx(step.rise_time, rel=1e-3)

    def test_overshoot_shrinks_with_slower_input(self):
        model = SecondOrderModel(zeta=0.3, omega_n=WN)
        overshoots = [
            response_metrics(model, ExponentialSource(tau=tau / WN)).overshoot
            for tau in (0.01, 1.0, 10.0)
        ]
        assert overshoots[0] > overshoots[1] > overshoots[2]

    def test_amplitude_invariance(self):
        model = SecondOrderModel(zeta=0.8, omega_n=WN)
        unit = response_metrics(model, ExponentialSource(tau=2 / WN))
        scaled = response_metrics(
            model, ExponentialSource(tau=2 / WN, amplitude=3.3)
        )
        assert scaled.delay_50 == pytest.approx(unit.delay_50, rel=1e-9)
        assert scaled.rise_time == pytest.approx(unit.rise_time, rel=1e-9)

    def test_against_simulated_crossings(self):
        """End to end: iterative-method crossings vs the exact simulator
        under the same exponential input."""
        tree = scale_tree_to_zeta(fig5_tree(), "n7", 0.6)
        analyzer = TreeAnalyzer(tree)
        simulator = ExactSimulator(tree)
        source = ExponentialSource(tau=3e-11)
        t = simulator.time_grid(points=20001, span_factor=16.0)
        waveform = simulator.response(source, "n7", t)
        simulated_t50 = measures.threshold_crossing(t, waveform, 0.5)
        predicted = analyzer.metrics_for("n7", source)
        assert predicted.t50_absolute == pytest.approx(simulated_t50,
                                                       rel=0.08)


class TestAnalyzerIntegration:
    def test_metrics_for_default_consistency(self):
        tree = scale_tree_to_zeta(fig5_tree(), "n7", 0.7)
        analyzer = TreeAnalyzer(tree)
        iterative = analyzer.metrics_for("n7", StepSource())
        fitted = analyzer.delay_50("n7")
        # Fit error only (the fit is within ~3% of the true crossing).
        assert iterative.delay_50 == pytest.approx(fitted, rel=0.04)

    def test_rc_node_rejected(self, rc_line):
        with pytest.raises(ElementValueError, match="RC limit"):
            TreeAnalyzer(rc_line).metrics_for("n5", StepSource())

    def test_zero_final_value_rejected(self):
        model = SecondOrderModel(zeta=1.0, omega_n=WN)
        with pytest.raises(SimulationError, match="zero"):
            response_metrics(model, StepSource(amplitude=0.0))
