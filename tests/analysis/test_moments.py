"""Unit tests for the O(n) moment machinery, cross-checked against the
naive O(n^2) path oracle and the exact simulator."""

import numpy as np
import pytest

from repro.analysis import (
    capacitive_loads,
    elmore_sums,
    exact_moments,
    inductance_sums,
    moment_summary,
    multiplication_count,
    second_order_sums,
    weighted_path_sums,
)
from repro.circuit import fig5_tree, random_tree, single_line
from repro.circuit.paths import (
    all_elmore_inductance_sums,
    all_elmore_resistance_sums,
)
from repro.errors import ReductionError
from repro.simulation import ExactSimulator


class TestCapacitiveLoads:
    def test_line_loads_accumulate(self):
        line = single_line(3, resistance=1.0, inductance=1e-9, capacitance=1e-12)
        loads = capacitive_loads(line)
        assert loads["n3"] == pytest.approx(1e-12)
        assert loads["n2"] == pytest.approx(2e-12)
        assert loads["n1"] == pytest.approx(3e-12)

    def test_fig5_loads(self, fig5):
        loads = capacitive_loads(fig5)
        assert loads["n1"] == pytest.approx(7 * 0.5e-12)
        assert loads["n3"] == pytest.approx(3 * 0.5e-12)
        assert loads["n7"] == pytest.approx(0.5e-12)


class TestRecursiveSumsMatchOracle:
    """The Appendix O(n) algorithm must equal direct path intersection."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_random_trees(self, seed):
        tree = random_tree(30, np.random.default_rng(seed))
        t_rc, t_lc = second_order_sums(tree)
        oracle_rc = all_elmore_resistance_sums(tree)
        oracle_lc = all_elmore_inductance_sums(tree)
        for node in tree.nodes:
            assert t_rc[node] == pytest.approx(oracle_rc[node], rel=1e-12)
            assert t_lc[node] == pytest.approx(oracle_lc[node], rel=1e-12)

    def test_fig5(self, fig5):
        assert elmore_sums(fig5) == pytest.approx(all_elmore_resistance_sums(fig5))
        assert inductance_sums(fig5) == pytest.approx(
            all_elmore_inductance_sums(fig5)
        )

    def test_fig8(self, fig8):
        assert elmore_sums(fig8) == pytest.approx(all_elmore_resistance_sums(fig8))


class TestWeightedPathSums:
    def test_unit_weights_recover_path_totals(self, fig5):
        w = {n: 1.0 for n in fig5.nodes}
        zeros = {n: 0.0 for n in fig5.nodes}
        sums = weighted_path_sums(fig5, w, zeros)
        # With w_r = 1 at every node: sum over k of R_k,i where each
        # section on path(i) counts once per node in its subtree.
        for node in fig5.nodes:
            expected = sum(
                fig5.section(s).resistance * len(fig5.subtree(s))
                for s in fig5.path_to(node)
            )
            assert sums[node] == pytest.approx(expected)

    def test_capacitance_weights_equal_elmore(self, fig8):
        w = {n: fig8.section(n).capacitance for n in fig8.nodes}
        zeros = {n: 0.0 for n in fig8.nodes}
        sums = weighted_path_sums(fig8, w, zeros)
        assert sums == pytest.approx(elmore_sums(fig8))


class TestExactMoments:
    def test_single_section_closed_form(self):
        r, l, c = 10.0, 2e-9, 1e-12
        line = single_line(1, resistance=r, inductance=l, capacitance=c)
        m = exact_moments(line, 3)["n1"]
        # 1/(1 + RCs + LCs^2) = 1 - RCs + ((RC)^2 - LC)s^2
        #                         - ((RC)^3 - 2 RC LC)s^3 ...
        rc, lc = r * c, l * c
        assert m[0] == 1.0
        assert m[1] == pytest.approx(-rc)
        assert m[2] == pytest.approx(rc * rc - lc)
        assert m[3] == pytest.approx(-(rc**3) + 2 * rc * lc)

    def test_m1_is_minus_elmore_sum(self, fig8):
        m = exact_moments(fig8, 1)
        t_rc = elmore_sums(fig8)
        for node in fig8.nodes:
            assert m[node][1] == pytest.approx(-t_rc[node])

    def test_against_exact_transfer_function(self, fig8):
        """Moments must match a Taylor fit of the simulator's exact H(s)."""
        sim = ExactSimulator(fig8)
        m = exact_moments(fig8, 2)
        poles, residues = sim.residues("out")
        for j in range(3):
            from_poles = float(np.real((-residues / poles ** (j + 1)).sum()))
            assert m["out"][j] == pytest.approx(from_poles, rel=1e-9)

    def test_order_zero(self, fig5):
        m = exact_moments(fig5, 0)
        assert all(v == [1.0] for v in m.values())

    def test_negative_order_rejected(self, fig5):
        with pytest.raises(ReductionError):
            exact_moments(fig5, -1)

    def test_rc_tree_moment_signs_alternate(self, rc_line):
        # An RC tree's moments alternate in sign (all-real-pole system).
        m = exact_moments(rc_line, 5)["n5"]
        for j in range(1, 6):
            assert (m[j] > 0) == (j % 2 == 0)


class TestMomentSummary:
    def test_m2_approx_formula(self, fig8):
        summary = moment_summary(fig8)
        t_rc, t_lc = second_order_sums(fig8)
        for node, info in summary.items():
            assert info.m2_approx == pytest.approx(
                t_rc[node] ** 2 - t_lc[node]
            )

    def test_m2_gap_is_modest_at_sinks(self, fig5):
        # eq. 28 is an Elmore-style approximation: right order of
        # magnitude, not exact.
        info = moment_summary(fig5, ["n7"])["n7"]
        # Strong inductance makes m2 negative (complex poles); eq. 28
        # must still land within tens of percent, not orders of magnitude.
        assert info.m2_exact != 0
        assert info.m2_relative_gap < 0.5

    def test_subset_selection(self, fig5):
        assert set(moment_summary(fig5, ["n1", "n7"])) == {"n1", "n7"}


class TestComplexity:
    def test_multiplication_count_linear(self):
        for n in (4, 16, 64):
            line = single_line(n, resistance=1.0, inductance=1e-9,
                               capacitance=1e-12)
            assert multiplication_count(line) == 2 * n


class TestSelectiveMoments:
    def test_nodes_subset_matches_full_run(self, fig8):
        full = exact_moments(fig8, 3)
        subset = exact_moments(fig8, 3, ["out"])
        assert set(subset) == {"out"}
        assert subset["out"] == full["out"]

    def test_unknown_node_rejected(self, fig8):
        with pytest.raises(ReductionError):
            exact_moments(fig8, 2, ["zzz"])

    def test_single_quantity_sums_match_pair(self, fig8):
        t_rc, t_lc = second_order_sums(fig8)
        assert elmore_sums(fig8) == pytest.approx(t_rc, rel=1e-15)
        assert inductance_sums(fig8) == pytest.approx(t_lc, rel=1e-15)
