"""Unit tests for the overshoot train and settling time (eqs. 39-42),
cross-checked against the model's own step response and measured peaks."""

import math

import numpy as np
import pytest

from repro.analysis import (
    SecondOrderModel,
    overshoot_fraction,
    overshoot_time,
    overshoot_train,
    settling_oscillation_count,
    settling_time,
)
from repro.errors import ElementValueError
from repro.simulation import measures

WN = 1e10


class TestClosedForms:
    def test_eq39_formula(self):
        model = SecondOrderModel(zeta=0.4, omega_n=WN)
        expected = math.exp(-math.pi * 0.4 / math.sqrt(1 - 0.16))
        assert overshoot_fraction(model, 1) == pytest.approx(expected)
        assert overshoot_fraction(model, 3) == pytest.approx(expected**3)

    def test_eq40_formula(self):
        model = SecondOrderModel(zeta=0.4, omega_n=WN)
        wd = WN * math.sqrt(1 - 0.16)
        assert overshoot_time(model, 1) == pytest.approx(math.pi / wd)
        assert overshoot_time(model, 2) == pytest.approx(2 * math.pi / wd)

    def test_overshoots_require_underdamping(self):
        model = SecondOrderModel(zeta=1.2, omega_n=WN)
        with pytest.raises(ElementValueError, match="zeta < 1"):
            overshoot_fraction(model)
        with pytest.raises(ElementValueError):
            overshoot_time(model)

    def test_index_validation(self):
        model = SecondOrderModel(zeta=0.5, omega_n=WN)
        with pytest.raises(ElementValueError):
            overshoot_fraction(model, 0)
        with pytest.raises(ElementValueError):
            overshoot_time(model, 0)


class TestAgainstOwnWaveform:
    """The analytic extrema must sit exactly on the eq. 31 response."""

    @pytest.mark.parametrize("zeta", [0.2, 0.5, 0.8])
    def test_peak_times_and_values(self, zeta):
        model = SecondOrderModel(zeta=zeta, omega_n=WN)
        train = overshoot_train(model, threshold=1e-3)
        assert train, "expected ringing"
        for peak in train[:4]:
            value = model.step_response(np.array([peak.time]))[0]
            assert value == pytest.approx(peak.value, rel=1e-9)

    @pytest.mark.parametrize("zeta", [0.3, 0.6])
    def test_against_measured_extrema(self, zeta):
        model = SecondOrderModel(zeta=zeta, omega_n=WN)
        t = np.linspace(0, 40 / WN, 40001)
        v = model.step_response(t)
        measured = measures.overshoots(t, v, minimum_size=1e-3)
        train = overshoot_train(model, threshold=1e-3)
        for (mt, mv), peak in zip(measured, train):
            assert mt == pytest.approx(peak.time, rel=1e-3)
            assert mv == pytest.approx(peak.value, rel=1e-4)


class TestTrainStructure:
    def test_alternating_signs(self):
        train = overshoot_train(SecondOrderModel(zeta=0.3, omega_n=WN))
        for peak in train:
            if peak.index % 2 == 1:
                assert peak.value > 1.0
                assert peak.is_overshoot
            else:
                assert peak.value < 1.0
                assert not peak.is_overshoot

    def test_geometric_decay(self):
        train = overshoot_train(SecondOrderModel(zeta=0.3, omega_n=WN))
        ratios = [
            train[i + 1].fraction / train[i].fraction for i in range(len(train) - 1)
        ]
        for ratio in ratios:
            assert ratio == pytest.approx(ratios[0], rel=1e-9)

    def test_threshold_truncates(self):
        model = SecondOrderModel(zeta=0.3, omega_n=WN)
        long = overshoot_train(model, threshold=1e-6)
        short = overshoot_train(model, threshold=1e-2)
        assert len(long) > len(short)
        assert all(p.fraction >= 1e-2 for p in short)

    def test_final_value_scaling(self):
        model = SecondOrderModel(zeta=0.4, omega_n=WN)
        unit = overshoot_train(model)
        scaled = overshoot_train(model, final_value=2.5)
        assert scaled[0].value == pytest.approx(2.5 * unit[0].value)

    def test_strong_damping_short_train(self):
        # Lambda_1 at zeta = 0.95 is ~7e-5, so a 1e-5 threshold keeps
        # only a couple of barely-visible extrema.
        train = overshoot_train(SecondOrderModel(zeta=0.95, omega_n=WN),
                                threshold=1e-5)
        assert 0 < len(train) <= 2


class TestSettling:
    def test_eq42_structure(self):
        model = SecondOrderModel(zeta=0.3, omega_n=WN)
        n = settling_oscillation_count(model, band=0.1)
        assert settling_time(model, band=0.1) == pytest.approx(
            overshoot_time(model, n)
        )
        # n is minimal: excursion n-1 must still exceed the band.
        assert overshoot_fraction(model, n) <= 0.1
        if n > 1:
            assert overshoot_fraction(model, n - 1) > 0.1

    @pytest.mark.parametrize("zeta", [0.2, 0.5, 0.8])
    def test_against_measured_settling(self, zeta):
        model = SecondOrderModel(zeta=zeta, omega_n=WN)
        t = np.linspace(0, 80 / WN, 80001)
        v = model.step_response(t)
        measured = measures.settling_time(t, v, band=0.1)
        analytic = settling_time(model, band=0.1)
        # The analytic value is the *extremum* time; the band exit
        # happens up to half a ringing period earlier.
        half_period = math.pi / model.damped_frequency
        assert measured <= analytic + 1e-12
        assert analytic - measured <= half_period

    def test_monotone_settling_uses_dominant_pole(self):
        model = SecondOrderModel(zeta=2.0, omega_n=WN)
        slow_pole = max(p.real for p in model.poles())
        expected = -math.log(0.1) / abs(slow_pole)
        assert settling_time(model, band=0.1) == pytest.approx(expected)

    def test_tighter_band_longer_settle(self):
        model = SecondOrderModel(zeta=0.3, omega_n=WN)
        assert settling_time(model, band=0.01) > settling_time(model, band=0.2)

    def test_band_validation(self):
        model = SecondOrderModel(zeta=0.5, omega_n=WN)
        for bad in (0.0, 1.0, -0.5):
            with pytest.raises(ElementValueError):
                settling_time(model, band=bad)
            with pytest.raises(ElementValueError):
                settling_oscillation_count(model, band=bad)
