"""Unit tests for the closed-form/convolution response dispatch."""

import numpy as np
import pytest

from repro.analysis import SecondOrderModel, convolution_response, model_response
from repro.errors import SimulationError
from repro.simulation import (
    ExponentialSource,
    PWLSource,
    RampSource,
    StepSource,
)

WN = 1e10


@pytest.fixture
def model():
    return SecondOrderModel(zeta=0.6, omega_n=WN)


@pytest.fixture
def grid():
    return np.linspace(0, 60 / WN, 6001)


class TestDispatch:
    def test_step(self, model, grid):
        np.testing.assert_allclose(
            model_response(model, StepSource(amplitude=1.5), grid),
            model.step_response(grid, amplitude=1.5),
        )

    def test_exponential(self, model, grid):
        src = ExponentialSource(tau=2 / WN, amplitude=2.0, delay=1 / WN)
        np.testing.assert_allclose(
            model_response(model, src, grid),
            model.exponential_response(grid, tau=2 / WN, amplitude=2.0,
                                       delay=1 / WN),
        )

    def test_ramp(self, model, grid):
        src = RampSource(rise_time=5 / WN)
        np.testing.assert_allclose(
            model_response(model, src, grid),
            model.ramp_response(grid, rise_time=5 / WN),
        )

    def test_pwl_final_value(self, model, grid):
        src = PWLSource.from_points([(0.0, 0.0), (3 / WN, 0.8), (6 / WN, 0.8)])
        v = model_response(model, src, grid)
        assert v[-1] == pytest.approx(0.8, rel=1e-3)

    def test_pwl_equals_equivalent_ramp(self, model, grid):
        ramp = RampSource(rise_time=4 / WN)
        pwl = PWLSource.from_points([(0.0, 0.0), (4 / WN, 1.0)])
        np.testing.assert_allclose(
            model_response(model, pwl, grid),
            model_response(model, ramp, grid),
            atol=1e-9,
        )

    def test_unsupported_type_rejected(self, model, grid):
        with pytest.raises(SimulationError):
            model_response(model, object(), grid)


class TestConvolution:
    def test_matches_closed_form_for_exponential(self, model, grid):
        src = ExponentialSource(tau=3 / WN)
        closed = model.exponential_response(grid, tau=3 / WN)
        numeric = convolution_response(model, src, grid)
        np.testing.assert_allclose(numeric, closed, atol=2e-3)

    def test_callable_dispatches_to_convolution(self, model, grid):
        def custom(t):
            return np.where(t >= 0, 1.0 - np.exp(-t * WN / 3), 0.0)

        via_dispatch = model_response(model, custom, grid)
        direct = convolution_response(model, custom, grid)
        np.testing.assert_allclose(via_dispatch, direct)

    def test_nonuniform_grid_rejected(self, model):
        t = np.array([0.0, 1.0, 3.0]) / WN
        with pytest.raises(SimulationError, match="uniform"):
            convolution_response(model, lambda x: np.ones_like(x), t)

    def test_wrong_shape_source_rejected(self, model, grid):
        with pytest.raises(SimulationError, match="shaped"):
            convolution_response(model, lambda x: np.zeros(3), grid)

    def test_tiny_grid_rejected(self, model):
        with pytest.raises(SimulationError):
            convolution_response(
                model, lambda x: np.ones_like(x), np.array([0.0])
            )
