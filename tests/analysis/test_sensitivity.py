"""Unit tests for the analytic delay/rise gradients, validated against
central finite differences on the closed forms themselves."""

import math

import numpy as np
import pytest

from repro.analysis import (
    TreeAnalyzer,
    delay_sensitivities,
    scaled_delay,
    scaled_delay_derivative,
    scaled_rise,
    scaled_rise_derivative,
)
from repro.circuit import Section, fig5_tree, fig8_tree, random_tree
from repro.errors import ConfigurationError, TopologyError


def finite_difference(tree, node, section, attribute, metric, h_rel=1e-6):
    """Central difference of the closed-form metric."""
    base = tree.section(section)
    values = {
        "resistance": base.resistance,
        "inductance": base.inductance,
        "capacitance": base.capacitance,
    }
    h = values[attribute] * h_rel if values[attribute] else 1e-16

    def metric_with(delta):
        bumped = dict(values)
        bumped[attribute] += delta
        patched = tree.map_sections(
            lambda name, s: Section(**bumped) if name == section else s
        )
        analyzer = TreeAnalyzer(patched)
        return (
            analyzer.delay_50(node) if metric == "delay"
            else analyzer.rise_time(node)
        )

    return (metric_with(h) - metric_with(-h)) / (2.0 * h)


class TestScaledDerivatives:
    @pytest.mark.parametrize("zeta", [0.2, 0.7, 1.0, 2.0, 4.0])
    def test_delay_derivative_matches_fd(self, zeta):
        h = 1e-7
        numeric = (scaled_delay(zeta + h) - scaled_delay(zeta - h)) / (2 * h)
        assert scaled_delay_derivative(zeta) == pytest.approx(numeric, rel=1e-5)

    @pytest.mark.parametrize("zeta", [0.2, 0.7, 1.0, 2.0, 4.0])
    def test_rise_derivative_matches_fd(self, zeta):
        h = 1e-7
        numeric = (scaled_rise(zeta + h) - scaled_rise(zeta - h)) / (2 * h)
        assert scaled_rise_derivative(zeta) == pytest.approx(numeric, rel=1e-5)

    def test_delay_derivative_positive(self):
        for zeta in np.linspace(0.05, 8.0, 50):
            assert scaled_delay_derivative(zeta) > 0


class TestGradientCorrectness:
    @pytest.mark.parametrize("metric", ["delay", "rise"])
    @pytest.mark.parametrize(
        "section,attribute",
        [
            ("n1", "resistance"),
            ("n1", "inductance"),
            ("n1", "capacitance"),
            ("out", "resistance"),
            ("out", "capacitance"),
            ("n7", "capacitance"),  # off-path node: only C matters
            ("n6", "inductance"),  # off-path node: dL must be zero
        ],
    )
    def test_matches_finite_difference(self, fig8, metric, section, attribute):
        report = delay_sensitivities(fig8, "out", metric=metric)
        analytic = getattr(
            report.sensitivities[section], f"d_{attribute}"
        )
        numeric = finite_difference(fig8, "out", section, attribute, metric)
        assert analytic == pytest.approx(numeric, rel=1e-4, abs=1e-18)

    def test_value_matches_analyzer(self, fig8):
        analyzer = TreeAnalyzer(fig8)
        assert delay_sensitivities(fig8, "out").value == pytest.approx(
            analyzer.delay_50("out")
        )
        assert delay_sensitivities(fig8, "out", "rise").value == pytest.approx(
            analyzer.rise_time("out")
        )

    @pytest.mark.parametrize("seed", [0, 1])
    def test_random_tree_full_gradient(self, seed):
        tree = random_tree(12, np.random.default_rng(seed))
        sink = tree.leaves()[-1]
        report = delay_sensitivities(tree, sink)
        for section in tree.nodes:
            for attribute in ("resistance", "inductance", "capacitance"):
                analytic = getattr(
                    report.sensitivities[section], f"d_{attribute}"
                )
                numeric = finite_difference(tree, sink, section, attribute,
                                            "delay")
                scale = max(abs(numeric), abs(analytic), 1e-30)
                assert abs(analytic - numeric) <= 1e-3 * scale


class TestGradientStructure:
    def test_off_path_r_l_zero(self, fig5):
        report = delay_sensitivities(fig5, "n7")
        for off_path in ("n2", "n4", "n5", "n6"):
            assert report.wrt_resistance(off_path) == 0.0
            assert report.wrt_inductance(off_path) == 0.0

    def test_every_capacitance_matters(self, fig5):
        report = delay_sensitivities(fig5, "n7")
        for node in fig5.nodes:
            assert report.wrt_capacitance(node) > 0.0

    def test_resistance_derivative_positive_on_path(self, fig5):
        report = delay_sensitivities(fig5, "n7")
        for on_path in ("n1", "n3", "n7"):
            assert report.wrt_resistance(on_path) > 0.0

    def test_upstream_capacitance_weighs_more(self, fig5):
        # dT_RC/dC_k = R_ki grows with shared path, so deeper-on-path
        # capacitances matter more for the sink delay.
        report = delay_sensitivities(fig5, "n7")
        assert report.wrt_capacitance("n7") > report.wrt_capacitance("n3")
        assert report.wrt_capacitance("n3") > report.wrt_capacitance("n2")

    def test_rc_tree_gradient(self, rc_line):
        report = delay_sensitivities(rc_line, "n5")
        # Elmore limit: dD/dR_s = ln2 * C_load(s), dD/dL = 0.
        assert report.wrt_inductance("n3") == 0.0
        expected = math.log(2) * 3 * 0.1e-12  # 3 downstream caps of n3
        assert report.wrt_resistance("n3") == pytest.approx(expected)

    def test_steepest_sections_ranked(self, fig8):
        report = delay_sensitivities(fig8, "out")
        ranked = report.steepest_sections(len(fig8.nodes))
        impacts = [report.sensitivities[s].relative_impact for s in ranked]
        assert impacts == sorted(impacts, reverse=True)
        assert len(report.steepest_sections(3)) == 3

    def test_validation(self, fig5):
        with pytest.raises(TopologyError):
            delay_sensitivities(fig5, "zzz")
        with pytest.raises(ConfigurationError):
            delay_sensitivities(fig5, "n7", metric="slew")
