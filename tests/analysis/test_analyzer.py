"""Unit tests for the TreeAnalyzer front end."""

import math

import numpy as np
import pytest

from repro.analysis import TreeAnalyzer, elmore_sums
from repro.circuit import fig5_tree, scale_tree_to_zeta, single_line
from repro.errors import ConfigurationError, ElementValueError, TopologyError
from repro.circuit import RLCTree, Section


class TestPrimitives:
    def test_sums_match_moments_module(self, fig8):
        analyzer = TreeAnalyzer(fig8)
        reference = elmore_sums(fig8)
        for node in fig8.nodes:
            t_rc, _ = analyzer.sums(node)
            assert t_rc == pytest.approx(reference[node])

    def test_zeta_definition(self, fig5):
        analyzer = TreeAnalyzer(fig5)
        t_rc, t_lc = analyzer.sums("n7")
        assert analyzer.zeta("n7") == pytest.approx(
            t_rc / (2 * math.sqrt(t_lc))
        )

    def test_scaled_tree_hits_zeta(self, fig5):
        tree = scale_tree_to_zeta(fig5, "n7", 0.42)
        assert TreeAnalyzer(tree).zeta("n7") == pytest.approx(0.42)

    def test_unknown_node(self, fig5):
        with pytest.raises(TopologyError):
            TreeAnalyzer(fig5).sums("zzz")

    def test_empty_tree_rejected(self):
        with pytest.raises(TopologyError):
            TreeAnalyzer(RLCTree())

    def test_bad_band_rejected(self, fig5):
        with pytest.raises(ConfigurationError):
            TreeAnalyzer(fig5, settle_band=0.0)


class TestRCLimit:
    def test_rc_tree_reports_infinite_zeta(self, rc_line):
        analyzer = TreeAnalyzer(rc_line)
        assert analyzer.zeta("n5") == math.inf
        assert analyzer.omega_n("n5") == math.inf
        assert analyzer.model("n5") is None

    def test_rc_delay_is_elmore(self, rc_line):
        analyzer = TreeAnalyzer(rc_line)
        t_rc, _ = analyzer.sums("n5")
        assert analyzer.delay_50("n5") == pytest.approx(math.log(2) * t_rc)
        assert analyzer.rise_time("n5") == pytest.approx(math.log(9) * t_rc)

    def test_rc_overshoot_zero(self, rc_line):
        analyzer = TreeAnalyzer(rc_line)
        assert analyzer.overshoot("n5") == 0.0
        assert analyzer.overshoots("n5") == []

    def test_rc_step_waveform_single_pole(self, rc_line):
        analyzer = TreeAnalyzer(rc_line)
        t_rc, _ = analyzer.sums("n5")
        t = np.linspace(0, 10 * t_rc, 200)
        v = analyzer.step_waveform("n5", t)
        np.testing.assert_allclose(v, 1.0 - np.exp(-t / t_rc), atol=1e-12)

    def test_rc_waveform_rejects_shaped_source(self, rc_line):
        from repro.simulation import StepSource

        with pytest.raises(ElementValueError, match="RC limit"):
            TreeAnalyzer(rc_line).waveform("n5", StepSource(), np.zeros(4))

    def test_rlc_delay_approaches_elmore_for_tiny_l(self):
        heavy = single_line(4, resistance=100.0, inductance=1e-15,
                            capacitance=1e-12)
        analyzer = TreeAnalyzer(heavy)
        assert analyzer.delay_50("n4") == pytest.approx(
            analyzer.elmore_delay("n4"), rel=0.01
        )


class TestMetrics:
    def test_timing_bundle_consistent(self, fig5):
        analyzer = TreeAnalyzer(fig5)
        timing = analyzer.timing("n7")
        assert timing.delay_50 == pytest.approx(analyzer.delay_50("n7"))
        assert timing.rise_time == pytest.approx(analyzer.rise_time("n7"))
        assert timing.zeta == pytest.approx(analyzer.zeta("n7"))
        assert timing.overshoot == pytest.approx(analyzer.overshoot("n7"))
        assert timing.settling == pytest.approx(analyzer.settling_time("n7"))
        assert timing.elmore_delay == pytest.approx(analyzer.elmore_delay("n7"))

    def test_delay_monotone_along_path(self, fig5):
        analyzer = TreeAnalyzer(fig5)
        assert (
            analyzer.delay_50("n1")
            < analyzer.delay_50("n3")
            < analyzer.delay_50("n7")
        )

    def test_report_covers_all_nodes(self, fig8):
        report = TreeAnalyzer(fig8).report()
        assert {t.node for t in report} == set(fig8.nodes)

    def test_report_subset(self, fig5):
        report = TreeAnalyzer(fig5).report(["n1", "n7"])
        assert [t.node for t in report] == ["n1", "n7"]

    def test_critical_sink_is_a_leaf(self, fig8):
        analyzer = TreeAnalyzer(fig8)
        critical = analyzer.critical_sink()
        assert critical.node in fig8.leaves()
        assert critical.delay_50 == max(
            analyzer.delay_50(s) for s in fig8.leaves()
        )

    def test_underdamped_flags(self, fig5):
        ringing = scale_tree_to_zeta(fig5, "n7", 0.4)
        timing = TreeAnalyzer(ringing).timing("n7")
        assert timing.is_underdamped
        assert timing.overshoot > 0.1

    def test_balanced_sinks_identical(self, fig5):
        analyzer = TreeAnalyzer(fig5)
        delays = {analyzer.delay_50(s) for s in fig5.leaves()}
        assert max(delays) == pytest.approx(min(delays))


class TestWaveforms:
    def test_step_waveform_matches_model(self, fig5):
        analyzer = TreeAnalyzer(fig5)
        model = analyzer.model("n7")
        t = analyzer.time_grid("n7", points=301)
        np.testing.assert_allclose(
            analyzer.step_waveform("n7", t), model.step_response(t)
        )

    def test_time_grid_covers_settling(self, fig5):
        analyzer = TreeAnalyzer(fig5)
        t = analyzer.time_grid("n7")
        assert t[-1] > analyzer.settling_time("n7")
        v = analyzer.step_waveform("n7", t)
        assert v[-1] == pytest.approx(1.0, abs=2e-2)

    def test_waveform_with_source(self, fig5):
        from repro.simulation import ExponentialSource

        analyzer = TreeAnalyzer(fig5)
        t = analyzer.time_grid("n7", points=501)
        v = analyzer.waveform("n7", ExponentialSource(tau=t[-1] / 30), t)
        assert v[-1] == pytest.approx(1.0, rel=5e-2)


class TestMixedTree:
    def test_mixed_rc_rlc_nodes(self):
        """A tree where one path has inductance and the other does not:
        T_LC can be zero at some nodes and positive at others."""
        tree = RLCTree()
        tree.add_section("a", "in", section=Section(10.0, 0.0, 1e-12))
        tree.add_section("rc", "a", section=Section(10.0, 0.0, 1e-12))
        tree.add_section("rl", "a", section=Section(10.0, 5e-9, 1e-12))
        analyzer = TreeAnalyzer(tree)
        assert analyzer.zeta("rc") == math.inf
        assert analyzer.zeta("rl") < math.inf
        assert analyzer.delay_50("rc") > 0
        assert analyzer.delay_50("rl") > 0


class TestScalarTimingBuildsModelOnce:
    def test_from_sums_called_once_per_timing(self, fig5, monkeypatch):
        from repro.analysis.second_order import SecondOrderModel

        calls = []
        original = SecondOrderModel.from_sums.__func__

        def counting(cls, t_rc, t_lc):
            calls.append((t_rc, t_lc))
            return original(cls, t_rc, t_lc)

        monkeypatch.setattr(
            SecondOrderModel, "from_sums", classmethod(counting)
        )
        analyzer = TreeAnalyzer(fig5, use_engine=False)
        timing = analyzer.timing("n7")
        assert math.isfinite(timing.delay_50)
        assert len(calls) == 1

    def test_scalar_timing_matches_individual_accessors(self, fig5):
        analyzer = TreeAnalyzer(fig5, use_engine=False)
        for node in fig5.nodes:
            timing = analyzer.timing(node)
            assert timing.zeta == analyzer.zeta(node)
            assert timing.omega_n == analyzer.omega_n(node)
            assert timing.delay_50 == analyzer.delay_50(node)
            assert timing.rise_time == analyzer.rise_time(node)
            assert timing.overshoot == analyzer.overshoot(node)
            assert timing.settling == analyzer.settling_time(node)
