"""Unit tests for the Fig. 6 scaled metrics and the eq. 33/34 fits."""

import math

import numpy as np
import pytest

from repro.analysis import (
    DELAY_FIT_COEFFICIENTS,
    fit_delay,
    fit_rise,
    scaled_delay,
    scaled_delay_exact,
    scaled_rise,
    scaled_rise_exact,
    scaled_step_response,
    scaled_threshold_crossing,
)
from repro.errors import FittingError


class TestExactScaledMetrics:
    def test_lossless_limit_delay(self):
        # zeta -> 0: v = 1 - cos(tau) crosses 0.5 at tau = pi/3 = 1.047...
        assert scaled_delay_exact(1e-6) == pytest.approx(math.pi / 3, rel=1e-4)

    def test_lossless_limit_rise(self):
        # 1 - cos crossings: acos(0.1) - acos(0.9).
        expected = math.acos(0.1) - math.acos(0.9)
        assert scaled_rise_exact(1e-6) == pytest.approx(expected, rel=1e-4)

    def test_critical_damping_delay(self):
        # (1 + tau) e^-tau = 0.5 at tau ~ 1.6783.
        assert scaled_delay_exact(1.0) == pytest.approx(1.6783, rel=1e-3)

    def test_large_zeta_asymptote(self):
        # Dominant pole time constant ~ 2 zeta: delay -> 2 ln2 zeta.
        z = 50.0
        assert scaled_delay_exact(z) == pytest.approx(2 * math.log(2) * z, rel=1e-2)
        assert scaled_rise_exact(z) == pytest.approx(2 * math.log(9) * z, rel=1e-2)

    def test_crossing_is_on_response(self):
        for zeta in (0.3, 1.0, 2.0):
            tau = scaled_threshold_crossing(zeta, 0.5)
            v = scaled_step_response(zeta, np.array([tau]))[0]
            assert v == pytest.approx(0.5, abs=1e-9)

    def test_delay_increases_with_zeta(self):
        grid = [0.2, 0.5, 1.0, 2.0, 4.0]
        values = [scaled_delay_exact(z) for z in grid]
        assert values == sorted(values)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(FittingError):
            scaled_threshold_crossing(0.5, 1.5)
        with pytest.raises(FittingError):
            scaled_threshold_crossing(-1.0, 0.5)


class TestPublishedDelayFit:
    def test_coefficients_are_eq33(self):
        assert DELAY_FIT_COEFFICIENTS == (1.047, 0.85, 1.39)

    @pytest.mark.parametrize("zeta", [0.1, 0.3, 0.5, 0.7, 1.0, 1.5, 2.0, 3.0, 5.0])
    def test_within_three_percent_of_exact(self, zeta):
        assert scaled_delay(zeta) == pytest.approx(
            scaled_delay_exact(zeta), rel=0.03
        )

    def test_vectorized(self):
        z = np.array([0.5, 1.0, 2.0])
        out = scaled_delay(z)
        assert out.shape == (3,)
        assert out[0] == pytest.approx(scaled_delay(0.5))

    def test_scalar_returns_float(self):
        assert isinstance(scaled_delay(1.0), float)


class TestRiseFit:
    @pytest.mark.parametrize("zeta", [0.1, 0.3, 0.5, 0.7, 1.0, 1.5, 2.0, 3.0, 5.0])
    def test_within_three_percent_of_exact(self, zeta):
        assert scaled_rise(zeta) == pytest.approx(scaled_rise_exact(zeta), rel=0.03)

    def test_monotone_increasing(self):
        z = np.linspace(0.05, 8.0, 200)
        values = scaled_rise(z)
        assert np.all(np.diff(values) > 0)

    def test_positive_everywhere(self):
        z = np.linspace(0.01, 20.0, 500)
        assert np.all(scaled_rise(z) > 0)


class TestRefitProcedure:
    """Re-running the paper's own fitting procedure must land close to
    the published coefficients / shipped fit."""

    def test_delay_refit_matches_published_quality(self):
        result = fit_delay()
        assert result.max_relative_error < 0.05
        a, b, c = result.coefficients
        # Asymptotic slope must be the Elmore limit 2 ln 2 = 1.386...
        assert c == pytest.approx(1.39, abs=0.05)
        assert a == pytest.approx(1.047, abs=0.15)
        assert b == pytest.approx(0.85, abs=0.2)

    def test_rise_refit_matches_shipped_quality(self):
        result = fit_rise()
        assert result.max_relative_error < 0.05
        z = np.linspace(0.1, 4.0, 50)
        np.testing.assert_allclose(result(z), scaled_rise(z), rtol=0.05)

    def test_custom_grid(self):
        result = fit_delay(zeta_grid=np.linspace(0.3, 2.0, 20))
        assert result.max_relative_error < 0.03
        assert len(result.zeta_grid) == 20

    def test_tiny_grid_rejected(self):
        with pytest.raises(FittingError):
            fit_delay(zeta_grid=[0.5, 1.0])

    def test_unknown_form_rejected(self):
        with pytest.raises(FittingError):
            fit_delay(form="septic_spline")

    def test_fit_result_callable(self):
        result = fit_delay()
        assert result(1.0) == pytest.approx(scaled_delay_exact(1.0), rel=0.05)
