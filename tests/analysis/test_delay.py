"""Unit tests for the closed-form delay/rise expressions and the RC limit."""

import math

import pytest

from repro.analysis import (
    SecondOrderModel,
    delay_50,
    delay_50_from_sums,
    elmore_delay,
    elmore_time_constant,
    rise_time,
    rise_time_from_sums,
    scaled_delay,
    scaled_rise,
    wyatt_rise_time,
)
from repro.errors import ElementValueError


class TestModelMetrics:
    def test_delay_is_scaled_fit_over_wn(self):
        model = SecondOrderModel(zeta=0.8, omega_n=2e10)
        assert delay_50(model) == pytest.approx(scaled_delay(0.8) / 2e10)

    def test_rise_is_scaled_fit_over_wn(self):
        model = SecondOrderModel(zeta=0.8, omega_n=2e10)
        assert rise_time(model) == pytest.approx(scaled_rise(0.8) / 2e10)

    def test_delay_scales_inversely_with_wn(self):
        slow = SecondOrderModel(zeta=1.0, omega_n=1e9)
        fast = SecondOrderModel(zeta=1.0, omega_n=1e10)
        assert delay_50(slow) == pytest.approx(10 * delay_50(fast))


class TestFromSums:
    def test_matches_model_construction(self):
        t_rc, t_lc = 2e-10, 5e-21
        expected = delay_50(SecondOrderModel.from_sums(t_rc, t_lc))
        assert delay_50_from_sums(t_rc, t_lc) == pytest.approx(expected)

    def test_rc_limit_is_elmore(self):
        assert delay_50_from_sums(2e-10, 0.0) == pytest.approx(
            math.log(2) * 2e-10
        )
        assert rise_time_from_sums(2e-10, 0.0) == pytest.approx(
            math.log(9) * 2e-10
        )

    def test_continuity_at_rc_limit(self):
        """Eq. 37's selling point: as T_LC -> 0 the RLC formula converges
        to the Elmore (Wyatt) value (1.39/2 vs ln 2: within 1%)."""
        t_rc = 2e-10
        tiny_lc = (t_rc / 2000.0) ** 2  # zeta = 1000
        rlc = delay_50_from_sums(t_rc, tiny_lc)
        rc = delay_50_from_sums(t_rc, 0.0)
        assert rlc == pytest.approx(rc, rel=0.01)

    def test_rise_continuity_at_rc_limit(self):
        t_rc = 2e-10
        tiny_lc = (t_rc / 2000.0) ** 2
        assert rise_time_from_sums(t_rc, tiny_lc) == pytest.approx(
            rise_time_from_sums(t_rc, 0.0), rel=0.05
        )

    def test_validation(self):
        with pytest.raises(ElementValueError):
            delay_50_from_sums(0.0, 1e-20)
        with pytest.raises(ElementValueError):
            delay_50_from_sums(1e-10, -1e-20)
        with pytest.raises(ElementValueError):
            rise_time_from_sums(-1e-10, 0.0)


class TestRCExpressions:
    def test_elmore_delay_factor(self):
        assert elmore_delay(1e-10) == pytest.approx(math.log(2) * 1e-10)

    def test_elmore_time_constant_identity(self):
        assert elmore_time_constant(3e-10) == 3e-10

    def test_wyatt_rise(self):
        assert wyatt_rise_time(1e-10) == pytest.approx(math.log(9) * 1e-10)

    def test_zero_allowed(self):
        assert elmore_delay(0.0) == 0.0
        assert wyatt_rise_time(0.0) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ElementValueError):
            elmore_delay(-1e-10)
        with pytest.raises(ElementValueError):
            wyatt_rise_time(-1e-10)
