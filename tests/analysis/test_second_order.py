"""Unit tests for the SecondOrderModel closed forms."""

import cmath
import math

import numpy as np
import pytest

from repro.analysis import SecondOrderModel
from repro.errors import ElementValueError

WN = 1e10


class TestConstruction:
    def test_from_sums_single_section(self):
        # eqs. 29-30 degenerate to eqs. 14-15 for one section.
        r, l, c = 10.0, 2e-9, 1e-12
        model = SecondOrderModel.from_sums(r * c, l * c)
        assert model.omega_n == pytest.approx(1.0 / math.sqrt(l * c))
        assert model.zeta == pytest.approx(0.5 * r * math.sqrt(c / l))

    def test_from_moments_round_trip(self):
        model = SecondOrderModel(zeta=0.6, omega_n=WN)
        m = model.moments(2)
        again = SecondOrderModel.from_moments(m[1], m[2])
        assert again.zeta == pytest.approx(0.6)
        assert again.omega_n == pytest.approx(WN)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ElementValueError):
            SecondOrderModel(zeta=0.0, omega_n=WN)
        with pytest.raises(ElementValueError):
            SecondOrderModel(zeta=0.5, omega_n=-1.0)
        with pytest.raises(ElementValueError):
            SecondOrderModel(zeta=math.inf, omega_n=WN)

    def test_from_sums_validation(self):
        with pytest.raises(ElementValueError):
            SecondOrderModel.from_sums(-1e-10, 1e-20)
        with pytest.raises(ElementValueError, match="RC node"):
            SecondOrderModel.from_sums(1e-10, 0.0)

    def test_from_moments_validation(self):
        with pytest.raises(ElementValueError):
            SecondOrderModel.from_moments(1e-10, 1e-20)  # m1 positive
        with pytest.raises(ElementValueError):
            SecondOrderModel.from_moments(-1e-10, 2e-20)  # m1^2 < m2


class TestPoles:
    def test_underdamped_conjugate_pair(self):
        model = SecondOrderModel(zeta=0.5, omega_n=WN)
        p1, p2 = model.poles()
        assert p1 == p2.conjugate()
        assert p1.real == pytest.approx(-0.5 * WN)
        assert abs(p1.imag) == pytest.approx(WN * math.sqrt(0.75))

    def test_overdamped_real_pair(self):
        model = SecondOrderModel(zeta=2.0, omega_n=WN)
        p1, p2 = model.poles()
        assert p1.imag == 0.0 and p2.imag == 0.0
        assert p1.real * p2.real == pytest.approx(WN * WN)  # product = wn^2

    def test_poles_satisfy_characteristic_eq(self):
        for zeta in (0.3, 1.0, 2.5):
            model = SecondOrderModel(zeta=zeta, omega_n=WN)
            for p in model.poles():
                residual = 1.0 + 2 * zeta * p / WN + (p / WN) ** 2
                assert abs(residual) < 1e-9


class TestMomentsAndTransfer:
    def test_low_order_moments(self):
        model = SecondOrderModel(zeta=0.7, omega_n=WN)
        m = model.moments(2)
        assert m[0] == 1.0
        assert m[1] == pytest.approx(-2 * 0.7 / WN)
        assert m[2] == pytest.approx((2 * 0.7 / WN) ** 2 - 1.0 / WN**2)

    def test_transfer_function_at_poles_is_large(self):
        model = SecondOrderModel(zeta=0.4, omega_n=WN)
        p1, _ = model.poles()
        near = model.transfer_function(p1 * (1 + 1e-8))
        assert abs(near) > 1e6

    def test_dc_gain_unity(self):
        model = SecondOrderModel(zeta=1.3, omega_n=WN)
        assert complex(model.transfer_function(0.0)).real == pytest.approx(1.0)

    def test_moments_match_transfer_function_derivative(self):
        model = SecondOrderModel(zeta=0.9, omega_n=WN)
        s = 1e-4 * WN
        # Central difference kills the even-order terms.
        numeric_m1 = (
            complex(model.transfer_function(s)).real
            - complex(model.transfer_function(-s)).real
        ) / (2 * s)
        assert numeric_m1 == pytest.approx(model.moments(1)[1], rel=1e-6)


class TestStepResponse:
    @pytest.mark.parametrize("zeta", [0.2, 0.7, 1.0, 1.5, 4.0])
    def test_boundary_values(self, zeta):
        model = SecondOrderModel(zeta=zeta, omega_n=WN)
        horizon = 50.0 * max(zeta, 1.0 / zeta) / WN
        t = np.linspace(0, horizon, 4000)
        v = model.step_response(t)
        assert v[0] == pytest.approx(0.0, abs=1e-12)
        assert v[-1] == pytest.approx(1.0, rel=1e-3)

    def test_negative_time_clamped_to_zero(self):
        model = SecondOrderModel(zeta=0.5, omega_n=WN)
        t = np.array([-1e-9, -1e-12, 0.0])
        np.testing.assert_array_equal(model.step_response(t)[:2], [0.0, 0.0])

    def test_underdamped_overshoots_supply(self):
        model = SecondOrderModel(zeta=0.3, omega_n=WN)
        t = np.linspace(0, 30 / WN, 5000)
        assert model.step_response(t).max() > 1.3

    def test_overdamped_monotone(self):
        model = SecondOrderModel(zeta=2.0, omega_n=WN)
        t = np.linspace(0, 100 / WN, 5000)
        v = model.step_response(t)
        assert np.all(np.diff(v) >= -1e-12)
        assert v.max() <= 1.0 + 1e-9

    def test_continuity_across_critical_damping(self):
        """The whole point: one continuous formula through zeta = 1."""
        t = np.linspace(0, 20 / WN, 500)
        below = SecondOrderModel(zeta=1.0 - 1e-6, omega_n=WN).step_response(t)
        at = SecondOrderModel(zeta=1.0, omega_n=WN).step_response(t)
        above = SecondOrderModel(zeta=1.0 + 1e-6, omega_n=WN).step_response(t)
        np.testing.assert_allclose(below, at, atol=1e-4)
        np.testing.assert_allclose(above, at, atol=1e-4)

    def test_scaled_response_is_time_scaling(self):
        model = SecondOrderModel(zeta=0.8, omega_n=WN)
        t = np.linspace(0, 20 / WN, 300)
        np.testing.assert_allclose(
            model.step_response(t), model.scaled_step_response(WN * t), atol=1e-12
        )

    def test_scaled_response_independent_of_wn(self):
        tau = np.linspace(0, 15, 200)
        a = SecondOrderModel(zeta=0.6, omega_n=1e9).scaled_step_response(tau)
        b = SecondOrderModel(zeta=0.6, omega_n=1e12).scaled_step_response(tau)
        np.testing.assert_allclose(a, b, atol=1e-12)

    def test_step_delay(self):
        model = SecondOrderModel(zeta=0.8, omega_n=WN)
        t = np.linspace(0, 20 / WN, 401)
        delayed = model.step_response(t, delay=5 / WN)
        assert np.all(delayed[t < 5 / WN] == 0.0)


class TestImpulseResponse:
    @pytest.mark.parametrize("zeta", [0.3, 1.0, 2.0])
    def test_impulse_is_step_derivative(self, zeta):
        model = SecondOrderModel(zeta=zeta, omega_n=WN)
        t = np.linspace(0, 30 / WN, 20001)
        step = model.step_response(t)
        numeric = np.gradient(step, t)
        analytic = model.impulse_response(t)
        # Compare away from the t=0 kink.
        np.testing.assert_allclose(
            analytic[10:-10], numeric[10:-10], atol=2e-3 * analytic.max()
        )

    @pytest.mark.parametrize("zeta", [0.3, 1.0, 2.0])
    def test_unit_area(self, zeta):
        model = SecondOrderModel(zeta=zeta, omega_n=WN)
        t = np.linspace(0, 60 * max(zeta, 1.0 / zeta) / WN, 40001)
        area = np.trapezoid(model.impulse_response(t), t)
        assert area == pytest.approx(1.0, rel=1e-4)


class TestShapedInputs:
    def test_exponential_response_limits(self):
        model = SecondOrderModel(zeta=0.7, omega_n=WN)
        t = np.linspace(0, 60 / WN, 2000)
        v = model.exponential_response(t, tau=3 / WN)
        assert v[0] == pytest.approx(0.0, abs=1e-9)
        assert v[-1] == pytest.approx(1.0, rel=1e-3)

    def test_fast_exponential_approaches_step(self):
        model = SecondOrderModel(zeta=0.7, omega_n=WN)
        t = np.linspace(0, 30 / WN, 1000)
        v_exp = model.exponential_response(t, tau=1e-7 / WN)
        np.testing.assert_allclose(v_exp[5:], model.step_response(t)[5:], atol=1e-4)

    def test_slow_exponential_tracks_input(self):
        model = SecondOrderModel(zeta=0.7, omega_n=WN)
        tau = 1e4 / WN
        t = np.linspace(0, 5 * tau, 500)
        v = model.exponential_response(t, tau=tau)
        np.testing.assert_allclose(
            v[5:], 1.0 - np.exp(-t[5:] / tau), rtol=1e-2
        )

    def test_exponential_resonant_tau_finite(self):
        # tau exactly on a real pole: the limiting form must kick in.
        model = SecondOrderModel(zeta=2.0, omega_n=WN)
        pole = model.poles()[0]
        tau = -1.0 / pole.real
        t = np.linspace(0, 100 / WN, 500)
        v = model.exponential_response(t, tau=tau)
        assert np.all(np.isfinite(v))
        assert v[-1] == pytest.approx(1.0, rel=1e-3)

    def test_ramp_response_final_value(self):
        model = SecondOrderModel(zeta=1.2, omega_n=WN)
        t = np.linspace(0, 200 / WN, 2000)
        v = model.ramp_response(t, rise_time=20 / WN, amplitude=2.0)
        assert v[-1] == pytest.approx(2.0, rel=1e-3)

    def test_slow_ramp_tracks_input(self):
        model = SecondOrderModel(zeta=0.5, omega_n=WN)
        rise = 1e4 / WN
        t = np.linspace(0, rise / 2, 300)
        v = model.ramp_response(t, rise_time=rise)
        expected = t / rise
        np.testing.assert_allclose(v[30:], expected[30:], rtol=2e-2)

    def test_bad_tau_rejected(self):
        model = SecondOrderModel(zeta=0.5, omega_n=WN)
        with pytest.raises(ElementValueError):
            model.exponential_response(np.zeros(2), tau=0.0)
        with pytest.raises(ElementValueError):
            model.ramp_response(np.zeros(2), rise_time=-1.0)


class TestDescriptive:
    def test_damped_frequency(self):
        model = SecondOrderModel(zeta=0.6, omega_n=WN)
        assert model.damped_frequency == pytest.approx(WN * math.sqrt(1 - 0.36))
        assert SecondOrderModel(zeta=2.0, omega_n=WN).damped_frequency == 0.0

    def test_is_underdamped(self):
        assert SecondOrderModel(zeta=0.99, omega_n=WN).is_underdamped
        assert not SecondOrderModel(zeta=1.0, omega_n=WN).is_underdamped

    def test_time_scale(self):
        assert SecondOrderModel(zeta=1.0, omega_n=WN).time_scale == pytest.approx(
            1.0 / WN
        )
