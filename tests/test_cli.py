"""Unit tests for the command-line interface (driven in-process)."""

import pytest

from repro.circuit import dumps, fig5_tree, fig8_tree
from repro.cli import main


@pytest.fixture
def netlist_path(tmp_path):
    path = tmp_path / "net.sp"
    path.write_text(dumps(fig8_tree()))
    return str(path)


@pytest.fixture
def fig5_path(tmp_path):
    path = tmp_path / "fig5.sp"
    path.write_text(dumps(fig5_tree()))
    return str(path)


class TestAnalyze:
    def test_table_lists_all_nodes(self, netlist_path, capsys):
        assert main(["analyze", netlist_path]) == 0
        out = capsys.readouterr().out
        for node in fig8_tree().nodes:
            assert node in out
        assert "zeta" in out

    def test_node_filter(self, netlist_path, capsys):
        assert main(["analyze", netlist_path, "--node", "out"]) == 0
        out = capsys.readouterr().out
        lines = [l for l in out.splitlines() if l.strip()]
        assert len(lines) == 2  # header + one row
        assert "out" in lines[1]

    def test_csv_output(self, netlist_path, capsys):
        assert main(["analyze", netlist_path, "--csv"]) == 0
        out = capsys.readouterr().out.splitlines()
        assert out[0].startswith("node,zeta,")
        assert len(out) == 1 + len(fig8_tree().nodes)
        fields = out[1].split(",")
        assert len(fields) == 8
        float(fields[1])  # zeta parses

    def test_missing_file_is_error(self, capsys):
        assert main(["analyze", "/nonexistent/net.sp"]) == 2
        assert "error" in capsys.readouterr().err

    def test_bad_netlist_is_error(self, tmp_path, capsys):
        path = tmp_path / "bad.sp"
        path.write_text("R1 a b not_a_number\n")
        assert main(["analyze", str(path)]) == 2
        assert "error" in capsys.readouterr().err


class TestSimulate:
    def test_step_waveform_csv(self, netlist_path, capsys):
        assert main(
            ["simulate", netlist_path, "--node", "out", "--points", "21"]
        ) == 0
        out = capsys.readouterr().out.splitlines()
        assert out[0] == "time,v_exact"
        assert len(out) == 22
        last = [float(x) for x in out[-1].split(",")]
        assert last[1] == pytest.approx(1.0, rel=0.05)

    def test_model_column(self, netlist_path, capsys):
        assert main(
            ["simulate", netlist_path, "--node", "out", "--points", "11",
             "--model"]
        ) == 0
        out = capsys.readouterr().out.splitlines()
        assert out[0] == "time,v_exact,v_model"
        assert len(out[1].split(",")) == 3

    @pytest.mark.parametrize("kind", ["exp", "ramp"])
    def test_shaped_inputs(self, netlist_path, capsys, kind):
        assert main(
            ["simulate", netlist_path, "--node", "out", "--points", "31",
             "--input", kind, "--rise-time", "200p"]
        ) == 0
        out = capsys.readouterr().out.splitlines()
        assert len(out) == 32

    def test_explicit_horizon(self, netlist_path, capsys):
        assert main(
            ["simulate", netlist_path, "--node", "out", "--points", "3",
             "--t-end", "1n"]
        ) == 0
        out = capsys.readouterr().out.splitlines()
        assert float(out[-1].split(",")[0]) == pytest.approx(1e-9)


class TestSensitivity:
    def test_full_gradient(self, netlist_path, capsys):
        assert main(["sensitivity", netlist_path, "--node", "out"]) == 0
        out = capsys.readouterr().out
        assert "d/dR" in out
        for node in fig8_tree().nodes:
            assert node in out

    def test_top_k(self, netlist_path, capsys):
        assert main(
            ["sensitivity", netlist_path, "--node", "out", "--top", "2"]
        ) == 0
        out = capsys.readouterr().out.splitlines()
        assert len(out) == 4  # title + header + 2 rows

    def test_rise_metric(self, fig5_path, capsys):
        assert main(
            ["sensitivity", fig5_path, "--node", "n7", "--metric", "rise"]
        ) == 0
        assert "rise at n7" in capsys.readouterr().out


class TestCompare:
    def test_table(self, netlist_path, capsys):
        assert main(
            ["compare", netlist_path, "--node", "out", "--points", "4001"]
        ) == 0
        out = capsys.readouterr().out
        assert "model delay" in out
        assert "out" in out

    def test_csv(self, netlist_path, capsys):
        assert main(
            ["compare", netlist_path, "--node", "out", "--node", "n1",
             "--points", "4001", "--csv"]
        ) == 0
        lines = capsys.readouterr().out.splitlines()
        assert lines[0].startswith("node,model_delay,exact_delay")
        assert len(lines) == 3
        fields = lines[1].split(",")
        assert fields[0] == "out"
        # sink error must be modest (the Fig. 15 story: sinks are good)
        assert float(fields[3]) < 15.0

    def test_all_nodes_default(self, fig5_path, capsys):
        assert main(["compare", fig5_path, "--points", "4001", "--csv"]) == 0
        lines = capsys.readouterr().out.splitlines()
        assert len(lines) == 8  # header + 7 nodes


class TestFit:
    def test_delay_fit_reports_eq33_class(self, capsys):
        assert main(["fit", "--metric", "delay"]) == 0
        out = capsys.readouterr().out
        assert "exp_plus_linear" in out
        assert "max relative error" in out

    def test_rise_fit(self, capsys):
        assert main(["fit", "--metric", "rise"]) == 0
        assert "cubic_rational" in capsys.readouterr().out


class TestWindow:
    BASE = ["window", "--width", "4u", "--thickness", "1u", "--height",
            "2u", "--rise-time", "50p"]

    def test_rlc_regime(self, capsys):
        assert main(self.BASE + ["--length", "5m"]) == 0
        assert "regime = rlc" in capsys.readouterr().out

    def test_rc_regime_long_line(self, capsys):
        assert main(self.BASE + ["--length", "100m"]) == 0
        assert "regime = rc" in capsys.readouterr().out

    def test_empty_window_for_narrow_wire(self, capsys):
        argv = ["window", "--width", "0.2u", "--thickness", "0.3u",
                "--height", "1u", "--rise-time", "50p", "--length", "5m"]
        assert main(argv) == 0
        assert "empty" in capsys.readouterr().out

    def test_bad_geometry_is_error(self, capsys):
        argv = ["window", "--width", "0", "--thickness", "1u",
                "--height", "1u", "--rise-time", "50p", "--length", "1m"]
        assert main(argv) == 2


class TestParser:
    def test_version(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


@pytest.mark.robustness
class TestExitCodes:
    """The CLI contract: an answer, or one line on stderr and a nonzero
    exit code — never a traceback (unless --debug asks for one)."""

    def test_success_is_zero(self, netlist_path):
        assert main(["analyze", netlist_path]) == 0

    def test_repro_error_is_two_with_one_line(self, netlist_path, capsys):
        # An out-of-range settle band is a ConfigurationError.
        code = main(["analyze", netlist_path, "--settle-band", "7.0"])
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert len(err.strip().splitlines()) == 1
        assert "Traceback" not in err

    def test_missing_file_is_two(self, capsys):
        assert main(["analyze", "/no/such/file.sp"]) == 2
        assert "Traceback" not in capsys.readouterr().err

    def test_debug_reraises(self, netlist_path):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            main(["--debug", "analyze", netlist_path, "--settle-band", "7.0"])

    def test_rc_limit_simulate_model_is_typed(self, tmp_path, capsys):
        from repro.circuit import dumps, single_line

        rc = single_line(3, resistance=100.0, inductance=0.0,
                         capacitance=0.1e-12)
        path = tmp_path / "rc.sp"
        path.write_text(dumps(rc))
        code = main(["simulate", str(path), "--node", "n3", "--points",
                     "11", "--model"])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_guarded_analyze_warns_on_hostile_netlist(self, tmp_path,
                                                      capsys):
        from repro.circuit import RLCTree, dumps

        tree = RLCTree()
        tree.add_section("a", "in", resistance=1e-6, inductance=0.0,
                         capacitance=1e-12)
        tree.add_section("b", "a", resistance=1e9, inductance=0.0,
                         capacitance=1e-12)
        path = tmp_path / "hostile.sp"
        path.write_text(dumps(tree))
        assert main(["analyze", str(path)]) == 0
        captured = capsys.readouterr()
        assert "dynamic-range" in captured.err
        assert "a" in captured.out and "b" in captured.out

    def test_unguarded_flag_still_works(self, netlist_path, capsys):
        assert main(["analyze", netlist_path, "--unguarded", "--csv"]) == 0
        out = capsys.readouterr().out.splitlines()
        assert out[0].startswith("node,zeta,")

    def test_repair_flag_rescues_zero_capacitance(self, tmp_path, capsys):
        # An explicit C = 0 line survives netlist parsing (an omitted
        # one would make loads() fold the node away).
        path = tmp_path / "zeroc.sp"
        path.write_text(
            "* zero-capacitance node\n"
            "Vin in 0 PWL\n"
            "Rn1 in n1__m 10.0\n"
            "Ln1 n1__m n1 1e-09\n"
            "Cn1 n1 0 1e-13\n"
            "Rn2 n1 n2__m 10.0\n"
            "Ln2 n2__m n2 1e-09\n"
            "Cn2 n2 0 0\n"
            "Rn3 n2 n3__m 10.0\n"
            "Ln3 n3__m n3 1e-09\n"
            "Cn3 n3 0 1e-13\n"
            ".end\n"
        )
        assert main(["analyze", str(path), "--repair", "--csv"]) == 0
        captured = capsys.readouterr()
        assert "n2" in captured.out
        assert "zero-capacitance" in captured.err


class TestDebugCacheDump:
    """--debug appends the engine cache/counter groups to stderr."""

    def test_debug_prints_engine_caches(self, netlist_path, capsys):
        assert main(["--debug", "analyze", netlist_path]) == 0
        err = capsys.readouterr().err
        assert "engine caches:" in err
        assert "topology:" in err
        assert "incremental:" in err
        assert "preorder_builds=" in err
        assert "analyzers=" in err

    def test_without_debug_no_cache_dump(self, netlist_path, capsys):
        assert main(["analyze", netlist_path]) == 0
        assert "engine caches:" not in capsys.readouterr().err

    def test_debug_dump_reflects_activity(self, netlist_path, capsys):
        from repro.engine import clear_topology_cache

        clear_topology_cache()
        assert main(["--debug", "analyze", netlist_path]) == 0
        err = capsys.readouterr().err
        line = next(l for l in err.splitlines() if "topology:" in l)
        counters = dict(
            pair.strip().split("=")
            for pair in line.split(":", 1)[1].split(", ")
        )
        assert int(counters["size"]) >= 0
        assert int(counters["misses"]) + int(counters["hits"]) >= 1


class TestRuntimeStatsDump:
    """--debug also reports per-backend dispatch counts from the context."""

    def test_debug_prints_runtime_stats(self, netlist_path, capsys):
        assert main(["--debug", "analyze", netlist_path]) == 0
        err = capsys.readouterr().err
        assert "runtime stats:" in err
        for group in ("dispatch:", "workloads:", "plans:", "pool:", "phases:"):
            assert group in err
        line = next(l for l in err.splitlines() if "dispatch:" in l)
        assert "compiled=" in line  # whole-table analyze routes to compiled

    def test_forced_backend_counts_as_forced_plan(self, netlist_path, capsys):
        assert main(
            ["--debug", "analyze", netlist_path, "--backend", "scalar"]
        ) == 0
        err = capsys.readouterr().err
        dispatch = next(l for l in err.splitlines() if "dispatch:" in l)
        plans = next(l for l in err.splitlines() if "plans:" in l)
        assert "scalar=" in dispatch
        assert "forced=1" in plans

    def test_backend_choice_never_changes_results(self, netlist_path, capsys):
        assert main(["analyze", netlist_path, "--csv"]) == 0
        auto = capsys.readouterr().out
        for backend in ("scalar", "compiled", "incremental"):
            assert main(
                ["analyze", netlist_path, "--csv", "--backend", backend]
            ) == 0
            assert capsys.readouterr().out == auto

    def test_unknown_backend_rejected_by_argparse(self, netlist_path, capsys):
        with pytest.raises(SystemExit):
            main(["analyze", netlist_path, "--backend", "turbo"])


class TestServe:
    """The `repro serve` subcommand: flags, boot, drain."""

    def test_parser_defaults(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1"
        assert args.port == 8341
        assert args.max_inflight == 8
        assert args.coalesce_window == 0.005
        assert args.max_requests == 0

    def test_serve_boots_answers_and_drains(self, monkeypatch):
        import io
        import json
        import re
        import sys
        import threading
        import time
        import urllib.request

        from repro.circuit import dumps, fig5_tree

        stderr = io.StringIO()
        monkeypatch.setattr(sys, "stderr", stderr)
        exit_code = {}

        def run():
            exit_code["value"] = main(
                ["serve", "--port", "0", "--max-requests", "1"]
            )

        thread = threading.Thread(target=run)
        thread.start()
        port = None
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            match = re.search(r"http://[\d.]+:(\d+)", stderr.getvalue())
            if match:
                port = int(match.group(1))
                break
            time.sleep(0.02)
        assert port is not None, stderr.getvalue()
        request = urllib.request.Request(
            f"http://127.0.0.1:{port}/analyze",
            data=json.dumps(
                {"netlist": dumps(fig5_tree()), "metrics": ["delay_50"]}
            ).encode(),
            method="POST",
        )
        with urllib.request.urlopen(request, timeout=30) as response:
            body = json.loads(response.read())
        assert response.status == 200
        assert set(body["nodes"]) == set(fig5_tree().nodes)
        thread.join(timeout=30)
        assert not thread.is_alive()
        assert exit_code["value"] == 0
        assert "repro service drained" in stderr.getvalue()

    def test_serve_with_calibration_and_workers(self, monkeypatch, tmp_path):
        """--calibration/--workers shape the serving context's config."""
        import io
        import json
        import re
        import sys
        import threading
        import time
        import urllib.request

        from repro.runtime import CrossoverCalibration, save_calibration

        path = tmp_path / "cal.json"
        save_calibration(
            CrossoverCalibration(
                workers=2,
                serial_overhead=1e-4,
                serial_per_cell=2e-7,
                sharded_overhead=5e-4,
                sharded_per_cell=1e-7,
                breakeven_cells=4000,
            ),
            path=path,
        )
        stderr = io.StringIO()
        monkeypatch.setattr(sys, "stderr", stderr)
        exit_code = {}

        def run():
            exit_code["value"] = main(
                [
                    "serve", "--port", "0", "--max-requests", "1",
                    "--workers", "2", "--calibration", str(path),
                ]
            )

        thread = threading.Thread(target=run)
        thread.start()
        port = None
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            match = re.search(r"http://[\d.]+:(\d+)", stderr.getvalue())
            if match:
                port = int(match.group(1))
                break
            time.sleep(0.02)
        assert port is not None, stderr.getvalue()
        with urllib.request.urlopen(
            f"http://127.0.0.1:{port}/stats", timeout=30
        ) as response:
            stats = json.loads(response.read())
        # Matching --workers: the calibration installed cleanly.
        assert stats["calibration_stale"] is False
        assert stats["service"]["stats"] == 1
        # /stats bypasses admission and does not count toward
        # --max-requests; one admitted request triggers the self-stop.
        from repro.circuit import dumps, fig5_tree

        request = urllib.request.Request(
            f"http://127.0.0.1:{port}/analyze",
            data=json.dumps(
                {"netlist": dumps(fig5_tree()), "metrics": ["delay_50"]}
            ).encode(),
            method="POST",
        )
        with urllib.request.urlopen(request, timeout=30) as response:
            assert response.status == 200
        thread.join(timeout=30)
        assert not thread.is_alive()
        assert exit_code["value"] == 0
