"""Integration tests: the paper's quantitative claims as executable gates.

Each test mirrors a claim from the paper's text (Section IV-V); the
EXPERIMENTS.md file records the measured values next to the claims. These
gates are intentionally a little looser than the single quoted numbers —
the paper's element values did not fully survive its scan, so our trees
match the *regimes*, not the exact instances.
"""

import math

import numpy as np
import pytest

from repro.analysis import TreeAnalyzer
from repro.circuit import (
    balanced_tree,
    fig5_tree,
    scale_tree_to_zeta,
)
from repro.simulation import ExactSimulator, ExponentialSource, measure, rms_error


def simulated_metrics(tree, node, points=8001, span=14.0):
    sim = ExactSimulator(tree)
    t = sim.time_grid(points=points, span_factor=span)
    return t, sim, measure(t, sim.step_response(node, t))


class TestBalancedTreeAccuracy:
    """Section V-B: 'The error in the propagation delay is less than 4%
    for this balanced tree example.' Our gate: < 7% at every zeta in the
    Fig. 11 sweep, < 4% on average."""

    ZETAS = (0.35, 0.5, 0.7, 1.0, 1.5, 2.0)

    @pytest.fixture(scope="class")
    def errors(self):
        out = {}
        for zeta in self.ZETAS:
            tree = scale_tree_to_zeta(fig5_tree(), "n7", zeta)
            _, _, metrics = simulated_metrics(tree, "n7")
            model_delay = TreeAnalyzer(tree).delay_50("n7")
            out[zeta] = abs(model_delay - metrics.delay_50) / metrics.delay_50
        return out

    def test_every_zeta_under_7_percent(self, errors):
        assert max(errors.values()) < 0.07

    def test_average_under_4_percent(self, errors):
        assert sum(errors.values()) / len(errors) < 0.04


class TestElmoreSpecialCase:
    """Section IV: 'the general solutions ... include the Elmore (Wyatt)
    delay for the special case of an RC tree.'"""

    def test_rc_tree_delay_equals_elmore(self):
        tree = balanced_tree(3, 2, resistance=100.0, inductance=0.0,
                             capacitance=0.2e-12)
        analyzer = TreeAnalyzer(tree)
        sink = tree.leaves()[0]
        assert analyzer.delay_50(sink) == pytest.approx(
            analyzer.elmore_delay(sink)
        )

    def test_rc_tree_model_vs_simulation(self):
        """And the Elmore delay itself is a fair estimate for RC trees
        (the fidelity the paper inherits)."""
        tree = balanced_tree(3, 2, resistance=100.0, inductance=0.0,
                             capacitance=0.2e-12)
        sink = tree.leaves()[0]
        _, _, metrics = simulated_metrics(tree, sink)
        model = TreeAnalyzer(tree).delay_50(sink)
        assert model == pytest.approx(metrics.delay_50, rel=0.15)


class TestUnderdampedCharacterization:
    """Eqs. 39-42 against simulation on a ringing balanced tree."""

    @pytest.fixture(scope="class")
    def setup(self):
        tree = scale_tree_to_zeta(fig5_tree(), "n7", 0.4)
        t, sim, metrics = simulated_metrics(tree, "n7", points=20001)
        return tree, metrics

    def test_first_overshoot_magnitude(self, setup):
        tree, metrics = setup
        predicted = TreeAnalyzer(tree).overshoot("n7")
        assert metrics.first_overshoot_fraction == pytest.approx(
            predicted, rel=0.35
        )

    def test_overshoot_count_same_ballpark(self, setup):
        tree, metrics = setup
        train = TreeAnalyzer(tree).overshoots("n7", threshold=1e-2)
        simulated = [
            (t, v) for t, v in metrics.overshoots if abs(v - 1.0) > 1e-2
        ]
        assert abs(len(train) - len(simulated)) <= 2

    def test_settling_time_ballpark(self, setup):
        tree, metrics = setup
        predicted = TreeAnalyzer(tree).settling_time("n7")
        assert predicted == pytest.approx(metrics.settling_time, rel=0.5)


class TestInputRiseTimeEffect:
    """Section V-A: 'the calculated time domain response becomes more
    accurate as the rise time of the input signal increases.'"""

    def test_error_decreases_with_input_rise_time(self, fig8):
        sim = ExactSimulator(fig8)
        analyzer = TreeAnalyzer(fig8)
        t = sim.time_grid(points=6001, span_factor=16.0)
        base_tau = t[-1] / 200.0
        errors = []
        for factor in (0.01, 1.0, 5.0, 25.0):
            source = ExponentialSource(tau=base_tau * factor)
            exact = sim.response(source, "out", t)
            model = analyzer.waveform("out", source, t)
            errors.append(rms_error(exact, model))
        assert errors[-1] < errors[1] < errors[0] * 1.2
        assert errors[-1] < 0.3 * errors[0]


class TestAsymmetryDegradation:
    """Section V-B: errors grow with asymmetry, reaching ~20% for highly
    asymmetric trees (vs < 4-7% balanced)."""

    @pytest.fixture(scope="class")
    def errors_by_asym(self):
        out = {}
        for asym in (1.0, 2.0, 4.0):
            tree = fig5_tree(asym=asym)
            tree = scale_tree_to_zeta(tree, "n7", 0.7)
            _, _, metrics = simulated_metrics(tree, "n7")
            model = TreeAnalyzer(tree).delay_50("n7")
            out[asym] = abs(model - metrics.delay_50) / metrics.delay_50
        return out

    def test_balanced_is_best(self, errors_by_asym):
        assert errors_by_asym[1.0] <= min(errors_by_asym[2.0],
                                          errors_by_asym[4.0]) + 0.01

    def test_asymmetric_error_bounded(self, errors_by_asym):
        # "can reach 20%": bad but not catastrophic.
        assert errors_by_asym[4.0] < 0.30


class TestStabilityClaim:
    """Abstract: 'the solutions are always stable' — even where AWE of
    the same order may not be."""

    def test_model_stable_where_awe2_can_misbehave(self):
        # Sweep many regimes; the closed-form model must never produce a
        # RHP pole, by construction.
        for zeta in (0.1, 0.5, 1.0, 2.0, 10.0):
            tree = scale_tree_to_zeta(fig5_tree(), "n7", zeta)
            analyzer = TreeAnalyzer(tree)
            model = analyzer.model("n7")
            assert all(p.real < 0 for p in model.poles())


class TestWaveformAccuracy:
    """Fig. 11's visual claim, quantified: the closed-form step response
    tracks simulation closely for the balanced tree."""

    @pytest.mark.parametrize("zeta", [0.5, 1.0, 2.0])
    def test_waveform_rms_small(self, zeta):
        tree = scale_tree_to_zeta(fig5_tree(), "n7", zeta)
        sim = ExactSimulator(tree)
        t = sim.time_grid(points=4001, span_factor=10.0)
        exact = sim.step_response("n7", t)
        model = TreeAnalyzer(tree).step_waveform("n7", t)
        assert rms_error(exact, model) < 0.05


class TestLadderEquivalence:
    """Section V-B / Fig. 10: shorting a balanced tree's levels changes
    nothing, so the tree and its ladder have identical sink responses."""

    def test_tree_equals_ladder(self):
        from repro.circuit import balanced_to_ladder

        tree = balanced_tree(3, 2, resistance=25.0, inductance=5e-9,
                             capacitance=0.5e-12)
        ladder = balanced_to_ladder(tree)
        sim_tree = ExactSimulator(tree)
        sim_ladder = ExactSimulator(ladder)
        t = sim_tree.time_grid(points=2001)
        v_tree = sim_tree.step_response(tree.leaves()[0], t)
        v_ladder = sim_ladder.step_response("n3", t)
        assert rms_error(v_tree, v_ladder) < 1e-9

    def test_effective_pole_count_is_ladder_order(self):
        """The pole-zero cancellation claim: a balanced 3-level binary
        tree (14 states) behaves as a 6-pole system at its sinks."""
        from repro.reduction import arnoldi_model
        from repro.errors import ReductionError

        tree = balanced_tree(3, 2, resistance=25.0, inductance=5e-9,
                             capacitance=0.5e-12)
        sink = tree.leaves()[0]
        assert arnoldi_model(tree, sink, 6).order == 6
        with pytest.raises(ReductionError):
            arnoldi_model(tree, sink, 7)


class TestNodePositionEffect:
    """Section V-E: 'the error ... is least at the sinks which is
    typically the location of greatest interest.'"""

    def test_sink_error_not_worst(self):
        tree = balanced_tree(4, 2, resistance=20.0, inductance=4e-9,
                             capacitance=0.3e-12)
        sim = ExactSimulator(tree)
        analyzer = TreeAnalyzer(tree)
        t = sim.time_grid(points=8001, span_factor=14.0)
        # One node per level along the first root-to-sink path.
        sink = tree.leaves()[0]
        path = tree.path_to(sink)
        errors = {}
        for node in path:
            exact = measure(t, sim.step_response(node, t)).delay_50
            model = analyzer.delay_50(node)
            errors[node] = abs(model - exact) / exact
        assert errors[path[-1]] <= max(errors.values())
        # And specifically the sink beats the first-level node.
        assert errors[path[-1]] <= errors[path[0]] + 0.02
