"""Integration cross-checks between independent subsystems.

Each test wires together at least two subsystems that were implemented
and unit-tested separately, so agreement here means the interfaces, unit
conventions and math all line up end to end.
"""

import numpy as np
import pytest

from repro.analysis import (
    SecondOrderModel,
    TreeAnalyzer,
    exact_moments,
    second_order_sums,
)
from repro.circuit import (
    balanced_to_ladder,
    balanced_tree,
    dumps,
    fig8_tree,
    loads,
    random_tree,
    scale_tree_to_zeta,
    fig5_tree,
)
from repro.reduction import arnoldi_model, awe_model, kahng_muddu_model
from repro.simulation import (
    ExactSimulator,
    StepSource,
    TrapezoidalSimulator,
    measure,
    rms_error,
)


class TestMomentsAgainstSimulator:
    """The O(n) tree recursion and the dense eigendecomposition are
    completely independent paths to the same transfer function."""

    @pytest.mark.parametrize("seed", [0, 7, 42])
    def test_random_tree_m1_m2(self, seed):
        tree = random_tree(18, np.random.default_rng(seed))
        moments = exact_moments(tree, 2)
        sim = ExactSimulator(tree)
        for node in tree.nodes:
            poles, residues = sim.residues(node)
            for j in (1, 2):
                from_sim = float(np.real((-residues / poles ** (j + 1)).sum()))
                assert moments[node][j] == pytest.approx(from_sim, rel=1e-6)


class TestReductionHierarchy:
    """The two-pole models form a consistent family. KM and the paper's
    model (built from *exact* moments) are the same zero-free two-pole
    fit, so their poles coincide exactly. AWE(2) is the [1/2] Pade — it
    carries a numerator zero and matches two extra moments — so its
    poles legitimately differ, but its low-order moments agree with
    everyone's."""

    def test_km_equals_paper_model_with_exact_m2(self, fig8):
        m = exact_moments(fig8, 2)["out"]
        paper_with_exact_m2 = SecondOrderModel.from_moments(m[1], m[2])
        km = kahng_muddu_model(fig8, "out")
        assert sorted(
            paper_with_exact_m2.poles(), key=lambda p: (p.real, p.imag)
        ) == pytest.approx(
            sorted(km.poles(), key=lambda p: (p.real, p.imag)), rel=1e-9
        )

    def test_awe2_matches_four_moments_km_three(self, fig8):
        m = exact_moments(fig8, 3)["out"]
        awe2 = awe_model(fig8, "out", 2)
        np.testing.assert_allclose(awe2.moments(3), m, rtol=1e-6)
        km = kahng_muddu_model(fig8, "out")
        # KM matches m1 and m2 by construction ...
        km_m1 = -km.b1
        km_m2 = km.b1**2 - km.b2
        assert km_m1 == pytest.approx(m[1], rel=1e-9)
        assert km_m2 == pytest.approx(m[2], rel=1e-9)
        # ... but not m3 (no numerator zero to spend).
        km_m3 = -km.b1**3 + 2 * km.b1 * km.b2
        assert km_m3 != pytest.approx(m[3], rel=1e-3, abs=0.0)

    def test_arnoldi_full_order_equals_exact(self, fig8):
        sim = ExactSimulator(fig8)
        reduction = arnoldi_model(fig8, "out", sim.order)
        np.testing.assert_allclose(
            sorted(np.asarray(reduction.model.poles).real),
            sorted(sim.poles().real),
            rtol=1e-6,
        )


class TestNetlistPipeline:
    def test_netlist_round_trip_preserves_timing(self, fig8):
        """Serialize, parse, re-analyze: every metric must survive."""
        original = TreeAnalyzer(fig8)
        recovered = TreeAnalyzer(loads(dumps(fig8)))
        for node in fig8.nodes:
            assert recovered.delay_50(node) == pytest.approx(
                original.delay_50(node)
            )
            assert recovered.zeta(node) == pytest.approx(original.zeta(node))

    def test_netlist_round_trip_preserves_simulation(self, fig5):
        sim_a = ExactSimulator(fig5)
        sim_b = ExactSimulator(loads(dumps(fig5)))
        t = sim_a.time_grid(points=801)
        np.testing.assert_allclose(
            sim_a.step_response("n7", t), sim_b.step_response("n7", t),
            atol=1e-12,
        )


class TestScalingInvariance:
    """Impedance scaling: multiplying all R and L by k and dividing all C
    by k leaves every voltage transfer function unchanged."""

    def test_impedance_scaling_preserves_waveforms(self, fig8):
        k = 7.3
        scaled = fig8.scaled(
            resistance_factor=k, inductance_factor=k, capacitance_factor=1 / k
        )
        sim_a = ExactSimulator(fig8)
        sim_b = ExactSimulator(scaled)
        t = sim_a.time_grid(points=801)
        np.testing.assert_allclose(
            sim_a.step_response("out", t),
            sim_b.step_response("out", t),
            atol=1e-9,
        )

    def test_impedance_scaling_preserves_model_metrics(self, fig8):
        k = 7.3
        scaled = fig8.scaled(
            resistance_factor=k, inductance_factor=k, capacitance_factor=1 / k
        )
        a = TreeAnalyzer(fig8)
        b = TreeAnalyzer(scaled)
        for node in fig8.nodes:
            assert a.delay_50(node) == pytest.approx(b.delay_50(node))
            assert a.zeta(node) == pytest.approx(b.zeta(node))

    def test_time_scaling(self, fig8):
        """Multiplying L and C by k^2 scales all delays by k."""
        k2 = 4.0
        slowed = fig8.scaled(inductance_factor=k2, capacitance_factor=1.0)
        # L*C scales by k2 -> omega_n by 1/k... verify via the analyzer:
        a = TreeAnalyzer(fig8)
        b = TreeAnalyzer(slowed)
        for node in fig8.nodes:
            assert b.omega_n(node) == pytest.approx(
                a.omega_n(node) / np.sqrt(k2)
            )


class TestBigTreePipeline:
    def test_512_sink_tree_end_to_end(self):
        """A 1022-section tree: analyzer is instant; spot-check one sink
        against the trapezoidal simulator (the dense eigensolver on 2044
        states is what the paper's O(n) formulas let you avoid)."""
        tree = balanced_tree(9, 2, resistance=15.0, inductance=1e-9,
                             capacitance=0.1e-12)
        analyzer = TreeAnalyzer(tree)
        sink = tree.leaves()[0]
        timing = analyzer.timing(sink)
        assert timing.delay_50 > 0

        # Exact response of the equivalent 9-section ladder (Section V-B)
        # instead of the 2044-state monster.
        ladder = balanced_to_ladder(tree)
        sim = ExactSimulator(ladder)
        t = sim.time_grid(points=8001, span_factor=14.0)
        metrics = measure(t, sim.step_response("n9", t))
        assert timing.delay_50 == pytest.approx(metrics.delay_50, rel=0.15)

    def test_trapezoidal_handles_moderate_tree(self):
        tree = balanced_tree(5, 2, resistance=20.0, inductance=2e-9,
                             capacitance=0.2e-12)
        sink = tree.leaves()[0]
        exact = ExactSimulator(tree)
        t = exact.time_grid(points=4001)
        reference = exact.step_response(sink, t)
        candidate = TrapezoidalSimulator(tree).run(StepSource(), sink, t)
        assert rms_error(reference, candidate) < 1e-3


class TestAnalyzerVsSimulatorOnRandomTrees:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_delay_within_thirty_percent(self, seed):
        """Random irregular trees are the worst case for a 2-pole model;
        the paper's asymmetric-tree ceiling (~20%) plus margin applies."""
        tree = random_tree(
            15,
            np.random.default_rng(seed),
            resistance_range=(5.0, 50.0),
            inductance_range=(0.5e-9, 5e-9),
            capacitance_range=(0.1e-12, 0.5e-12),
        )
        analyzer = TreeAnalyzer(tree)
        sim = ExactSimulator(tree)
        t = sim.time_grid(points=8001, span_factor=14.0)
        sink = analyzer.critical_sink().node
        exact = measure(t, sim.step_response(sink, t)).delay_50
        model = analyzer.delay_50(sink)
        assert model == pytest.approx(exact, rel=0.30)
