"""Integration tests: the apps layer against exact simulation.

The apps optimize using the closed forms; these tests re-score their
decisions with the exact solver, closing the loop the way a user would.
"""

import numpy as np
import pytest

from repro.apps import (
    LineParameters,
    RepeaterLibrary,
    WireSizingProblem,
    optimize_repeaters,
    optimize_width,
    stage_delay,
)
from repro.circuit import RLCTree, Section, distributed_line
from repro.simulation import ExactSimulator, measure


def simulate_delay(tree, node, points=8001, span=14.0):
    simulator = ExactSimulator(tree)
    t = simulator.time_grid(points=points, span_factor=span)
    return measure(t, simulator.step_response(node, t)).delay_50


def driver_plus_line(total_r, total_l, total_c, driver, load, sections=8):
    line = distributed_line(total_r, total_l, total_c,
                            num_sections=sections, load_capacitance=load)
    tree = RLCTree(line.root)
    tree.add_section("drv", line.root, section=Section(driver, 0.0, 1e-18))
    for name in line.nodes:
        parent = line.parent(name)
        tree.add_section(
            name, "drv" if parent == line.root else parent,
            section=line.section(name),
        )
    return tree, f"n{sections}"


class TestRepeaterStageAgainstSimulation:
    @pytest.mark.parametrize("stages,size", [(2, 40.0), (4, 80.0)])
    def test_stage_delay_tracks_exact(self, stages, size):
        """The closed-form stage cost must track the simulated stage to
        the model's usual accuracy class."""
        line = LineParameters(resistance=300.0, inductance=4e-9,
                              capacitance=2e-12)
        library = RepeaterLibrary()
        predicted = stage_delay(line, library, stages, size, "rlc")
        tree, sink = driver_plus_line(
            line.resistance / stages,
            line.inductance / stages,
            line.capacitance / stages,
            library.output_resistance(size),
            library.input_capacitance(size),
        )
        simulated = simulate_delay(tree, sink)
        assert predicted == pytest.approx(simulated, rel=0.12)

    def test_chosen_plan_beats_no_repeaters_in_simulation(self):
        """The RC-line case where repeaters clearly pay: the optimized
        stage, simulated exactly, must be faster than the unrepeated
        line per unit length."""
        line = LineParameters(resistance=600.0, inductance=0.5e-9,
                              capacitance=3e-12)
        library = RepeaterLibrary()
        plan = optimize_repeaters(line, library, "rlc")
        assert plan.count > 0
        stages = plan.count + 1
        stage_tree, stage_sink = driver_plus_line(
            line.resistance / stages,
            line.inductance / stages,
            line.capacitance / stages,
            library.output_resistance(plan.size),
            library.input_capacitance(plan.size),
        )
        per_stage = simulate_delay(stage_tree, stage_sink)
        whole_tree, whole_sink = driver_plus_line(
            line.resistance, line.inductance, line.capacitance,
            library.output_resistance(plan.size), 0.0, sections=16,
        )
        whole = simulate_delay(whole_tree, whole_sink)
        total_repeated = stages * per_stage + plan.count * library.intrinsic_delay
        assert total_repeated < whole


class TestWireSizingAgainstSimulation:
    def test_model_curve_tracks_simulated_curve(self):
        """Delay-vs-width under the closed form and under simulation
        must agree on shape (high rank correlation; exact ordering of
        near-tied widths is inside the model's error bars)."""
        from scipy import stats

        problem = WireSizingProblem(num_sections=10)
        widths = np.geomspace(problem.min_width, problem.max_width, 6)
        model = []
        simulated = []
        for width in widths:
            tree = problem.tree(float(width))
            model.append(problem.delay(float(width)))
            simulated.append(simulate_delay(tree, problem.sink()))
        rho = stats.spearmanr(model, simulated).statistic
        assert rho > 0.7
        # And both curves agree the narrow end is the catastrophe.
        assert np.argmax(model) == np.argmax(simulated) == 0

    def test_optimum_is_simulated_near_optimum(self):
        """The width the closed form picks must be within a few percent
        of the best *simulated* delay over a fine sweep."""
        problem = WireSizingProblem(num_sections=10)
        chosen = optimize_width(problem).width
        widths = np.geomspace(problem.min_width, problem.max_width, 12)
        sim = {
            float(w): simulate_delay(problem.tree(float(w)), problem.sink())
            for w in widths
        }
        best_simulated = min(sim.values())
        chosen_simulated = simulate_delay(
            problem.tree(chosen), problem.sink()
        )
        assert chosen_simulated <= best_simulated * 1.05
