"""Unit tests for Section value objects."""

import math

import pytest

from repro.circuit import Section
from repro.errors import ElementValueError


class TestConstruction:
    def test_plain_floats(self):
        s = Section(25.0, 5e-9, 0.5e-12)
        assert s.resistance == 25.0
        assert s.inductance == 5e-9
        assert s.capacitance == 0.5e-12

    def test_suffixed_strings(self):
        s = Section("25ohm", "5nH", "0.5pF")
        assert s.resistance == 25.0
        assert s.inductance == pytest.approx(5e-9)
        assert s.capacitance == pytest.approx(0.5e-12)

    def test_mixed_inputs(self):
        s = Section(25, "10n", 0.0)
        assert s.inductance == pytest.approx(1e-8)
        assert s.capacitance == 0.0

    def test_zero_resistance_with_inductance_allowed(self):
        s = Section(0.0, 1e-9, 1e-12)
        assert s.resistance == 0.0

    def test_zero_capacitance_allowed(self):
        s = Section(10.0, 0.0, 0.0)
        assert s.capacitance == 0.0

    @pytest.mark.parametrize("bad", [-1.0, float("nan"), float("inf")])
    def test_invalid_resistance_rejected(self, bad):
        with pytest.raises(ElementValueError):
            Section(bad, 1e-9, 1e-12)

    @pytest.mark.parametrize("bad", [-1e-9, float("nan")])
    def test_invalid_inductance_rejected(self, bad):
        with pytest.raises(ElementValueError):
            Section(10.0, bad, 1e-12)

    def test_negative_capacitance_rejected(self):
        with pytest.raises(ElementValueError):
            Section(10.0, 1e-9, -1e-15)

    def test_zero_impedance_branch_rejected(self):
        with pytest.raises(ElementValueError, match="zero-impedance"):
            Section(0.0, 0.0, 1e-12)

    def test_unparseable_string_rejected(self):
        with pytest.raises(ElementValueError):
            Section("twenty ohms", 0.0, 0.0)


class TestDerivedQuantities:
    def test_single_section_damping_factor(self):
        # zeta = (R/2) sqrt(C/L)  (paper eq. 14)
        s = Section(2.0, 1e-9, 1e-9)
        assert s.damping_factor == pytest.approx(1.0)

    def test_damping_factor_scales_with_resistance(self):
        low = Section(10.0, 1e-9, 1e-12)
        high = Section(20.0, 1e-9, 1e-12)
        assert high.damping_factor == pytest.approx(2 * low.damping_factor)

    def test_rc_section_damping_is_infinite(self):
        assert Section(10.0, 0.0, 1e-12).damping_factor == math.inf

    def test_natural_frequency(self):
        # w_n = 1/sqrt(LC)  (paper eq. 15)
        s = Section(10.0, 4e-9, 1e-12)
        assert s.natural_frequency == pytest.approx(1.0 / math.sqrt(4e-21))

    def test_natural_frequency_infinite_without_lc(self):
        assert Section(10.0, 0.0, 1e-12).natural_frequency == math.inf
        assert Section(10.0, 1e-9, 0.0).natural_frequency == math.inf

    def test_is_rc(self):
        assert Section(10.0, 0.0, 1e-12).is_rc
        assert not Section(10.0, 1e-9, 1e-12).is_rc


class TestScaling:
    def test_scaled_returns_new_section(self, section):
        scaled = section.scaled(2.0, 3.0, 4.0)
        assert scaled.resistance == pytest.approx(2 * section.resistance)
        assert scaled.inductance == pytest.approx(3 * section.inductance)
        assert scaled.capacitance == pytest.approx(4 * section.capacitance)
        assert section.resistance == 25.0  # original untouched

    def test_identity_scaling(self, section):
        assert section.scaled() == section

    def test_sections_are_hashable_values(self):
        a = Section(1.0, 2e-9, 3e-12)
        b = Section(1.0, 2e-9, 3e-12)
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_repr_uses_engineering_units(self, section):
        text = repr(section)
        assert "25ohm" in text
        assert "5nH" in text
        assert "500fF" in text
