"""Unit tests for the SPICE-subset netlist reader/writer."""

import io

import pytest

from repro.circuit import RLCTree, Section, dump, dumps, fig5_tree, fig8_tree, load, loads
from repro.errors import NetlistError


def same_electrical_tree(a: RLCTree, b: RLCTree) -> bool:
    """Equal topology and values, ignoring node insertion order."""
    if set(a.nodes) != set(b.nodes):
        return False
    for name in a.nodes:
        if a.section(name) != b.section(name):
            return False
        pa = a.parent(name)
        pb = b.parent(name)
        if (pa == a.root) != (pb == b.root):
            return False
        if pa != a.root and pa != pb:
            return False
    return True


class TestRoundTrip:
    @pytest.mark.parametrize("factory", [fig5_tree, fig8_tree])
    def test_round_trips_exactly(self, factory):
        tree = factory()
        assert same_electrical_tree(tree, loads(dumps(tree)))

    def test_rc_tree_round_trips(self, rc_line):
        assert same_electrical_tree(rc_line, loads(dumps(rc_line)))

    def test_pure_inductive_section_round_trips(self):
        tree = RLCTree().add_section("a", "in", section=Section(0.0, 1e-9, 1e-12))
        assert same_electrical_tree(tree, loads(dumps(tree)))

    def test_stream_api(self, fig5):
        buffer = io.StringIO()
        dump(fig5, buffer)
        buffer.seek(0)
        assert same_electrical_tree(fig5, load(buffer))

    def test_title_in_output(self, fig5):
        assert "my clock net" in dumps(fig5, title="my clock net")


class TestReader:
    def test_series_chain_collapses(self):
        text = """
        Vin in 0 PWL
        R1 in x1 5
        R2 x1 x2 7
        L1 x2 a 3n
        C1 a 0 1p
        """
        tree = loads(text)
        assert tree.nodes == ("a",)
        assert tree.section("a").resistance == pytest.approx(12.0)
        assert tree.section("a").inductance == pytest.approx(3e-9)
        assert tree.section("a").capacitance == pytest.approx(1e-12)

    def test_root_from_input_directive(self):
        text = """
        .input clk
        R1 clk a 10
        C1 a 0 1p
        """
        tree = loads(text)
        assert tree.root == "clk"

    def test_root_argument_overrides(self):
        text = "R1 clk a 10\nC1 a 0 1p\n"
        assert loads(text, root="clk").root == "clk"

    def test_comments_and_blank_lines_ignored(self):
        text = "* hello\n\nVin in 0 PWL\nR1 in a 10\nC1 a 0 1p\n.end\n"
        assert loads(text).size == 1

    def test_content_after_end_ignored(self):
        text = "Vin in 0\nR1 in a 10\nC1 a 0 1p\n.end\ngarbage line\n"
        assert loads(text).size == 1

    def test_parallel_capacitors_sum(self):
        text = "Vin in 0\nR1 in a 10\nC1 a 0 1p\nC2 0 a 2p\n"
        assert loads(text).section("a").capacitance == pytest.approx(3e-12)

    def test_branching_node_without_capacitor(self):
        text = """
        Vin in 0
        R1 in j 10
        R2 j a 20
        R3 j b 30
        C1 a 0 1p
        C2 b 0 2p
        """
        tree = loads(text)
        assert set(tree.nodes) == {"j", "a", "b"}
        assert tree.section("j").capacitance == 0.0


class TestReaderErrors:
    def test_no_root(self):
        with pytest.raises(NetlistError, match="no root"):
            loads("R1 a b 10\nC1 b 0 1p\n")

    def test_no_elements(self):
        with pytest.raises(NetlistError, match="no series"):
            loads("Vin in 0\nC1 in 0 1p\n")

    def test_floating_capacitor(self):
        with pytest.raises(NetlistError, match="ground"):
            loads("Vin in 0\nR1 in a 10\nC1 a b 1p\n")

    def test_grounded_resistor(self):
        with pytest.raises(NetlistError, match="ground"):
            loads("Vin in 0\nR1 in 0 10\n")

    def test_loop_rejected(self):
        text = """
        Vin in 0
        R1 in a 10
        R2 in b 10
        R3 a b 10
        C1 a 0 1p
        C2 b 0 1p
        """
        with pytest.raises(NetlistError, match="loop|series"):
            loads(text)

    def test_disconnected_element(self):
        text = "Vin in 0\nR1 in a 10\nC1 a 0 1p\nR9 x y 5\n"
        with pytest.raises(NetlistError, match="reachable"):
            loads(text)

    def test_dangling_capacitor(self):
        text = "Vin in 0\nR1 in a 10\nC1 a 0 1p\nC9 zz 0 1p\n"
        with pytest.raises(NetlistError, match="reachable"):
            loads(text)

    def test_bad_value(self):
        with pytest.raises(NetlistError, match="bad value"):
            loads("Vin in 0\nR1 in a tenohms\nC1 a 0 1p\n")

    def test_negative_value(self):
        with pytest.raises(NetlistError, match="negative"):
            loads("Vin in 0\nR1 in a -10\nC1 a 0 1p\n")

    def test_unsupported_element(self):
        with pytest.raises(NetlistError, match="unsupported"):
            loads("Vin in 0\nD1 in a model\n")

    def test_multiple_sources(self):
        with pytest.raises(NetlistError, match="multiple"):
            loads("Vin in 0\nV2 other 0\nR1 in a 10\nC1 a 0 1p\n")

    def test_source_not_grounded(self):
        with pytest.raises(NetlistError, match="ground"):
            loads("Vin in x\nR1 in a 10\nC1 a 0 1p\n")

    def test_error_carries_line_number(self):
        try:
            loads("Vin in 0\nR1 in a -10\nC1 a 0 1p\n")
        except NetlistError as exc:
            assert exc.line_number == 2
        else:
            pytest.fail("expected NetlistError")
