"""Unit tests for the naive common-path reference sums."""

import pytest

from repro.circuit import fig5_tree, single_line
from repro.circuit.paths import (
    all_elmore_inductance_sums,
    all_elmore_resistance_sums,
    common_path_inductance,
    common_path_resistance,
    elmore_inductance_sum,
    elmore_resistance_sum,
)


class TestCommonPath:
    def test_siblings_share_upstream_only(self, fig5):
        # n4 and n7 share only the level-1 section n1.
        assert common_path_resistance(fig5, "n4", "n7") == pytest.approx(25.0)
        assert common_path_inductance(fig5, "n4", "n7") == pytest.approx(5e-9)

    def test_node_with_itself_is_full_path(self, fig5):
        assert common_path_resistance(fig5, "n7", "n7") == pytest.approx(75.0)

    def test_ancestor_descendant(self, fig5):
        # common path of n1 and n7 is just n1's section
        assert common_path_resistance(fig5, "n1", "n7") == pytest.approx(25.0)

    def test_symmetry(self, fig8):
        for a in fig8.nodes:
            for b in fig8.nodes:
                assert common_path_resistance(fig8, a, b) == pytest.approx(
                    common_path_resistance(fig8, b, a)
                )


class TestElmoreSums:
    def test_single_section_closed_form(self):
        line = single_line(1, resistance=10.0, inductance=2e-9, capacitance=1e-12)
        assert elmore_resistance_sum(line, "n1") == pytest.approx(10.0 * 1e-12)
        assert elmore_inductance_sum(line, "n1") == pytest.approx(2e-9 * 1e-12)

    def test_uniform_line_closed_form(self):
        # For a uniform n-section line, T_RC at the sink is
        # R C n (n + 1) / 2 (the classic distributed Elmore sum).
        n = 6
        line = single_line(n, resistance=10.0, inductance=1e-9, capacitance=1e-12)
        expected = 10.0 * 1e-12 * n * (n + 1) / 2
        assert elmore_resistance_sum(line, f"n{n}") == pytest.approx(expected)
        expected_l = 1e-9 * 1e-12 * n * (n + 1) / 2
        assert elmore_inductance_sum(line, f"n{n}") == pytest.approx(expected_l)

    def test_fig5_hand_computation(self, fig5):
        # At n1 (level 1): every capacitor sees only the n1 section in
        # common -> T_RC = R1 * C_total = 25 * 7 * 0.5p.
        assert elmore_resistance_sum(fig5, "n1") == pytest.approx(25.0 * 7 * 0.5e-12)

    def test_sink_value_exceeds_upstream(self, fig5):
        assert elmore_resistance_sum(fig5, "n7") > elmore_resistance_sum(fig5, "n3")
        assert elmore_resistance_sum(fig5, "n3") > elmore_resistance_sum(fig5, "n1")

    def test_all_nodes_helpers(self, fig5):
        t_rc = all_elmore_resistance_sums(fig5)
        t_lc = all_elmore_inductance_sums(fig5)
        assert set(t_rc) == set(fig5.nodes)
        assert set(t_lc) == set(fig5.nodes)
        assert t_rc["n7"] == pytest.approx(elmore_resistance_sum(fig5, "n7"))
