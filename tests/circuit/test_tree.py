"""Unit tests for the RLCTree container."""

import pytest

from repro.circuit import RLCTree, Section
from repro.errors import TopologyError


@pytest.fixture
def small_tree():
    """in -> a -> b, a -> c (c a leaf, b a leaf)."""
    tree = RLCTree()
    tree.add_section("a", "in", 10.0, 1e-9, 1e-12)
    tree.add_section("b", "a", 20.0, 2e-9, 2e-12)
    tree.add_section("c", "a", 30.0, 3e-9, 3e-12)
    return tree


class TestConstruction:
    def test_default_root_name(self):
        assert RLCTree().root == "in"

    def test_custom_root_name(self):
        assert RLCTree("clk").root == "clk"

    def test_empty_root_rejected(self):
        with pytest.raises(TopologyError):
            RLCTree("")

    def test_chaining(self):
        tree = RLCTree().add_section("a", "in", 1.0).add_section("b", "a", 2.0)
        assert tree.size == 2

    def test_duplicate_name_rejected(self, small_tree):
        with pytest.raises(TopologyError, match="duplicate"):
            small_tree.add_section("a", "in", 1.0)

    def test_root_name_collision_rejected(self):
        tree = RLCTree()
        with pytest.raises(TopologyError, match="duplicate"):
            tree.add_section("in", "in", 1.0)

    def test_unknown_parent_rejected(self):
        tree = RLCTree()
        with pytest.raises(TopologyError, match="parent"):
            tree.add_section("a", "nowhere", 1.0)

    def test_prebuilt_section(self):
        proto = Section(5.0, 1e-9, 1e-12)
        tree = RLCTree().add_section("a", "in", section=proto)
        assert tree.section("a") is proto

    def test_replace_section(self, small_tree):
        new = Section(99.0, 0.0, 1e-15)
        small_tree.replace_section("b", new)
        assert small_tree.section("b") == new

    def test_replace_unknown_node_rejected(self, small_tree):
        with pytest.raises(TopologyError):
            small_tree.replace_section("zzz", Section(1.0))


class TestQueries:
    def test_size_and_len(self, small_tree):
        assert small_tree.size == 3
        assert len(small_tree) == 3

    def test_contains(self, small_tree):
        assert "a" in small_tree
        assert "in" in small_tree
        assert "zzz" not in small_tree

    def test_nodes_in_insertion_order(self, small_tree):
        assert small_tree.nodes == ("a", "b", "c")

    def test_parent_child(self, small_tree):
        assert small_tree.parent("b") == "a"
        assert small_tree.children("a") == ("b", "c")
        assert small_tree.children("in") == ("a",)

    def test_parent_of_root_raises(self, small_tree):
        with pytest.raises(TopologyError):
            small_tree.parent("in")

    def test_leaves(self, small_tree):
        assert small_tree.leaves() == ("b", "c")
        assert small_tree.is_leaf("b")
        assert not small_tree.is_leaf("a")

    def test_levels_and_depth(self, small_tree):
        assert small_tree.level("a") == 1
        assert small_tree.level("b") == 2
        assert small_tree.level("in") == 0
        assert small_tree.depth == 2
        assert small_tree.levels() == [("a",), ("b", "c")]

    def test_path_to(self, small_tree):
        assert small_tree.path_to("b") == ("a", "b")
        assert small_tree.path_to("a") == ("a",)

    def test_common_path(self, small_tree):
        assert small_tree.common_path("b", "c") == ("a",)
        assert small_tree.common_path("b", "b") == ("a", "b")
        assert small_tree.common_path("b", "a") == ("a",)

    def test_subtree(self, small_tree):
        assert set(small_tree.subtree("a")) == {"a", "b", "c"}
        assert small_tree.subtree("b") == ("b",)

    def test_unknown_node_raises_everywhere(self, small_tree):
        for method in ("section", "parent", "path_to", "level", "subtree"):
            with pytest.raises(TopologyError):
                getattr(small_tree, method)("zzz")


class TestTraversal:
    def test_preorder_parent_first(self, small_tree):
        order = list(small_tree.preorder())
        assert order.index("a") < order.index("b")
        assert order.index("a") < order.index("c")
        assert sorted(order) == ["a", "b", "c"]

    def test_postorder_children_first(self, small_tree):
        order = list(small_tree.postorder())
        assert order.index("b") < order.index("a")
        assert order.index("c") < order.index("a")
        assert sorted(order) == ["a", "b", "c"]

    def test_traversals_cover_deep_tree(self, deep_balanced):
        assert sorted(deep_balanced.preorder()) == sorted(deep_balanced.nodes)
        assert sorted(deep_balanced.postorder()) == sorted(deep_balanced.nodes)


class TestElectricalAggregates:
    def test_total_capacitance(self, small_tree):
        assert small_tree.total_capacitance() == pytest.approx(6e-12)

    def test_downstream_capacitance(self, small_tree):
        assert small_tree.downstream_capacitance("a") == pytest.approx(6e-12)
        assert small_tree.downstream_capacitance("b") == pytest.approx(2e-12)

    def test_path_resistance_and_inductance(self, small_tree):
        assert small_tree.path_resistance("b") == pytest.approx(30.0)
        assert small_tree.path_inductance("b") == pytest.approx(3e-9)

    def test_is_rc(self, small_tree, rc_line):
        assert not small_tree.is_rc()
        assert rc_line.is_rc()


class TestTransformations:
    def test_scaled_preserves_topology(self, small_tree):
        scaled = small_tree.scaled(2.0, 0.5, 3.0)
        assert scaled.nodes == small_tree.nodes
        assert scaled.section("b").resistance == pytest.approx(40.0)
        assert scaled.section("b").inductance == pytest.approx(1e-9)
        assert scaled.section("b").capacitance == pytest.approx(6e-12)

    def test_scaled_does_not_mutate_original(self, small_tree):
        small_tree.scaled(10.0)
        assert small_tree.section("a").resistance == 10.0

    def test_without_inductance(self, small_tree):
        rc = small_tree.without_inductance()
        assert rc.is_rc()
        assert rc.section("a").resistance == small_tree.section("a").resistance
        assert rc.section("a").capacitance == small_tree.section("a").capacitance

    def test_map_sections_receives_names(self, small_tree):
        seen = []

        def spy(name, section):
            seen.append(name)
            return section

        small_tree.map_sections(spy)
        assert sorted(seen) == ["a", "b", "c"]
