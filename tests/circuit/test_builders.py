"""Unit tests for the tree factory functions."""

import math

import numpy as np
import pytest

from repro.circuit import (
    Section,
    asymmetric_tree,
    balanced_to_ladder,
    balanced_tree,
    distributed_line,
    fig5_tree,
    fig8_tree,
    ladder,
    random_tree,
    scale_tree_to_zeta,
    single_line,
)
from repro.circuit.paths import elmore_inductance_sum, elmore_resistance_sum
from repro.errors import ElementValueError, TopologyError


class TestSingleLine:
    def test_topology_is_a_chain(self):
        line = single_line(4)
        assert line.size == 4
        assert line.depth == 4
        assert line.leaves() == ("n4",)
        assert line.path_to("n4") == ("n1", "n2", "n3", "n4")

    def test_one_section_is_fig4(self):
        line = single_line(1, resistance=10.0, inductance=1e-9, capacitance=1e-12)
        assert line.size == 1
        assert line.section("n1").damping_factor == pytest.approx(
            0.5 * 10.0 * math.sqrt(1e-12 / 1e-9)
        )

    def test_zero_sections_rejected(self):
        with pytest.raises(TopologyError):
            single_line(0)

    def test_string_values(self):
        line = single_line(2, resistance="25ohm", inductance="5n", capacitance="0.5p")
        assert line.section("n1").inductance == pytest.approx(5e-9)


class TestDistributedLine:
    def test_totals_are_preserved(self):
        line = distributed_line("100ohm", "10n", "2p", num_sections=25)
        assert line.total_resistance() == pytest.approx(100.0)
        assert line.total_inductance() == pytest.approx(1e-8)
        assert line.total_capacitance() == pytest.approx(2e-12)

    def test_load_added_at_sink_only(self):
        line = distributed_line(100.0, 1e-8, 2e-12, 10, load_capacitance="50f")
        assert line.section("n10").capacitance == pytest.approx(2e-13 + 50e-15)
        assert line.section("n1").capacitance == pytest.approx(2e-13)


class TestBalancedTree:
    def test_section_count(self):
        # b-ary, n levels -> b + b^2 + ... + b^n sections
        tree = balanced_tree(3, 2)
        assert tree.size == 2 + 4 + 8
        assert len(tree.leaves()) == 8

    def test_branching_factor_16(self):
        tree = balanced_tree(2, 16)
        assert tree.size == 16 + 256
        assert len(tree.leaves()) == 256

    def test_level_sections_taper(self):
        sections = [Section(1.0, 1e-9, 1e-12), Section(2.0, 2e-9, 0.5e-12)]
        tree = balanced_tree(2, 2, level_sections=sections)
        assert tree.section("n1") == sections[0]
        assert tree.section("n3") == sections[1]  # first level-2 node

    def test_level_sections_length_mismatch(self):
        with pytest.raises(TopologyError):
            balanced_tree(3, 2, level_sections=[Section(1.0)] * 2)

    def test_all_levels_uniform(self):
        tree = balanced_tree(3, 2)
        for level_nodes in tree.levels():
            assert len({tree.section(n) for n in level_nodes}) == 1


class TestAsymmetricTree:
    def test_asym_one_is_balanced(self):
        tree = asymmetric_tree(2, 1.0)
        sections = {s for _, s in tree.sections()}
        assert len(sections) == 1

    def test_left_branch_is_heavier(self):
        tree = asymmetric_tree(1, 3.0, resistance=10.0, inductance=1e-9,
                               capacitance=1e-12)
        left, right = tree.children("in")
        assert tree.section(left).resistance == pytest.approx(30.0)
        assert tree.section(right).resistance == pytest.approx(10.0)
        assert tree.section(left).capacitance == pytest.approx(1e-12 / 3.0)

    @pytest.mark.parametrize("bad", [0.0, -1.0, float("inf")])
    def test_invalid_asym_rejected(self, bad):
        with pytest.raises(ElementValueError):
            asymmetric_tree(2, bad)


class TestFig5Tree:
    def test_paper_numbering(self):
        tree = fig5_tree()
        assert tree.size == 7
        assert tree.children("in") == ("n1",)
        assert tree.children("n1") == ("n2", "n3")
        assert tree.children("n3") == ("n6", "n7")
        assert set(tree.leaves()) == {"n4", "n5", "n6", "n7"}

    def test_balanced_by_default(self):
        tree = fig5_tree()
        assert len({s for _, s in tree.sections()}) == 1

    def test_asymmetric_variant(self):
        tree = fig5_tree(asym=2.0)
        # left subtree (n2 side) heavier than right (n3 side)
        assert tree.section("n2").resistance == pytest.approx(
            2.0 * tree.section("n3").resistance
        )


class TestFig8Tree:
    def test_has_named_output(self, fig8):
        assert "out" in fig8
        assert fig8.is_leaf("out")

    def test_is_irregular(self, fig8):
        sections = {s for _, s in fig8.sections()}
        assert len(sections) > 3


class TestRandomTree:
    def test_reproducible_with_seed(self):
        a = random_tree(20, np.random.default_rng(7))
        b = random_tree(20, np.random.default_rng(7))
        assert a.nodes == b.nodes
        assert all(a.section(n) == b.section(n) for n in a.nodes)

    def test_respects_max_children(self, rng):
        tree = random_tree(50, rng, max_children=2)
        assert all(len(tree.children(n)) <= 2 for n in tree.nodes)

    def test_rc_only(self, rng):
        assert random_tree(10, rng, rc_only=True).is_rc()

    def test_values_within_ranges(self, rng):
        tree = random_tree(
            30, rng, resistance_range=(5.0, 6.0), capacitance_range=(1e-13, 2e-13)
        )
        for _, section in tree.sections():
            assert 5.0 <= section.resistance <= 6.0
            assert 1e-13 <= section.capacitance <= 2e-13


class TestBalancedToLadder:
    def test_ladder_shape(self):
        tree = balanced_tree(3, 2, resistance=8.0, inductance=2e-9,
                             capacitance=0.25e-12)
        lad = balanced_to_ladder(tree)
        assert lad.size == 3
        assert lad.leaves() == ("n3",)

    def test_parallel_merge_values(self):
        # Level l has 2^l identical sections -> R/2^(l-1)... level 1 has
        # 2 sections in parallel, level 2 has 4, level 3 has 8.
        tree = balanced_tree(3, 2, resistance=8.0, inductance=2e-9,
                             capacitance=0.25e-12)
        lad = balanced_to_ladder(tree)
        assert lad.section("n1").resistance == pytest.approx(8.0 / 2)
        assert lad.section("n2").resistance == pytest.approx(8.0 / 4)
        assert lad.section("n3").resistance == pytest.approx(8.0 / 8)
        assert lad.section("n3").capacitance == pytest.approx(0.25e-12 * 8)
        assert lad.section("n2").inductance == pytest.approx(2e-9 / 4)

    def test_unbalanced_rejected(self):
        tree = asymmetric_tree(2, 2.0)
        with pytest.raises(TopologyError, match="not balanced"):
            balanced_to_ladder(tree)

    def test_ladder_of_ladder_is_identity(self):
        lad = ladder([Section(1.0, 1e-9, 1e-12), Section(2.0, 2e-9, 2e-12)])
        again = balanced_to_ladder(lad)
        assert [again.section(n) for n in again.nodes] == [
            lad.section(n) for n in lad.nodes
        ]


class TestScaleToZeta:
    @pytest.mark.parametrize("target", [0.3, 0.5, 1.0, 2.0])
    def test_hits_target_zeta(self, fig5, target):
        scaled = scale_tree_to_zeta(fig5, "n7", target)
        t_rc = elmore_resistance_sum(scaled, "n7")
        t_lc = elmore_inductance_sum(scaled, "n7")
        assert t_rc / (2 * math.sqrt(t_lc)) == pytest.approx(target)

    def test_elmore_sum_unchanged(self, fig5):
        scaled = scale_tree_to_zeta(fig5, "n7", 0.4)
        assert elmore_resistance_sum(scaled, "n7") == pytest.approx(
            elmore_resistance_sum(fig5, "n7")
        )

    def test_rc_tree_rejected(self, rc_line):
        with pytest.raises(ElementValueError):
            scale_tree_to_zeta(rc_line, "n5", 0.5)

    def test_bad_target_rejected(self, fig5):
        with pytest.raises(ElementValueError):
            scale_tree_to_zeta(fig5, "n7", 0.0)
