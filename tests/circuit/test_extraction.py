"""Unit tests for geometric extraction and the [8] inductance window."""

import math

import pytest

from repro.circuit import (
    InductanceWindow,
    WireGeometry,
    extract_line,
    inductance_window,
)
from repro.errors import ElementValueError


@pytest.fixture
def clock_wire():
    """A wide upper-metal clock wire: 4 x 1 um, 2 um over the plane."""
    return WireGeometry(width=4e-6, thickness=1e-6, height=2e-6,
                        resistivity=2.65e-8)


@pytest.fixture
def signal_wire():
    """A narrow signal wire: 0.5 x 0.5 um, 1 um over the plane."""
    return WireGeometry(width=0.5e-6, thickness=0.5e-6, height=1e-6,
                        resistivity=2.65e-8)


class TestPerUnitLengthValues:
    def test_resistance_formula(self, clock_wire):
        expected = 2.65e-8 / (4e-6 * 1e-6)
        assert clock_wire.resistance_per_meter == pytest.approx(expected)

    def test_values_in_physical_range(self, clock_wire):
        # Sanity bands for mid-90s upper metal: ohm/mm, fF/mm, nH/mm.
        assert 1.0 < clock_wire.resistance_per_meter * 1e-3 < 50.0
        assert 50e-15 < clock_wire.capacitance_per_meter * 1e-3 < 500e-15
        assert 0.1e-9 < clock_wire.inductance_per_meter * 1e-3 < 2e-9

    def test_narrow_wire_is_more_resistive(self, clock_wire, signal_wire):
        assert (
            signal_wire.resistance_per_meter
            > 10 * clock_wire.resistance_per_meter
        )

    def test_wider_wire_more_capacitance_less_inductance(self, clock_wire):
        wider = WireGeometry(width=8e-6, thickness=1e-6, height=2e-6,
                             resistivity=2.65e-8)
        assert wider.capacitance_per_meter > clock_wire.capacitance_per_meter
        assert wider.inductance_per_meter < clock_wire.inductance_per_meter

    def test_propagation_slower_than_light(self, clock_wire, signal_wire):
        c0 = 299792458.0
        for wire in (clock_wire, signal_wire):
            assert 0.1 * c0 < wire.propagation_velocity < c0

    def test_characteristic_impedance_plausible(self, clock_wire):
        assert 10.0 < clock_wire.characteristic_impedance < 200.0

    def test_very_wide_line_uses_plate_limit(self):
        plate = WireGeometry(width=100e-6, thickness=1e-6, height=1e-6)
        mu0 = 4e-7 * math.pi
        assert plate.inductance_per_meter == pytest.approx(
            mu0 * 1e-6 / 100e-6
        )

    def test_validation(self):
        with pytest.raises(ElementValueError):
            WireGeometry(width=0.0, thickness=1e-6, height=1e-6)
        with pytest.raises(ElementValueError):
            WireGeometry(width=1e-6, thickness=1e-6, height=1e-6,
                         resistivity=-1.0)
        with pytest.raises(ElementValueError):
            WireGeometry(width=1e-6, thickness=1e-6, height=1e-6,
                         dielectric_constant=0.5)


class TestExtractLine:
    def test_totals_match_geometry(self, clock_wire):
        length = 5e-3
        tree = extract_line(clock_wire, length, num_sections=25)
        assert tree.total_resistance() == pytest.approx(
            clock_wire.resistance_per_meter * length
        )
        assert tree.total_inductance() == pytest.approx(
            clock_wire.inductance_per_meter * length
        )
        assert tree.total_capacitance() == pytest.approx(
            clock_wire.capacitance_per_meter * length
        )

    def test_load_at_sink(self, clock_wire):
        tree = extract_line(clock_wire, 1e-3, num_sections=10,
                            load_capacitance="30f")
        assert tree.section("n10").capacitance == pytest.approx(
            clock_wire.capacitance_per_meter * 1e-4 + 30e-15
        )

    def test_string_length_uses_spice_suffixes(self, clock_wire):
        # "5m" is SPICE milli: a 5-mm wire, not a 5-meter one.
        tree = extract_line(clock_wire, "5m", num_sections=4)
        assert tree.total_resistance() == pytest.approx(
            clock_wire.resistance_per_meter * 5e-3
        )

    def test_bad_length(self, clock_wire):
        with pytest.raises(ElementValueError):
            extract_line(clock_wire, -1.0)

    def test_extracted_wide_wire_is_underdamped(self, clock_wire):
        """The motivating physics: a 5-mm wide clock wire rings."""
        from repro.analysis import TreeAnalyzer

        tree = extract_line(clock_wire, 5e-3, load_capacitance="50f")
        analyzer = TreeAnalyzer(tree)
        assert analyzer.zeta(tree.leaves()[0]) < 1.0

    def test_extracted_narrow_wire_is_overdamped(self, signal_wire):
        from repro.analysis import TreeAnalyzer

        tree = extract_line(signal_wire, 5e-3, load_capacitance="5f")
        analyzer = TreeAnalyzer(tree)
        assert analyzer.zeta(tree.leaves()[0]) > 1.0


class TestInductanceWindow:
    def test_bounds_formulas(self, clock_wire):
        window = inductance_window(clock_wire, 5e-3, 50e-12)
        r = clock_wire.resistance_per_meter
        l = clock_wire.inductance_per_meter
        c = clock_wire.capacitance_per_meter
        assert window.lower == pytest.approx(50e-12 / (2 * math.sqrt(l * c)))
        assert window.upper == pytest.approx((2 / r) * math.sqrt(l / c))

    def test_wide_wire_has_window(self, clock_wire):
        window = inductance_window(clock_wire, 5e-3, "50p")
        assert window.exists
        assert window.matters
        assert window.regime == "rlc"

    def test_narrow_wire_has_no_window(self, signal_wire):
        # Resistive narrow wires: upper bound collapses below lower.
        window = inductance_window(signal_wire, 5e-3, "50p")
        assert not window.exists
        assert window.regime == "rc"
        assert not window.matters

    def test_short_line_capacitive(self, clock_wire):
        window = inductance_window(clock_wire, 0.1e-3, "50p")
        assert window.regime == "capacitive"

    def test_long_line_rc(self, clock_wire):
        window = inductance_window(clock_wire, 100e-3, "50p")
        assert window.regime == "rc"

    def test_slower_input_shrinks_window(self, clock_wire):
        fast = inductance_window(clock_wire, 5e-3, 20e-12)
        slow = inductance_window(clock_wire, 5e-3, 500e-12)
        assert slow.lower > fast.lower
        assert slow.upper == fast.upper

    def test_window_agrees_with_damping(self, clock_wire):
        """Inside the window the extracted line must actually ring."""
        from repro.analysis import TreeAnalyzer

        window = inductance_window(clock_wire, 5e-3, "50p")
        assert window.matters
        tree = extract_line(clock_wire, 5e-3)
        assert TreeAnalyzer(tree).zeta(tree.leaves()[0]) < 1.0

    def test_validation(self, clock_wire):
        with pytest.raises(ElementValueError):
            inductance_window(clock_wire, -1.0, 1e-12)
        with pytest.raises(ElementValueError):
            inductance_window(clock_wire, 1e-3, 0.0)
