"""Unit tests for engineering-notation parsing and formatting."""

import math

import pytest

from repro.errors import ElementValueError
from repro.units import SI_PREFIXES, format_value, parse_value


class TestParse:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("10p", 1e-11),
            ("10pF", 1e-11),
            ("2.5nH", 2.5e-9),
            ("0.5p", 5e-13),
            ("50ohm", 50.0),
            ("1meg", 1e6),
            ("1MEG", 1e6),
            ("3k", 3e3),
            ("15f", 15e-15),
            ("2u", 2e-6),
            ("7m", 7e-3),
            ("1g", 1e9),
            ("4t", 4e12),
            ("1e-9", 1e-9),
            ("-3.5n", -3.5e-9),
            ("+2p", 2e-12),
            (".5n", 0.5e-9),
            ("1E3", 1000.0),
            ("2.5e-3m", 2.5e-6),
        ],
    )
    def test_suffixes(self, text, expected):
        assert parse_value(text) == pytest.approx(expected)

    def test_numbers_pass_through(self):
        assert parse_value(42) == 42.0
        assert parse_value(1.5e-12) == 1.5e-12

    def test_case_insensitive(self):
        assert parse_value("5N") == parse_value("5n")
        assert parse_value("5NH") == parse_value("5nh")

    def test_whitespace_tolerated(self):
        assert parse_value("  10p  ") == pytest.approx(1e-11)

    def test_m_is_milli_not_meg(self):
        assert parse_value("1m") == pytest.approx(1e-3)
        assert parse_value("1meg") == pytest.approx(1e6)

    @pytest.mark.parametrize("bad", ["", "abc", "10 pF", "1..5n", "p5",
                                     "1n5"])
    def test_unparseable_rejected(self, bad):
        with pytest.raises(ElementValueError):
            parse_value(bad)

    def test_nan_rejected(self):
        with pytest.raises(ElementValueError):
            parse_value(float("nan"))

    def test_prefix_table_consistent(self):
        for prefix, scale in SI_PREFIXES.items():
            assert parse_value(f"1{prefix}") == pytest.approx(scale)


class TestFormat:
    @pytest.mark.parametrize(
        "value,unit,expected",
        [
            (1e-11, "F", "10pF"),
            (2.5e-9, "H", "2.5nH"),
            (50.0, "ohm", "50ohm"),
            (0.0, "s", "0s"),
            (1e6, "Hz", "1MHz"),
            (3.3e3, "", "3.3k"),
            (15e-15, "F", "15fF"),
        ],
    )
    def test_common_values(self, value, unit, expected):
        assert format_value(value, unit) == expected

    def test_negative(self):
        assert format_value(-2e-9, "s") == "-2ns"

    def test_round_trip_through_parse(self):
        for value in (1e-15, 3.7e-12, 2.2e-9, 5e-6, 0.1, 42.0, 8e9):
            text = format_value(value, digits=12)
            assert parse_value(text) == pytest.approx(value, rel=1e-10)

    def test_below_femto_falls_back_to_scientific(self):
        text = format_value(1e-18, "F")
        assert "e-18" in text

    def test_infinity_passes_through(self):
        assert "inf" in format_value(math.inf, "s")

    def test_digits_control(self):
        assert format_value(1.23456e-9, "s", digits=2) == "1.2ns"
