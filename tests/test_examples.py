"""Smoke tests: every example script must run to completion.

Examples are documentation that executes; a broken example is a broken
promise. Each one runs in-process (runpy) with stdout captured, and the
key claims its output makes are spot-checked.
"""

import pathlib
import runpy

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"
ALL_EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def run_example(path, capsys):
    runpy.run_path(str(path), run_name="__main__")
    return capsys.readouterr().out


@pytest.mark.parametrize(
    "path", ALL_EXAMPLES, ids=[p.stem for p in ALL_EXAMPLES]
)
def test_example_runs(path, capsys):
    output = run_example(path, capsys)
    assert len(output) > 100  # produced a real report, not a stub


def test_examples_directory_is_complete():
    names = {p.stem for p in ALL_EXAMPLES}
    assert "quickstart" in names
    assert len(names) >= 3  # the deliverable floor; we ship more


class TestExampleClaims:
    def test_quickstart_beats_elmore(self, capsys):
        output = run_example(EXAMPLES_DIR / "quickstart.py", capsys)
        assert "critical sink" in output
        assert "RC Elmore" in output

    def test_clock_tree_reports_correlations(self, capsys):
        output = run_example(EXAMPLES_DIR / "clock_tree_analysis.py", capsys)
        assert "rank correlation" in output.lower()

    def test_damping_tour_covers_regimes(self, capsys):
        output = run_example(EXAMPLES_DIR / "damping_regimes_tour.py", capsys)
        assert "underdamped" in output
        assert "overdamped" in output
        assert "critically damped" in output

    def test_netlist_workflow_round_trips(self, capsys):
        output = run_example(EXAMPLES_DIR / "netlist_workflow.py", capsys)
        assert "round-trip parses identically: True" in output

    def test_repeater_demo_shows_collapse(self, capsys):
        output = run_example(
            EXAMPLES_DIR / "repeater_insertion_demo.py", capsys
        )
        assert "RLC-opt" in output

    def test_geometry_demo_identifies_regimes(self, capsys):
        output = run_example(EXAMPLES_DIR / "geometry_to_timing.py", capsys)
        assert "'rlc' regime" in output
        assert "empty" in output  # the narrow wires have no window

    def test_crosstalk_reports_polarity(self, capsys):
        output = run_example(EXAMPLES_DIR / "crosstalk_study.py", capsys)
        assert "down" in output and "up" in output
