"""End-to-end server tests over a real socket.

Every test drives the full HTTP path: parse, admit, coalesce, dispatch,
serialize. The acceptance bar of the service is pinned here — server
responses bitwise-identical to direct :class:`ExecutionContext` calls,
saturation answered with 429 + ``Retry-After`` (never a crashed pool),
and a drain that refuses new work while finishing old work.
"""

import http.client
import json
import threading

import numpy as np
import pytest

from repro.circuit import fig5_tree
from repro.engine.compiled import compile_tree
from repro.runtime import ExecutionContext
from repro.service import BackgroundServer

from .conftest import http_get, http_post, ndjson_lines

TREE = fig5_tree()


@pytest.fixture
def reference_context():
    with ExecutionContext() as ctx:
        yield ctx


def base_rlc(scale=1.0):
    compiled = compile_tree(TREE)
    return np.stack(
        (
            compiled.resistance * scale,
            compiled.inductance * scale,
            compiled.capacitance * scale,
        )
    )


class TestEndpoints:
    def test_healthz(self):
        with BackgroundServer() as bg:
            status, _, body = http_get(bg.port, "/healthz")
            assert status == 200
            assert json.loads(body) == {"status": "ok"}

    def test_unknown_endpoint_is_404(self):
        with BackgroundServer() as bg:
            status, _, _ = http_get(bg.port, "/nope")
            assert status == 404

    def test_get_on_analyze_is_405(self):
        with BackgroundServer() as bg:
            status, _, _ = http_get(bg.port, "/analyze")
            assert status == 405

    def test_bad_json_is_400(self):
        with BackgroundServer() as bg:
            status, _, body = http_post(bg.port, "/analyze", b"{nope")
            assert status == 400
            assert "JSON" in body["error"]

    def test_unknown_node_is_400_not_500(self, netlist):
        with BackgroundServer() as bg:
            status, _, body = http_post(
                bg.port, "/analyze", {"netlist": netlist, "nodes": ["zz"]}
            )
            assert status == 400
            assert "TopologyError" in body["error"]
            # The pool survived: the next request is fine.
            status, _, _ = http_post(
                bg.port, "/analyze", {"netlist": netlist}
            )
            assert status == 200

    def test_analyze_is_bitwise_identical_to_direct_context(
        self, netlist, reference_context
    ):
        with BackgroundServer() as bg:
            status, _, body = http_post(
                bg.port, "/analyze", {"netlist": netlist}
            )
        assert status == 200
        compiled = compile_tree(TREE)
        reference = reference_context.batch(
            compiled, base_rlc()[None], settle_band=0.1
        )
        assert set(body["nodes"]) == set(TREE.nodes)
        for node, row in body["nodes"].items():
            for metric, value in row.items():
                direct = float(reference.column(metric, node)[0])
                assert value == direct, (
                    f"{metric}@{node}: served {value!r} != direct {direct!r}"
                )

    def test_batch_is_bitwise_identical_to_direct_context(
        self, netlist, reference_context
    ):
        rlc = np.stack([base_rlc(s) for s in (0.5, 1.0, 2.0)])
        with BackgroundServer() as bg:
            status, _, body = http_post(
                bg.port,
                "/analyze_batch",
                {
                    "netlist": netlist,
                    "rlc": rlc.tolist(),
                    "metrics": ["delay_50", "overshoot"],
                },
            )
        assert status == 200
        assert body["scenarios"] == 3
        compiled = compile_tree(TREE)
        reference = reference_context.batch(
            compiled, rlc, settle_band=0.1,
            metrics=["delay_50", "overshoot"],
        )
        assert tuple(body["names"]) == reference.names
        for metric in ("delay_50", "overshoot"):
            served = np.asarray(body["metrics"][metric])
            direct = getattr(reference.metrics, metric)
            assert served.shape == direct.shape
            assert np.array_equal(served, direct), f"{metric} differs"

    def test_sweep_streams_chunks_bitwise_identical(
        self, netlist, reference_context
    ):
        values = np.linspace(5.0, 50.0, 10)
        with BackgroundServer() as bg:
            status, headers, data = http_post(
                bg.port,
                "/sweep",
                {
                    "netlist": netlist,
                    "section": "n1",
                    "element": "resistance",
                    "values": values.tolist(),
                    "nodes": ["n7"],
                    "metrics": ["delay_50"],
                    "chunk": 4,
                },
                raw=True,
            )
        assert status == 200
        assert headers.get("Transfer-Encoding") == "chunked"
        lines = ndjson_lines(data)
        assert lines[-1] == {"done": True, "chunks": 3, "scenarios": 10}
        chunks = lines[:-1]
        assert [c["offset"] for c in chunks] == [0, 4, 8]
        served = np.concatenate(
            [np.asarray(c["metrics"]["delay_50"]["n7"]) for c in chunks]
        )
        # Direct reference: the same broadcast the server builds.
        compiled = compile_tree(TREE)
        rlc = np.broadcast_to(
            base_rlc(), (values.size, 3, compiled.size)
        ).copy()
        rlc[:, 0, compiled.topology.node_index("n1")] = values
        reference = reference_context.batch(
            compiled, rlc, settle_band=0.1, metrics=["delay_50"]
        )
        assert np.array_equal(served, reference.column("delay_50", "n7"))

    def test_stats_exposes_service_group(self, netlist):
        with BackgroundServer() as bg:
            http_post(bg.port, "/analyze", {"netlist": netlist})
            status, _, stats = http_post(bg.port, "/analyze", {
                "netlist": netlist,
            })
            status, _, body = http_get(bg.port, "/stats")
            stats = json.loads(body)
        assert status == 200
        service = stats["service"]
        assert service["analyze"] == 2
        assert service["max_inflight"] == 8
        assert service["coalescing"]["requests"] == 2
        # The runtime's own stats ride along in the same snapshot.
        assert "dispatch" in stats
        assert "calibration_stale" in stats


class TestAdmissionControl:
    def test_zero_inflight_rejects_with_retry_after(self, netlist):
        with BackgroundServer(max_inflight=0, retry_after=3.0) as bg:
            status, headers, body = http_post(
                bg.port, "/analyze", {"netlist": netlist}
            )
            assert status == 429
            assert int(headers["Retry-After"]) == 3
            assert "max_inflight" in body["error"]
            # Control endpoints bypass admission: still observable.
            status, _, _ = http_get(bg.port, "/stats")
            assert status == 200

    def test_saturated_server_rejects_then_recovers(self, netlist):
        """A held slot deterministically 429s the next request."""
        with BackgroundServer(max_inflight=1) as bg:
            # A streaming sweep holds the only slot for its whole body;
            # its response *headers* arrive first, signalling the hold.
            conn = http.client.HTTPConnection(
                "127.0.0.1", bg.port, timeout=30
            )
            conn.request(
                "POST",
                "/sweep",
                body=json.dumps(
                    {
                        "netlist": netlist,
                        "section": "n1",
                        "element": "resistance",
                        "values": {
                            "start": 5.0, "stop": 50.0, "points": 512,
                        },
                        "nodes": ["n7"],
                        "metrics": ["delay_50"],
                        "chunk": 16,
                    }
                ),
            )
            sweep_response = conn.getresponse()  # returns at headers
            assert sweep_response.status == 200

            status, headers, _ = http_post(
                bg.port, "/analyze", {"netlist": netlist}
            )
            assert status == 429
            assert "Retry-After" in headers

            # Drain the stream; the slot frees and service resumes.
            lines = ndjson_lines(sweep_response.read())
            conn.close()
            assert lines[-1]["done"] is True
            status, _, _ = http_post(
                bg.port, "/analyze", {"netlist": netlist}
            )
            assert status == 200
            stats = bg.server.service_stats()
            assert stats["rejected_429"] == 1

    def test_burst_never_crashes_the_pool(self, netlist):
        """Overload produces only 200s and 429s, then full recovery."""
        with BackgroundServer(max_inflight=2, coalesce_window=0.0) as bg:
            statuses = []
            lock = threading.Lock()

            def fire():
                status, _, _ = http_post(
                    bg.port, "/analyze", {"netlist": netlist}
                )
                with lock:
                    statuses.append(status)

            threads = [threading.Thread(target=fire) for _ in range(12)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert set(statuses) <= {200, 429}
            assert statuses.count(200) >= 1
            status, _, _ = http_post(
                bg.port, "/analyze", {"netlist": netlist}
            )
            assert status == 200


class TestCoalescingOverHttp:
    def test_concurrent_identical_queries_merge_and_match_direct(
        self, netlist, reference_context
    ):
        clients = 6
        with BackgroundServer(
            max_inflight=32, coalesce_window=0.25
        ) as bg:
            results = [None] * clients
            barrier = threading.Barrier(clients)

            def fire(i):
                barrier.wait()
                results[i] = http_post(
                    bg.port,
                    "/analyze",
                    {"netlist": netlist, "metrics": ["delay_50", "zeta"]},
                )

            threads = [
                threading.Thread(target=fire, args=(i,))
                for i in range(clients)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            stats = bg.server.service_stats()

        assert all(status == 200 for status, _, _ in results)
        group_sizes = [
            body["service"]["group_size"] for _, _, body in results
        ]
        # At least one merge actually happened (the barrier makes the
        # requests near-simultaneous, well inside the 250 ms window).
        assert max(group_sizes) >= 2
        assert stats["coalescing"]["coalesced_requests"] >= 1
        assert stats["coalescing"]["hit_rate"] > 0.0

        # Coalesced or not, every response is bitwise-identical to a
        # direct context evaluation.
        compiled = compile_tree(TREE)
        reference = reference_context.batch(
            compiled, base_rlc()[None], settle_band=0.1,
            metrics=["delay_50", "zeta"],
        )
        for _, _, body in results:
            for node, row in body["nodes"].items():
                for metric, value in row.items():
                    assert value == float(
                        reference.column(metric, node)[0]
                    )

    def test_one_failing_member_does_not_poison_the_group(self, netlist):
        clients = 4
        with BackgroundServer(
            max_inflight=32, coalesce_window=0.25
        ) as bg:
            results = [None] * clients
            barrier = threading.Barrier(clients)

            def fire(i):
                barrier.wait()
                nodes = ["no_such_node"] if i == 0 else ["n7"]
                results[i] = http_post(
                    bg.port,
                    "/analyze",
                    {
                        "netlist": netlist,
                        "nodes": nodes,
                        "metrics": ["delay_50"],
                    },
                )

            threads = [
                threading.Thread(target=fire, args=(i,))
                for i in range(clients)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()

        statuses = [status for status, _, _ in results]
        assert statuses[0] == 400
        assert statuses[1:] == [200, 200, 200]
        for _, _, body in results[1:]:
            assert "delay_50" in body["nodes"]["n7"]


class TestSessionAffinity:
    def test_repeat_query_hits_the_session_cache(self, netlist):
        payload = {
            "netlist": netlist,
            "metrics": ["delay_50"],
            "session": "sizing-loop-1",
        }
        with BackgroundServer() as bg:
            status1, _, first = http_post(bg.port, "/analyze", payload)
            status2, _, second = http_post(bg.port, "/analyze", payload)
            stats = bg.server.service_stats()
        assert status1 == status2 == 200
        assert first["service"]["affinity_hit"] is False
        assert second["service"]["affinity_hit"] is True
        assert second["nodes"] == first["nodes"]  # bitwise: same floats
        assert stats["affinity_hits"] == 1

    def test_no_session_means_no_caching(self, netlist):
        payload = {"netlist": netlist, "metrics": ["delay_50"]}
        with BackgroundServer() as bg:
            http_post(bg.port, "/analyze", payload)
            _, _, second = http_post(bg.port, "/analyze", payload)
            stats = bg.server.service_stats()
        assert second["service"]["affinity_hit"] is False
        assert stats["affinity_hits"] == 0

    def test_affinity_cache_is_bounded(self, netlist):
        with BackgroundServer(affinity_capacity=2) as bg:
            for i in range(4):
                http_post(
                    bg.port,
                    "/analyze",
                    {
                        "netlist": netlist,
                        "metrics": ["delay_50"],
                        "session": f"s{i}",
                    },
                )
            assert len(bg.server._affinity) == 2


class TestDrain:
    def test_draining_server_rejects_with_503(self, netlist):
        with BackgroundServer() as bg:
            bg.server._draining = True
            status, _, body = http_post(
                bg.port, "/analyze", {"netlist": netlist}
            )
            assert status == 503
            assert "draining" in body["error"]
            status, _, health = http_get(bg.port, "/healthz")
            assert json.loads(health) == {"status": "draining"}
            bg.server._draining = False
            status, _, _ = http_post(
                bg.port, "/analyze", {"netlist": netlist}
            )
            assert status == 200

    def test_owned_context_is_torn_down_on_stop(self, netlist):
        bg = BackgroundServer()
        with bg:
            http_post(bg.port, "/analyze", {"netlist": netlist})
            context = bg.server.context
            assert context.closed is False
        # After the with-block the server drained through the
        # context-manager path (pool shutdown + arena release).
        assert context.closed is True

    def test_max_requests_self_stop(self, netlist):
        bg = BackgroundServer(max_requests=2)
        with bg:
            http_post(bg.port, "/analyze", {"netlist": netlist})
            http_post(bg.port, "/analyze", {"netlist": netlist})
            bg.join(timeout=30)
        assert not bg._thread.is_alive()
