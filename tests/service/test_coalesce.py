"""The coalescer's correctness contract: bitwise fidelity, isolation.

Coalescing is only admissible because the batch kernels are
row-independent — merging S point queries into one ``(S, 3, n)`` block
must change **nothing** about each member's answer. These tests pin
that, plus the failure-isolation rule: one bad member never poisons its
group.
"""

import asyncio
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.circuit import fig5_tree
from repro.engine.compiled import compile_tree
from repro.errors import ReproError, TopologyError
from repro.runtime import ExecutionContext
from repro.service import PointCoalescer

METRICS = ("delay_50", "rise_time", "overshoot", "settling")


@pytest.fixture
def context():
    with ExecutionContext() as ctx:
        yield ctx


@pytest.fixture
def executor():
    pool = ThreadPoolExecutor(max_workers=1)
    yield pool
    pool.shutdown(wait=True)


def perturbed(compiled, factor: float):
    """The same topology with all values scaled by ``factor``."""
    return compiled.with_values(
        compiled.resistance * factor,
        compiled.inductance * factor,
        compiled.capacitance * factor,
    )


def direct_reference(context, compiled, settle_band=0.1):
    """What a direct one-scenario ExecutionContext call returns."""
    rlc = np.stack(
        (compiled.resistance, compiled.inductance, compiled.capacitance)
    )[None]
    return context.batch(compiled, rlc, settle_band=settle_band)


class TestBitwiseFidelity:
    def test_single_query_matches_direct_call(self, context, executor):
        compiled = compile_tree(fig5_tree())
        coalescer = PointCoalescer(context, executor, window=0.0)

        async def go():
            return await coalescer.analyze(
                compiled, 0.1, compiled.names, METRICS
            )

        result, size = asyncio.run(go())
        assert size == 1
        reference = direct_reference(context, compiled)
        for node in compiled.names:
            for metric in METRICS:
                assert (
                    result[node][metric]
                    == float(reference.column(metric, node)[0])
                )

    def test_coalesced_group_is_bitwise_identical_to_direct(
        self, context, executor
    ):
        base = compile_tree(fig5_tree())
        members = [perturbed(base, f) for f in (0.5, 1.0, 1.7, 2.3, 4.1)]
        coalescer = PointCoalescer(context, executor, window=0.05)

        async def go():
            return await asyncio.gather(
                *[
                    coalescer.analyze(m, 0.1, m.names, METRICS)
                    for m in members
                ]
            )

        results = asyncio.run(go())
        # All five queries arrived inside one window: one group.
        assert coalescer.groups_flushed == 1
        assert {size for _, size in results} == {len(members)}
        for member, (result, _) in zip(members, results):
            reference = direct_reference(context, member)
            for node in member.names:
                for metric in METRICS:
                    assert (
                        result[node][metric]
                        == float(reference.column(metric, node)[0])
                    ), f"{metric}@{node} differs from direct evaluation"


class TestGrouping:
    def test_max_group_flushes_immediately(self, context, executor):
        compiled = compile_tree(fig5_tree())
        # A window far longer than the test: only the size trigger can
        # flush, so resolving at all proves the immediate flush.
        coalescer = PointCoalescer(
            context, executor, window=30.0, max_group=2
        )

        async def go():
            return await asyncio.wait_for(
                asyncio.gather(
                    coalescer.analyze(compiled, 0.1, ["n1"], ["delay_50"]),
                    coalescer.analyze(compiled, 0.1, ["n2"], ["delay_50"]),
                ),
                timeout=10.0,
            )

        results = asyncio.run(go())
        assert [size for _, size in results] == [2, 2]

    def test_different_settle_bands_do_not_merge(self, context, executor):
        compiled = compile_tree(fig5_tree())
        coalescer = PointCoalescer(context, executor, window=0.05)

        async def go():
            return await asyncio.gather(
                coalescer.analyze(compiled, 0.1, ["n1"], ["settling"]),
                coalescer.analyze(compiled, 0.02, ["n1"], ["settling"]),
            )

        (a, size_a), (b, size_b) = asyncio.run(go())
        assert size_a == size_b == 1
        assert coalescer.groups_flushed == 2
        # And the answers really differ: the band is part of the metric.
        assert a["n1"]["settling"] != b["n1"]["settling"]

    def test_stats_track_hit_rate(self, context, executor):
        compiled = compile_tree(fig5_tree())
        coalescer = PointCoalescer(context, executor, window=0.05)

        async def go():
            await asyncio.gather(
                *[
                    coalescer.analyze(compiled, 0.1, ["n1"], ["delay_50"])
                    for _ in range(4)
                ]
            )

        asyncio.run(go())
        stats = coalescer.stats()
        assert stats["requests"] == 4
        assert stats["groups"] == 1
        assert stats["coalesced_requests"] == 3
        assert stats["hit_rate"] == pytest.approx(0.75)
        assert stats["largest_group"] == 4
        assert stats["pending"] == 0

    def test_drain_flushes_pending_groups(self, context, executor):
        compiled = compile_tree(fig5_tree())
        coalescer = PointCoalescer(context, executor, window=30.0)

        async def go():
            task = asyncio.ensure_future(
                coalescer.analyze(compiled, 0.1, ["n1"], ["delay_50"])
            )
            await asyncio.sleep(0)  # let the member join its group
            assert coalescer.pending == 1
            await coalescer.drain()
            return await asyncio.wait_for(task, timeout=5.0)

        result, size = asyncio.run(go())
        assert size == 1
        assert "delay_50" in result["n1"]


class TestFailureIsolation:
    def test_bad_member_fails_alone(self, context, executor):
        compiled = compile_tree(fig5_tree())
        coalescer = PointCoalescer(context, executor, window=0.05)

        async def go():
            return await asyncio.gather(
                coalescer.analyze(compiled, 0.1, ["n1"], ["delay_50"]),
                coalescer.analyze(compiled, 0.1, ["no_such"], ["delay_50"]),
                coalescer.analyze(compiled, 0.1, ["n4"], ["delay_50"]),
                return_exceptions=True,
            )

        good1, bad, good2 = asyncio.run(go())
        assert isinstance(bad, TopologyError)
        # The failing member shared a group with the survivors.
        assert good1[1] == 3 and good2[1] == 3
        reference = direct_reference(context, compiled)
        assert (
            good1[0]["n1"]["delay_50"]
            == float(reference.column("delay_50", "n1")[0])
        )
        assert (
            good2[0]["n4"]["delay_50"]
            == float(reference.column("delay_50", "n4")[0])
        )

    def test_engine_failure_fails_the_whole_group(self, executor):
        compiled = compile_tree(fig5_tree())

        class BrokenContext:
            def batch(self, *args, **kwargs):
                raise ReproError("engine exploded")

        coalescer = PointCoalescer(BrokenContext(), executor, window=0.05)

        async def go():
            return await asyncio.gather(
                coalescer.analyze(compiled, 0.1, ["n1"], ["delay_50"]),
                coalescer.analyze(compiled, 0.1, ["n2"], ["delay_50"]),
                return_exceptions=True,
            )

        results = asyncio.run(go())
        assert all(isinstance(r, ReproError) for r in results)

    def test_rejects_bad_parameters(self, context, executor):
        with pytest.raises(ReproError, match="window"):
            PointCoalescer(context, executor, window=-1.0)
        with pytest.raises(ReproError, match="max_group"):
            PointCoalescer(context, executor, max_group=0)
