"""Wire-protocol validation: every malformed body is a clean 400."""

import json
import math

import numpy as np
import pytest

from repro.circuit import dumps, fig5_tree
from repro.engine.kernels import METRIC_NAMES
from repro.service import (
    BadRequest,
    decode_json,
    encode_json,
    parse_analyze,
    parse_batch,
    parse_sweep,
)


@pytest.fixture
def netlist():
    return dumps(fig5_tree())


class TestJsonCodec:
    def test_decode_rejects_non_json(self):
        with pytest.raises(BadRequest, match="not valid JSON"):
            decode_json(b"{nope")

    def test_decode_rejects_non_object(self):
        with pytest.raises(BadRequest, match="JSON object"):
            decode_json(b"[1, 2, 3]")

    def test_decode_rejects_non_utf8(self):
        with pytest.raises(BadRequest, match="not valid JSON"):
            decode_json(b"\xff\xfe")

    def test_floats_round_trip_bitwise(self):
        # repr-based JSON serialization is exact for every finite
        # double; this is what makes server responses bitwise-faithful.
        values = [
            2.8573571972401615e-11,
            0.1 + 0.2,
            5e-324,  # smallest subnormal
            1.7976931348623157e308,
            -0.0,
        ]
        decoded = json.loads(encode_json({"v": values}))["v"]
        for sent, received in zip(values, decoded):
            assert sent == received
            assert math.copysign(1.0, sent) == math.copysign(1.0, received)

    def test_nan_survives_encoding(self):
        decoded = json.loads(encode_json({"v": float("nan")}))
        assert math.isnan(decoded["v"])


class TestParseAnalyze:
    def test_defaults(self, netlist):
        request = parse_analyze({"netlist": netlist})
        assert request.nodes == fig5_tree().nodes
        assert request.metrics == METRIC_NAMES
        assert request.settle_band == 0.1
        assert request.session is None

    def test_explicit_fields(self, netlist):
        request = parse_analyze(
            {
                "netlist": netlist,
                "nodes": ["n1"],
                "metrics": ["delay_50"],
                "settle_band": 0.05,
                "session": "client-7",
            }
        )
        assert request.nodes == ("n1",)
        assert request.metrics == ("delay_50",)
        assert request.settle_band == 0.05
        assert request.session == "client-7"

    def test_missing_netlist(self):
        with pytest.raises(BadRequest, match="netlist"):
            parse_analyze({})

    def test_bad_netlist_text(self):
        with pytest.raises(BadRequest, match="netlist rejected"):
            parse_analyze({"netlist": "R1 a b not_a_number"})

    @pytest.mark.parametrize("band", [0, 1, -0.1, "wide"])
    def test_bad_settle_band(self, netlist, band):
        with pytest.raises(BadRequest, match="settle_band"):
            parse_analyze({"netlist": netlist, "settle_band": band})

    def test_unknown_metric(self, netlist):
        with pytest.raises(BadRequest, match="unknown metrics"):
            parse_analyze({"netlist": netlist, "metrics": ["latency"]})

    def test_empty_metrics(self, netlist):
        with pytest.raises(BadRequest, match="metrics"):
            parse_analyze({"netlist": netlist, "metrics": []})

    def test_empty_nodes(self, netlist):
        with pytest.raises(BadRequest, match="nodes"):
            parse_analyze({"netlist": netlist, "nodes": []})

    def test_non_string_session(self, netlist):
        with pytest.raises(BadRequest, match="session"):
            parse_analyze({"netlist": netlist, "session": 7})

    def test_unknown_nodes_pass_parsing(self, netlist):
        # Deliberate: unknown nodes surface per-member at extraction so
        # a coalesced group's other members are unaffected.
        request = parse_analyze({"netlist": netlist, "nodes": ["nope"]})
        assert request.nodes == ("nope",)


class TestParseBatch:
    def test_shape_checked_against_tree(self, netlist):
        n = fig5_tree().size
        good = np.ones((2, 3, n)).tolist()
        request = parse_batch({"netlist": netlist, "rlc": good})
        assert request.rlc.shape == (2, 3, n)
        with pytest.raises(BadRequest, match="shape"):
            parse_batch(
                {"netlist": netlist, "rlc": np.ones((2, 3, n + 1)).tolist()}
            )
        with pytest.raises(BadRequest, match="shape"):
            parse_batch(
                {"netlist": netlist, "rlc": np.ones((2, n)).tolist()}
            )

    def test_missing_or_empty_rlc(self, netlist):
        for payload in ({}, {"rlc": []}, {"rlc": "block"}):
            with pytest.raises(BadRequest, match="rlc"):
                parse_batch({"netlist": netlist, **payload})

    def test_non_numeric_rlc(self, netlist):
        n = fig5_tree().size
        block = np.ones((1, 3, n)).tolist()
        block[0][0][0] = "ten"
        with pytest.raises(BadRequest, match="rlc"):
            parse_batch({"netlist": netlist, "rlc": block})


class TestParseSweep:
    def base(self, netlist, **extra):
        payload = {
            "netlist": netlist,
            "section": "n1",
            "element": "resistance",
            "values": [10.0, 20.0, 30.0],
        }
        payload.update(extra)
        return payload

    def test_explicit_values(self, netlist):
        request = parse_sweep(self.base(netlist))
        assert list(request.values) == [10.0, 20.0, 30.0]
        assert request.section == "n1"
        assert request.element == "resistance"
        assert request.chunk == 256

    def test_linspace_values(self, netlist):
        request = parse_sweep(
            self.base(
                netlist, values={"start": 1.0, "stop": 2.0, "points": 5}
            )
        )
        assert request.values.size == 5
        assert request.values[0] == 1.0
        assert request.values[-1] == 2.0

    def test_unknown_section(self, netlist):
        with pytest.raises(BadRequest, match="section"):
            parse_sweep(self.base(netlist, section="nope"))

    def test_unknown_element(self, netlist):
        with pytest.raises(BadRequest, match="element"):
            parse_sweep(self.base(netlist, element="conductance"))

    def test_non_positive_resistance_values(self, netlist):
        with pytest.raises(BadRequest, match="positive"):
            parse_sweep(self.base(netlist, values=[10.0, -1.0]))

    def test_zero_inductance_allowed(self, netlist):
        # L = 0 is the RC limit, a first-class regime of the model.
        request = parse_sweep(
            self.base(netlist, element="inductance", values=[0.0, 1e-9])
        )
        assert list(request.values) == [0.0, 1e-9]

    def test_bad_linspace_spec(self, netlist):
        with pytest.raises(BadRequest, match="values"):
            parse_sweep(self.base(netlist, values={"start": 1.0}))

    def test_bad_chunk(self, netlist):
        with pytest.raises(BadRequest, match="chunk"):
            parse_sweep(self.base(netlist, chunk=0))

    def test_scenario_cap(self, netlist):
        with pytest.raises(BadRequest, match="points"):
            parse_sweep(
                self.base(
                    netlist,
                    values={"start": 1.0, "stop": 2.0, "points": 10**9},
                )
            )
