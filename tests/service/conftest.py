"""Shared fixtures for the analysis-service suite.

All server tests drive the real socket path: a
:class:`~repro.service.BackgroundServer` on a daemon thread, plain
``http.client`` requests against its ephemeral port. ``http.client``
(rather than ``urllib``) because saturation tests need to observe
response headers *before* the body finishes streaming.
"""

import http.client
import json

import pytest

from repro.circuit import dumps, fig5_tree


@pytest.fixture
def netlist() -> str:
    """The paper's Fig. 5 tree as netlist text — the wire format."""
    return dumps(fig5_tree())


def http_get(port: int, path: str):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        conn.request("GET", path)
        resp = conn.getresponse()
        body = resp.read()
    finally:
        conn.close()
    return resp.status, dict(resp.getheaders()), body


def http_post(port: int, path: str, payload, *, raw: bool = False):
    """POST JSON; returns ``(status, headers, parsed-or-raw body)``."""
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        body = payload if isinstance(payload, bytes) else json.dumps(payload)
        conn.request(
            "POST", path, body=body,
            headers={"Content-Type": "application/json"},
        )
        resp = conn.getresponse()
        data = resp.read()
    finally:
        conn.close()
    if raw:
        return resp.status, dict(resp.getheaders()), data
    return (
        resp.status,
        dict(resp.getheaders()),
        json.loads(data) if data else None,
    )


def ndjson_lines(data: bytes):
    """Parse a streamed sweep body into its NDJSON records."""
    return [
        json.loads(line)
        for line in data.decode("utf-8").splitlines()
        if line.strip()
    ]
