"""Unit tests for the trapezoidal integrator, cross-checked against the
independent exact (modal) solver."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.simulation import (
    ExactSimulator,
    ExponentialSource,
    PWLSource,
    RampSource,
    StepSource,
    TrapezoidalSimulator,
    rms_error,
    simulate_transient,
)


class TestCrossCheckAgainstExact:
    """The two engines share nothing past the state-space assembly, so
    agreement validates both."""

    @pytest.mark.parametrize(
        "source",
        [
            StepSource(),
            ExponentialSource(tau=2e-10),
            RampSource(rise_time=5e-10),
            PWLSource.from_points([(0.0, 0.0), (3e-10, 1.0), (6e-10, 0.4)]),
        ],
        ids=["step", "exp", "ramp", "pwl"],
    )
    def test_fig5_agreement(self, fig5, source):
        exact = ExactSimulator(fig5)
        t = exact.time_grid(points=6001)
        reference = exact.response(source, "n7", t)
        candidate = TrapezoidalSimulator(fig5).run(source, "n7", t)
        assert rms_error(reference, candidate) < 1e-4

    def test_fig8_multi_node_agreement(self, fig8):
        exact = ExactSimulator(fig8)
        t = exact.time_grid(points=6001)
        nodes = ["n1", "out", "n7"]
        reference = exact.step_response(nodes, t)
        candidate = TrapezoidalSimulator(fig8).run(StepSource(), nodes, t)
        assert candidate.shape == reference.shape
        for row in range(len(nodes)):
            assert rms_error(reference[row], candidate[row]) < 1e-4

    def test_rc_tree_agreement(self, rc_line):
        exact = ExactSimulator(rc_line)
        t = exact.time_grid(points=4001)
        reference = exact.step_response("n5", t)
        candidate = TrapezoidalSimulator(rc_line).run(StepSource(), "n5", t)
        assert rms_error(reference, candidate) < 1e-5


class TestConvergence:
    def test_second_order_in_step_size(self, line3):
        """Halving h should cut the error ~4x (trapezoidal is O(h^2))."""
        exact = ExactSimulator(line3)
        t_end = exact.settle_time_estimate() / 2
        trap = TrapezoidalSimulator(line3)
        errors = []
        for points in (501, 1001, 2001):
            t = np.linspace(0, t_end, points)
            reference = exact.step_response("n3", t)
            candidate = trap.run(StepSource(), "n3", t)
            errors.append(rms_error(reference, candidate))
        ratio1 = errors[0] / errors[1]
        ratio2 = errors[1] / errors[2]
        assert 3.0 < ratio1 < 5.0
        assert 3.0 < ratio2 < 5.0


class TestInterface:
    def test_arbitrary_callable_source(self, line3):
        trap = TrapezoidalSimulator(line3)
        exact = ExactSimulator(line3)
        t = exact.time_grid(points=4001)
        # A shape the exact solver doesn't support analytically.
        tau = t[-1] / 8

        def wobble(time):
            return 1.0 - np.exp(-time / tau) * np.cos(3 * time / tau)

        v = trap.run(wobble, "n3", t)
        assert v[-1] == pytest.approx(wobble(t[-1]), rel=2e-2)

    def test_nonuniform_grid_rejected(self, line3):
        t = np.array([0.0, 1e-10, 3e-10])
        with pytest.raises(SimulationError, match="uniform"):
            TrapezoidalSimulator(line3).run(StepSource(), "n3", t)

    def test_tiny_grid_rejected(self, line3):
        with pytest.raises(SimulationError):
            TrapezoidalSimulator(line3).run(StepSource(), "n3", np.array([0.0]))

    def test_factorization_reused_and_refreshed(self, line3):
        trap = TrapezoidalSimulator(line3)
        t1 = np.linspace(0, 1e-9, 101)
        t2 = np.linspace(0, 1e-9, 201)
        v1a = trap.run(StepSource(), "n3", t1)
        v2 = trap.run(StepSource(), "n3", t2)  # different h: refactor
        v1b = trap.run(StepSource(), "n3", t1)  # back to first h
        np.testing.assert_allclose(v1a, v1b)
        assert v2.size == 201

    def test_simulate_transient_helper(self, line3):
        t, v = simulate_transient(line3, StepSource(), "n3", t_end=5e-9, steps=500)
        assert t.shape == v.shape == (501,)
        assert t[-1] == pytest.approx(5e-9)

    def test_simulate_transient_validation(self, line3):
        with pytest.raises(SimulationError):
            simulate_transient(line3, StepSource(), "n3", t_end=0.0)
        with pytest.raises(SimulationError):
            simulate_transient(line3, StepSource(), "n3", t_end=1e-9, steps=1)
