"""Unit tests for the distributed transmission-line reference model."""

import math

import numpy as np
import pytest

from repro.analysis import SecondOrderModel
from repro.errors import SimulationError
from repro.simulation import (
    ExactSimulator,
    TransmissionLine,
    rms_error,
    talbot_inverse_laplace,
)


@pytest.fixture(scope="module")
def clock_line():
    """A 5-mm wide clock wire with driver and receiver load."""
    return TransmissionLine(
        resistance=6.6e3,
        inductance=0.36e-6,
        capacitance=0.16e-9,
        length=5e-3,
        source_resistance=30.0,
        load_capacitance=50e-15,
    )


class TestTalbotInversion:
    """The inverter against transforms with known inverses."""

    def test_unit_step(self):
        t = np.linspace(0.1, 5.0, 20)
        values = talbot_inverse_laplace(lambda s: 1.0 / s, t)
        np.testing.assert_allclose(values, 1.0, atol=1e-4)

    def test_exponential(self):
        t = np.linspace(0.1, 5.0, 20)
        values = talbot_inverse_laplace(lambda s: 1.0 / (s * (s + 2.0)), t)
        np.testing.assert_allclose(values, (1 - np.exp(-2 * t)) / 2, atol=1e-4)

    def test_ringing_second_order(self):
        """Even a zeta = 0.1 ringing response inverts to ~1e-6."""
        model = SecondOrderModel(zeta=0.1, omega_n=1.0)
        t = np.linspace(0.1, 30.0, 40)
        values = talbot_inverse_laplace(
            lambda s: complex(model.transfer_function(s)) / s, t
        )
        np.testing.assert_allclose(values, model.step_response(t), atol=1e-5)

    def test_negative_time_is_zero(self):
        values = talbot_inverse_laplace(lambda s: 1.0 / s, np.array([-1.0, 0.0]))
        np.testing.assert_array_equal(values, [0.0, 0.0])

    def test_too_few_terms_rejected(self):
        with pytest.raises(SimulationError):
            talbot_inverse_laplace(lambda s: 1.0 / s, np.array([1.0]), terms=4)


class TestPhysicalStructure:
    def test_constants(self, clock_line):
        assert clock_line.time_of_flight == pytest.approx(
            5e-3 * math.sqrt(0.36e-6 * 0.16e-9)
        )
        assert clock_line.characteristic_impedance == pytest.approx(
            math.sqrt(0.36e-6 / 0.16e-9)
        )
        assert 0.0 < clock_line.attenuation < 1.0

    def test_dc_gain_unity(self, clock_line):
        assert abs(complex(clock_line.transfer_function(1.0))) == pytest.approx(
            1.0, rel=1e-6
        )

    def test_highband_rolloff(self, clock_line):
        # A distributed line's attenuation saturates at exp(-R/(2 Z0));
        # the remaining roll-off comes from the load capacitance, so the
        # decay is gentler than any lumped ladder's.
        low = abs(clock_line.frequency_response(np.array([1e9]))[0])
        high = abs(clock_line.frequency_response(np.array([1e12]))[0])
        assert high < 0.3 * low
        assert high > clock_line.attenuation * 1e-3  # saturation floor

    def test_validation(self):
        with pytest.raises(SimulationError):
            TransmissionLine(1.0, 0.0, 1e-9, 1e-3)  # no inductance
        with pytest.raises(SimulationError):
            TransmissionLine(1.0, 1e-6, 1e-9, -1.0)
        with pytest.raises(SimulationError):
            TransmissionLine(-1.0, 1e-6, 1e-9, 1e-3)


class TestStepResponse:
    def test_causality(self, clock_line):
        """Nothing (beyond inversion noise) arrives before the time of
        flight — the distributed behaviour no lumped model reproduces."""
        t = clock_line.time_grid(points=400)
        v = clock_line.step_response(t)
        early = v[t < 0.9 * clock_line.time_of_flight]
        assert np.max(np.abs(early)) < 0.02

    def test_settles_to_supply(self, clock_line):
        t = clock_line.time_grid(flights=40.0, points=300)
        v = clock_line.step_response(t, amplitude=1.5)
        assert v[-1] == pytest.approx(1.5, rel=1e-4)

    def test_low_loss_first_arrival_magnitude(self):
        """For a matched-ish low-loss line the first plateau is about
        2 * atten * Z0 / (Z0 + Rs) (transmission into an open end is
        doubled, minus resistive attenuation)."""
        line = TransmissionLine(
            resistance=500.0,
            inductance=0.4e-6,
            capacitance=0.16e-9,
            length=5e-3,
            source_resistance=50.0,
            load_capacitance=0.0,
        )
        t = np.array([1.5 * line.time_of_flight])
        v = float(line.step_response(t)[0])
        z0 = line.characteristic_impedance
        launch = z0 / (z0 + 50.0)
        expected = 2.0 * launch * line.attenuation
        assert v == pytest.approx(expected, rel=0.05)


class TestLumpedConvergence:
    def test_ladder_converges_to_distributed(self, clock_line):
        t = clock_line.time_grid(points=250)
        reference = clock_line.step_response(t)
        errors = []
        for sections in (5, 20, 80):
            ladder = clock_line.lumped_ladder(sections)
            simulator = ExactSimulator(ladder)
            waveform = simulator.step_response(
                clock_line.sink_name(sections), t
            )
            errors.append(rms_error(reference, waveform))
        assert errors[0] > errors[1] > errors[2]
        assert errors[2] < 0.01

    def test_frequency_response_agreement(self, clock_line):
        """In-band (up to ~1/tof) a 40-section ladder matches the
        distributed |H| to a couple of percent."""
        ladder = clock_line.lumped_ladder(40)
        simulator = ExactSimulator(ladder)
        frequencies = np.linspace(1e8, 0.5 / clock_line.time_of_flight, 40)
        distributed = np.abs(clock_line.frequency_response(frequencies))
        lumped = np.abs(
            simulator.frequency_response(clock_line.sink_name(40), frequencies)
        )
        np.testing.assert_allclose(lumped, distributed, rtol=0.05)

    def test_lumped_ladder_without_driver(self):
        line = TransmissionLine(
            resistance=1e3, inductance=0.4e-6, capacitance=0.16e-9,
            length=2e-3, source_resistance=0.0,
        )
        ladder = line.lumped_ladder(10)
        assert "drv" not in ladder
        assert ladder.size == 10
