"""Unit tests for the state-space assembly."""

import numpy as np
import pytest

from repro.circuit import RLCTree, Section, single_line
from repro.errors import SimulationError
from repro.simulation import build_state_space, ensure_positive_capacitance


class TestDimensions:
    def test_full_rlc_order(self, fig5):
        space = build_state_space(fig5)
        # 7 capacitor voltages + 7 inductor currents
        assert space.order == 14
        assert space.a.shape == (14, 14)
        assert space.b.shape == (14,)

    def test_rc_tree_order(self, rc_line):
        space = build_state_space(rc_line)
        assert space.order == 5  # no inductor states
        assert not space.inductor_index

    def test_mixed_tree_order(self):
        tree = RLCTree()
        tree.add_section("a", "in", section=Section(10.0, 1e-9, 1e-12))
        tree.add_section("b", "a", section=Section(10.0, 0.0, 1e-12))
        space = build_state_space(tree)
        assert space.order == 3
        assert set(space.inductor_index) == {"a"}

    def test_empty_tree_rejected(self):
        with pytest.raises(SimulationError):
            build_state_space(RLCTree())

    def test_zero_capacitance_rejected(self):
        tree = RLCTree().add_section("a", "in", section=Section(10.0, 1e-9, 0.0))
        with pytest.raises(SimulationError, match="zero capacitance"):
            build_state_space(tree)


class TestSingleSectionAnalytic:
    """One RLC section has the textbook series-RLC state matrix."""

    R, L, C = 10.0, 2e-9, 1e-12

    @pytest.fixture
    def space(self):
        return build_state_space(
            single_line(1, resistance=self.R, inductance=self.L, capacitance=self.C)
        )

    def test_matrix_entries(self, space):
        k = space.node_index["n1"]
        j = space.inductor_index["n1"]
        a = space.a
        assert a[k, k] == 0.0
        assert a[k, j] == pytest.approx(1.0 / self.C)
        assert a[j, k] == pytest.approx(-1.0 / self.L)
        assert a[j, j] == pytest.approx(-self.R / self.L)
        assert space.b[j] == pytest.approx(1.0 / self.L)
        assert space.b[k] == 0.0

    def test_char_poly_matches_rlc(self, space):
        # eigenvalues solve s^2 + (R/L) s + 1/(LC) = 0
        eig = np.linalg.eigvals(space.a)
        poly = np.poly(eig)  # s^2 + c1 s + c0
        assert poly[1] == pytest.approx(self.R / self.L)
        assert poly[2] == pytest.approx(1.0 / (self.L * self.C))


class TestPhysicalStructure:
    def test_dc_steady_state_is_input(self, fig5):
        # x_ss = -A^-1 b * u: all node voltages equal u, all currents 0.
        space = build_state_space(fig5)
        x_ss = -np.linalg.solve(space.a, space.b)
        for node, k in space.node_index.items():
            assert x_ss[k] == pytest.approx(1.0), node
        for node, j in space.inductor_index.items():
            assert x_ss[j] == pytest.approx(0.0, abs=1e-9), node

    def test_all_poles_stable(self, fig8):
        space = build_state_space(fig8)
        eig = np.linalg.eigvals(space.a)
        assert np.all(eig.real < 0.0)

    def test_rc_tree_poles_real(self, rc_line):
        eig = np.linalg.eigvals(build_state_space(rc_line).a)
        assert np.all(np.abs(eig.imag) < 1e-6 * np.abs(eig.real))
        assert np.all(eig.real < 0.0)

    def test_output_row_selects_voltage(self, fig5):
        space = build_state_space(fig5)
        row = space.output_row("n3")
        assert row[space.node_index["n3"]] == 1.0
        assert np.count_nonzero(row) == 1

    def test_output_matrix_stacks(self, fig5):
        space = build_state_space(fig5)
        matrix = space.output_matrix(["n1", "n7"])
        assert matrix.shape == (2, 14)

    def test_unknown_output_rejected(self, fig5):
        with pytest.raises(SimulationError):
            build_state_space(fig5).output_row("zzz")


class TestEnsurePositiveCapacitance:
    def test_no_change_when_all_positive(self, fig5):
        assert ensure_positive_capacitance(fig5) is fig5

    def test_floor_applied(self):
        tree = RLCTree().add_section("a", "in", section=Section(10.0, 0.0, 0.0))
        fixed = ensure_positive_capacitance(tree, floor=1e-18)
        assert fixed.section("a").capacitance == 1e-18
        build_state_space(fixed)  # now simulatable

    def test_positive_nodes_untouched(self):
        tree = RLCTree()
        tree.add_section("a", "in", section=Section(10.0, 0.0, 0.0))
        tree.add_section("b", "a", section=Section(5.0, 0.0, 2e-12))
        fixed = ensure_positive_capacitance(tree)
        assert fixed.section("b").capacitance == 2e-12

    def test_bad_floor_rejected(self, fig5):
        with pytest.raises(SimulationError):
            ensure_positive_capacitance(fig5, floor=0.0)
