"""Unit tests for input source waveforms."""

import math

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.simulation import (
    ExponentialSource,
    PWLSource,
    RampSource,
    StepSource,
)


class TestStepSource:
    def test_values(self):
        src = StepSource(amplitude=2.5)
        assert src(-1e-9) == 0.0
        assert src(0.0) == 2.5
        assert src(1e-9) == 2.5

    def test_delay(self):
        src = StepSource(amplitude=1.0, delay=1e-9)
        assert src(0.5e-9) == 0.0
        assert src(1.5e-9) == 1.0

    def test_vectorized(self):
        src = StepSource()
        t = np.array([-1.0, 0.0, 1.0])
        np.testing.assert_allclose(src(t), [0.0, 1.0, 1.0])

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            StepSource(delay=-1.0)

    def test_final_value(self):
        assert StepSource(amplitude=3.3).final_value == 3.3


class TestRampSource:
    def test_linear_region(self):
        src = RampSource(amplitude=1.0, rise_time=2e-9)
        assert src(1e-9) == pytest.approx(0.5)
        assert src(2e-9) == pytest.approx(1.0)
        assert src(5e-9) == pytest.approx(1.0)

    def test_zero_rise_time_rejected(self):
        with pytest.raises(SimulationError):
            RampSource(rise_time=0.0)

    def test_ramp_segments_reconstruct(self):
        src = RampSource(amplitude=2.0, rise_time=1e-9, delay=0.5e-9)
        segments = src.ramp_segments()
        t = np.linspace(0, 4e-9, 200)
        rebuilt = np.zeros_like(t)
        for start, slope in segments:
            rebuilt += slope * np.maximum(t - start, 0.0)
        np.testing.assert_allclose(rebuilt, src(t), atol=1e-12)


class TestExponentialSource:
    def test_asymptote(self):
        src = ExponentialSource(amplitude=1.0, tau=1e-9)
        assert src(20e-9) == pytest.approx(1.0, abs=1e-8)

    def test_tau_value(self):
        src = ExponentialSource(tau=1e-9)
        assert src(1e-9) == pytest.approx(1.0 - math.exp(-1.0))

    def test_rise_time_90(self):
        src = ExponentialSource(tau=1e-9)
        assert src(src.rise_time_90) == pytest.approx(0.9)

    def test_from_rise_time(self):
        src = ExponentialSource.from_rise_time(2.3e-9)
        assert src.rise_time_90 == pytest.approx(2.3e-9)
        assert src.tau == pytest.approx(2.3e-9 / math.log(10.0))

    def test_bad_tau_rejected(self):
        with pytest.raises(SimulationError):
            ExponentialSource(tau=-1e-9)
        with pytest.raises(SimulationError):
            ExponentialSource.from_rise_time(0.0)


class TestPWLSource:
    def test_interpolation(self):
        src = PWLSource.from_points([(0.0, 0.0), (1e-9, 1.0), (3e-9, 0.5)])
        assert src(0.5e-9) == pytest.approx(0.5)
        assert src(2e-9) == pytest.approx(0.75)
        assert src(10e-9) == pytest.approx(0.5)

    def test_final_value(self):
        src = PWLSource.from_points([(0.0, 0.0), (1e-9, 2.0)])
        assert src.final_value == 2.0

    def test_needs_points(self):
        with pytest.raises(SimulationError):
            PWLSource(points=())

    def test_times_must_increase(self):
        with pytest.raises(SimulationError):
            PWLSource.from_points([(1e-9, 1.0), (1e-9, 2.0)])

    def test_negative_time_rejected(self):
        with pytest.raises(SimulationError):
            PWLSource.from_points([(-1e-9, 0.0), (1e-9, 1.0)])

    def test_ramp_segments_reconstruct(self):
        src = PWLSource.from_points([(0.0, 0.0), (1e-9, 1.0), (2e-9, 0.2), (4e-9, 0.2)])
        t = np.linspace(0, 6e-9, 400)
        rebuilt = np.zeros_like(t)
        for start, slope in src.ramp_segments():
            rebuilt += slope * np.maximum(t - start, 0.0)
        np.testing.assert_allclose(rebuilt, src(t), atol=1e-12)

    def test_ramp_segments_with_leading_offset(self):
        # First point at t > 0: waveform ramps from 0 to the first point.
        src = PWLSource.from_points([(1e-9, 1.0), (2e-9, 1.0)])
        t = np.linspace(0, 5e-9, 300)
        rebuilt = np.zeros_like(t)
        for start, slope in src.ramp_segments():
            rebuilt += slope * np.maximum(t - start, 0.0)
        np.testing.assert_allclose(rebuilt, src(t), atol=1e-12)
