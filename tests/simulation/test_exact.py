"""Unit tests for the exact (modal) simulator.

The key oracle here is the single RLC section, whose step response has a
textbook closed form; deeper trees are cross-checked against the
independent trapezoidal integrator in test_transient.py.
"""

import math

import numpy as np
import pytest

from repro.circuit import single_line
from repro.errors import SimulationError
from repro.simulation import (
    ExactSimulator,
    ExponentialSource,
    PWLSource,
    RampSource,
    StepSource,
)


def analytic_underdamped_step(t, r, l, c):
    """Textbook series-RLC capacitor voltage for a unit step."""
    zeta = 0.5 * r * math.sqrt(c / l)
    wn = 1.0 / math.sqrt(l * c)
    wd = wn * math.sqrt(1 - zeta**2)
    phase = math.acos(zeta)
    return 1.0 - np.exp(-zeta * wn * t) * np.sin(wd * t + phase) / math.sqrt(
        1 - zeta**2
    )


class TestSingleSection:
    R, L, C = 10.0, 2e-9, 1e-12  # zeta ~ 0.11: strongly underdamped

    @pytest.fixture
    def simulator(self):
        return ExactSimulator(
            single_line(1, resistance=self.R, inductance=self.L, capacitance=self.C)
        )

    def test_poles_match_formula(self, simulator):
        # eq. 16 with zeta < 1: -zeta wn +/- j wn sqrt(1 - zeta^2)
        zeta = 0.5 * self.R * math.sqrt(self.C / self.L)
        wn = 1.0 / math.sqrt(self.L * self.C)
        poles = sorted(simulator.poles(), key=lambda p: p.imag)
        assert poles[0].real == pytest.approx(-zeta * wn)
        assert abs(poles[0].imag) == pytest.approx(wn * math.sqrt(1 - zeta**2))

    def test_step_response_matches_textbook(self, simulator):
        t = np.linspace(0, 2e-9, 500)
        expected = analytic_underdamped_step(t, self.R, self.L, self.C)
        np.testing.assert_allclose(
            simulator.step_response("n1", t), expected, atol=1e-10
        )

    def test_transfer_function_formula(self, simulator):
        # H(s) = 1/(1 + RCs + LCs^2)  (eq. 12)
        s = 1j * 2 * math.pi * 1e9
        expected = 1.0 / (1.0 + self.R * self.C * s + self.L * self.C * s * s)
        assert complex(simulator.transfer_function("n1", s)) == pytest.approx(expected)

    def test_dc_gain_unity(self, simulator):
        assert simulator.dc_gain("n1") == pytest.approx(1.0)

    def test_stability(self, simulator):
        assert simulator.is_stable()


class TestMultiNode:
    def test_response_shapes(self, fig5):
        sim = ExactSimulator(fig5)
        t = sim.time_grid(points=101)
        single = sim.step_response("n7", t)
        multi = sim.step_response(["n1", "n7"], t)
        assert single.shape == (101,)
        assert multi.shape == (2, 101)
        np.testing.assert_allclose(multi[1], single)

    def test_balanced_siblings_identical(self, fig5):
        sim = ExactSimulator(fig5)
        t = sim.time_grid(points=301)
        v = sim.step_response(["n4", "n5", "n6", "n7"], t)
        for i in range(1, 4):
            np.testing.assert_allclose(v[i], v[0], atol=1e-12)

    def test_final_values_reach_supply(self, fig8):
        sim = ExactSimulator(fig8)
        t = sim.time_grid(span_factor=20.0, points=501)
        v = sim.step_response(list(fig8.nodes), t, amplitude=2.5)
        np.testing.assert_allclose(v[:, -1], 2.5, rtol=1e-5)

    def test_step_delay_shifts_response(self, fig5):
        sim = ExactSimulator(fig5)
        t = sim.time_grid(points=2001)
        dt = float(t[1] - t[0])
        shift = 50 * dt
        base = sim.step_response("n7", t)
        delayed = sim.step_response("n7", t, delay=shift)
        np.testing.assert_allclose(delayed[50:], base[:-50], atol=1e-9)
        assert np.all(delayed[t < shift] == 0.0)

    def test_amplitude_scales_linearly(self, fig5):
        sim = ExactSimulator(fig5)
        t = sim.time_grid(points=101)
        np.testing.assert_allclose(
            sim.step_response("n7", t, amplitude=3.0),
            3.0 * sim.step_response("n7", t),
            atol=1e-12,
        )


class TestSources:
    def test_step_source_equals_step_response(self, fig5):
        sim = ExactSimulator(fig5)
        t = sim.time_grid(points=201)
        np.testing.assert_allclose(
            sim.response(StepSource(amplitude=1.8), "n7", t),
            sim.step_response("n7", t, amplitude=1.8),
            atol=1e-12,
        )

    def test_slow_exponential_tracks_input(self, fig5):
        # An input much slower than the tree is followed quasi-statically.
        sim = ExactSimulator(fig5)
        slow_tau = 1000.0 * sim.settle_time_estimate()
        src = ExponentialSource(tau=slow_tau)
        t = np.linspace(0, 3 * slow_tau, 300)
        v = sim.response(src, "n7", t)
        np.testing.assert_allclose(v[10:], src(t[10:]), rtol=2e-3)

    def test_fast_exponential_approaches_step(self, fig5):
        sim = ExactSimulator(fig5)
        fast_tau = sim.settle_time_estimate() * 1e-5
        t = sim.time_grid(points=401)
        v_exp = sim.response(ExponentialSource(tau=fast_tau), "n7", t)
        v_step = sim.step_response("n7", t)
        np.testing.assert_allclose(v_exp[5:], v_step[5:], atol=2e-3)

    def test_ramp_final_value(self, fig5):
        sim = ExactSimulator(fig5)
        t = sim.time_grid(span_factor=20.0, points=501)
        v = sim.response(RampSource(amplitude=1.0, rise_time=t[-1] / 10), "n7", t)
        assert v[-1] == pytest.approx(1.0, rel=1e-5)

    def test_pwl_pulse_returns_to_zero(self, fig5):
        sim = ExactSimulator(fig5)
        settle = sim.settle_time_estimate()
        width = settle / 4
        src = PWLSource.from_points(
            [(0.0, 0.0), (width / 10, 1.0), (width, 1.0), (width * 1.1, 0.0)]
        )
        t = np.linspace(0, 6 * settle, 600)
        v = sim.response(src, "n7", t)
        assert abs(v[-1]) < 1e-4
        assert v.max() > 0.5

    def test_unsupported_source_rejected(self, fig5):
        sim = ExactSimulator(fig5)
        with pytest.raises(SimulationError, match="unsupported"):
            sim.response(lambda t: t, "n7", np.linspace(0, 1e-9, 10))


class TestFrequencyDomain:
    def test_residues_reconstruct_tf(self, fig8):
        sim = ExactSimulator(fig8)
        poles, residues = sim.residues("out")
        s = 1j * 2 * math.pi * np.logspace(7, 10, 20)
        by_residues = (residues[None, :] / (s[:, None] - poles[None, :])).sum(axis=1)
        np.testing.assert_allclose(
            by_residues, np.atleast_1d(sim.transfer_function("out", s)), rtol=1e-9
        )

    def test_frequency_response_low_f_is_unity(self, fig5):
        sim = ExactSimulator(fig5)
        h = sim.frequency_response("n7", np.array([1.0]))  # 1 Hz
        assert abs(complex(h[0])) == pytest.approx(1.0, rel=1e-9)

    def test_modal_summary_partitions_poles(self, fig5):
        sim = ExactSimulator(fig5)
        summary = sim.modal_summary()
        assert len(summary["real"]) + len(summary["complex"]) == sim.order


class TestTimeGrid:
    def test_grid_spans_settling(self, fig5):
        sim = ExactSimulator(fig5)
        t = sim.time_grid()
        v = sim.step_response("n7", t)
        assert abs(v[-1] - 1.0) < 1e-2

    def test_explicit_end(self, fig5):
        t = ExactSimulator(fig5).time_grid(t_end=5e-9, points=11)
        assert t[-1] == pytest.approx(5e-9)
        assert t.size == 11

    def test_bad_end_rejected(self, fig5):
        with pytest.raises(SimulationError):
            ExactSimulator(fig5).time_grid(t_end=-1.0)
