"""Unit tests for waveform metrology, using analytically known waveforms."""

import math

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.simulation import (
    delay_50,
    find_extrema,
    max_error,
    measure,
    overshoots,
    rise_time_10_90,
    rms_error,
    settling_time,
    threshold_crossing,
)


@pytest.fixture
def exp_waveform():
    """v = 1 - exp(-t), tau = 1: every metric known in closed form."""
    t = np.linspace(0, 15.0, 30001)
    return t, 1.0 - np.exp(-t)


@pytest.fixture
def ringing_waveform():
    """Damped cosine around 1: v = 1 - exp(-a t) cos(w t)."""
    a, w = 0.4, 2 * math.pi
    t = np.linspace(0, 20.0, 80001)
    return t, 1.0 - np.exp(-a * t) * np.cos(w * t), a, w


class TestThresholdCrossing:
    def test_exponential_crossings(self, exp_waveform):
        t, v = exp_waveform
        assert threshold_crossing(t, v, 0.5) == pytest.approx(math.log(2), rel=1e-6)
        assert threshold_crossing(t, v, 0.9) == pytest.approx(math.log(10), rel=1e-6)

    def test_no_crossing_returns_none(self, exp_waveform):
        t, v = exp_waveform
        assert threshold_crossing(t, v, 1.5) is None

    def test_already_above(self, exp_waveform):
        t, v = exp_waveform
        assert threshold_crossing(t, v + 1.0, 0.5) == t[0]

    def test_falling_crossing(self):
        t = np.linspace(0, 5, 1000)
        v = np.exp(-t)
        assert threshold_crossing(t, v, 0.5, rising=False) == pytest.approx(
            math.log(2), rel=1e-4
        )

    def test_interpolation_between_samples(self):
        t = np.array([0.0, 1.0])
        v = np.array([0.0, 1.0])
        assert threshold_crossing(t, v, 0.25) == pytest.approx(0.25)

    def test_shape_validation(self):
        with pytest.raises(SimulationError):
            threshold_crossing(np.zeros(3), np.zeros(4), 0.5)
        with pytest.raises(SimulationError):
            threshold_crossing(np.zeros(1), np.zeros(1), 0.5)


class TestDelayAndRise:
    def test_exponential_delay(self, exp_waveform):
        t, v = exp_waveform
        assert delay_50(t, v) == pytest.approx(math.log(2), rel=1e-6)

    def test_exponential_rise(self, exp_waveform):
        t, v = exp_waveform
        assert rise_time_10_90(t, v) == pytest.approx(math.log(9), rel=1e-6)

    def test_respects_final_value(self, exp_waveform):
        t, v = exp_waveform
        assert delay_50(t, 2 * v, final_value=2.0) == pytest.approx(
            math.log(2), rel=1e-6
        )

    def test_unreached_delay_raises(self):
        t = np.linspace(0, 0.1, 50)
        v = 1.0 - np.exp(-t)
        with pytest.raises(SimulationError, match="never reaches"):
            delay_50(t, v)


class TestExtremaAndOvershoots:
    def test_damped_cosine_extrema(self, ringing_waveform):
        t, v, a, w = ringing_waveform
        extrema = find_extrema(t, v)
        # Extrema near t = k/2 (cosine turning points, slightly shifted
        # by the decaying envelope).
        assert len(extrema) > 5
        first = extrema[0]
        assert first[2] == "max"
        assert first[0] == pytest.approx(0.5, abs=0.05)

    def test_overshoot_values_match_envelope(self, ringing_waveform):
        t, v, a, w = ringing_waveform
        peaks = overshoots(t, v, final_value=1.0)
        # Peak k at ~ t_k has |v - 1| ~ exp(-a t_k)
        for k, (time, value) in enumerate(peaks[:4]):
            expected = (-1) ** k * math.exp(-a * time)
            assert value - 1.0 == pytest.approx(expected, rel=5e-2)

    def test_overshoots_alternate(self, ringing_waveform):
        t, v, _, _ = ringing_waveform
        peaks = overshoots(t, v)
        signs = [math.copysign(1, value - 1.0) for _, value in peaks]
        assert signs == [(-1) ** k for k in range(len(signs))]

    def test_monotone_waveform_has_no_overshoots(self, exp_waveform):
        t, v = exp_waveform
        assert overshoots(t, v) == []


class TestSettling:
    def test_damped_cosine_settling(self, ringing_waveform):
        t, v, a, w = ringing_waveform
        # Envelope exp(-a t) crosses 0.1 at t = ln(10)/a; the measured
        # settle is at the last actual band exit, within half a period.
        measured = settling_time(t, v, final_value=1.0, band=0.1)
        assert measured <= math.log(10) / a
        assert measured >= math.log(10) / a - 0.5 / (w / (2 * math.pi))

    def test_already_settled(self, exp_waveform):
        t, v = exp_waveform
        assert settling_time(t, np.ones_like(v)) == 0.0

    def test_unsettled_raises(self):
        t = np.linspace(0, 1, 100)
        v = t.copy()  # still rising at the end
        with pytest.raises(SimulationError, match="not settled"):
            settling_time(t, v, final_value=2.0)


class TestMeasureBundle:
    def test_all_metrics_present(self, ringing_waveform):
        t, v, a, w = ringing_waveform
        metrics = measure(t, v)
        assert metrics.delay_50 > 0
        assert metrics.rise_time > 0
        assert len(metrics.overshoots) > 2
        assert metrics.settling_time > metrics.delay_50
        assert metrics.first_overshoot_fraction == pytest.approx(
            math.exp(-a * 0.5), rel=0.1
        )

    def test_monotone_overshoot_fraction_is_none(self, exp_waveform):
        t, v = exp_waveform
        assert measure(t, v).first_overshoot_fraction is None


class TestErrorNorms:
    def test_rms(self):
        a = np.zeros(4)
        b = np.array([1.0, -1.0, 1.0, -1.0])
        assert rms_error(a, b) == pytest.approx(1.0)

    def test_max(self):
        a = np.zeros(3)
        b = np.array([0.1, -0.5, 0.2])
        assert max_error(a, b) == pytest.approx(0.5)

    def test_shape_mismatch(self):
        with pytest.raises(SimulationError):
            rms_error(np.zeros(3), np.zeros(4))
        with pytest.raises(SimulationError):
            max_error(np.zeros(3), np.zeros(4))
