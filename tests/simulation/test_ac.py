"""Unit tests for frequency-domain helpers."""

import math

import numpy as np
import pytest

from repro.circuit import fig5_tree, scale_tree_to_zeta, single_line
from repro.errors import SimulationError
from repro.simulation import (
    ExactSimulator,
    bandwidth_3db,
    resonant_peak_db,
    sweep,
)


class TestSweep:
    def test_accepts_tree_or_simulator(self, fig5):
        by_tree = sweep(fig5, "n7", points=50)
        by_sim = sweep(ExactSimulator(fig5), "n7", points=50)
        np.testing.assert_allclose(by_tree.response, by_sim.response)

    def test_default_limits_bracket_poles(self, fig5):
        result = sweep(fig5, "n7")
        poles = ExactSimulator(fig5).poles()
        pole_freqs = np.abs(poles) / (2 * math.pi)
        assert result.frequency[0] <= pole_freqs.min()
        assert result.frequency[-1] >= pole_freqs.max()

    def test_dc_magnitude_unity(self, fig5):
        result = sweep(fig5, "n7", f_start=1.0, f_stop=1e12, points=100)
        assert result.magnitude[0] == pytest.approx(1.0, rel=1e-6)
        assert result.magnitude_db[0] == pytest.approx(0.0, abs=1e-4)

    def test_highband_rolloff(self, fig5):
        result = sweep(fig5, "n7")
        assert result.magnitude[-1] < 1e-2

    def test_bad_limits_rejected(self, fig5):
        with pytest.raises(SimulationError):
            sweep(fig5, "n7", f_start=1e9, f_stop=1e6)
        with pytest.raises(SimulationError):
            sweep(fig5, "n7", f_start=0.0, f_stop=1e9)

    def test_phase_monotone_decreasing_overall(self, fig5):
        result = sweep(fig5, "n7")
        assert result.phase_degrees[-1] < result.phase_degrees[0]


class TestBandwidth:
    def test_single_pole_rc_bandwidth(self):
        # One RC section: f_3dB = 1/(2 pi R C).
        r, c = 1000.0, 1e-12
        line = single_line(1, resistance=r, inductance=0.0, capacitance=c)
        result = sweep(line, "n1", points=2000)
        expected = 1.0 / (2 * math.pi * r * c)
        assert bandwidth_3db(result) == pytest.approx(expected, rel=1e-2)

    def test_none_when_sweep_too_narrow(self, fig5):
        result = sweep(fig5, "n7", f_start=1.0, f_stop=10.0, points=20)
        assert bandwidth_3db(result) is None


class TestResonantPeak:
    def test_underdamped_peaks(self, fig5):
        ringing = scale_tree_to_zeta(fig5, "n7", 0.3)
        assert resonant_peak_db(sweep(ringing, "n7")) > 3.0

    def test_overdamped_flat(self, fig5):
        damped = scale_tree_to_zeta(fig5, "n7", 3.0)
        assert resonant_peak_db(sweep(damped, "n7")) < 0.5

    def test_more_damping_less_peak(self, fig5):
        peaks = [
            resonant_peak_db(sweep(scale_tree_to_zeta(fig5, "n7", z), "n7"))
            for z in (0.2, 0.4, 0.8)
        ]
        assert peaks[0] > peaks[1] > peaks[2]
