"""Unit tests for the coupled two-line crosstalk simulator.

The load-bearing validation is the even/odd mode decomposition: the
coupled pair must reduce *exactly* to two isolated single-line problems
the existing (independently tested) solver can check.
"""

import numpy as np
import pytest

from repro.circuit import Section, single_line
from repro.errors import ElementValueError, SimulationError
from repro.simulation import (
    CoupledLines,
    ExactSimulator,
    crosstalk_noise,
    rms_error,
    switching_delay,
)

SECTION = Section(20.0, 2e-9, 0.2e-12)


@pytest.fixture
def coupled():
    return CoupledLines(6, SECTION, coupling_capacitance=0.1e-12,
                        mutual_inductance=0.5e-9)


class TestConstruction:
    def test_order(self, coupled):
        assert coupled.order == 24

    def test_validation(self):
        with pytest.raises(SimulationError):
            CoupledLines(0, SECTION)
        with pytest.raises(ElementValueError):
            CoupledLines(3, SECTION, coupling_capacitance=-1e-15)
        with pytest.raises(ElementValueError):
            CoupledLines(3, SECTION, mutual_inductance=2e-9)  # |M| >= L
        with pytest.raises(SimulationError):
            CoupledLines(3, Section(10.0, 0.0, 1e-12))  # no self-L
        with pytest.raises(SimulationError):
            CoupledLines(3, Section(10.0, 1e-9, 0.0))  # no ground C

    def test_node_index_bounds(self, coupled):
        with pytest.raises(SimulationError):
            coupled.node_index("victim", 0)
        with pytest.raises(SimulationError):
            coupled.node_index("victim", 7)


class TestModeDecomposition:
    """The exact equivalences that pin the implementation."""

    def test_decoupled_matches_single_line(self):
        lines = CoupledLines(6, SECTION, 0.0, 0.0)
        t = lines.time_grid(points=2001)
        aggressor, victim = lines.step_response(t, 1.0, 0.0)
        reference = ExactSimulator(single_line(6, section=SECTION))
        expected = reference.step_response("n6", t)
        assert rms_error(aggressor, expected) < 1e-12
        assert np.max(np.abs(victim)) < 1e-12

    def test_even_mode_is_l_plus_m(self, coupled):
        t = coupled.time_grid(points=2001)
        aggressor, victim = coupled.step_response(t, 1.0, 1.0)
        even = single_line(
            6, section=Section(20.0, 2e-9 + 0.5e-9, 0.2e-12)
        )
        expected = ExactSimulator(even).step_response("n6", t)
        assert rms_error(aggressor, expected) < 1e-12
        np.testing.assert_allclose(aggressor, victim, atol=1e-12)

    def test_odd_mode_is_l_minus_m_c_plus_2cc(self, coupled):
        t = coupled.time_grid(points=2001)
        aggressor, victim = coupled.step_response(t, 1.0, -1.0)
        odd = single_line(
            6, section=Section(20.0, 2e-9 - 0.5e-9, 0.2e-12 + 2 * 0.1e-12)
        )
        expected = ExactSimulator(odd).step_response("n6", t)
        assert rms_error(aggressor, expected) < 1e-12
        np.testing.assert_allclose(aggressor, -victim, atol=1e-12)

    def test_superposition(self, coupled):
        """(1, 0) drive must equal the half-sum of even and odd modes."""
        t = coupled.time_grid(points=1001)
        direct_a, direct_v = coupled.step_response(t, 1.0, 0.0)
        even_a, _ = coupled.step_response(t, 1.0, 1.0)
        odd_a, odd_v = coupled.step_response(t, 1.0, -1.0)
        np.testing.assert_allclose(direct_a, 0.5 * (even_a + odd_a),
                                   atol=1e-12)
        np.testing.assert_allclose(direct_v, 0.5 * (even_a - odd_a),
                                   atol=1e-12)
        del odd_v


class TestPassivity:
    @pytest.mark.parametrize("c_c,m", [(0.0, 0.0), (0.2e-12, 0.0),
                                       (0.0, 1.5e-9), (0.3e-12, 1.9e-9)])
    def test_always_stable(self, c_c, m):
        lines = CoupledLines(5, SECTION, c_c, m)
        assert lines.is_stable()

    def test_victim_settles_to_zero(self, coupled):
        noise = crosstalk_noise(coupled, span_factor=14.0)
        assert abs(noise.settle_value) < 1e-3


class TestCrosstalkNoise:
    def test_noise_positive_and_bounded(self, coupled):
        noise = crosstalk_noise(coupled)
        assert 0.0 < noise.peak_fraction < 1.0
        assert noise.peak_time > 0.0

    def test_noise_grows_with_coupling_capacitance(self):
        peaks = []
        for c_c in (0.02e-12, 0.1e-12, 0.3e-12):
            lines = CoupledLines(6, SECTION, c_c, 0.2e-9)
            peaks.append(crosstalk_noise(lines).peak_fraction)
        assert peaks[0] < peaks[1] < peaks[2]

    def test_noise_grows_with_pure_mutual_inductance(self):
        # Inductive-only coupling: monotone in M. (With both couplings
        # present the two mechanisms have opposite polarity and partially
        # cancel, so the combined peak is legitimately non-monotone.)
        # Weak-to-moderate M: monotone. (Near |M| -> L the odd mode's
        # inductance collapses and the peak saturates, so the sweep stays
        # below that regime.)
        peaks = []
        for m in (0.1e-9, 0.4e-9, 0.8e-9):
            lines = CoupledLines(6, SECTION, 0.0, m)
            peaks.append(crosstalk_noise(lines).peak_fraction)
        assert peaks[0] < peaks[1] < peaks[2]

    def test_coupling_mechanisms_have_opposite_polarity(self):
        capacitive = crosstalk_noise(CoupledLines(6, SECTION, 0.2e-12, 0.0))
        inductive = crosstalk_noise(CoupledLines(6, SECTION, 0.0, 1.2e-9))
        assert capacitive.peak > 0.0  # victim pulled toward the aggressor
        assert inductive.peak < 0.0  # induced EMF opposes (Lenz)

    def test_no_coupling_no_noise(self):
        lines = CoupledLines(6, SECTION, 0.0, 0.0)
        assert crosstalk_noise(lines).peak_fraction < 1e-12


class TestSwitchingDelay:
    def test_miller_ordering(self, coupled):
        """In-phase removes coupling load (fast); anti-phase doubles it
        (slow); quiet sits between."""
        same = switching_delay(coupled, "same")
        quiet = switching_delay(coupled, "quiet")
        opposite = switching_delay(coupled, "opposite")
        assert same < quiet < opposite

    def test_same_mode_equals_even_line_delay(self, coupled):
        from repro.simulation import measure

        even = single_line(6, section=Section(20.0, 2.5e-9, 0.2e-12))
        sim = ExactSimulator(even)
        t = sim.time_grid(points=6001, span_factor=10.0)
        expected = measure(t, sim.step_response("n6", t)).delay_50
        assert switching_delay(coupled, "same") == pytest.approx(
            expected, rel=2e-3
        )

    def test_unknown_mode(self, coupled):
        with pytest.raises(SimulationError):
            switching_delay(coupled, "sideways")

    def test_decoupled_modes_identical(self):
        lines = CoupledLines(6, SECTION, 0.0, 0.0)
        same = switching_delay(lines, "same")
        opposite = switching_delay(lines, "opposite")
        assert same == pytest.approx(opposite, rel=1e-9)
