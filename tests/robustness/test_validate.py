"""Validation and policy-gated sanitization."""

import math

import pytest

from repro.circuit import RLCTree, Section, fig5_tree, single_line
from repro.errors import ConfigurationError, ValidationError
from repro.robustness import (
    Diagnostic,
    RepairPolicy,
    Severity,
    ValidationReport,
    sanitize,
    validate_tree,
)
from repro.robustness.faults import _bypass

pytestmark = pytest.mark.robustness


def _inject(tree, node, **overrides):
    """Force invalid element values past the Section constructor."""
    return tree.map_sections(
        lambda name, s: _bypass(s, **overrides) if name == node else s
    )


class TestSeverity:
    def test_ordering(self):
        assert Severity.ERROR > Severity.WARNING > Severity.INFO

    def test_str_is_lowercase(self):
        assert str(Severity.ERROR) == "error"


class TestValidateTree:
    def test_clean_tree_passes(self, fig5):
        report = validate_tree(fig5)
        assert report.ok
        assert not report.errors()

    def test_empty_tree_is_error(self):
        report = validate_tree(RLCTree())
        assert not report.ok
        assert report.codes() == ("empty-tree",)

    def test_nan_element_flagged(self, fig5):
        bad = _inject(fig5, "n3", resistance=float("nan"))
        report = validate_tree(bad)
        assert not report.ok
        findings = report.by_code("non-finite-element")
        assert findings and findings[0].node == "n3"
        assert findings[0].severity == Severity.ERROR

    def test_negative_element_flagged(self, fig5):
        bad = _inject(fig5, "n5", capacitance=-1e-12)
        report = validate_tree(bad)
        assert report.by_code("negative-element")
        assert not report.ok

    def test_zero_impedance_flagged(self, fig5):
        bad = _inject(fig5, "n2", resistance=0.0, inductance=0.0)
        report = validate_tree(bad)
        assert report.by_code("zero-impedance")

    def test_zero_capacitance_is_warning_only(self, fig5):
        bad = _inject(fig5, "n4", capacitance=0.0)
        report = validate_tree(bad)
        assert report.ok  # warnings don't fail validation
        assert report.by_code("zero-capacitance")

    def test_dynamic_range_flagged(self):
        tree = RLCTree()
        tree.add_section("a", "in", resistance=1e-6, inductance=0.0,
                         capacitance=1e-12)
        tree.add_section("b", "a", resistance=1e7, inductance=0.0,
                         capacitance=1e-12)
        report = validate_tree(tree)
        assert any(
            d.code == "dynamic-range" and "R" in d.message for d in report
        )

    def test_huge_fanout_flagged(self):
        tree = RLCTree()
        for i in range(70):
            tree.add_section(f"n{i}", "in", resistance=1.0, inductance=0.0,
                             capacitance=1e-13)
        report = validate_tree(tree)
        assert report.by_code("huge-fanout")
        assert report.ok  # pathological but usable

    def test_deep_chain_flagged(self):
        tree = single_line(40, resistance=1.0, inductance=0.0,
                           capacitance=1e-13)
        report = validate_tree(tree, depth_limit=30)
        assert report.by_code("deep-chain")

    def test_rc_only_is_info(self, rc_line):
        report = validate_tree(rc_line)
        assert report.by_code("rc-only")[0].severity == Severity.INFO

    def test_never_raises_on_garbage(self, fig5):
        bad = _inject(fig5, "n1", resistance=float("nan"),
                      inductance=float("inf"), capacitance=-1.0)
        validate_tree(bad)  # must not raise


class TestValidationReport:
    def test_raise_if_errors(self, fig5):
        bad = _inject(fig5, "n3", capacitance=float("inf"))
        report = validate_tree(bad)
        with pytest.raises(ValidationError) as excinfo:
            report.raise_if_errors()
        assert excinfo.value.diagnostics
        assert all(isinstance(d, Diagnostic) for d in excinfo.value.diagnostics)

    def test_clean_report_does_not_raise(self, fig5):
        validate_tree(fig5).raise_if_errors()

    def test_bool_and_summary(self, fig5):
        report = validate_tree(fig5)
        assert bool(report)
        assert isinstance(report.summary(), str)

    def test_merged(self):
        a = ValidationReport((Diagnostic(Severity.INFO, "x", "m"),))
        b = ValidationReport((Diagnostic(Severity.ERROR, "y", "m"),))
        merged = a.merged(b)
        assert merged.codes() == ("x", "y")
        assert not merged.ok


class TestRepairPolicy:
    def test_default_repairs_nothing(self):
        policy = RepairPolicy.none()
        assert not policy.clamp
        assert policy.epsilon_capacitance == 0.0
        assert not policy.merge_zero_impedance

    def test_bad_epsilon_rejected(self):
        with pytest.raises(ConfigurationError):
            RepairPolicy(epsilon_capacitance=float("nan"))
        with pytest.raises(ConfigurationError):
            RepairPolicy(epsilon_capacitance=-1.0)


class TestSanitize:
    def test_clean_tree_returned_unchanged(self, fig5):
        repaired, report = sanitize(fig5, RepairPolicy.repair_all())
        assert repaired is fig5
        assert report.ok

    def test_no_policy_no_repair(self, fig5):
        bad = _inject(fig5, "n3", resistance=float("nan"))
        repaired, report = sanitize(bad)
        assert repaired is bad
        assert not report.ok

    def test_clamp_nan(self, fig5):
        bad = _inject(fig5, "n3", resistance=float("nan"))
        repaired, report = sanitize(bad, RepairPolicy.repair_all())
        assert report.ok
        assert math.isfinite(repaired.section("n3").resistance)
        assert any(d.repaired for d in report.by_code("non-finite-element"))

    def test_clamp_inf(self, fig5):
        bad = _inject(fig5, "n2", capacitance=float("inf"))
        repaired, report = sanitize(bad, RepairPolicy.repair_all())
        assert report.ok
        assert math.isfinite(repaired.section("n2").capacitance)

    def test_epsilon_capacitance(self, fig5):
        bad = _inject(fig5, "n6", capacitance=0.0)
        repaired, report = sanitize(
            bad, RepairPolicy(epsilon_capacitance=1e-18)
        )
        assert repaired.section("n6").capacitance == 1e-18
        assert any(d.repaired for d in report.by_code("zero-capacitance"))

    def test_merge_zero_impedance(self, fig5):
        bad = _inject(fig5, "n3", resistance=0.0, inductance=0.0)
        c_before = bad.section("n3").capacitance
        parent = bad.parent("n3")
        c_parent = bad.section(parent).capacitance
        repaired, report = sanitize(
            bad, RepairPolicy(merge_zero_impedance=True)
        )
        assert "n3" not in repaired
        # The shunt capacitance folds into the parent node.
        assert repaired.section(parent).capacitance == pytest.approx(
            c_parent + c_before
        )
        # Children of the merged node re-attach to the parent.
        for child in bad.children("n3"):
            assert repaired.parent(child) == parent

    def test_repaired_tree_is_constructible_and_guardable(self, fig5):
        from repro import GuardedAnalyzer
        from repro.errors import ReproError

        bad = _inject(fig5, "n1", resistance=float("nan"))
        bad = _inject(bad, "n4", capacitance=-2e-12)
        repaired, report = sanitize(bad, RepairPolicy.repair_all())
        assert report.ok
        assert set(repaired.nodes) == set(fig5.nodes)
        # The clamp can zero out an element (NaN R -> 0), pushing some
        # nodes outside the closed form's domain — the guarded chain
        # must still deliver finite numbers or a typed error.
        guarded = GuardedAnalyzer(repaired)
        for node in repaired.nodes:
            try:
                value = guarded.delay_50(node)
            except ReproError:
                continue
            assert math.isfinite(value)
