"""Mid-sweep worker faults through the chunked lazy executor.

The chunked executor dispatches every chunk through the same
supervised sharded path as one-shot batches, so a worker killed in the
middle of a sweep must be retried (or degraded to serial) without
changing a single bit of the results and without losing a chunk.
"""

import numpy as np
import pytest

from repro.circuit import fig5_tree
from repro.engine import compile_tree, shutdown_pool
from repro.engine.dispatch import SupervisionPolicy, shared_memory_available
from repro.engine.table import analyze_batch
from repro.robustness import ProcessFault, ProcessFaultPlan
from repro.runtime import (
    ExecutionContext,
    RuntimeConfig,
    reset_degradation_warnings,
)
from repro.runtime import backends as backends_module
from repro.sweep import compile_sweep, const, linspace, run_sweep, scenario_space

pytestmark = [
    pytest.mark.robustness,
    pytest.mark.skipif(
        not shared_memory_available(), reason="no shared memory on platform"
    ),
]

S = 96

#: Tight budgets so hang-recovery stays fast in CI; generous enough
#: that a healthy shard never trips them on a loaded machine.
FAST = SupervisionPolicy(shard_timeout=5.0, max_retries=2, backoff=0.01)


@pytest.fixture(autouse=True)
def clean_dispatch_state():
    shutdown_pool()
    reset_degradation_warnings()
    yield
    shutdown_pool()
    reset_degradation_warnings()


def _sweep():
    compiled = compile_tree(fig5_tree())
    axis = linspace("scale", 0.5, 2.0, S)
    sweep = compile_sweep(
        scenario_space(axis),
        resistance=axis.values * const(compiled.resistance),
        inductance=const(compiled.inductance),
        capacitance=axis.values * const(compiled.capacitance),
    )
    return compiled, sweep


def _eager_reference(compiled):
    scale = np.linspace(0.5, 2.0, S)
    rlc = np.empty((S, 3, compiled.size))
    rlc[:, 0, :] = scale[:, None] * compiled.resistance
    rlc[:, 1, :] = compiled.inductance
    rlc[:, 2, :] = scale[:, None] * compiled.capacitance
    return analyze_batch(compiled, rlc, metrics=("delay_50",))


class TestMidSweepWorkerKill:
    @pytest.mark.parametrize("kind", ["crash", "hang"])
    def test_killed_chunk_recovers_bitwise(self, monkeypatch, kind):
        """A worker fault injected into the *second* chunk of a sweep:
        supervision retries the chunk, the breaker may degrade the
        remaining chunks to the serial backend, and the full result
        stays bitwise identical to the serial eager block either way."""
        compiled, sweep = _sweep()
        reference = _eager_reference(compiled)
        real = backends_module.analyze_batch_sharded
        calls = {"count": 0}
        plan = ProcessFaultPlan({0: ProcessFault(kind, attempts=1)})

        def faulting(compiled_arg, rlc=None, **kwargs):
            calls["count"] += 1
            fault = plan if calls["count"] == 2 else None
            kwargs.setdefault("supervision", FAST)
            return real(compiled_arg, rlc, fault_plan=fault, **kwargs)

        monkeypatch.setattr(
            backends_module, "analyze_batch_sharded", faulting
        )
        config = RuntimeConfig(
            workers=2, sharded_min_cells=1, shard_timeout=5.0,
            max_retries=2,
        )
        with ExecutionContext(config) as context:
            result = run_sweep(
                sweep,
                compiled,
                nodes=("n7",),
                chunk_size=24,
                context=context,
            )
            stats = context.stats()["sweep"]
        # The faulted chunk itself must have gone through the sharded
        # path (calls 1 and 2); whether chunks 3-4 stay sharded or
        # degrade through the breaker is the supervisor's call.
        assert calls["count"] >= 2
        assert stats["chunks"] == 4
        assert sum(stats["backends"].values()) == 4
        assert stats["backends"].get("sharded", 0) >= 2
        assert result.column("delay_50", "n7").tobytes() == reference.column(
            "delay_50", "n7"
        ).tobytes()
