"""The fault-injection harness and its central invariant.

The robustness guarantee under test: **every metric query on every node
of every generated tree either returns finite values or raises a**
:class:`repro.errors.ReproError` **subclass** — never a raw
``numpy.linalg.LinAlgError``, ``ZeroDivisionError``,
``FloatingPointError`` or any other undeclared exception.

Run standalone with ``pytest -m robustness``.
"""

import math

import numpy as np
import pytest

from repro.errors import ReproError, ValidationError
from repro.robustness import (
    FAMILIES,
    GuardedAnalyzer,
    RepairPolicy,
    degenerate_tree,
    fault_suite,
    perturb,
    validate_tree,
)

pytestmark = pytest.mark.robustness

METRICS = ("delay_50", "rise_time", "overshoot", "settling_time")

#: ISSUE acceptance floor: at least 200 seeded degenerate/perturbed trees.
SUITE_SIZE = 216  # a multiple of len(FAMILIES): every family 24 times


def _assert_finite_or_typed(guarded, node):
    """The invariant, for all metrics of one node."""
    for metric in METRICS:
        try:
            report = guarded.query(metric, node)
        except ReproError:
            continue  # a typed failure satisfies the guarantee
        assert isinstance(report.value, float)
        assert math.isfinite(report.value), (
            f"{metric}@{node}: non-finite {report.value!r} via {report.tier}"
        )


class TestGenerators:
    def test_deterministic(self):
        a = degenerate_tree(7)
        b = degenerate_tree(7)
        assert a.family == b.family
        assert list(a.tree.nodes) == list(b.tree.nodes)
        for name, section in a.tree.sections():
            other = b.tree.section(name)
            for field in ("resistance", "inductance", "capacitance"):
                x = getattr(section, field)
                y = getattr(other, field)
                assert (x == y) or (math.isnan(x) and math.isnan(y))

    def test_seed_sweep_covers_every_family(self):
        seen = {degenerate_tree(s).family for s in range(len(FAMILIES))}
        assert seen == set(FAMILIES)

    def test_explicit_family_selection(self):
        case = degenerate_tree(123, family="deep-chain")
        assert case.family == "deep-chain"
        assert case.tree.depth >= 100

    def test_perturb_reports_mutations(self, fig5, rng):
        mutated, mutations = perturb(fig5, rng, count=4)
        assert 1 <= len(mutations) <= 4  # node collisions coalesce
        assert all("@" in m for m in mutations)
        # The original tree is untouched.
        for name, section in fig5.sections():
            assert math.isfinite(section.resistance)

    def test_suite_size_and_reproducibility(self):
        cases = list(fault_suite(20, seed=5))
        again = list(fault_suite(20, seed=5))
        assert len(cases) == 20
        assert [c.family for c in cases] == [c.family for c in again]


class TestValidatorSeesEveryInjection:
    def test_invalid_cases_are_flagged(self):
        flagged_invalid = 0
        for case in fault_suite(SUITE_SIZE):
            report = validate_tree(case.tree)
            if case.expect_invalid:
                flagged_invalid += 1
                assert not report.ok, (
                    f"seed {case.seed} ({case.family}, {case.mutations}) "
                    "contains constructor-invalid values but validated ok"
                )
        assert flagged_invalid > 0  # the sweep does exercise this path


class TestInvariantStrict:
    """No repair policy: hopeless trees must fail as ValidationError."""

    def test_finite_or_typed_everywhere(self):
        checked_queries = 0
        rejected = 0
        for case in fault_suite(SUITE_SIZE):
            try:
                guarded = GuardedAnalyzer(case.tree)
            except ValidationError:
                rejected += 1
                continue
            for node in guarded.tree.nodes:
                _assert_finite_or_typed(guarded, node)
                checked_queries += len(METRICS)
        assert checked_queries > 1000
        assert rejected > 0  # injected NaN/inf/negative cases exist

    def test_invalid_cases_raise_validation_error(self):
        for case in fault_suite(SUITE_SIZE):
            if not case.expect_invalid:
                continue
            with pytest.raises(ValidationError):
                GuardedAnalyzer(case.tree)


class TestInvariantWithRepair:
    """repair_all: every generated tree must be answerable or typed."""

    def test_finite_or_typed_everywhere(self):
        policy = RepairPolicy.repair_all()
        for case in fault_suite(SUITE_SIZE):
            try:
                guarded = GuardedAnalyzer(case.tree, policy=policy)
            except ReproError:
                continue
            for node in guarded.tree.nodes:
                _assert_finite_or_typed(guarded, node)


class TestInvariantWithoutClosedForm:
    """The dense tiers alone must also honor the guarantee.

    The closed-form tier absorbs nearly everything in the default
    chain; excluding it drives the AWE and exact backends — where the
    raw numerical failures actually live — against the hostile suite.
    A smaller sweep keeps the eigensolves affordable.
    """

    def test_dense_tiers_finite_or_typed(self):
        policy = RepairPolicy.repair_all()
        for case in fault_suite(45, seed=1000):
            try:
                guarded = GuardedAnalyzer(
                    case.tree, chain=("awe", "exact"), policy=policy
                )
            except ReproError:
                continue
            nodes = guarded.tree.nodes
            probe_nodes = {nodes[0], nodes[len(nodes) // 2], nodes[-1]}
            for node in probe_nodes:
                _assert_finite_or_typed(guarded, node)
