"""Process-level fault injection and the supervised recovery path.

The acceptance contract for the fault-tolerant runtime: an injected
worker kill, hang, or slow shard must leave the call with **bitwise
identical** metrics to the serial path (after retry or serial
fallback), must never deadlock (every wait is bounded by the shard
timeout budget), and must leave its trace in the supervision telemetry
and the context's breaker board.

These spawn and kill real worker processes, so they ride the
``robustness`` marker with the rest of the fault-injection suite.
"""

import numpy as np
import pytest

from repro.circuit import fig5_tree, random_tree
from repro.engine import (
    analyze_many,
    compile_tree,
    dispatch_telemetry,
    pool_health,
    reset_dispatch_telemetry,
    shutdown_pool,
)
from repro.engine.dispatch import SupervisionPolicy, shared_memory_available
from repro.engine.sharded import ShardError, analyze_batch_sharded
from repro.robustness import (
    PROCESS_FAULT_KINDS,
    ProcessFault,
    ProcessFaultPlan,
    process_fault_plan,
)
from repro.runtime import (
    ExecutionContext,
    RuntimeConfig,
    Workload,
    reset_degradation_warnings,
)

pytestmark = [
    pytest.mark.robustness,
    pytest.mark.skipif(
        not shared_memory_available(), reason="no shared memory on platform"
    ),
]

#: Tight budgets so hang-recovery stays fast in CI; generous enough
#: that a healthy shard never trips them on a loaded machine.
FAST = SupervisionPolicy(shard_timeout=5.0, max_retries=2, backoff=0.01)


@pytest.fixture(autouse=True)
def clean_dispatch_state():
    shutdown_pool()
    reset_dispatch_telemetry()
    reset_degradation_warnings()
    yield
    shutdown_pool()
    reset_dispatch_telemetry()
    reset_degradation_warnings()


@pytest.fixture
def trees():
    rng = np.random.default_rng(42)
    return [fig5_tree(), random_tree(12, rng), random_tree(20, rng)]


def assert_identical(reference, results):
    assert len(reference) == len(results)
    for ref, got in zip(reference, results):
        assert not isinstance(got, ShardError), str(got)
        for name in ("t_rc", "t_lc", "delay_50", "rise_time"):
            a = getattr(ref.metrics, name)
            b = getattr(got.metrics, name)
            if a is None or b is None:
                assert a is None and b is None
            else:
                assert np.array_equal(a, b, equal_nan=True)


class TestProcessFaultSpec:
    def test_kinds_validated(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            ProcessFault("explode")
        with pytest.raises(ConfigurationError):
            ProcessFault("crash", attempts=0)
        with pytest.raises(ConfigurationError):
            ProcessFault("delay", seconds=-1.0)

    def test_seeded_plan_is_deterministic(self):
        first = process_fault_plan(seed=7, shards=8, count=2)
        second = process_fault_plan(seed=7, shards=8, count=2)
        assert first == second
        assert len(first) == 2
        assert all(
            fault.kind in PROCESS_FAULT_KINDS
            for fault in first.faults.values()
        )
        assert process_fault_plan(seed=8, shards=8, count=2) != first

    def test_fault_inert_in_parent_process(self):
        # Applying a crash fault outside a pool worker must be a no-op:
        # the serial fallback path re-runs faulted units in-parent.
        from repro.engine.dispatch import _apply_process_fault

        _apply_process_fault(ProcessFault("crash"), attempt=0)  # no exit


class TestWorkerKillRecovery:
    def test_crash_once_retries_to_identical_results(self, trees):
        reference = analyze_many(trees, workers=1)
        plan = ProcessFaultPlan({1: ProcessFault("crash")})
        results = analyze_many(
            trees, workers=2, supervision=FAST, fault_plan=plan
        )
        assert_identical(reference, results)
        telemetry = dispatch_telemetry()
        assert telemetry["worker_deaths"] >= 1
        assert telemetry["rebuilds"] >= 1
        assert telemetry["retries"] >= 1
        assert telemetry["worker_failures"], "dead worker pid not attributed"

    def test_crash_always_degrades_to_serial_fallback(self, trees):
        reference = analyze_many(trees, workers=1)
        plan = ProcessFaultPlan({0: ProcessFault("crash", attempts=None)})
        results = analyze_many(
            trees, workers=2, supervision=FAST, fault_plan=plan
        )
        assert_identical(reference, results)
        assert dispatch_telemetry()["serial_fallbacks"] >= 1

    def test_exhaustion_without_fallback_reports_structured_error(self, trees):
        plan = ProcessFaultPlan({0: ProcessFault("crash", attempts=None)})
        policy = SupervisionPolicy(
            shard_timeout=5.0, max_retries=1, backoff=0.01,
            serial_fallback=False,
        )
        results = analyze_many(
            trees, workers=2, supervision=policy, fault_plan=plan
        )
        assert isinstance(results[0], ShardError)
        assert results[0].error_type == "ShardRetryExhausted"
        assert results[0].attempt >= 2
        assert not isinstance(results[1], ShardError)
        assert dispatch_telemetry()["exhausted"] >= 1


class TestHangAndDelayRecovery:
    def test_hung_worker_times_out_and_recovers(self, trees):
        reference = analyze_many(trees, workers=1)
        plan = ProcessFaultPlan({2: ProcessFault("hang")})
        policy = SupervisionPolicy(
            shard_timeout=0.5, max_retries=2, backoff=0.01
        )
        results = analyze_many(
            trees, workers=2, supervision=policy, fault_plan=plan
        )
        assert_identical(reference, results)
        telemetry = dispatch_telemetry()
        assert telemetry["timeouts"] >= 1
        assert telemetry["rebuilds"] >= 1

    def test_slow_shard_within_budget_needs_no_retry(self, trees):
        reference = analyze_many(trees, workers=1)
        plan = ProcessFaultPlan({1: ProcessFault("delay", seconds=0.2)})
        policy = SupervisionPolicy(
            shard_timeout=30.0, max_retries=2, backoff=0.01
        )
        results = analyze_many(
            trees, workers=2, supervision=policy, fault_plan=plan
        )
        assert_identical(reference, results)
        telemetry = dispatch_telemetry()
        assert telemetry["timeouts"] == 0
        assert telemetry["retries"] == 0
        assert telemetry["rebuilds"] == 0


class TestShardedBatchRecovery:
    @pytest.fixture
    def batch_setup(self):
        compiled = compile_tree(fig5_tree())
        rng = np.random.default_rng(7)
        scenarios, n = 64, len(compiled.names)
        rlc = np.stack(
            [
                rng.uniform(1.0, 10.0, (scenarios, n)),
                rng.uniform(0.0, 1e-9, (scenarios, n)),
                rng.uniform(1e-15, 1e-12, (scenarios, n)),
            ],
            axis=1,
        )
        return compiled, rlc

    def test_seeded_worker_kill_bitwise_identical(self, batch_setup):
        compiled, rlc = batch_setup
        reference = analyze_batch_sharded(compiled, rlc, shards=1, workers=1)
        plan = process_fault_plan(seed=3, shards=4, kinds=("crash",), count=1)
        assert len(plan) == 1
        result = analyze_batch_sharded(
            compiled, rlc, shards=4, workers=2,
            supervision=FAST, fault_plan=plan,
        )
        for name in ("t_rc", "t_lc", "delay_50"):
            assert np.array_equal(
                getattr(reference.metrics, name),
                getattr(result.metrics, name),
                equal_nan=True,
            )
        assert dispatch_telemetry()["rebuilds"] >= 1

    def test_shared_block_survives_pool_rebuild(self, batch_setup):
        # The value block is parent-owned: the kill-and-rebuild cycle
        # must re-attach, not unlink. A wrong lifetime here shows up as
        # FileNotFoundError in every retried shard.
        compiled, rlc = batch_setup
        plan = ProcessFaultPlan({0: ProcessFault("crash")})
        result = analyze_batch_sharded(
            compiled, rlc, shards=4, workers=2,
            supervision=FAST, fault_plan=plan,
        )
        assert np.all(np.isfinite(result.metrics.t_rc))

    def test_value_faults_still_reported_not_retried(self, batch_setup):
        # Deterministic evaluation errors keep their existing contract:
        # structured DispatchError with partial results, no retries.
        from repro.errors import DispatchError

        compiled, rlc = batch_setup
        with pytest.raises(DispatchError) as excinfo:
            analyze_batch_sharded(
                compiled, rlc, shards=4, workers=2,
                supervision=FAST, fault_shards=[1],
            )
        assert len(excinfo.value.shard_errors) == 1
        error = excinfo.value.shard_errors[0]
        assert error.pid is not None
        assert error.attempt == 0
        assert dispatch_telemetry()["retries"] == 0


class TestPoolHealth:
    def test_health_reports_live_workers(self, trees):
        analyze_many(trees, workers=2, supervision=FAST)
        health = pool_health(probe=True, timeout=10.0)
        assert health["running"]
        assert health["workers"] == 2
        assert len(health["alive_pids"]) == 2
        assert health["dead_pids"] == []
        assert health["responsive"] is True
        assert sorted(health["responding_pids"]) == health["alive_pids"]
        assert "telemetry" in health

    def test_health_with_no_pool(self):
        health = pool_health()
        assert not health["running"]
        assert health["workers"] == 0
        assert health["responsive"] is None


class TestContextLevelRecovery:
    def test_worker_kill_through_context_trips_breaker(self, trees):
        # One crash during a sharded dispatch: the call succeeds (retry),
        # the rebuild trips the breaker, the *next* plan degrades with
        # provenance, and stats record the whole story.
        config = RuntimeConfig(
            workers=2, shard_timeout=5.0, max_retries=2,
            breaker_cooldown=300.0,
        )
        with ExecutionContext(config) as context:
            reference = context.analyze_many(trees, backend="compiled")
            plan = ProcessFaultPlan({1: ProcessFault("crash")})
            # Drive the fault through the context's dispatch wrapper so
            # the telemetry delta reaches the sharded breaker.
            decision = context.plan(
                Workload(kind="many", tree_count=len(trees))
            )
            assert decision.backend == "sharded"
            results = context._dispatch(
                decision,
                lambda: analyze_many(
                    trees, workers=2, supervision=FAST, fault_plan=plan
                ),
            )
            assert_identical(reference, results)
            stats = context.stats()
            assert stats["breakers"]["sharded"]["state"] == "open"
            assert stats["supervision"]["rebuilds"] >= 1

            with pytest.warns(RuntimeWarning, match="repro.runtime degraded"):
                degraded = context.plan(
                    Workload(kind="many", tree_count=len(trees))
                )
            assert degraded.backend == "compiled"
            assert degraded.degraded
            assert degraded.degraded_from == "sharded"
            assert context.stats()["plans"]["degraded"] == 1
