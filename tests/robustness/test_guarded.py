"""The guarded fallback-chain analyzer."""

import math

import numpy as np
import pytest

from repro import GuardedAnalyzer, TreeAnalyzer
from repro.circuit import RLCTree, fig5_tree, single_line
from repro.errors import (
    ConfigurationError,
    FallbackExhaustedError,
    NumericalHealthError,
    ReproError,
    SimulationError,
    TopologyError,
    ValidationError,
)
from repro.robustness import RepairPolicy
from repro.robustness.faults import _bypass
from repro.robustness.guarded import shielded
from repro.robustness.health import characteristic_scales, rescale_tree
from repro.simulation import measures
from repro.simulation.exact import ExactSimulator

pytestmark = pytest.mark.robustness

METRICS = ("delay_50", "rise_time", "overshoot", "settling_time")


def stiff_tree():
    """Fast path plus a nearly lossless slow branch; R spans 1e12.

    The slow branch's decay time (2L/R ~ 2e6 s) dominates the global
    modal grid, leaving the fast node's crossings unresolved there.
    """
    tree = RLCTree()
    tree.add_section("a", "in", resistance=1e3, inductance=1e-9,
                     capacitance=1e-12)
    tree.add_section("b", "a", resistance=1e3, inductance=1e-9,
                     capacitance=1e-12)
    tree.add_section("slow", "a", resistance=1e-10, inductance=1e-3,
                     capacitance=1e-15)
    return tree


def overflow_tree():
    """Subnormal capacitances: 1/(RC) overflows the state matrix."""
    tree = RLCTree()
    tree.add_section("x", "in", resistance=1.0, inductance=0.0,
                     capacitance=1e-310)
    tree.add_section("y", "x", resistance=1.0, inductance=1e-319,
                     capacitance=1e-310)
    return tree


class TestConfiguration:
    def test_default_chain(self, fig5):
        guarded = GuardedAnalyzer(fig5)
        assert guarded.chain == ("closed-form", "awe", "exact")

    def test_unknown_tier_rejected(self, fig5):
        with pytest.raises(ConfigurationError):
            GuardedAnalyzer(fig5, chain=("closed-form", "spice"))

    def test_empty_chain_rejected(self, fig5):
        with pytest.raises(ConfigurationError):
            GuardedAnalyzer(fig5, chain=())

    def test_bad_awe_order_rejected(self, fig5):
        with pytest.raises(ConfigurationError):
            GuardedAnalyzer(fig5, awe_order=0)

    def test_unknown_metric_rejected(self, fig5):
        with pytest.raises(ConfigurationError):
            GuardedAnalyzer(fig5).query("slew", "n7")

    def test_unknown_node_rejected(self, fig5):
        with pytest.raises(TopologyError):
            GuardedAnalyzer(fig5).query("delay_50", "zzz")

    def test_invalid_tree_rejected_up_front(self, fig5):
        bad = fig5.map_sections(
            lambda name, s:
            _bypass(s, resistance=float("nan")) if name == "n3" else s
        )
        with pytest.raises(ValidationError):
            GuardedAnalyzer(bad)

    def test_repair_policy_rescues_invalid_tree(self, fig5):
        bad = fig5.map_sections(
            lambda name, s:
            _bypass(s, resistance=float("nan")) if name == "n3" else s
        )
        guarded = GuardedAnalyzer(bad, policy=RepairPolicy.repair_all())
        assert math.isfinite(guarded.delay_50("n7"))


class TestAgreementOnFriendlyTrees:
    """On well-behaved input the guard must be invisible."""

    def test_matches_closed_form(self, fig5):
        guarded = GuardedAnalyzer(fig5)
        plain = TreeAnalyzer(fig5)
        for node in fig5.nodes:
            for metric in METRICS:
                report = guarded.query(metric, node)
                assert report.tier == "closed-form"
                assert not report.degraded
                assert report.value == getattr(plain, metric)(node)

    def test_timing_carries_reports(self, fig5):
        timing = GuardedAnalyzer(fig5).timing("n7")
        assert len(timing.reports) == len(METRICS)
        assert not timing.degraded
        assert timing.delay_50 == TreeAnalyzer(fig5).delay_50("n7")
        assert math.isfinite(timing.elmore_delay)

    def test_report_covers_all_nodes(self, fig5):
        rows = GuardedAnalyzer(fig5).report()
        assert [r.node for r in rows] == list(fig5.nodes)


class TestFallbackChain:
    def test_awe_tier_answers_when_closed_form_excluded(self, fig5):
        guarded = GuardedAnalyzer(fig5, chain=("awe",))
        report = guarded.query("delay_50", "n7")
        assert report.tier == "awe"
        # AWE order 3 matches the closed form to a few percent here.
        reference = TreeAnalyzer(fig5).delay_50("n7")
        assert report.value == pytest.approx(reference, rel=0.1)

    def test_exact_tier_answers_when_others_excluded(self, fig5):
        guarded = GuardedAnalyzer(fig5, chain=("exact",))
        report = guarded.query("delay_50", "n7")
        assert report.tier == "exact"
        reference = TreeAnalyzer(fig5).delay_50("n7")
        assert report.value == pytest.approx(reference, rel=0.05)

    def test_attempts_record_every_tier(self, fig5):
        report = GuardedAnalyzer(fig5).query("delay_50", "n7")
        assert [a.tier for a in report.attempts] == ["closed-form"]
        assert report.attempts[0].status == "ok"

    def test_degraded_chain_records_the_failed_tier(self):
        # Zero capacitance everywhere: AWE's moments are degenerate and
        # the reduction fails, but the exact tier runs on the
        # epsilon-capacitance floor and still answers.
        tree = single_line(3, resistance=10.0, inductance=0.0,
                           capacitance=0.0)
        guarded = GuardedAnalyzer(tree, chain=("awe", "exact"))
        report = guarded.query("delay_50", tree.nodes[-1])
        assert report.tier == "exact"
        assert report.degraded
        assert [a.tier for a in report.attempts] == ["awe", "exact"]
        assert report.attempts[0].status == "failed"
        assert "ReductionError" in report.attempts[0].detail

    def test_fallback_exhausted_is_typed(self):
        # With only the AWE tier available the same tree has nowhere
        # left to go; the failure must surface as the typed chain error.
        tree = single_line(3, resistance=10.0, inductance=0.0,
                           capacitance=0.0)
        guarded = GuardedAnalyzer(tree, chain=("awe",))
        with pytest.raises(FallbackExhaustedError) as excinfo:
            guarded.query("delay_50", tree.nodes[-1])
        attempts = excinfo.value.attempts
        assert [a.tier for a in attempts] == ["awe"]
        assert attempts[0].status == "failed"
        assert isinstance(excinfo.value, ReproError)


class TestStiffTreeAcceptance:
    """ISSUE acceptance: >= 1e12 element spread, 1% agreement."""

    def test_element_spread_exceeds_1e12(self):
        values = [s.resistance for _, s in stiff_tree().sections()]
        assert max(values) / min(values) >= 1e12

    def test_unguarded_grid_degrades(self):
        # The global modal grid spans the slow branch's ~1e6 s decay;
        # the fast node's 50% crossing lands in its first bin and the
        # measured delay is off by > 100%.
        tree = stiff_tree()
        simulator = ExactSimulator(tree)
        t = simulator.time_grid(points=4001)
        degraded = measures.delay_50(t, simulator.step_response("b", t))
        reference = self._reference_delay(tree)
        assert abs(degraded - reference) / reference > 1.0

    def test_guarded_agrees_within_1_percent(self):
        tree = stiff_tree()
        guarded = GuardedAnalyzer(tree, chain=("exact",))
        report = guarded.query("delay_50", "b")
        assert report.tier == "exact"
        reference = self._reference_delay(tree)
        assert report.value == pytest.approx(reference, rel=0.01)

    @staticmethod
    def _reference_delay(tree):
        """Exact delay measured on a deliberately well-chosen grid."""
        simulator = ExactSimulator(tree)
        t = np.linspace(0.0, 2e-8, 40001)
        return measures.delay_50(t, simulator.step_response("b", t))


class TestOverflowTreeAcceptance:
    """ISSUE acceptance: rescaling-retry rescues a failing exact solve."""

    def test_unguarded_path_fails(self):
        with pytest.raises(SimulationError):
            simulator = ExactSimulator(overflow_tree())
            simulator.time_grid(points=101)

    def test_guarded_rescaling_retry_agrees_within_1_percent(self):
        tree = overflow_tree()
        guarded = GuardedAnalyzer(tree, chain=("exact",))
        report = guarded.query("delay_50", "y")
        assert report.tier == "exact"
        assert report.attempts[-1].rescaled

        # Reference: solve in normalized units by hand and scale back
        # (delay(tree) = tau * delay(rescaled) exactly).
        tau, z = characteristic_scales(tree)
        scaled = rescale_tree(tree, tau, z)
        simulator = ExactSimulator(scaled)
        t = np.linspace(0.0, 50.0, 40001)
        reference = tau * measures.delay_50(
            t, simulator.step_response("y", t)
        )
        assert report.value == pytest.approx(reference, rel=0.01)


class TestShielded:
    def test_converts_raw_numerical_failures(self):
        @shielded
        def explode():
            return np.linalg.solve(np.zeros((2, 2)), np.ones(2))

        with pytest.raises(NumericalHealthError) as excinfo:
            explode()
        assert isinstance(excinfo.value.__cause__, np.linalg.LinAlgError)

    def test_passes_repro_errors_through(self):
        @shielded
        def typed():
            raise SimulationError("already typed")

        with pytest.raises(SimulationError):
            typed()

    def test_converts_zero_division(self):
        @shielded
        def divide():
            return 1.0 / 0.0

        with pytest.raises(NumericalHealthError):
            divide()

    def test_transparent_on_success(self):
        @shielded
        def fine():
            return 42

        assert fine() == 42
        assert fine.__name__ == "fine"

    def test_apps_entry_points_are_shielded(self):
        from repro.apps import buffer_insertion, clock_skew, wire_sizing

        for fn in (buffer_insertion.insert_buffers,
                   clock_skew.skew_report,
                   wire_sizing.optimize_width):
            assert hasattr(fn, "__wrapped__")
