"""The guarded analyzer's pluggable closed-form backend.

``closed_form_backend="incremental"`` puts the delta-update engine in
front of the fallback chain: queries answer from the live
:class:`IncrementalAnalyzer`, edits made through it are visible to later
guarded queries, and a failing backend still falls through to AWE/exact
like any other closed-form failure.
"""

import math

import pytest

from repro import GuardedAnalyzer
from repro.engine import IncrementalAnalyzer
from repro.errors import ConfigurationError, ElementValueError
from repro.robustness.guarded import _METRICS

pytestmark = pytest.mark.robustness


class TestBackendConfiguration:
    def test_default_is_none(self, fig5):
        assert GuardedAnalyzer(fig5).closed_form_backend is None

    def test_incremental_string_builds_analyzer(self, fig5):
        guarded = GuardedAnalyzer(fig5, closed_form_backend="incremental")
        backend = guarded.closed_form_backend
        assert isinstance(backend, IncrementalAnalyzer)
        assert backend.settle_band == guarded._settle_band

    def test_duck_typed_object_accepted(self, fig5):
        class Constant:
            def value(self, metric, node):
                return 1e-12

        guarded = GuardedAnalyzer(fig5, closed_form_backend=Constant())
        report = guarded.query("delay_50", "n3")
        assert report.value == 1e-12
        assert report.tier == "closed-form"
        assert report.attempts[0].detail == "delta-update backend"

    def test_invalid_backend_rejected(self, fig5):
        with pytest.raises(ConfigurationError):
            GuardedAnalyzer(fig5, closed_form_backend="turbo")
        with pytest.raises(ConfigurationError):
            GuardedAnalyzer(fig5, closed_form_backend=object())


class TestIncrementalBackendAnswers:
    def test_matches_default_tier(self, fig5):
        plain = GuardedAnalyzer(fig5)
        backed = GuardedAnalyzer(fig5, closed_form_backend="incremental")
        for node in ("n1", "n4", "n7"):
            for metric in _METRICS:
                want = plain.query(metric, node).value
                got = backed.query(metric, node).value
                assert got == pytest.approx(want, rel=1e-12), (node, metric)

    def test_timing_reads_backend_sums(self, fig5):
        plain = GuardedAnalyzer(fig5)
        backed = GuardedAnalyzer(fig5, closed_form_backend="incremental")
        a, b = plain.timing("n7"), backed.timing("n7")
        assert b.t_rc == pytest.approx(a.t_rc, rel=1e-12)
        assert b.t_lc == pytest.approx(a.t_lc, rel=1e-12)
        assert b.zeta == pytest.approx(a.zeta, rel=1e-12)
        assert b.omega_n == pytest.approx(a.omega_n, rel=1e-12)

    def test_edits_visible_to_later_queries(self, fig5):
        guarded = GuardedAnalyzer(fig5, closed_form_backend="incremental")
        before = guarded.delay_50("n7")
        guarded.closed_form_backend.set_resistance("n1", 10 *
            fig5.section("n1").resistance)
        after = guarded.delay_50("n7")
        assert after > before
        # The delta-updated answer equals a fresh analysis of the
        # edited tree.
        fresh = GuardedAnalyzer(guarded.closed_form_backend.tree())
        assert after == pytest.approx(fresh.delay_50("n7"), rel=1e-12)

    def test_edited_timing_is_consistent(self, fig5):
        guarded = GuardedAnalyzer(fig5, closed_form_backend="incremental")
        guarded.closed_form_backend.set_capacitance("n3", 5e-13)
        timing = guarded.timing("n7")
        backend = guarded.closed_form_backend
        t_rc, t_lc = backend.sums("n7")
        assert timing.t_rc == t_rc
        assert timing.t_lc == t_lc
        assert timing.delay_50 == pytest.approx(
            backend.value("delay_50", "n7"), rel=1e-12
        )


class TestBackendFallthrough:
    def test_backend_failure_falls_to_next_tier(self, fig5):
        class Broken:
            def value(self, metric, node):
                raise ElementValueError("backend says no")

        guarded = GuardedAnalyzer(fig5, closed_form_backend=Broken())
        report = guarded.query("delay_50", "n7")
        assert report.tier in ("awe", "exact")
        assert report.attempts[0].status == "failed"
        assert "backend says no" in report.attempts[0].detail
        assert math.isfinite(report.value) and report.value > 0.0
