"""Numerical-health probes and unit rescaling."""

import math

import numpy as np
import pytest

from repro.circuit import single_line
from repro.errors import NumericalHealthError
from repro.robustness import (
    characteristic_scales,
    eigensystem_probes,
    rescale_tree,
)

pytestmark = pytest.mark.robustness


class TestEigensystemProbes:
    def test_healthy_decomposition(self):
        a = np.diag([-1.0, -2.0, -3.0])
        w, v = np.linalg.eig(a)
        probes = eigensystem_probes(a, w, v)
        assert all(p.ok for p in probes)
        names = [p.name for p in probes]
        assert names == ["finite", "eigenvector-condition",
                         "eigensolve-residual"]

    def test_non_finite_matrix_trips_first_probe(self):
        a = np.array([[np.inf, 0.0], [0.0, -1.0]])
        w = np.array([np.inf, -1.0])
        v = np.eye(2)
        probes = eigensystem_probes(a, w, v)
        assert not probes[0].ok
        assert len(probes) == 1  # later probes are meaningless

    def test_ill_conditioned_eigenvectors_trip(self):
        # Nearly parallel eigenvectors: huge condition number.
        a = np.array([[-1.0, 1e9], [0.0, -1.0 - 1e-9]])
        w, v = np.linalg.eig(a)
        probes = eigensystem_probes(a, w, v, condition_limit=1e6)
        tripped = [p for p in probes if not p.ok]
        assert any(p.name == "eigenvector-condition" for p in tripped)

    def test_never_raises(self):
        a = np.full((3, 3), np.nan)
        eigensystem_probes(a, np.full(3, np.nan), np.full((3, 3), np.nan))


class TestCharacteristicScales:
    def test_uniform_line(self):
        tree = single_line(4, resistance=100.0, inductance=1e-9,
                           capacitance=1e-12)
        tau, z = characteristic_scales(tree)
        # Dominant constant per section: max(RC, sqrt(LC), L/R) = 1e-10.
        assert tau == pytest.approx(1e-10, rel=1e-9)
        assert z == pytest.approx(100.0, rel=1e-9)

    def test_subnormal_values_survive(self):
        tree = single_line(2, resistance=1.0, inductance=0.0,
                           capacitance=1e-310)
        tau, z = characteristic_scales(tree)
        assert math.isfinite(tau) and tau > 0.0
        assert tau == pytest.approx(1e-310, rel=1e-6)

    def test_no_usable_constants_fall_back_to_one(self):
        tree = single_line(2, resistance=1.0, inductance=0.0,
                           capacitance=0.0)
        tau, z = characteristic_scales(tree)
        assert tau == 1.0
        assert z == pytest.approx(1.0)


class TestRescaleTree:
    def test_time_constants_divide_by_tau(self):
        tree = single_line(3, resistance=50.0, inductance=2e-9,
                           capacitance=0.5e-12)
        tau = 1e-10
        scaled = rescale_tree(tree, tau)
        for name, original in tree.sections():
            s = scaled.section(name)
            assert s.resistance * s.capacitance == pytest.approx(
                original.resistance * original.capacitance / tau
            )
            assert s.inductance / s.resistance == pytest.approx(
                original.inductance / original.resistance / tau
            )

    def test_impedance_scale_preserves_time_constants(self):
        tree = single_line(3, resistance=50.0, inductance=2e-9,
                           capacitance=0.5e-12)
        scaled = rescale_tree(tree, 1.0, impedance_scale=50.0)
        for name, original in tree.sections():
            s = scaled.section(name)
            assert s.resistance * s.capacitance == pytest.approx(
                original.resistance * original.capacitance
            )

    def test_delay_scaling_law(self):
        from repro import TreeAnalyzer

        tree = single_line(4, resistance=30.0, inductance=4e-9,
                           capacitance=0.3e-12)
        tau, z = characteristic_scales(tree)
        scaled = rescale_tree(tree, tau, z)
        node = tree.nodes[-1]
        original = TreeAnalyzer(tree).delay_50(node)
        normalized = TreeAnalyzer(scaled).delay_50(node)
        assert tau * normalized == pytest.approx(original, rel=1e-12)

    def test_subnormal_rescale_round_trip(self):
        tree = single_line(2, resistance=1.0, inductance=0.0,
                           capacitance=1e-310)
        tau, z = characteristic_scales(tree)
        scaled = rescale_tree(tree, tau, z)
        for _, s in scaled.sections():
            # Normalized units: all values O(1) and representable.
            assert math.isfinite(s.resistance)
            assert math.isfinite(s.capacitance)
            assert s.capacitance > 1e-6

    def test_bad_scales_rejected(self, fig5):
        with pytest.raises(NumericalHealthError):
            rescale_tree(fig5, 0.0)
        with pytest.raises(NumericalHealthError):
            rescale_tree(fig5, float("nan"))
        with pytest.raises(NumericalHealthError):
            rescale_tree(fig5, 1.0, impedance_scale=float("inf"))
