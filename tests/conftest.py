"""Shared fixtures for the repro test suite."""

import numpy as np
import pytest

from repro.circuit import (
    Section,
    balanced_tree,
    fig5_tree,
    fig8_tree,
    random_tree,
    single_line,
)


@pytest.fixture
def section():
    """A generic moderately inductive section."""
    return Section(resistance=25.0, inductance=5e-9, capacitance=0.5e-12)


@pytest.fixture
def fig5():
    """The paper's Fig. 5 balanced 7-section binary tree."""
    return fig5_tree()


@pytest.fixture
def fig8():
    """The irregular Fig. 8 stand-in tree."""
    return fig8_tree()


@pytest.fixture
def line3():
    """A short uniform 3-section line."""
    return single_line(3, resistance=10.0, inductance=2e-9, capacitance=0.2e-12)


@pytest.fixture
def rc_line():
    """An inductance-free 5-section line (RC limit)."""
    return single_line(5, resistance=100.0, inductance=0.0, capacitance=0.1e-12)


@pytest.fixture
def deep_balanced():
    """A 4-level binary balanced tree (30 sections)."""
    return balanced_tree(4, 2, resistance=20.0, inductance=3e-9, capacitance=0.3e-12)


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def random_rlc(rng):
    """A reproducible random 25-section RLC tree."""
    return random_tree(25, rng)
