"""Supervision overhead and recovery latency of the fault-tolerant pool.

Two numbers justify leaving supervision armed by default. First, the
fault-free tax: per-shard deadlines and the retry bookkeeping must cost
under 3% against the same sharded dispatch with the deadline disarmed
(min-of-N so scheduler noise does not decide the gate). Second, the
recovery bill: one injected worker kill mid-batch must finish with
bitwise-identical metrics, paying only a bounded pool-rebuild latency.

The ``perf``-marked test is the CI quick gate; the unmarked report test
regenerates ``BENCH_resilience.json`` at the repository root. Run with::

    pytest benchmarks/bench_resilience.py -m perf -s        # quick gate
    pytest benchmarks/bench_resilience.py -m "not perf" -s  # full report
"""

import json
import pathlib
import time

import numpy as np
import pytest

from repro.circuit import random_tree
from repro.engine import (
    analyze_many,
    reset_dispatch_telemetry,
    shutdown_pool,
)
from repro.engine.dispatch import SupervisionPolicy, shared_memory_available
from repro.robustness import ProcessFault, ProcessFaultPlan

pytestmark = pytest.mark.skipif(
    not shared_memory_available(), reason="no shared memory on platform"
)

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
RESULT_RESILIENCE_PATH = REPO_ROOT / "BENCH_resilience.json"

#: Fault-free overhead budget for armed deadlines + retry bookkeeping.
OVERHEAD_BUDGET = 0.03
#: Absolute floor so sub-100ms workloads don't turn noise into failures.
OVERHEAD_FLOOR_S = 0.010
#: One kill -> detect + rebuild + re-dispatch must fit well inside this.
RECOVERY_BUDGET_S = 15.0

ARMED = SupervisionPolicy(shard_timeout=60.0, max_retries=2, backoff=0.01)
DISARMED = SupervisionPolicy(shard_timeout=None, max_retries=2, backoff=0.01)


def _workload(trees=24, sections=200):
    rng = np.random.default_rng(1234)
    return [random_tree(sections, rng) for _ in range(trees)]


def _time_dispatch(trees, policy, repeats, fault_plan=None):
    best = float("inf")
    results = None
    for _ in range(repeats):
        reset_dispatch_telemetry()
        start = time.perf_counter()
        results = analyze_many(
            trees, workers=2, supervision=policy, fault_plan=fault_plan
        )
        best = min(best, time.perf_counter() - start)
    return best, results


def _max_drift(reference, results):
    worst = 0.0
    for ref, got in zip(reference, results):
        a, b = ref.metrics.delay_50, got.metrics.delay_50
        mask = np.isfinite(a) & np.isfinite(b)
        if mask.any():
            worst = max(worst, float(np.abs(a[mask] - b[mask]).max()))
        assert np.array_equal(np.isfinite(a), np.isfinite(b))
    return worst


def run_resilience(quick=True):
    trees = _workload(trees=12 if quick else 24, sections=150 if quick else 300)
    repeats = 3 if quick else 5
    shutdown_pool()
    try:
        reference = analyze_many(trees, workers=1)

        # Warm the pool + topology caches outside the timed region, then
        # the fault-free A/B: armed deadlines vs no deadline at all.
        analyze_many(trees, workers=2, supervision=DISARMED)
        disarmed_s, _ = _time_dispatch(trees, DISARMED, repeats)
        armed_s, armed_results = _time_dispatch(trees, ARMED, repeats)
        overhead = (armed_s - disarmed_s) / disarmed_s

        # Recovery: one worker killed mid-run, armed policy, same answer.
        plan = ProcessFaultPlan({1: ProcessFault("crash")})
        faulted_s, faulted_results = _time_dispatch(
            trees, ARMED, 1, fault_plan=plan
        )
        from repro.engine import dispatch_telemetry

        telemetry = dispatch_telemetry()
    finally:
        shutdown_pool()
        reset_dispatch_telemetry()

    return {
        "mode": "quick" if quick else "full",
        "trees": len(trees),
        "sections": len(trees[0].nodes),
        "repeats": repeats,
        "overhead_budget": OVERHEAD_BUDGET,
        "recovery_budget_s": RECOVERY_BUDGET_S,
        "fault_free": {
            "disarmed_s": disarmed_s,
            "armed_s": armed_s,
            "overhead_frac": overhead,
            "overhead_abs_s": armed_s - disarmed_s,
            "max_abs_drift": _max_drift(reference, armed_results),
        },
        "recovery": {
            "faulted_s": faulted_s,
            "recovery_latency_s": faulted_s - armed_s,
            "max_abs_drift": _max_drift(reference, faulted_results),
            "rebuilds": telemetry["rebuilds"],
            "retries": telemetry["retries"],
            "worker_deaths": telemetry["worker_deaths"],
        },
    }


def check_resilience(results):
    failures = []
    fault_free = results["fault_free"]
    over_frac = fault_free["overhead_frac"] > OVERHEAD_BUDGET
    over_floor = fault_free["overhead_abs_s"] > OVERHEAD_FLOOR_S
    if over_frac and over_floor:
        failures.append(
            f"fault-free supervision overhead "
            f"{fault_free['overhead_frac']:.1%} exceeds "
            f"{OVERHEAD_BUDGET:.0%} budget "
            f"({fault_free['armed_s']:.4f}s vs {fault_free['disarmed_s']:.4f}s)"
        )
    if fault_free["max_abs_drift"] != 0.0:
        failures.append(
            f"fault-free drift {fault_free['max_abs_drift']!r} != 0"
        )
    recovery = results["recovery"]
    if recovery["max_abs_drift"] != 0.0:
        failures.append(f"post-recovery drift {recovery['max_abs_drift']!r} != 0")
    if recovery["faulted_s"] > RECOVERY_BUDGET_S:
        failures.append(
            f"recovery took {recovery['faulted_s']:.2f}s "
            f"(> {RECOVERY_BUDGET_S}s budget)"
        )
    if recovery["rebuilds"] < 1 or recovery["worker_deaths"] < 1:
        failures.append(
            "injected kill left no rebuild/worker-death telemetry: "
            f"{recovery!r}"
        )
    return failures


@pytest.mark.perf
def test_resilience_quick(tmp_path):
    """CI gate: bounded overhead when healthy, bounded bill when not."""
    results = run_resilience(quick=True)
    (tmp_path / "BENCH_resilience.json").write_text(
        json.dumps(results, indent=2)
    )
    failures = check_resilience(results)
    assert not failures, failures


def test_resilience_report(report):
    """Full-scale run; writes BENCH_resilience.json at the repo root."""
    results = run_resilience(quick=False)
    RESULT_RESILIENCE_PATH.write_text(json.dumps(results, indent=2) + "\n")
    fault_free, recovery = results["fault_free"], results["recovery"]
    report.table(
        ("path", "best_s", "drift"),
        [
            ("sharded, no deadline", fault_free["disarmed_s"], 0.0),
            ("sharded, supervised", fault_free["armed_s"],
             fault_free["max_abs_drift"]),
            ("supervised + 1 kill", recovery["faulted_s"],
             recovery["max_abs_drift"]),
        ],
    )
    report.line(
        f"overhead {fault_free['overhead_frac']:+.1%} "
        f"(budget {OVERHEAD_BUDGET:.0%}), recovery latency "
        f"{recovery['recovery_latency_s']:.3f}s over the fault-free run "
        f"({recovery['rebuilds']} rebuild(s), "
        f"{recovery['retries']} retrie(s))"
    )
    assert not check_resilience(results)
