"""Lazy scenario-DAG executor — CSE payoff and the chunked memory ceiling.

Two claims are gated here, both recorded in ``BENCH_lazy.json``:

* **CSE speedup** — a sweep whose three element expressions share one
  transcendental chain must run at least 1.3x faster with the
  hash-consed CSE schedule than with ``cse=False`` (which re-walks the
  expression tree at every reference — what an eager caller computing
  each element independently would do).

* **Memory ceiling** — a million-scenario Monte-Carlo sweep streamed
  through the chunked executor must peak at no more than 2x the peak
  of a *single-chunk* run (the chunk block plus the kernels' own
  per-chunk temporaries), and far below the eager ``(S, 3, n)`` value
  block it replaces. The ceiling is measured with ``tracemalloc``
  around the whole sweep, accumulating scalar reductions only, so the
  gate sees the executor's working set and not the caller's output
  arrays.

The ``perf``-marked quick test is the CI regression guard (scaled-down
scenario counts, relaxed CSE floor); the unmarked full test
regenerates the paper-scale ``BENCH_lazy.json`` at the repo root::

    pytest benchmarks/bench_lazy.py -m perf -s        # quick
    pytest benchmarks/bench_lazy.py -m "not perf" -s  # full
"""

import json
import pathlib
import time
import tracemalloc

import numpy as np
import pytest

from repro.apps.variation import VariationModel, sample_delays
from repro.circuit import fig5_tree
from repro.engine import compile_tree
from repro.runtime import ExecutionContext
from repro.sweep import (
    compile_sweep,
    const,
    exp,
    iter_sweep,
    linspace,
    log,
    lognormal_factors,
    run_sweep,
    scenario_space,
)

RESULT_LAZY_PATH = (
    pathlib.Path(__file__).resolve().parent.parent / "BENCH_lazy.json"
)

CHUNK = 4096
CHAIN_DEPTH = 6


def _cse_sweeps(compiled, scenarios):
    """One sweep description compiled with and without CSE.

    The chain operates on full ``(chunk, n)`` blocks — per-section
    profile times the scenario axis — so the shared work is real array
    math, not a cheap per-scenario column.
    """
    axis = linspace("scale", 0.8, 1.25, scenarios)
    profile = const(np.linspace(0.9, 1.1, compiled.size))
    chain = axis.values * profile
    for _ in range(CHAIN_DEPTH):
        chain = exp(log(chain) * 0.5 + 0.25)
    roots = dict(
        resistance=chain * const(compiled.resistance),
        inductance=chain * const(compiled.inductance),
        capacitance=chain * const(compiled.capacitance),
    )
    space = scenario_space(axis)
    return compile_sweep(space, **roots), compile_sweep(
        space, cse=False, **roots
    )


def _timed_sweep(sweep, compiled):
    with ExecutionContext() as context:
        start = time.perf_counter()
        run_sweep(
            sweep, compiled, nodes=("n7",), chunk_size=CHUNK, context=context
        )
        return time.perf_counter() - start


def _mc_sweep(compiled, scenarios, seed=7):
    axis = lognormal_factors(
        "mc",
        sigmas=np.array([0.15, 0.1, 0.2]),
        sections=compiled.size,
        samples=scenarios,
        seed=seed,
    )
    return compile_sweep(
        scenario_space(axis),
        resistance=axis.resistance * const(compiled.resistance),
        inductance=axis.inductance * const(compiled.inductance),
        capacitance=axis.capacitance * const(compiled.capacitance),
    )


def _traced_peak(compiled, scenarios):
    """tracemalloc peak of one full chunked sweep, scalars only."""
    sweep = _mc_sweep(compiled, scenarios)
    total = 0.0
    tracemalloc.start()
    with ExecutionContext() as context:
        for _, batch in iter_sweep(
            sweep, compiled, chunk_size=CHUNK, context=context
        ):
            total += float(batch.column("delay_50", "n7").sum())
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return peak, total / scenarios


def run_lazy(quick: bool = True) -> dict:
    compiled = compile_tree(fig5_tree())
    cse_scenarios = 100_000 if quick else 200_000
    mc_scenarios = 200_000 if quick else 1_000_000
    pin_samples = 20_000 if quick else 1_000_000

    # -- CSE payoff --------------------------------------------------------
    with_cse, without_cse = _cse_sweeps(compiled, cse_scenarios)
    _timed_sweep(with_cse, compiled)  # warm the kernels and the pool
    t_cse = min(_timed_sweep(with_cse, compiled) for _ in range(3))
    t_nocse = min(_timed_sweep(without_cse, compiled) for _ in range(3))

    # -- chunked memory ceiling -------------------------------------------
    peak_single, _ = _traced_peak(compiled, CHUNK)
    peak_full, mean_delay = _traced_peak(compiled, mc_scenarios)
    eager_block = mc_scenarios * 3 * compiled.size * 8

    # -- bitwise pin against the eager app path ---------------------------
    variation = VariationModel(0.15, 0.1, 0.2)
    lazy = sample_delays(
        fig5_tree(), "n7", variation, samples=pin_samples, seed=11
    )
    eager = sample_delays(
        fig5_tree(), "n7", variation, samples=pin_samples, seed=11,
        eager=True,
    )
    bitwise = (
        lazy.rlc.values.tobytes() == eager.rlc.values.tobytes()
        and lazy.rc.values.tobytes() == eager.rc.values.tobytes()
    )

    return {
        "quick": quick,
        "sections": compiled.size,
        "chunk_size": CHUNK,
        "cse": {
            "scenarios": cse_scenarios,
            "chain_depth": CHAIN_DEPTH,
            "unique_nodes": with_cse.unique_nodes,
            "total_refs": with_cse.total_refs,
            "cse_hits": with_cse.cse_hits,
            "cse_s": t_cse,
            "no_cse_s": t_nocse,
            "speedup": t_nocse / t_cse,
            "floor": 1.2 if quick else 1.3,
        },
        "memory": {
            "scenarios": mc_scenarios,
            "peak_single_chunk_bytes": peak_single,
            "peak_full_sweep_bytes": peak_full,
            "eager_block_bytes": eager_block,
            "ceiling_ratio": peak_full / peak_single,
            "eager_fraction": peak_full / eager_block,
            # The executor's peak is scale-invariant while the eager
            # block grows with S, so the fraction ceiling is looser at
            # the quick test's reduced scenario count.
            "eager_ceiling": 0.25 if quick else 0.1,
            "mean_delay_s": mean_delay,
        },
        "bitwise": {
            "samples": pin_samples,
            "lazy_matches_eager": bitwise,
        },
    }


def check_lazy(results: dict) -> list:
    failures = []
    cse = results["cse"]
    if cse["speedup"] < cse["floor"]:
        failures.append(
            f"CSE speedup {cse['speedup']:.2f}x below the "
            f"{cse['floor']}x floor"
        )
    memory = results["memory"]
    if memory["ceiling_ratio"] > 2.0:
        failures.append(
            "full-sweep peak is "
            f"{memory['ceiling_ratio']:.2f}x the single-chunk peak "
            "(ceiling 2.0x): chunking is not bounding memory"
        )
    if memory["eager_fraction"] > memory["eager_ceiling"]:
        failures.append(
            "full-sweep peak is "
            f"{memory['eager_fraction']:.1%} of the eager block "
            f"(ceiling {memory['eager_ceiling']:.0%})"
        )
    if not results["bitwise"]["lazy_matches_eager"]:
        failures.append("lazy sample_delays diverged from the eager path")
    return failures


@pytest.mark.perf
def test_lazy_quick(tmp_path):
    """The CI contract: relaxed CSE floor, full memory/bitwise gates."""
    results = run_lazy(quick=True)
    (tmp_path / "BENCH_lazy.json").write_text(json.dumps(results, indent=2))
    failures = check_lazy(results)
    assert not failures, failures


def test_lazy_full(report):
    """Full paper-scale run; writes BENCH_lazy.json at the root."""
    results = run_lazy(quick=False)
    RESULT_LAZY_PATH.write_text(json.dumps(results, indent=2) + "\n")
    cse, memory = results["cse"], results["memory"]
    report.table(
        ("gate", "value", "bound"),
        [
            ("cse speedup", f"{cse['speedup']:.2f}x", f">={cse['floor']}x"),
            (
                "peak vs single chunk",
                f"{memory['ceiling_ratio']:.2f}x",
                "<=2.0x",
            ),
            (
                "peak vs eager block",
                f"{memory['eager_fraction']:.2%}",
                f"<={memory['eager_ceiling']:.0%}",
            ),
            (
                "bitwise pin",
                str(results["bitwise"]["lazy_matches_eager"]),
                "True",
            ),
        ],
    )
    report.line(
        f"{memory['scenarios']:,} scenarios peaked at "
        f"{memory['peak_full_sweep_bytes'] / 1e6:.1f} MB; the eager "
        f"block alone is {memory['eager_block_bytes'] / 1e6:.1f} MB"
    )
    failures = check_lazy(results)
    assert not failures, failures
