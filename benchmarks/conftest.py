"""Shared infrastructure for the reproduction benchmarks.

Every ``bench_figNN_*.py`` file regenerates the data behind one paper
figure (or text claim) and times the library code that produces it. Each
bench prints its rows/series to stdout *and* appends them to
``benchmarks/reports/<bench>.txt``, so the numbers recorded in
EXPERIMENTS.md can be regenerated with::

    pytest benchmarks/ --benchmark-only -s
"""

import io
import pathlib

import numpy as np
import pytest

from repro.circuit import RLCTree, Section, balanced_tree
from repro.simulation import ExactSimulator, measure

REPORT_DIR = pathlib.Path(__file__).parent / "reports"


class Report:
    """Collects formatted rows for one experiment and persists them."""

    def __init__(self, name: str, title: str):
        self.name = name
        self.title = title
        self._buffer = io.StringIO()
        self.line("=" * 72)
        self.line(title)
        self.line("=" * 72)

    def line(self, text: str = "") -> None:
        self._buffer.write(text + "\n")

    def table(self, headers, rows, fmt="{:>14}"):
        self.line(" | ".join(fmt.format(h) for h in headers))
        self.line("-+-".join("-" * 14 for _ in headers))
        for row in rows:
            cells = []
            for value in row:
                if isinstance(value, float):
                    cells.append(fmt.format(f"{value:.4g}"))
                else:
                    cells.append(fmt.format(str(value)))
            self.line(" | ".join(cells))

    def finish(self) -> str:
        text = self._buffer.getvalue()
        REPORT_DIR.mkdir(exist_ok=True)
        (REPORT_DIR / f"{self.name}.txt").write_text(text)
        print("\n" + text)
        return text


@pytest.fixture
def report(request):
    """A Report named after the requesting bench test."""
    name = f"{request.module.__name__}.{request.function.__name__}"
    title = (request.module.__doc__ or name).strip().splitlines()[0]
    rep = Report(name, f"{title}  [{request.function.__name__}]")
    yield rep
    rep.finish()


def trunked_tree(
    branching: int,
    sink_count: int,
    section: Section,
) -> RLCTree:
    """A single trunk section feeding a balanced ``branching``-ary tree
    with exactly ``sink_count`` sinks — the Fig. 13 topology (the paper
    counts the trunk as a level: binary/16 sinks -> 5 levels -> a
    5-section equivalent ladder)."""
    levels = 0
    sinks = 1
    while sinks < sink_count:
        sinks *= branching
        levels += 1
    if sinks != sink_count:
        raise ValueError(f"{sink_count} sinks unreachable with branching {branching}")
    tree = RLCTree()
    tree.add_section("trunk", "in", section=section)
    below = balanced_tree(levels, branching, section, root="x")
    for name in below.nodes:
        parent = below.parent(name)
        tree.add_section(name, "trunk" if parent == "x" else parent,
                         section=section)
    return tree


def simulated_step_metrics(tree, node, points=12001, span=14.0):
    """(t, waveform, metrics) of the exact step response at ``node``."""
    sim = ExactSimulator(tree)
    t = sim.time_grid(points=points, span_factor=span)
    v = sim.step_response(node, t)
    return t, v, measure(t, v)


def relative_error(estimate: float, reference: float) -> float:
    return abs(estimate - reference) / abs(reference)


def percent(x: float) -> float:
    return 100.0 * x
