"""Section II baselines — accuracy/cost of every delay model in the library.

One table per tree family: the 50% delay at the critical sink under

* RC Elmore (Wyatt) — inductance ignored,
* the paper's closed form (eq. 35, approximate m2),
* Kahng-Muddu two-pole (exact m2, three-case formulae) [30],
* AWE with q = 2 and q = 4 (exact moments, Pade),
* exact simulation (reference).

This is the positioning argument of the paper in one table: the closed
form costs O(n) like Elmore, fixes Elmore's inductance blindness, and
approaches the two-pole ceiling that KM/AWE(2) reach with more machinery.

Timed kernels: each model's end-to-end delay query on the same tree.
"""

import pytest

from repro.analysis import TreeAnalyzer
from repro.circuit import fig5_tree, fig8_tree, scale_tree_to_zeta
from repro.reduction import awe_delay_50, kahng_muddu_model

from conftest import percent, simulated_step_metrics


def trees_under_test():
    return [
        ("fig5 zeta=0.5", scale_tree_to_zeta(fig5_tree(), "n7", 0.5), "n7"),
        ("fig5 zeta=1.5", scale_tree_to_zeta(fig5_tree(), "n7", 1.5), "n7"),
        ("fig8 irregular", fig8_tree(), "out"),
        ("fig5 asym=3", scale_tree_to_zeta(fig5_tree(asym=3.0), "n7", 0.7),
         "n7"),
    ]


def model_delays(tree, node):
    analyzer = TreeAnalyzer(tree)
    out = {
        "elmore": analyzer.elmore_delay(node),
        "paper": analyzer.delay_50(node),
        "km": kahng_muddu_model(tree, node).delay_50(),
        "awe2": awe_delay_50(tree, node, 2),
        "awe4": awe_delay_50(tree, node, 4),
    }
    return out


def test_baseline_accuracy_table(report, benchmark):
    header = ["tree", "exact", "elmore err%", "paper err%", "km err%",
              "awe2 err%", "awe4 err%"]
    rows = []
    paper_errors = []
    elmore_errors = []
    for label, tree, node in trees_under_test():
        _, _, metrics = simulated_step_metrics(tree, node)
        reference = metrics.delay_50
        delays = model_delays(tree, node)
        errs = {
            k: percent(abs(v - reference) / reference)
            for k, v in delays.items()
        }
        paper_errors.append(errs["paper"])
        elmore_errors.append(errs["elmore"])
        rows.append(
            (label, reference, errs["elmore"], errs["paper"], errs["km"],
             errs["awe2"], errs["awe4"])
        )
    report.table(header, rows)
    report.line()
    report.line(
        "expected shape: Elmore is the outlier at low zeta (it cannot see "
        "inductance); paper/KM/AWE2 cluster (all two-pole); AWE4 tightens "
        "further at the cost of moment conditioning and no closed form."
    )
    # Timed kernel: the whole model family evaluated on one tree.
    tree = trees_under_test()[0][1]
    benchmark(lambda: model_delays(tree, "n7"))

    # The paper's model must beat Elmore where inductance matters.
    assert paper_errors[0] < elmore_errors[0]
    assert max(paper_errors) < 30.0


@pytest.mark.parametrize(
    "model_name",
    ["elmore", "paper", "km", "awe2", "awe4"],
)
def test_baseline_cost(report, benchmark, model_name):
    """End-to-end cost per delay query (tree sums included)."""
    tree = scale_tree_to_zeta(fig5_tree(), "n7", 0.7)

    def query():
        if model_name == "elmore":
            return TreeAnalyzer(tree).elmore_delay("n7")
        if model_name == "paper":
            return TreeAnalyzer(tree).delay_50("n7")
        if model_name == "km":
            return kahng_muddu_model(tree, "n7").delay_50()
        if model_name == "awe2":
            return awe_delay_50(tree, "n7", 2)
        return awe_delay_50(tree, "n7", 4)

    delay = benchmark(query)
    report.line(f"{model_name}: delay = {delay:.4e} s")
    assert delay > 0
