"""Ablation — eq. 28's approximate second moment vs the exact one.

The paper's model approximates ``m2 ~ T_RC^2 - T_LC`` (eq. 28) so the
whole analysis stays O(n) and closed-form; matching the *exact* m2 gives
the Kahng-Muddu-style two-pole model at the cost of the extra moment
sweep and the loss of the tree-sum structure. This ablation quantifies
what eq. 28 costs: per-node m2 gap and resulting delay error for both
variants across the zeta sweep and tree families.

Timed kernel: the eq. 28 path (one combined sweep) vs the exact-m2 path
(moment engine to order 2), showing the cost difference is modest while
the structural benefit (pure tree sums) is what the paper is after.
"""

import numpy as np

from repro.analysis import (
    SecondOrderModel,
    TreeAnalyzer,
    delay_50,
    exact_moments,
    moment_summary,
)
from repro.circuit import fig5_tree, fig8_tree, scale_tree_to_zeta

from conftest import percent, simulated_step_metrics


def cases():
    for zeta in (0.35, 0.7, 1.5):
        yield (f"fig5 zeta={zeta}",
               scale_tree_to_zeta(fig5_tree(), "n7", zeta), "n7")
    yield ("fig8 irregular", fig8_tree(), "out")
    yield ("fig5 asym=3",
           scale_tree_to_zeta(fig5_tree(asym=3.0), "n7", 0.7), "n7")


def test_m2_approximation_ablation(report, benchmark):
    rows = []
    for label, tree, node in cases():
        _, _, metrics = simulated_step_metrics(tree, node)
        reference = metrics.delay_50
        approx_delay = TreeAnalyzer(tree).delay_50(node)
        summary = moment_summary(tree, [node])[node]
        exact_model = SecondOrderModel.from_moments(
            summary.m1, summary.m2_exact
        )
        exact_m2_delay = delay_50(exact_model)
        rows.append(
            (
                label,
                percent(summary.m2_relative_gap),
                percent(abs(approx_delay - reference) / reference),
                percent(abs(exact_m2_delay - reference) / reference),
            )
        )
    report.table(
        ["case", "m2 gap %", "eq28 delay err%", "exact-m2 delay err%"], rows
    )
    report.line()
    report.line(
        "eq. 28 trades a 10-40% second-moment gap for a pure tree-sum "
        "formulation; the induced delay error stays in the same class as "
        "the exact-m2 two-pole model (both are dominated by the 2-pole "
        "truncation, not the moment approximation)."
    )

    tree = scale_tree_to_zeta(fig5_tree(), "n7", 0.7)

    def approx_path():
        return TreeAnalyzer(tree).delay_50("n7")

    benchmark(approx_path)

    approx_errors = [row[2] for row in rows]
    exact_errors = [row[3] for row in rows]
    # The approximation must not systematically blow up: on average it
    # stays within a small factor of the exact-m2 variant.
    assert sum(approx_errors) < 3.0 * sum(exact_errors) + 10.0


def test_m2_exact_path_cost(report, benchmark):
    """Cost of the exact-m2 route (the extra moment sweep)."""
    tree = scale_tree_to_zeta(fig5_tree(), "n7", 0.7)

    def exact_path():
        m = exact_moments(tree, 2)["n7"]
        return delay_50(SecondOrderModel.from_moments(m[1], m[2]))

    value = benchmark(exact_path)
    assert value > 0
