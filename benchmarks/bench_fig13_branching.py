"""Fig. 13 — branching factor for balanced trees: 16 sinks, binary vs 16-ary.

Two balanced trees drive the same 16 sinks: a binary tree (trunk + four
branching levels = a 5-section equivalent ladder) and a 16-ary tree
(trunk + one level = a 2-section ladder). The paper's point: the more a
balanced tree collapses by symmetry, the fewer effective poles remain,
and the better the second-order model fits — the 16-ary tree should show
visibly smaller errors than the binary one at every sink.

Timed kernel: analyzing all 16 sinks of the binary tree.
"""

from repro.analysis import TreeAnalyzer
from repro.circuit import Section
from repro.simulation import rms_error

from conftest import percent, simulated_step_metrics, trunked_tree

#: Per-section values in the spirit of the paper's Fig. 13 (its exact
#: numbers were lost in the scan): clearly underdamped in both trees.
BINARY_SECTION = Section(10.0, 4e-9, 0.25e-12)
WIDE_SECTION = Section(10.0, 4e-9, 0.25e-12)


def test_fig13_branching_factor(report, benchmark):
    rows = []
    waveforms = {}
    for label, branching, section in (
        ("binary (b=2)", 2, BINARY_SECTION),
        ("wide (b=16)", 16, WIDE_SECTION),
    ):
        tree = trunked_tree(branching, 16, section)
        sink = tree.leaves()[0]
        analyzer = TreeAnalyzer(tree)
        t, v, metrics = simulated_step_metrics(tree, sink)
        model_delay = analyzer.delay_50(sink)
        model_wave = analyzer.step_waveform(sink, t)
        rows.append(
            (
                label,
                tree.size,
                analyzer.zeta(sink),
                percent(abs(model_delay - metrics.delay_50) / metrics.delay_50),
                rms_error(v, model_wave),
            )
        )
        waveforms[label] = rms_error(v, model_wave)
    report.table(
        ["tree", "sections", "zeta@sink", "delay err%", "waveform RMS"],
        rows,
    )
    report.line()
    report.line(
        "paper: 'the second-order approximation is less accurate in the "
        "case of a tree with a binary branching factor' — the b=16 row "
        "must show the smaller errors."
    )

    tree = trunked_tree(2, 16, BINARY_SECTION)

    def analyze_sinks():
        analyzer = TreeAnalyzer(tree)
        return [analyzer.timing(s) for s in tree.leaves()]

    timings = benchmark(analyze_sinks)
    assert len(timings) == 16
    assert waveforms["wide (b=16)"] < waveforms["binary (b=2)"]
