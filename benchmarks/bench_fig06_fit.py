"""Fig. 6 — time-scaled 50% delay and rise time vs zeta, with the eq. 33/34 fits.

The paper computes the numerically exact scaled metrics on a zeta grid
and overlays the fitted closed forms. This bench regenerates exactly that
data (the series a plot of Fig. 6 would draw), reports the fit errors,
and re-runs the fitting procedure from scratch to confirm it lands on
eq. 33's published coefficients.

Timed kernel: a full from-scratch refit of the delay curve (the paper's
one-time cost), plus the per-call cost of the fitted formula (the price
every delay query pays).
"""

import numpy as np

from repro.analysis import (
    fit_delay,
    scaled_delay,
    scaled_delay_exact,
    scaled_rise,
    scaled_rise_exact,
)

from conftest import percent

ZETA_GRID = [0.1, 0.2, 0.3, 0.5, 0.7, 0.85, 1.0, 1.25, 1.5, 2.0, 2.5, 3.0]


def test_fig06_scaled_metric_series(report, benchmark):
    rows = []
    worst_delay = worst_rise = 0.0
    for zeta in ZETA_GRID:
        exact_d = scaled_delay_exact(zeta)
        fit_d = scaled_delay(zeta)
        exact_r = scaled_rise_exact(zeta)
        fit_r = scaled_rise(zeta)
        err_d = percent(abs(fit_d - exact_d) / exact_d)
        err_r = percent(abs(fit_r - exact_r) / exact_r)
        worst_delay = max(worst_delay, err_d)
        worst_rise = max(worst_rise, err_r)
        rows.append((zeta, exact_d, fit_d, err_d, exact_r, fit_r, err_r))
    report.table(
        ["zeta", "tpd exact", "tpd eq33", "err %", "tr exact", "tr eq34*",
         "err %"],
        rows,
    )
    report.line()
    report.line(f"max delay-fit error over grid: {worst_delay:.2f}%")
    report.line(f"max rise-fit error over grid:  {worst_rise:.2f}%")

    refit = benchmark(fit_delay)
    a, b, c = refit.coefficients
    report.line()
    report.line(
        "refit of eq. 33 family from scratch: "
        f"a={a:.4g} b={b:.4g} c={c:.4g} "
        f"(published: 1.047, 0.85, 1.39); "
        f"max rel error {percent(refit.max_relative_error):.2f}%"
    )
    assert worst_delay < 4.0
    assert worst_rise < 4.0
    assert c == 1.39 or abs(c - 1.39) < 0.05


def test_fig06_formula_evaluation_speed(report, benchmark):
    """The fitted formula must be cheap enough for optimization loops."""
    zetas = np.linspace(0.05, 5.0, 10000)

    def evaluate():
        return scaled_delay(zetas), scaled_rise(zetas)

    delay, rise = benchmark(evaluate)
    report.line(
        f"evaluated {zetas.size} delay+rise pairs per call; "
        f"sample: tpd'(1.0)={scaled_delay(1.0):.4f}, "
        f"tr'(1.0)={scaled_rise(1.0):.4f}"
    )
    assert delay.shape == rise.shape == zetas.shape
