"""Extension — coupled-line crosstalk: noise and Miller timing windows.

Regenerates the signal-integrity tables of ``examples/crosstalk_study.py``
with assertions on the physics: capacitive and inductive noise carry
opposite polarity, pure couplings are monotone in their knob (weak
regime), and the victim delay obeys same < quiet < opposite. The coupled
solver itself is pinned to the single-line solver by exact even/odd mode
decomposition in the test suite; here we record the numbers.

Timed kernel: one full coupled modal solve + noise analysis (24 states).
"""

from repro.circuit import Section
from repro.simulation import CoupledLines, crosstalk_noise, switching_delay

BASE = Section(20.0, 2e-9, 0.2e-12)


def test_crosstalk_tables(report, benchmark):
    noise_rows = []
    for c_c, m in [
        (20e-15, 0.0),
        (100e-15, 0.0),
        (300e-15, 0.0),
        (0.0, 0.2e-9),
        (0.0, 0.8e-9),
        (100e-15, 0.5e-9),
    ]:
        lines = CoupledLines(6, BASE, c_c, m)
        noise = crosstalk_noise(lines)
        noise_rows.append(
            (c_c * 1e15, m * 1e9, noise.peak, noise.peak_time * 1e12)
        )
    report.table(
        ["Cc (fF)", "M (nH)", "peak noise (V)", "peak time (ps)"], noise_rows
    )
    report.line()

    lines = CoupledLines(6, BASE, 100e-15, 0.5e-9)
    quiet = switching_delay(lines, "quiet")
    same = switching_delay(lines, "same")
    opposite = switching_delay(lines, "opposite")
    report.table(
        ["neighbour", "victim delay (ps)", "vs quiet"],
        [
            ("quiet", quiet * 1e12, "--"),
            ("same direction", same * 1e12,
             f"{(same - quiet) / quiet:+.1%}"),
            ("opposite", opposite * 1e12,
             f"{(opposite - quiet) / quiet:+.1%}"),
        ],
    )
    report.line()
    report.line(
        "capacitive noise is positive, inductive negative (Lenz); the "
        "Miller window same < quiet < opposite bounds the timing spread "
        "coupling imposes."
    )

    benchmark(lambda: crosstalk_noise(CoupledLines(6, BASE, 100e-15, 0.5e-9)))

    capacitive = [row[2] for row in noise_rows[:3]]
    inductive = [row[2] for row in noise_rows[3:5]]
    assert capacitive[0] < capacitive[1] < capacitive[2]  # monotone, positive
    assert all(peak > 0 for peak in capacitive)
    assert all(peak < 0 for peak in inductive)
    assert abs(inductive[0]) < abs(inductive[1])
    assert same < quiet < opposite
