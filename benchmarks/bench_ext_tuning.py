"""Extension — gradient-steered skew tuning, scored by exact simulation.

Tunes mismatched clock trees (several variation seeds) with the analytic
gradient and reports, per seed, the model's claimed skew reduction next
to the exact simulated one. The assertion is the honest one: the *real*
skew must drop substantially on every seed, even though the optimizer
never ran a simulation.

Timed kernel: one full tuning descent (40 gradient iterations, each an
O(n) pass per sink).
"""

from repro.apps import (
    h_tree,
    perturbed_clock_tree,
    skew_report,
    tune_clock_tree,
)

from conftest import percent

SEEDS = (3, 5, 9)


def test_tuning_reduces_real_skew(report, benchmark):
    rows = []
    real_reductions = []
    for seed in SEEDS:
        tree = perturbed_clock_tree(h_tree(levels=3), 0.15, seed=seed)
        result = tune_clock_tree(tree)
        exact_before = skew_report(tree).exact_skew
        exact_after = skew_report(result.tuned_tree).exact_skew
        real = 1.0 - exact_after / exact_before
        real_reductions.append(real)
        rows.append(
            (
                seed,
                result.skew_before * 1e12,
                result.skew_after * 1e12,
                percent(result.improvement),
                exact_before * 1e12,
                exact_after * 1e12,
                percent(real),
            )
        )
    report.table(
        ["seed", "model before (ps)", "model after (ps)", "model cut %",
         "exact before (ps)", "exact after (ps)", "exact cut %"],
        rows,
    )
    report.line()
    report.line(
        "the optimizer sees only the closed form; the exact columns show "
        "how much of that optimization reality honors. The residual gap "
        "is the 2-pole model error, not an optimizer failure."
    )

    tree = perturbed_clock_tree(h_tree(levels=3), 0.15, seed=3)
    benchmark(lambda: tune_clock_tree(tree, iterations=10))

    assert all(r > 0.4 for r in real_reductions)
    assert sum(real_reductions) / len(real_reductions) > 0.55
