"""Fig. 11 / claim T1 — balanced Fig. 5 tree across zeta; Elmore shown for contrast.

Regenerates the Fig. 11 comparison at node 7 of the balanced Fig. 5 tree:
for each equivalent damping factor, the closed-form (eq. 31/35) delay and
waveform against the exact simulation, with the classic RC Elmore delay
alongside (the curve the paper plots to show what ignoring inductance
costs). Text claim T1: "the error in the propagation delay is less than
4% for this balanced tree example."

Timed kernel: full TreeAnalyzer timing of every node of the tree — the
O(n) sweep the paper's complexity argument is about.
"""

from repro.analysis import TreeAnalyzer
from repro.circuit import fig5_tree, scale_tree_to_zeta
from repro.simulation import rms_error

from conftest import percent, simulated_step_metrics

ZETAS = (0.35, 0.5, 0.7, 1.0, 1.5, 2.0)


def test_fig11_balanced_tree_accuracy(report, benchmark):
    rows = []
    waveform_rows = []
    for zeta in ZETAS:
        tree = scale_tree_to_zeta(fig5_tree(), "n7", zeta)
        analyzer = TreeAnalyzer(tree)
        t, v, metrics = simulated_step_metrics(tree, "n7")
        model_delay = analyzer.delay_50("n7")
        elmore = analyzer.elmore_delay("n7")
        model_wave = analyzer.step_waveform("n7", t)
        rows.append(
            (
                zeta,
                metrics.delay_50,
                model_delay,
                percent(abs(model_delay - metrics.delay_50) / metrics.delay_50),
                elmore,
                percent(abs(elmore - metrics.delay_50) / metrics.delay_50),
            )
        )
        waveform_rows.append((zeta, rms_error(v, model_wave)))
    report.table(
        ["zeta", "sim delay", "eq35 delay", "eq35 err%", "elmore",
         "elmore err%"],
        rows,
    )
    report.line()
    report.table(["zeta", "waveform RMS (V)"], waveform_rows)
    errors = [row[3] for row in rows]
    report.line()
    report.line(
        f"paper T1: '<4% for this balanced tree example'. "
        f"measured: max {max(errors):.2f}%, mean "
        f"{sum(errors) / len(errors):.2f}% over the zeta sweep."
    )

    tree = scale_tree_to_zeta(fig5_tree(), "n7", 0.7)

    def analyze_all_nodes():
        analyzer = TreeAnalyzer(tree)
        return [analyzer.timing(node) for node in tree.nodes]

    timings = benchmark(analyze_all_nodes)
    assert len(timings) == 7
    assert max(errors) < 7.0
    assert sum(errors) / len(errors) < 4.0
    # Elmore ignores inductance entirely: at low zeta it must be much
    # worse than the RLC model (that is Fig. 11's point).
    assert rows[0][5] > 3 * rows[0][3]
