"""Unit tests for the ``--compare`` regression gate of run_benchmarks.

These run on synthetic result dicts only — no benchmarking — so they
are safe to include in any ``pytest benchmarks/`` invocation.
"""

import json
import subprocess
import sys
from pathlib import Path

import run_benchmarks

REPO_ROOT = Path(__file__).resolve().parent.parent


def sample_results():
    return {
        "mode": "quick",
        "single_edit": {"sections": 100, "speedup": 10.0,
                        "speedup_target": 2.0},
        "optimize_width": {"sections": 200, "speedup": 6.0},
        "full_tree": [
            {"nodes": 100, "speedup": 3.0},
            {"nodes": 1000, "speedup": 5.0},
        ],
    }


class TestCollectSpeedups:
    def test_collects_nested_and_list_paths(self):
        got = run_benchmarks.collect_speedups(sample_results())
        assert got == {
            "single_edit.speedup": 10.0,
            "optimize_width.speedup": 6.0,
            "full_tree.[0].speedup": 3.0,
            "full_tree.[1].speedup": 5.0,
        }

    def test_targets_are_not_speedups(self):
        got = run_benchmarks.collect_speedups(sample_results())
        assert not any("target" in path for path in got)


class TestCompareResults:
    def test_identical_results_pass(self):
        assert run_benchmarks.compare_results(
            sample_results(), sample_results()
        ) == []

    def test_within_allowed_drop_passes(self):
        new = sample_results()
        new["single_edit"]["speedup"] = 10.0 * run_benchmarks.COMPARE_RETAIN
        assert run_benchmarks.compare_results(new, sample_results()) == []

    def test_regression_past_floor_fails_with_path(self):
        new = sample_results()
        new["full_tree"][1]["speedup"] = 1.0
        failures = run_benchmarks.compare_results(new, sample_results())
        assert len(failures) == 1
        assert "full_tree.[1].speedup" in failures[0]
        assert "1.00x" in failures[0]

    def test_paths_on_one_side_only_are_ignored(self):
        new = sample_results()
        del new["optimize_width"]
        previous = sample_results()
        previous["extra"] = {"speedup": 50.0}
        assert run_benchmarks.compare_results(new, previous) == []


class TestResultKind:
    def test_marker_keys(self):
        assert run_benchmarks.result_kind({"full_tree": []}) == "engine"
        assert run_benchmarks.result_kind({"many_trees": []}) == "sharded"
        assert run_benchmarks.result_kind(
            {"single_edit": {}}
        ) == "incremental"


class TestCompareExitCode:
    def test_mismatched_previous_file_exits_nonzero(self, tmp_path):
        """A previous JSON recording 1000x speedups must fail a quick
        run through the real CLI path (exit code, not exception)."""
        previous = {
            "mode": "quick",
            "single_edit": {"sections": 100, "speedup": 1000.0},
            "optimize_width": {"sections": 100, "speedup": 1000.0},
        }
        prev_path = tmp_path / "prev.json"
        prev_path.write_text(json.dumps(previous))
        proc = subprocess.run(
            [
                sys.executable,
                str(REPO_ROOT / "benchmarks" / "run_benchmarks.py"),
                "--quick",
                "--compare",
                str(prev_path),
                "--output", str(tmp_path / "out.json"),
                "--sharded-output", str(tmp_path / "sharded.json"),
                "--incremental-output", str(tmp_path / "inc.json"),
            ],
            capture_output=True,
            text=True,
            cwd=str(REPO_ROOT),
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode != 0
        assert "speedup regression" in proc.stdout + proc.stderr
