"""Fig. 16 — large tree: second-order oscillations around the 2-pole response.

A large, lightly damped tree rings at several frequencies: the simulated
waveform oscillates *around* the second-order closed form. The paper's
message is that the model still nails the macro features (50% delay,
rise time, primary overshoot) even though it cannot carry the
high-frequency harmonics. This bench quantifies exactly that: macro
metrics within tight bounds while the instantaneous waveform error is an
order of magnitude larger — and shows AWE at high order capturing the
fine structure the 2-pole model gives up.

Timed kernel: closed-form analysis of the full large tree vs one exact
eigensolve (the cost the closed form avoids).
"""

import numpy as np

from repro.analysis import TreeAnalyzer
from repro.circuit import balanced_tree, scale_tree_to_zeta
from repro.simulation import ExactSimulator, max_error, measure, rms_error

from conftest import percent


def build_large():
    tree = balanced_tree(6, 2, resistance=8.0, inductance=4e-9,
                         capacitance=0.2e-12)
    sink = tree.leaves()[0]
    return scale_tree_to_zeta(tree, sink, 0.5), sink


def test_fig16_macro_vs_fine_features(report, benchmark):
    tree, sink = build_large()  # 126 sections, 252 states
    analyzer = TreeAnalyzer(tree)
    simulator = ExactSimulator(tree)
    t = simulator.time_grid(points=16001, span_factor=14.0)
    exact = simulator.step_response(sink, t)
    metrics = measure(t, exact)
    model_wave = analyzer.step_waveform(sink, t)

    delay_err = percent(
        abs(analyzer.delay_50(sink) - metrics.delay_50) / metrics.delay_50
    )
    rise_err = percent(
        abs(analyzer.rise_time(sink) - metrics.rise_time) / metrics.rise_time
    )
    overshoot_sim = metrics.first_overshoot_fraction or 0.0
    overshoot_model = analyzer.overshoot(sink)
    wave_rms = rms_error(exact, model_wave)
    wave_max = max_error(exact, model_wave)

    report.table(
        ["feature", "simulated", "2-pole model", "error"],
        [
            ("50% delay (s)", metrics.delay_50, analyzer.delay_50(sink),
             f"{delay_err:.2f}%"),
            ("rise time (s)", metrics.rise_time, analyzer.rise_time(sink),
             f"{rise_err:.2f}%"),
            ("1st overshoot", overshoot_sim, overshoot_model,
             f"{percent(abs(overshoot_model - overshoot_sim)):.2f} pts"),
            ("waveform RMS", 0.0, wave_rms, "--"),
            ("waveform max", 0.0, wave_max, "--"),
        ],
    )
    report.line()
    report.line(
        "macro features hold while the instantaneous error is dominated "
        "by second-order oscillations the 2-pole model cannot represent "
        f"(max pointwise error {wave_max:.3f} V vs delay error "
        f"{delay_err:.2f}%)."
    )

    # The high-frequency content rides on top: band-limit the residual
    # and show most of its energy sits above the model's own frequency.
    residual = exact - model_wave
    spectrum = np.abs(np.fft.rfft(residual))
    freqs = np.fft.rfftfreq(t.size, t[1] - t[0])
    model_f = analyzer.omega_n(sink) / (2 * np.pi)
    high_band = spectrum[freqs > 1.5 * model_f]
    report.line(
        f"residual spectral peak at {freqs[np.argmax(spectrum)]:.3e} Hz vs "
        f"model natural frequency {model_f:.3e} Hz"
    )

    def closed_form_all_nodes():
        a = TreeAnalyzer(tree)
        return [a.timing(node) for node in tree.nodes]

    timings = benchmark(closed_form_all_nodes)
    assert len(timings) == tree.size
    assert delay_err < 10.0
    assert rise_err < 35.0
    assert wave_max > 3 * wave_rms  # oscillatory, not a uniform offset
    assert high_band.size > 0
