"""Extension — the distributed (telegraph-equation) reference.

Everything in the paper lumps wires into RLC sections. This bench closes
the remaining gap to physics: against the exact lossy transmission line
(ABCD + Talbot inversion) it measures (a) how fast the lumped ladder
converges, and (b) how well the paper's closed-form delay predicts the
*distributed* line's delay — i.e. the model's total error including the
lumping it is built on.

Timed kernel: one distributed step-response evaluation (250 time points
x 64-node Talbot contours) — the cost the closed form avoids.
"""

import numpy as np

from repro.analysis import TreeAnalyzer
from repro.simulation import ExactSimulator, TransmissionLine, measures, rms_error

from conftest import percent


def build_line():
    return TransmissionLine(
        resistance=6.6e3,
        inductance=0.36e-6,
        capacitance=0.16e-9,
        length=5e-3,
        source_resistance=30.0,
        load_capacitance=50e-15,
    )


def test_distributed_reference(report, benchmark):
    line = build_line()
    t = line.time_grid(points=400)
    reference = line.step_response(t)
    ref_delay = measures.delay_50(t, reference)

    rows = []
    for sections in (5, 10, 20, 40, 80):
        ladder = line.lumped_ladder(sections)
        simulator = ExactSimulator(ladder)
        waveform = simulator.step_response(line.sink_name(sections), t)
        lumped_delay = measures.delay_50(t, waveform)
        model_delay = TreeAnalyzer(ladder).delay_50(line.sink_name(sections))
        rows.append(
            (
                sections,
                rms_error(reference, waveform),
                percent(abs(lumped_delay - ref_delay) / ref_delay),
                percent(abs(model_delay - ref_delay) / ref_delay),
            )
        )
    report.table(
        ["sections", "waveform RMS vs dist.", "lumped delay err%",
         "eq35 delay err% (vs dist.)"],
        rows,
    )
    report.line()
    report.line(
        f"distributed 50% delay {ref_delay * 1e12:.2f} ps; time of flight "
        f"{line.time_of_flight * 1e12:.2f} ps; attenuation "
        f"{line.attenuation:.3f}."
    )
    report.line(
        "the lumping error vanishes with section count while the paper's "
        "closed-form error converges to its own 2-pole floor — at 20 "
        "sections the lumping is already no longer the bottleneck, which "
        "justifies the 20-section default everywhere in this repo."
    )

    waveform = benchmark(lambda: line.step_response(t[::4]))
    assert waveform.size == t[::4].size

    waveform_errors = [row[1] for row in rows]
    assert all(a > b for a, b in zip(waveform_errors, waveform_errors[1:]))
    lumped_errors = [row[2] for row in rows]
    assert lumped_errors[-1] < 1.0  # sub-percent delay at 80 sections
    model_errors = [row[3] for row in rows]
    assert model_errors[-1] < 12.0  # the 2-pole floor, not divergence
