"""Serial/sharded crossover calibration — the measured break-even.

Pytest front end for the crossover half of ``run_benchmarks.py``: the
``perf``-marked quick test is the CI smoke gate — a real (tiny)
calibration must produce a well-formed, persistable model, and routing
a below-break-even batch through a calibrated context must never be
meaningfully slower than calling the serial engine directly (the
``ROUTED_FLOOR`` contract, asserted on every box regardless of core
count). The unmarked report test regenerates ``BENCH_crossover.json``
at the repository root. Run with::

    pytest benchmarks/bench_crossover.py -m perf -s        # quick
    pytest benchmarks/bench_crossover.py -m "not perf" -s  # full
"""

import pytest

import run_benchmarks
from repro.engine import effective_cpu_count, shutdown_pool
from repro.runtime import load_calibration, run_calibration, save_calibration


@pytest.fixture(autouse=True)
def clean_pool():
    yield
    shutdown_pool()


@pytest.mark.perf
def test_calibrated_routing_never_slower_quick(tmp_path):
    """The --quick contract: calibration round-trips, routing holds the
    never-slower floor, numbers stay bitwise identical."""
    workers = max(2, min(4, effective_cpu_count()))
    calibration = run_calibration(
        workers=workers, sizes=(64, 256), repeats=2
    )
    assert calibration.workers == workers
    assert all(s > 0 and p > 0 for _, s, p in calibration.samples)
    path = save_calibration(calibration, tmp_path / "BENCH_crossover.json")
    assert load_calibration(path) == calibration

    routed = run_benchmarks.bench_routed_crossover(calibration)
    assert routed["max_abs_drift"] == 0.0, (
        "calibrated routing must be bitwise identical to direct serial"
    )
    assert routed["ratio_vs_serial"] >= run_benchmarks.ROUTED_FLOOR, (
        f"calibrated routing ran at {routed['ratio_vs_serial']:.2f}x of "
        f"direct serial speed (floor {run_benchmarks.ROUTED_FLOOR})"
    )


def test_crossover_report(report):
    """Full-scale calibration; writes BENCH_crossover.json at the root."""
    workers = max(2, min(4, effective_cpu_count()))
    calibration = run_calibration(workers=workers)
    save_calibration(calibration, run_benchmarks.RESULT_CROSSOVER_PATH)
    report.table(
        ("cells", "serial_s", "sharded_s", "sharded/serial"),
        [
            (cells, serial_s, sharded_s, sharded_s / serial_s)
            for cells, serial_s, sharded_s in calibration.samples
        ],
    )
    breakeven = (
        f"{calibration.breakeven_cells} cells"
        if calibration.breakeven_cells is not None
        else "never on this box"
    )
    report.line(
        f"{workers} workers ({effective_cpu_count()} effective cores); "
        f"break-even {breakeven}"
    )
    routed = run_benchmarks.bench_routed_crossover(calibration)
    report.line(
        f"routed {routed['scenarios']}x{routed['sections']} batch at "
        f"{routed['ratio_vs_serial']:.2f}x of direct serial "
        f"({routed['routed_sharded_calls']} sharded dispatches)"
    )
    assert routed["max_abs_drift"] == 0.0
    assert routed["ratio_vs_serial"] >= run_benchmarks.ROUTED_FLOOR
