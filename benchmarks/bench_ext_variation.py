"""Extension — statistical timing: Monte-Carlo distributions per model.

Closed-form delays make statistical timing affordable; this bench
quantifies whether they make it *right*. For a mismatched underdamped
tree under log-normal process variation it reports, per delay model, the
distribution statistics against a simulated subset, plus the
one-gradient linearized sigma against the Monte-Carlo sigma.

Timed kernels: 500 closed-form Monte-Carlo samples; one linearized-sigma
evaluation (the O(n) alternative).
"""

import numpy as np

from repro.apps import VariationModel, linearized_sigma, sample_delays
from repro.circuit import fig5_tree, scale_tree_to_zeta

from conftest import percent


def test_variation_distributions(report, benchmark):
    tree = scale_tree_to_zeta(fig5_tree(), "n7", 0.7)
    variation = VariationModel(
        sigma_resistance=0.1, sigma_inductance=0.05, sigma_capacitance=0.1
    )
    study = sample_delays(
        tree, "n7", variation, samples=500, exact_samples=40, seed=1
    )
    rows = [
        ("exact (40 samples)", study.exact.mean * 1e12,
         study.exact.sigma * 1e12, study.exact.p99 * 1e12, "--"),
        ("RLC closed form", study.rlc.mean * 1e12, study.rlc.sigma * 1e12,
         study.rlc.p99 * 1e12, f"{study.rank_correlation('rlc'):.3f}"),
        ("RC Elmore", study.rc.mean * 1e12, study.rc.sigma * 1e12,
         study.rc.p99 * 1e12, f"{study.rank_correlation('rc'):.3f}"),
    ]
    report.table(
        ["model", "mean (ps)", "sigma (ps)", "p99 (ps)", "rank corr"], rows
    )

    nominal, lin_sigma = linearized_sigma(tree, "n7", variation)
    report.line()
    report.line(
        f"linearized (one-gradient) sigma: {lin_sigma * 1e12:.2f} ps vs "
        f"Monte-Carlo {study.rlc.sigma * 1e12:.2f} ps "
        f"({percent(abs(lin_sigma - study.rlc.sigma) / study.rlc.sigma):.1f}% "
        "apart); nominal "
        f"{nominal * 1e12:.1f} ps"
    )
    report.line(
        "the RLC closed form lands on the exact distribution's mean and "
        "ranks the samples; RC Elmore's whole distribution is biased low "
        "(it cannot see the inductance every sample shares)."
    )

    benchmark(
        lambda: sample_delays(tree, "n7", variation, samples=100, seed=2)
    )

    assert abs(study.rlc.mean - study.exact.mean) / study.exact.mean < 0.10
    assert study.rc.mean < 0.85 * study.exact.mean
    assert study.rank_correlation("rlc") > study.rank_correlation("rc")
    assert abs(lin_sigma - study.rlc.sigma) / study.rlc.sigma < 0.25


def test_linearized_sigma_speed(report, benchmark):
    tree = scale_tree_to_zeta(fig5_tree(), "n7", 0.7)
    variation = VariationModel()
    nominal, sigma = benchmark(
        lambda: linearized_sigma(tree, "n7", variation)
    )
    report.line(
        f"one O(n) gradient gives nominal {nominal * 1e12:.1f} ps, "
        f"sigma {sigma * 1e12:.2f} ps"
    )
    assert sigma > 0
