#!/usr/bin/env python
"""Engine speedup benchmark: compiled vectorized engine vs scalar path.

Measures the two workloads the engine was built for and writes the
results to ``BENCH_engine.json`` at the repository root:

* **full-tree report** — every closed-form metric at every node of one
  large tree (``TreeAnalyzer.report()``), vectorized vs per-node scalar;
* **variation sweep** — S value-perturbed scenarios of one topology,
  one sink delay each: ``analyze_batch`` over a compiled topology vs
  the per-sample rebuild-and-analyze loop;
* **incremental edits** — single-segment edit + sink re-time through
  the delta-update :class:`~repro.engine.incremental.IncrementalAnalyzer`
  vs a full engine recompute per edit, plus ``optimize_width`` routed
  through the incremental probe path vs per-probe tree rebuilds
  (``BENCH_incremental.json``);
* **sharded dispatch** — serial vs the zero-copy sharded pool on both
  workload shapes, at the shard count the measured crossover
  calibration plans (``BENCH_sharded.json``); the calibration itself is
  persisted to ``BENCH_crossover.json`` and a routed below-break-even
  batch is checked against the never-slower-than-serial floor.

Modes::

    python benchmarks/run_benchmarks.py            # full (paper-scale)
    python benchmarks/run_benchmarks.py --quick    # CI smoke
    python benchmarks/run_benchmarks.py --compare PREV.json

Full mode runs a 10k-section tree and a 1000-scenario x 1000-section
sweep against the release targets (>= 10x and >= 50x). Quick mode runs
small sizes in a few seconds and exits non-zero if the engine is slower
than the scalar path at any size >= 2000 sections — the regression
guard ``bench_engine_scaling.py`` wires into ``pytest -m perf``.
``--compare`` loads a previously written result JSON (any of the three
kinds), matches it to the corresponding fresh result by its top-level
keys, and exits non-zero if any recorded speedup regressed by more
than 20%.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np

from repro.analysis import TreeAnalyzer
from repro.apps.wire_sizing import WireSizingProblem, optimize_width
from repro.circuit import RLCTree, Section, random_tree
from repro.engine import (
    IncrementalAnalyzer,
    analyze_batch,
    analyze_batch_sharded,
    analyze_many,
    clear_topology_cache,
    compile_tree,
    effective_cpu_count,
    metrics_from_sums,
    shutdown_pool,
    timing_table,
)
from repro.runtime import (
    ExecutionContext,
    RuntimeConfig,
    plan_shards,
    run_calibration,
    save_calibration,
)

RESULT_PATH = REPO_ROOT / "BENCH_engine.json"
RESULT_SHARDED_PATH = REPO_ROOT / "BENCH_sharded.json"
RESULT_INCREMENTAL_PATH = REPO_ROOT / "BENCH_incremental.json"
RESULT_CROSSOVER_PATH = REPO_ROOT / "BENCH_crossover.json"

TARGETS = {"full_tree_10k": 10.0, "variation_1000x1k": 50.0}

#: Release targets of the delta-update engine: a single-segment edit +
#: sink re-time must beat a full engine recompute by >= 10x at 10k
#: sections, and the incremental wire-sizing loop must beat the
#: per-probe rebuild path by >= 3x at 4k sections. Quick mode uses
#: smaller sizes with relaxed floors as the CI regression guard.
INCREMENTAL_TARGETS = {"single_edit": 10.0, "optimize_width": 3.0}
INCREMENTAL_QUICK_TARGETS = {"single_edit": 2.0, "optimize_width": 1.2}
#: Exactness gate: the incremental path must track the full recompute
#: to this relative drift on every benchmarked query.
INCREMENTAL_DRIFT_LIMIT = 1e-12

# The sharded dispatch must show >= 1.5x over the serial engine at the
# calibrated shard count — but only where parallel speedup is physically
# possible: the target is asserted on machines with at least
# MIN_CORES_FOR_TARGET *effective* cores (affinity-aware, not
# os.cpu_count). Result drift, by contrast, must be exactly zero
# everywhere: sharding is a transport change, not a numerical one. The
# routed floor also applies on every box: a crossover-calibrated
# context must never make a below-break-even batch meaningfully slower
# than calling the serial engine directly (0.8 absorbs timer noise on
# sub-millisecond calls).
SHARDED_TARGET = 1.5
MIN_CORES_FOR_TARGET = 2
ROUTED_FLOOR = 0.8


def comb_tree(chains: int, depth: int) -> RLCTree:
    """``chains`` parallel ``depth``-section lines off one trunk.

    ``chains * depth + 1`` sections with bounded depth, so both the
    per-node scalar path and the per-level vectorized sweeps are
    exercised at realistic aspect ratios.
    """
    tree = RLCTree()
    tree.add_section("trunk", "in", resistance=5.0, inductance=1e-9,
                     capacitance=0.1e-12)
    for c in range(chains):
        parent = "trunk"
        for d in range(depth):
            name = f"c{c}_{d}"
            tree.add_section(name, parent, resistance=15.0,
                             inductance=2e-9, capacitance=0.2e-12)
            parent = name
    return tree


def best_of(repeats: int, fn) -> float:
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return min(samples)


def bench_full_tree(chains: int, depth: int, repeats: int = 3) -> dict:
    tree = comb_tree(chains, depth)
    clear_topology_cache()

    def scalar():
        TreeAnalyzer(tree, use_engine=False).report()

    def engine():
        # The engine's native full-tree report: every metric at every
        # node, as array columns.
        timing_table(tree)

    def engine_report():
        # The API-compatible wrapper: same NodeTiming list as scalar().
        TreeAnalyzer(tree).report_all()

    engine()  # warm the topology cache once, like any real sweep loop
    scalar_s = best_of(repeats, scalar)
    engine_s = best_of(repeats, engine)
    report_s = best_of(repeats, engine_report)
    return {
        "sections": tree.size,
        "scalar_s": scalar_s,
        "engine_s": engine_s,
        "report_s": report_s,
        "speedup": scalar_s / engine_s,
        "report_speedup": scalar_s / report_s,
    }


def bench_variation(scenarios: int, chains: int, depth: int,
                    repeats: int = 3) -> dict:
    tree = comb_tree(chains, depth)
    sink = f"c0_{depth - 1}"
    clear_topology_cache()
    compiled = compile_tree(tree)
    rng = np.random.default_rng(0)
    factors = np.exp(0.1 * rng.standard_normal((scenarios, 3, compiled.size)))
    nominal = np.stack(
        [compiled.resistance, compiled.inductance, compiled.capacitance]
    )
    block = factors * nominal
    index = {name: i for i, name in enumerate(compiled.names)}

    def scalar():
        # The pre-engine Monte-Carlo shape: rebuild the tree per sample,
        # run the dict-based analysis, read one sink delay.
        out = np.empty(scenarios)
        for s in range(scenarios):
            row = block[s]

            def rebuild(name, _section, row=row):
                i = index[name]
                return Section(row[0, i], row[1, i], row[2, i])

            perturbed = tree.map_sections(rebuild)
            analyzer = TreeAnalyzer(perturbed, use_engine=False)
            out[s] = analyzer.delay_50(sink)
        return out

    def engine():
        # Mirrors sample_delays: one metric requested, so the kernel
        # skips the overshoot/settling work the sweep never reads.
        batch = analyze_batch(compiled, block, metrics=("delay_50",))
        return batch.column("delay_50", sink)

    drift = np.max(np.abs(engine() - scalar()) / np.abs(scalar()))
    scalar_s = best_of(max(1, repeats - 2), scalar)
    engine_s = best_of(repeats, engine)
    return {
        "scenarios": scenarios,
        "sections": compiled.size,
        "max_relative_drift": float(drift),
        "scalar_s": scalar_s,
        "engine_s": engine_s,
        "speedup": scalar_s / engine_s,
    }


def bench_many_trees(count: int, sections: int, workers: int,
                     repeats: int = 3) -> dict:
    """analyze_many over a heterogeneous tree set, serial vs sharded."""
    compiled = [
        compile_tree(random_tree(sections, np.random.default_rng(seed)))
        for seed in range(count)
    ]

    def serial():
        return analyze_many(compiled, workers=0)

    def sharded():
        return analyze_many(compiled, workers=workers)

    sharded()  # spin the pool up and seed the worker caches once
    drift = max(
        float(np.max(np.abs(a.delay_50 - b.delay_50)))
        for a, b in zip(serial(), sharded())
    )
    serial_s = best_of(repeats, serial)
    sharded_s = best_of(repeats, sharded)
    return {
        "trees": count,
        "sections": sections,
        "workers": workers,
        "max_abs_drift": drift,
        "serial_s": serial_s,
        "sharded_s": sharded_s,
        "speedup": serial_s / sharded_s,
    }


def bench_sharded_batch(scenarios: int, chains: int, depth: int,
                        workers: int, repeats: int = 3,
                        calibration=None) -> dict:
    """analyze_batch_sharded vs in-process analyze_batch, one topology.

    With a calibration, the shard count comes from the cost model
    (:func:`repro.runtime.plan_shards`): fewer, larger shards near the
    break-even point instead of one sliver per worker.
    """
    tree = comb_tree(chains, depth)
    compiled = compile_tree(tree)
    rng = np.random.default_rng(1)
    factors = np.exp(0.1 * rng.standard_normal((scenarios, 3, compiled.size)))
    nominal = np.stack(
        [compiled.resistance, compiled.inductance, compiled.capacitance]
    )
    block = factors * nominal
    shards = plan_shards(scenarios * compiled.size, workers, calibration)

    def serial():
        return analyze_batch(compiled, block)

    def sharded():
        return analyze_batch_sharded(
            compiled, block, shards=shards, workers=workers
        )

    sharded()  # warm the pool
    drift = float(np.max(np.abs(serial().delay_50 - sharded().delay_50)))
    serial_s = best_of(repeats, serial)
    sharded_s = best_of(repeats, sharded)
    return {
        "scenarios": scenarios,
        "sections": compiled.size,
        "shards": shards,
        "workers": workers,
        "max_abs_drift": drift,
        "serial_s": serial_s,
        "sharded_s": sharded_s,
        "speedup": serial_s / sharded_s,
    }


def bench_routed_crossover(calibration, repeats: int = 5) -> dict:
    """Planner-routed small batch vs direct serial: the never-slower gate.

    A batch well below the measured break-even must be kept on the
    in-process engine by a calibrated :class:`ExecutionContext`, so its
    cost tracks a direct ``analyze_batch`` call and its numbers are
    bitwise identical. (If the calibration says sharding wins even at
    this size, routing there must still hold the floor — that is what
    the model promised.)
    """
    tree = comb_tree(4, 25)  # 101 sections
    compiled = compile_tree(tree)
    rng = np.random.default_rng(3)
    # Big enough that the context's fixed per-call cost (planning,
    # stats, backend scoping — order 0.1ms) is a few percent of the
    # runtime, small enough to sit below any plausible break-even.
    scenarios = 200
    block = rng.uniform(0.5, 2.0, size=(scenarios, 3, compiled.size))
    cells = scenarios * compiled.size

    def serial():
        return analyze_batch(compiled, block)

    serial_result = serial()
    serial_s = best_of(repeats, serial)
    config = RuntimeConfig(
        workers=calibration.workers, calibration=calibration
    )
    with ExecutionContext(config) as context:
        routed_result = context.batch(compiled, block)  # warm + correctness
        routed_s = best_of(repeats, lambda: context.batch(compiled, block))
        sharded_calls = context.stats()["dispatch"].get("sharded", 0)
    drift = float(
        np.max(
            np.abs(
                routed_result.metrics.delay_50
                - serial_result.metrics.delay_50
            )
        )
    )
    return {
        "scenarios": scenarios,
        "sections": compiled.size,
        "cells": cells,
        "below_breakeven": not calibration.sharded_wins(cells),
        "routed_sharded_calls": int(sharded_calls),
        "max_abs_drift": drift,
        "serial_s": serial_s,
        "routed_s": routed_s,
        "ratio_vs_serial": serial_s / routed_s,
    }


def bench_incremental_edits(chains: int, depth: int, edits: int = 200,
                            repeats: int = 3) -> dict:
    """Single-segment edit + sink re-time: delta update vs full sweep.

    The edit-heavy optimization-loop shape: perturb one section's
    capacitance, then re-read the sink delay. The full path re-runs the
    engine's O(n) sweeps per edit; the incremental path propagates the
    delta along the root path and answers the sink query lazily.
    """
    tree = comb_tree(chains, depth)
    clear_topology_cache()
    compiled = compile_tree(tree)
    sink = f"c0_{depth - 1}"
    sink_slot = compiled.topology.node_index(sink)
    names = compiled.names
    rng = np.random.default_rng(0)
    slots = rng.integers(0, compiled.size, edits)
    factors = rng.uniform(0.8, 1.25, edits)
    # Pre-resolve each edit to an absolute value so both paths apply the
    # identical sequence without peeking at each other's state.
    running = compiled.capacitance.copy()
    values = np.empty(edits)
    for k, (slot, factor) in enumerate(zip(slots, factors)):
        running[slot] *= factor
        values[k] = running[slot]

    def run_full() -> np.ndarray:
        current = compiled.capacitance.copy()
        out = np.empty(edits)
        for k, slot in enumerate(slots):
            current[slot] = values[k]
            perturbed = compiled.with_values(
                resistance=compiled.resistance,
                inductance=compiled.inductance,
                capacitance=current,
            )
            t_rc, t_lc = perturbed.second_order_sums()
            metrics = metrics_from_sums(
                np.float64(t_rc[sink_slot]),
                np.float64(t_lc[sink_slot]),
                select=("delay_50",),
            )
            out[k] = float(metrics.delay_50)
        return out

    def run_incremental() -> np.ndarray:
        analyzer = IncrementalAnalyzer(compiled)
        out = np.empty(edits)
        for k, slot in enumerate(slots):
            analyzer.set_capacitance(names[slot], float(values[k]))
            out[k] = analyzer.value("delay_50", sink)
        return out

    full_delays = run_full()
    incremental_delays = run_incremental()
    drift = float(
        np.max(np.abs(incremental_delays - full_delays) / np.abs(full_delays))
    )
    full_s = best_of(max(1, repeats - 2), run_full)
    incremental_s = best_of(repeats, run_incremental)
    return {
        "sections": compiled.size,
        "edits": edits,
        "max_relative_drift": drift,
        "full_per_edit_s": full_s / edits,
        "incremental_per_edit_s": incremental_s / edits,
        "speedup": full_s / incremental_s,
    }


def bench_incremental_sizing(num_sections: int, repeats: int = 3) -> dict:
    """optimize_width through the incremental probe path vs rebuilds.

    Both paths run the same bounded Brent search; the incremental one
    answers each width probe with a bulk value load + sink point query
    on the problem's compiled template. The template compile is warmed
    first, like any real sizing loop that reuses one problem.
    """
    problem = WireSizingProblem(num_sections=num_sections)

    def run_incremental():
        return optimize_width(problem)

    def run_full():
        return optimize_width(problem, use_incremental=False)

    run_incremental()  # warm the compiled template + topology cache
    result_full = run_full()
    result_incremental = run_incremental()
    drift = abs(result_incremental.delay - result_full.delay) / abs(
        result_full.delay
    )
    full_s = best_of(max(1, repeats - 2), run_full)
    incremental_s = best_of(repeats, run_incremental)
    return {
        "sections": num_sections,
        "evaluations": result_incremental.evaluations,
        "width_match": result_incremental.width == result_full.width,
        "max_relative_drift": float(drift),
        "full_s": full_s,
        "incremental_s": incremental_s,
        "speedup": full_s / incremental_s,
    }


def run_incremental(quick: bool) -> dict:
    """The delta-update numbers behind BENCH_incremental.json."""
    if quick:
        single_edit = bench_incremental_edits(20, 100)    # 2001 sections
        sizing = bench_incremental_sizing(500)
    else:
        single_edit = bench_incremental_edits(100, 100)   # 10001 sections
        sizing = bench_incremental_sizing(4000)
    targets = INCREMENTAL_QUICK_TARGETS if quick else INCREMENTAL_TARGETS
    return {
        "mode": "quick" if quick else "full",
        "single_edit": single_edit,
        "optimize_width": sizing,
        "targets": targets,
        "drift_limit": INCREMENTAL_DRIFT_LIMIT,
        "satisfied": {
            "single_edit": single_edit["speedup"] >= targets["single_edit"],
            "optimize_width": sizing["speedup"] >= targets["optimize_width"],
        },
    }


def check_incremental(results: dict) -> list:
    """Failure messages for an incremental run (empty when acceptable).

    Drift is a correctness gate (the delta-update engine must track the
    full recompute to 1e-12 relative); the speedup floors come from the
    run's own mode-appropriate targets.
    """
    failures = []
    for label in ("single_edit", "optimize_width"):
        row = results[label]
        if row["max_relative_drift"] > INCREMENTAL_DRIFT_LIMIT:
            failures.append(
                f"incremental {label} drifted from the full recompute by "
                f"{row['max_relative_drift']:.3e} "
                f"(limit {INCREMENTAL_DRIFT_LIMIT:.0e})"
            )
        target = results["targets"][label]
        if row["speedup"] < target:
            failures.append(
                f"incremental {label} speedup {row['speedup']:.2f}x below "
                f"the {target:.1f}x target at {row['sections']} sections"
            )
    if not results["optimize_width"]["width_match"]:
        failures.append(
            "incremental optimize_width chose a different width than the "
            "rebuild path"
        )
    return failures


def run_sharded(
    quick: bool, crossover_path: pathlib.Path = RESULT_CROSSOVER_PATH
) -> dict:
    """The sharded-vs-serial scaling numbers behind BENCH_sharded.json.

    Also runs the crossover microbenchmark, persists the calibration to
    ``crossover_path``, and times a below-break-even batch through a
    calibrated context (the never-slower-than-serial check).
    """
    cores = effective_cpu_count()
    workers = max(2, min(4, cores))
    clear_topology_cache()
    try:
        calibration = run_calibration(
            workers=workers,
            sizes=(64, 256, 1024) if quick else (64, 256, 1024, 4096),
            repeats=2 if quick else 3,
        )
        save_calibration(calibration, crossover_path)
        if quick:
            many = bench_many_trees(12, 120, workers)
            batch = bench_sharded_batch(200, 4, 50, workers,
                                        calibration=calibration)
        else:
            many = bench_many_trees(48, 400, workers)
            batch = bench_sharded_batch(2000, 10, 100, workers,
                                        calibration=calibration)
        routed = bench_routed_crossover(calibration)
    finally:
        shutdown_pool()
    return {
        "mode": "quick" if quick else "full",
        "cores": cores,
        "workers": workers,
        "target_speedup": SHARDED_TARGET,
        "min_cores_for_target": MIN_CORES_FOR_TARGET,
        "target_applies": cores >= MIN_CORES_FOR_TARGET,
        "routed_floor": ROUTED_FLOOR,
        "calibration": {
            "workers": calibration.workers,
            "breakeven_cells": calibration.breakeven_cells,
            "serial_per_cell_s": calibration.serial_per_cell,
            "sharded_per_cell_s": calibration.sharded_per_cell,
            "file": crossover_path.name,
        },
        "many_trees": many,
        "batch": batch,
        "routed": routed,
    }


def check_sharded(results: dict) -> list:
    """Failure messages for a sharded run (empty when acceptable).

    Drift is a correctness gate and applies everywhere, as does the
    routed never-slower floor; the speedup target applies only on
    machines with enough effective cores for parallel dispatch to have
    any headroom.
    """
    failures = []
    for label in ("many_trees", "batch"):
        row = results[label]
        if row["max_abs_drift"] != 0.0:
            failures.append(
                f"sharded {label} drifted from serial by "
                f"{row['max_abs_drift']:.3e}; results must be bitwise equal"
            )
        if results["target_applies"] and row["speedup"] < SHARDED_TARGET:
            failures.append(
                f"sharded {label} speedup {row['speedup']:.2f}x below the "
                f"{SHARDED_TARGET:.1f}x target on {results['cores']} cores"
            )
    routed = results["routed"]
    if routed["max_abs_drift"] != 0.0:
        failures.append(
            f"calibrated routing drifted from direct serial by "
            f"{routed['max_abs_drift']:.3e}; results must be bitwise equal"
        )
    if routed["ratio_vs_serial"] < ROUTED_FLOOR:
        failures.append(
            f"calibrated routing ran a {routed['cells']}-cell batch at "
            f"{routed['ratio_vs_serial']:.2f}x of direct serial speed "
            f"(never-slower floor {ROUTED_FLOOR:.2f})"
        )
    return failures


def run(quick: bool) -> dict:
    if quick:
        full_tree = [
            bench_full_tree(20, 100),   # 2001 sections
            bench_full_tree(40, 100),   # 4001 sections
        ]
        variation = bench_variation(50, 5, 100)  # 50 x 501
    else:
        full_tree = [
            bench_full_tree(10, 100),   # 1001 sections
            bench_full_tree(40, 100),   # 4001 sections
            bench_full_tree(100, 100),  # 10001 sections
        ]
        variation = bench_variation(1000, 10, 100)  # 1000 x 1001

    results = {
        "mode": "quick" if quick else "full",
        "full_tree": full_tree,
        "variation": variation,
        "targets": TARGETS,
    }
    if not quick:
        results["satisfied"] = {
            "full_tree_10k": full_tree[-1]["speedup"] >= TARGETS["full_tree_10k"],
            "variation_1000x1k": variation["speedup"]
            >= TARGETS["variation_1000x1k"],
        }
    return results


def check(results: dict) -> list:
    """Failure messages (empty when the run is acceptable)."""
    failures = []
    for row in results["full_tree"]:
        if row["sections"] < 2000:
            continue
        if row["speedup"] < 1.0:
            failures.append(
                f"engine table slower than scalar at {row['sections']} "
                f"sections (speedup {row['speedup']:.2f}x)"
            )
        if row["report_speedup"] < 1.0:
            failures.append(
                f"engine report_all slower than scalar at {row['sections']} "
                f"sections (speedup {row['report_speedup']:.2f}x)"
            )
    if results["mode"] == "full":
        for name, ok in results["satisfied"].items():
            if not ok:
                failures.append(f"target {name} not met")
    return failures


#: Fraction of a previously recorded speedup a fresh run must retain;
#: anything below is a --compare regression failure.
COMPARE_RETAIN = 0.8


def collect_speedups(obj, prefix: str = "") -> dict:
    """Every numeric ``*speedup*`` leaf of a result tree, by dotted path.

    ``target``-flavored keys are configuration, not measurements, and
    are skipped.
    """
    found = {}
    if isinstance(obj, dict):
        items = obj.items()
    elif isinstance(obj, list):
        items = ((f"[{i}]", value) for i, value in enumerate(obj))
    else:
        return found
    for key, value in items:
        path = f"{prefix}.{key}" if prefix else str(key)
        if (
            isinstance(value, (int, float))
            and "speedup" in str(key)
            and "target" not in str(key)
        ):
            found[path] = float(value)
        else:
            found.update(collect_speedups(value, path))
    return found


def result_kind(results: dict) -> str:
    """Which benchmark family a result JSON came from, by its keys."""
    for kind, marker in (
        ("engine", "full_tree"),
        ("sharded", "many_trees"),
        ("incremental", "single_edit"),
    ):
        if marker in results:
            return kind
    return "unknown"


def compare_results(new: dict, previous: dict) -> list:
    """Regression messages: fresh speedups vs a previous result JSON.

    Walks every recorded ``speedup`` value in ``previous`` and fails
    any whose fresh counterpart dropped below ``COMPARE_RETAIN`` of the
    old number. Paths present on only one side are ignored (sizes and
    modes may legitimately differ between runs).
    """
    failures = []
    fresh = collect_speedups(new)
    for path, old in collect_speedups(previous).items():
        current = fresh.get(path)
        if current is None or old <= 0.0:
            continue
        if current < COMPARE_RETAIN * old:
            failures.append(
                f"speedup regression at {path}: {current:.2f}x vs "
                f"previous {old:.2f}x (allowed floor "
                f"{COMPARE_RETAIN * old:.2f}x)"
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small sizes, seconds not minutes; regression guard only",
    )
    parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=RESULT_PATH,
        help=f"result JSON path (default: {RESULT_PATH})",
    )
    parser.add_argument(
        "--sharded-output",
        type=pathlib.Path,
        default=RESULT_SHARDED_PATH,
        help=f"sharded result JSON path (default: {RESULT_SHARDED_PATH})",
    )
    parser.add_argument(
        "--incremental-output",
        type=pathlib.Path,
        default=RESULT_INCREMENTAL_PATH,
        help="incremental result JSON path "
        f"(default: {RESULT_INCREMENTAL_PATH})",
    )
    parser.add_argument(
        "--crossover-output",
        type=pathlib.Path,
        default=RESULT_CROSSOVER_PATH,
        help="crossover calibration JSON path "
        f"(default: {RESULT_CROSSOVER_PATH})",
    )
    parser.add_argument(
        "--compare",
        type=pathlib.Path,
        default=None,
        metavar="PREV.json",
        help="previous result JSON; exit non-zero if any speedup it "
        f"records regressed by more than {1.0 - COMPARE_RETAIN:.0%}",
    )
    args = parser.parse_args(argv)

    results = run(args.quick)
    args.output.write_text(json.dumps(results, indent=2) + "\n")
    incremental = run_incremental(args.quick)
    args.incremental_output.write_text(
        json.dumps(incremental, indent=2) + "\n"
    )
    sharded = run_sharded(args.quick, crossover_path=args.crossover_output)
    args.sharded_output.write_text(json.dumps(sharded, indent=2) + "\n")

    print(f"mode: {results['mode']}")
    for row in results["full_tree"]:
        print(
            f"full-tree report  n={row['sections']:>6}: "
            f"scalar {row['scalar_s']:.3f}s  engine {row['engine_s']:.4f}s  "
            f"-> {row['speedup']:.1f}x "
            f"(NodeTiming wrapper {row['report_speedup']:.1f}x)"
        )
    v = results["variation"]
    print(
        f"variation sweep  {v['scenarios']}x{v['sections']}: "
        f"scalar {v['scalar_s']:.3f}s  engine {v['engine_s']:.4f}s  "
        f"-> {v['speedup']:.1f}x"
    )
    e = incremental["single_edit"]
    print(
        f"single edit      n={e['sections']:>6}: "
        f"full {e['full_per_edit_s'] * 1e6:.0f}us/edit  "
        f"incremental {e['incremental_per_edit_s'] * 1e6:.0f}us/edit  "
        f"-> {e['speedup']:.1f}x (drift {e['max_relative_drift']:.1e})"
    )
    w = incremental["optimize_width"]
    print(
        f"wire sizing      n={w['sections']:>6}: "
        f"full {w['full_s']:.3f}s  incremental {w['incremental_s']:.4f}s  "
        f"-> {w['speedup']:.1f}x (drift {w['max_relative_drift']:.1e})"
    )
    m = sharded["many_trees"]
    print(
        f"sharded trees    {m['trees']}x{m['sections']}: "
        f"serial {m['serial_s']:.3f}s  sharded {m['sharded_s']:.3f}s  "
        f"-> {m['speedup']:.2f}x (drift {m['max_abs_drift']:.1e}, "
        f"{sharded['workers']} workers)"
    )
    b = sharded["batch"]
    print(
        f"sharded batch    {b['scenarios']}x{b['sections']}: "
        f"serial {b['serial_s']:.3f}s  sharded {b['sharded_s']:.3f}s  "
        f"-> {b['speedup']:.2f}x (drift {b['max_abs_drift']:.1e}, "
        f"{b['shards']} shards)"
    )
    c = sharded["calibration"]
    breakeven = (
        f"{c['breakeven_cells']} cells"
        if c["breakeven_cells"] is not None
        else "never (pool loses at every size here)"
    )
    print(
        f"crossover        {c['workers']} workers: "
        f"break-even {breakeven}"
    )
    r = sharded["routed"]
    print(
        f"routed batch     {r['scenarios']}x{r['sections']}: "
        f"serial {r['serial_s'] * 1e3:.2f}ms  "
        f"routed {r['routed_s'] * 1e3:.2f}ms  "
        f"-> {r['ratio_vs_serial']:.2f}x of serial "
        f"({r['routed_sharded_calls']} sharded dispatches)"
    )
    if not sharded["target_applies"]:
        print(
            f"note: {sharded['cores']} effective cores < "
            f"{MIN_CORES_FOR_TARGET}: sharded speedup target not asserted"
        )
    print(
        f"results written to {args.output}, {args.incremental_output}, "
        f"{args.sharded_output} and {args.crossover_output}"
    )

    failures = (
        check(results)
        + check_incremental(incremental)
        + check_sharded(sharded)
    )
    if args.compare is not None:
        previous = json.loads(args.compare.read_text())
        current = {
            "engine": results,
            "incremental": incremental,
            "sharded": sharded,
        }.get(result_kind(previous))
        if current is None:
            failures.append(
                f"--compare {args.compare}: unrecognized result layout"
            )
        else:
            failures.extend(compare_results(current, previous))
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
