#!/usr/bin/env python
"""Engine speedup benchmark: compiled vectorized engine vs scalar path.

Measures the two workloads the engine was built for and writes the
results to ``BENCH_engine.json`` at the repository root:

* **full-tree report** — every closed-form metric at every node of one
  large tree (``TreeAnalyzer.report()``), vectorized vs per-node scalar;
* **variation sweep** — S value-perturbed scenarios of one topology,
  one sink delay each: ``analyze_batch`` over a compiled topology vs
  the per-sample rebuild-and-analyze loop.

Modes::

    python benchmarks/run_benchmarks.py            # full (paper-scale)
    python benchmarks/run_benchmarks.py --quick    # CI smoke

Full mode runs a 10k-section tree and a 1000-scenario x 1000-section
sweep against the release targets (>= 10x and >= 50x). Quick mode runs
small sizes in a few seconds and exits non-zero if the engine is slower
than the scalar path at any size >= 2000 sections — the regression
guard ``bench_engine_scaling.py`` wires into ``pytest -m perf``.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np

from repro.analysis import TreeAnalyzer
from repro.circuit import RLCTree, Section, random_tree
from repro.engine import (
    analyze_batch,
    analyze_batch_sharded,
    analyze_many,
    clear_topology_cache,
    compile_tree,
    shutdown_pool,
    timing_table,
)

RESULT_PATH = REPO_ROOT / "BENCH_engine.json"
RESULT_SHARDED_PATH = REPO_ROOT / "BENCH_sharded.json"

TARGETS = {"full_tree_10k": 10.0, "variation_1000x1k": 50.0}

# The sharded dispatch must show >= 2x over the serial engine — but only
# where parallel speedup is physically possible: the target is asserted
# on machines with at least MIN_CORES_FOR_TARGET cores. Result drift,
# by contrast, must be exactly zero everywhere: sharding is a transport
# change, not a numerical one.
SHARDED_TARGET = 2.0
MIN_CORES_FOR_TARGET = 4


def comb_tree(chains: int, depth: int) -> RLCTree:
    """``chains`` parallel ``depth``-section lines off one trunk.

    ``chains * depth + 1`` sections with bounded depth, so both the
    per-node scalar path and the per-level vectorized sweeps are
    exercised at realistic aspect ratios.
    """
    tree = RLCTree()
    tree.add_section("trunk", "in", resistance=5.0, inductance=1e-9,
                     capacitance=0.1e-12)
    for c in range(chains):
        parent = "trunk"
        for d in range(depth):
            name = f"c{c}_{d}"
            tree.add_section(name, parent, resistance=15.0,
                             inductance=2e-9, capacitance=0.2e-12)
            parent = name
    return tree


def best_of(repeats: int, fn) -> float:
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return min(samples)


def bench_full_tree(chains: int, depth: int, repeats: int = 3) -> dict:
    tree = comb_tree(chains, depth)
    clear_topology_cache()

    def scalar():
        TreeAnalyzer(tree, use_engine=False).report()

    def engine():
        # The engine's native full-tree report: every metric at every
        # node, as array columns.
        timing_table(tree)

    def engine_report():
        # The API-compatible wrapper: same NodeTiming list as scalar().
        TreeAnalyzer(tree).report_all()

    engine()  # warm the topology cache once, like any real sweep loop
    scalar_s = best_of(repeats, scalar)
    engine_s = best_of(repeats, engine)
    report_s = best_of(repeats, engine_report)
    return {
        "sections": tree.size,
        "scalar_s": scalar_s,
        "engine_s": engine_s,
        "report_s": report_s,
        "speedup": scalar_s / engine_s,
        "report_speedup": scalar_s / report_s,
    }


def bench_variation(scenarios: int, chains: int, depth: int,
                    repeats: int = 3) -> dict:
    tree = comb_tree(chains, depth)
    sink = f"c0_{depth - 1}"
    clear_topology_cache()
    compiled = compile_tree(tree)
    rng = np.random.default_rng(0)
    factors = np.exp(0.1 * rng.standard_normal((scenarios, 3, compiled.size)))
    nominal = np.stack(
        [compiled.resistance, compiled.inductance, compiled.capacitance]
    )
    block = factors * nominal
    index = {name: i for i, name in enumerate(compiled.names)}

    def scalar():
        # The pre-engine Monte-Carlo shape: rebuild the tree per sample,
        # run the dict-based analysis, read one sink delay.
        out = np.empty(scenarios)
        for s in range(scenarios):
            row = block[s]

            def rebuild(name, _section, row=row):
                i = index[name]
                return Section(row[0, i], row[1, i], row[2, i])

            perturbed = tree.map_sections(rebuild)
            analyzer = TreeAnalyzer(perturbed, use_engine=False)
            out[s] = analyzer.delay_50(sink)
        return out

    def engine():
        # Mirrors sample_delays: one metric requested, so the kernel
        # skips the overshoot/settling work the sweep never reads.
        batch = analyze_batch(compiled, block, metrics=("delay_50",))
        return batch.column("delay_50", sink)

    drift = np.max(np.abs(engine() - scalar()) / np.abs(scalar()))
    scalar_s = best_of(max(1, repeats - 2), scalar)
    engine_s = best_of(repeats, engine)
    return {
        "scenarios": scenarios,
        "sections": compiled.size,
        "max_relative_drift": float(drift),
        "scalar_s": scalar_s,
        "engine_s": engine_s,
        "speedup": scalar_s / engine_s,
    }


def bench_many_trees(count: int, sections: int, workers: int,
                     repeats: int = 3) -> dict:
    """analyze_many over a heterogeneous tree set, serial vs sharded."""
    compiled = [
        compile_tree(random_tree(sections, np.random.default_rng(seed)))
        for seed in range(count)
    ]

    def serial():
        return analyze_many(compiled, workers=0)

    def sharded():
        return analyze_many(compiled, workers=workers)

    sharded()  # spin the pool up and seed the worker caches once
    drift = max(
        float(np.max(np.abs(a.delay_50 - b.delay_50)))
        for a, b in zip(serial(), sharded())
    )
    serial_s = best_of(repeats, serial)
    sharded_s = best_of(repeats, sharded)
    return {
        "trees": count,
        "sections": sections,
        "workers": workers,
        "max_abs_drift": drift,
        "serial_s": serial_s,
        "sharded_s": sharded_s,
        "speedup": serial_s / sharded_s,
    }


def bench_sharded_batch(scenarios: int, chains: int, depth: int,
                        workers: int, repeats: int = 3) -> dict:
    """analyze_batch_sharded vs in-process analyze_batch, one topology."""
    tree = comb_tree(chains, depth)
    compiled = compile_tree(tree)
    rng = np.random.default_rng(1)
    factors = np.exp(0.1 * rng.standard_normal((scenarios, 3, compiled.size)))
    nominal = np.stack(
        [compiled.resistance, compiled.inductance, compiled.capacitance]
    )
    block = factors * nominal

    def serial():
        return analyze_batch(compiled, block)

    def sharded():
        return analyze_batch_sharded(
            compiled, block, shards=workers, workers=workers
        )

    sharded()  # warm the pool
    drift = float(np.max(np.abs(serial().delay_50 - sharded().delay_50)))
    serial_s = best_of(repeats, serial)
    sharded_s = best_of(repeats, sharded)
    return {
        "scenarios": scenarios,
        "sections": compiled.size,
        "shards": workers,
        "workers": workers,
        "max_abs_drift": drift,
        "serial_s": serial_s,
        "sharded_s": sharded_s,
        "speedup": serial_s / sharded_s,
    }


def run_sharded(quick: bool) -> dict:
    """The sharded-vs-serial scaling numbers behind BENCH_sharded.json."""
    cores = os.cpu_count() or 1
    workers = max(2, min(4, cores))
    clear_topology_cache()
    try:
        if quick:
            many = bench_many_trees(12, 120, workers)
            batch = bench_sharded_batch(200, 4, 50, workers)
        else:
            many = bench_many_trees(48, 400, workers)
            batch = bench_sharded_batch(2000, 10, 100, workers)
    finally:
        shutdown_pool()
    return {
        "mode": "quick" if quick else "full",
        "cores": cores,
        "workers": workers,
        "target_speedup": SHARDED_TARGET,
        "min_cores_for_target": MIN_CORES_FOR_TARGET,
        "target_applies": cores >= MIN_CORES_FOR_TARGET,
        "many_trees": many,
        "batch": batch,
    }


def check_sharded(results: dict) -> list:
    """Failure messages for a sharded run (empty when acceptable).

    Drift is a correctness gate and applies everywhere; the speedup
    target applies only on machines with enough cores for parallel
    dispatch to have any headroom.
    """
    failures = []
    for label in ("many_trees", "batch"):
        row = results[label]
        if row["max_abs_drift"] != 0.0:
            failures.append(
                f"sharded {label} drifted from serial by "
                f"{row['max_abs_drift']:.3e}; results must be bitwise equal"
            )
        if results["target_applies"] and row["speedup"] < SHARDED_TARGET:
            failures.append(
                f"sharded {label} speedup {row['speedup']:.2f}x below the "
                f"{SHARDED_TARGET:.1f}x target on {results['cores']} cores"
            )
    return failures


def run(quick: bool) -> dict:
    if quick:
        full_tree = [
            bench_full_tree(20, 100),   # 2001 sections
            bench_full_tree(40, 100),   # 4001 sections
        ]
        variation = bench_variation(50, 5, 100)  # 50 x 501
    else:
        full_tree = [
            bench_full_tree(10, 100),   # 1001 sections
            bench_full_tree(40, 100),   # 4001 sections
            bench_full_tree(100, 100),  # 10001 sections
        ]
        variation = bench_variation(1000, 10, 100)  # 1000 x 1001

    results = {
        "mode": "quick" if quick else "full",
        "full_tree": full_tree,
        "variation": variation,
        "targets": TARGETS,
    }
    if not quick:
        results["satisfied"] = {
            "full_tree_10k": full_tree[-1]["speedup"] >= TARGETS["full_tree_10k"],
            "variation_1000x1k": variation["speedup"]
            >= TARGETS["variation_1000x1k"],
        }
    return results


def check(results: dict) -> list:
    """Failure messages (empty when the run is acceptable)."""
    failures = []
    for row in results["full_tree"]:
        if row["sections"] < 2000:
            continue
        if row["speedup"] < 1.0:
            failures.append(
                f"engine table slower than scalar at {row['sections']} "
                f"sections (speedup {row['speedup']:.2f}x)"
            )
        if row["report_speedup"] < 1.0:
            failures.append(
                f"engine report_all slower than scalar at {row['sections']} "
                f"sections (speedup {row['report_speedup']:.2f}x)"
            )
    if results["mode"] == "full":
        for name, ok in results["satisfied"].items():
            if not ok:
                failures.append(f"target {name} not met")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small sizes, seconds not minutes; regression guard only",
    )
    parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=RESULT_PATH,
        help=f"result JSON path (default: {RESULT_PATH})",
    )
    parser.add_argument(
        "--sharded-output",
        type=pathlib.Path,
        default=RESULT_SHARDED_PATH,
        help=f"sharded result JSON path (default: {RESULT_SHARDED_PATH})",
    )
    args = parser.parse_args(argv)

    results = run(args.quick)
    args.output.write_text(json.dumps(results, indent=2) + "\n")
    sharded = run_sharded(args.quick)
    args.sharded_output.write_text(json.dumps(sharded, indent=2) + "\n")

    print(f"mode: {results['mode']}")
    for row in results["full_tree"]:
        print(
            f"full-tree report  n={row['sections']:>6}: "
            f"scalar {row['scalar_s']:.3f}s  engine {row['engine_s']:.4f}s  "
            f"-> {row['speedup']:.1f}x "
            f"(NodeTiming wrapper {row['report_speedup']:.1f}x)"
        )
    v = results["variation"]
    print(
        f"variation sweep  {v['scenarios']}x{v['sections']}: "
        f"scalar {v['scalar_s']:.3f}s  engine {v['engine_s']:.4f}s  "
        f"-> {v['speedup']:.1f}x"
    )
    m = sharded["many_trees"]
    print(
        f"sharded trees    {m['trees']}x{m['sections']}: "
        f"serial {m['serial_s']:.3f}s  sharded {m['sharded_s']:.3f}s  "
        f"-> {m['speedup']:.2f}x (drift {m['max_abs_drift']:.1e}, "
        f"{sharded['workers']} workers)"
    )
    b = sharded["batch"]
    print(
        f"sharded batch    {b['scenarios']}x{b['sections']}: "
        f"serial {b['serial_s']:.3f}s  sharded {b['sharded_s']:.3f}s  "
        f"-> {b['speedup']:.2f}x (drift {b['max_abs_drift']:.1e}, "
        f"{b['shards']} shards)"
    )
    if not sharded["target_applies"]:
        print(
            f"note: {sharded['cores']} cores < "
            f"{MIN_CORES_FOR_TARGET}: sharded speedup target not asserted"
        )
    print(f"results written to {args.output} and {args.sharded_output}")

    failures = check(results) + check_sharded(sharded)
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
