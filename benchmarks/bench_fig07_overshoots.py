"""Fig. 7 / eqs. 39-42 — overshoot train and settling time vs simulation.

For a family of underdamped balanced trees, compare the closed-form
overshoot magnitudes/times (eqs. 39-40) and settling time (eq. 42)
against peaks measured off the exact simulated step response.

Timed kernel: the full closed-form underdamped characterization of one
node (overshoot train + settling), which the paper offers and the plain
Elmore model cannot.
"""

from repro.analysis import TreeAnalyzer
from repro.circuit import fig5_tree, scale_tree_to_zeta
from repro.simulation import overshoots as measured_overshoots

from conftest import percent, simulated_step_metrics

ZETAS = (0.2, 0.3, 0.4, 0.5, 0.7)


def test_fig07_overshoot_train_accuracy(report, benchmark):
    rows = []
    for zeta in ZETAS:
        tree = scale_tree_to_zeta(fig5_tree(), "n7", zeta)
        analyzer = TreeAnalyzer(tree)
        t, v, metrics = simulated_step_metrics(tree, "n7", points=20001)
        peaks = measured_overshoots(t, v, minimum_size=5e-3)
        train = analyzer.overshoots("n7", threshold=5e-3)
        first_err = percent(
            abs(train[0].fraction - metrics.first_overshoot_fraction)
            / metrics.first_overshoot_fraction
        )
        time_err = percent(
            abs(train[0].time - peaks[0][0]) / peaks[0][0]
        )
        settle_pred = analyzer.settling_time("n7")
        settle_err = percent(
            abs(settle_pred - metrics.settling_time) / metrics.settling_time
        )
        rows.append(
            (
                zeta,
                metrics.first_overshoot_fraction,
                train[0].fraction,
                first_err,
                time_err,
                len(peaks),
                len(train),
                settle_err,
            )
        )
    report.table(
        ["zeta", "ov1 sim", "ov1 eq39", "ov1 err%", "t1 err%",
         "#peaks sim", "#peaks model", "settle err%"],
        rows,
    )
    report.line()
    report.line(
        "paper: overshoot train and settling characterized in closed form; "
        "simulated peaks include the higher-order oscillations the 2-pole "
        "model cannot carry, so magnitude errors grow as zeta drops."
    )

    tree = scale_tree_to_zeta(fig5_tree(), "n7", 0.4)
    analyzer = TreeAnalyzer(tree)

    def characterize():
        return analyzer.overshoots("n7"), analyzer.settling_time("n7")

    train, settle = benchmark(characterize)
    assert train and settle > 0
    # Gate: first overshoot magnitude within 50% and its time within 25%
    # at every tested zeta (macro features, per Section V-F).
    for row in rows:
        assert row[3] < 50.0
        assert row[4] < 25.0
