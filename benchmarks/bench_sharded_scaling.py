"""Sharded dispatch scaling — multi-process shards vs the serial engine.

Pytest front end for the sharded half of ``run_benchmarks.py``: the
``perf``-marked quick test is the CI smoke gate (sharded results must be
bitwise identical to serial everywhere, at least 1.5x faster at the
calibrated shard count on machines with >= 2 *effective* cores —
affinity-aware, not ``os.cpu_count`` — and calibrated routing must
never make a below-break-even batch slower than serial, on any box),
and the unmarked report test regenerates the numbers behind
``BENCH_sharded.json`` at the repository root. Run with::

    pytest benchmarks/bench_sharded_scaling.py -m perf -s        # quick
    pytest benchmarks/bench_sharded_scaling.py -m "not perf" -s  # full
"""

import json

import pytest

import run_benchmarks


@pytest.mark.perf
def test_sharded_matches_serial_quick(tmp_path):
    """The --quick contract: zero drift, and the speedup target where
    the core count makes it meaningful."""
    results = run_benchmarks.run_sharded(
        quick=True, crossover_path=tmp_path / "BENCH_crossover.json"
    )
    (tmp_path / "BENCH_sharded.json").write_text(
        json.dumps(results, indent=2)
    )
    failures = run_benchmarks.check_sharded(results)
    assert not failures, failures


def test_sharded_scaling_report(report):
    """Full-scale run; writes BENCH_sharded.json at the repo root."""
    results = run_benchmarks.run_sharded(quick=False)
    run_benchmarks.RESULT_SHARDED_PATH.write_text(
        json.dumps(results, indent=2) + "\n"
    )
    rows = []
    for label in ("many_trees", "batch"):
        row = results[label]
        work = (
            f"{row['trees']}x{row['sections']} trees"
            if label == "many_trees"
            else f"{row['scenarios']}x{row['sections']} scen"
        )
        rows.append(
            (work, row["serial_s"], row["sharded_s"], row["speedup"],
             row["max_abs_drift"])
        )
    report.table(
        ("workload", "serial_s", "sharded_s", "speedup", "drift"), rows
    )
    report.line(
        f"{results['cores']} effective cores, {results['workers']} workers; "
        f"{results['target_speedup']}x target "
        + ("asserted" if results["target_applies"] else "not asserted")
    )
    c = results["calibration"]
    breakeven = (
        f"{c['breakeven_cells']} cells"
        if c["breakeven_cells"] is not None
        else "never on this box"
    )
    report.line(
        f"crossover break-even {breakeven}; routed small batch at "
        f"{results['routed']['ratio_vs_serial']:.2f}x of direct serial"
    )
    assert not run_benchmarks.check_sharded(results)
