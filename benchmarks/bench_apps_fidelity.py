"""Conclusion claims — the closed forms inside design methodologies.

The paper's closing argument: continuous closed-form expressions make
the model usable for synthesis (buffer insertion, wire sizing) and
analysis (clock skew) methodologies. This bench exercises all three apps
and reports the fidelity numbers that justify the claim:

* clock skew: rank correlation of sink ordering (model vs exact) for the
  RLC model and for RC Elmore on an inductive H-tree,
* wire sizing: optimal widths under RC vs RLC delay and the true (exact
  simulated) delay of each choice,
* buffer insertion: solutions under both wire-delay models.

Timed kernels: a full skew analysis and a full buffer-insertion DP.
"""

import numpy as np

from repro.apps import (
    Buffer,
    WireSizingProblem,
    h_tree,
    insert_buffers,
    optimize_width,
    perturbed_clock_tree,
    skew_report,
)
from repro.circuit import single_line
from repro.simulation import ExactSimulator, delay_50 as measured_delay


def test_clock_skew_fidelity(report, benchmark):
    rlc_corr, rc_corr, rlc_gap, rc_gap = [], [], [], []
    for seed in range(6):
        tree = perturbed_clock_tree(h_tree(levels=3), 0.12, seed=seed)
        rep = skew_report(tree)
        rlc_corr.append(rep.rlc_rank_correlation)
        rc_corr.append(rep.rc_rank_correlation)
        rlc_gap.append(abs(rep.rlc_skew - rep.exact_skew))
        rc_gap.append(abs(rep.rc_skew - rep.exact_skew))
    report.table(
        ["metric", "RLC model", "RC Elmore"],
        [
            ("mean sink rank correlation", float(np.mean(rlc_corr)),
             float(np.mean(rc_corr))),
            ("mean |skew - exact| (s)", float(np.mean(rlc_gap)),
             float(np.mean(rc_gap))),
        ],
    )
    report.line()
    report.line(
        "the RLC equivalent delay preserves the sink ordering of the "
        "exact simulation on inductive clock trees; RC Elmore does not — "
        "the fidelity property design methodologies rely on [25][26]."
    )

    tree = perturbed_clock_tree(h_tree(levels=3), 0.12, seed=0)
    rep = benchmark(lambda: skew_report(tree))
    assert np.mean(rlc_corr) > 0.8
    assert np.mean(rlc_corr) > np.mean(rc_corr) + 0.2
    assert np.mean(rlc_gap) < np.mean(rc_gap)


def test_wire_sizing_choice_quality(report, benchmark):
    problem = WireSizingProblem()
    chosen = {}
    for model in ("rc", "rlc"):
        result = optimize_width(problem, model)
        # True quality of the chosen width: exact simulated delay of the
        # RLC tree at that width.
        tree = problem.tree(result.width, "rlc")
        sim = ExactSimulator(tree)
        t = sim.time_grid(points=8001, span_factor=14.0)
        true_delay = measured_delay(t, sim.step_response(problem.sink(), t))
        chosen[model] = (result.width, result.delay, true_delay,
                         result.evaluations)
    report.table(
        ["model", "width (um)", "model delay (ps)", "true delay (ps)",
         "evals"],
        [
            (m, w * 1e6, d * 1e12, td * 1e12, ev)
            for m, (w, d, td, ev) in chosen.items()
        ],
    )
    report.line()
    report.line(
        "both optimizations converge in tens of closed-form evaluations — "
        "the use case the paper's continuous expressions enable. The "
        "RLC-aware choice must be at least as good under the true delay."
    )

    benchmark(lambda: optimize_width(problem, "rlc"))
    rc_true = chosen["rc"][2]
    rlc_true = chosen["rlc"][2]
    assert rlc_true <= rc_true * 1.02


def test_buffer_insertion_models(report, benchmark):
    from repro.apps import simulated_plan_delay

    line = single_line(12, resistance=50.0, inductance=6e-9,
                       capacitance=0.3e-12)
    buffer_cell = Buffer(output_resistance=25.0, input_capacitance=15e-15,
                         intrinsic_delay=15e-12)
    rows = []
    self_errors = {}
    results = {}
    for model in ("rc", "rlc"):
        result = insert_buffers(line, buffer_cell, model=model,
                                driver_resistance=30.0)
        results[model] = result
        simulated = simulated_plan_delay(line, result, buffer_cell, 30.0)
        estimate = -result.required_at_root
        self_errors[model] = abs(estimate - simulated) / simulated
        rows.append(
            (model, result.buffer_count, estimate * 1e12, simulated * 1e12,
             100 * self_errors[model])
        )
    report.table(
        ["model", "#buffers", "est. delay (ps)", "sim. delay (ps)",
         "self-est err %"],
        rows,
    )
    report.line()
    report.line(
        "on an inductance-dominated net the two wire-delay models steer "
        "the DP to different plans; the fidelity metric that matters is "
        "how well each model predicts the *simulated* delay of its own "
        "plan — the RLC closed form must be far closer. (Which plan wins "
        "outright also depends on the additive-stage assumption inside "
        "van Ginneken itself; see examples/buffer_insertion_demo.py.)"
    )

    benchmark(
        lambda: insert_buffers(line, buffer_cell, model="rlc",
                               driver_resistance=30.0)
    )
    assert results["rc"].buffer_nodes != results["rlc"].buffer_nodes
    assert self_errors["rlc"] < 0.15
    assert self_errors["rlc"] < 0.5 * self_errors["rc"]
