"""Engine scaling — vectorized analysis vs the scalar path.

Pytest front end for ``run_benchmarks.py``: the ``perf``-marked quick
test is the CI regression guard (the engine must never be slower than
the scalar path at >= 2000 sections), and the unmarked report test
regenerates the full paper-scale numbers behind ``BENCH_engine.json``.
Both live under ``benchmarks/`` and are therefore outside the tier-1
``tests/`` collection; run them with::

    pytest benchmarks/bench_engine_scaling.py -m perf -s      # quick
    pytest benchmarks/bench_engine_scaling.py -m "not perf" -s  # full
"""

import json

import pytest

import run_benchmarks


@pytest.mark.perf
def test_engine_never_slower_quick(tmp_path):
    """The --quick contract: speedup >= 1 at every size >= 2000."""
    results = run_benchmarks.run(quick=True)
    (tmp_path / "BENCH_engine.json").write_text(
        json.dumps(results, indent=2)
    )
    failures = run_benchmarks.check(results)
    assert not failures, failures


def test_engine_speedup_targets(report):
    """Full paper-scale run; writes BENCH_engine.json at the repo root."""
    results = run_benchmarks.run(quick=False)
    run_benchmarks.RESULT_PATH.write_text(
        json.dumps(results, indent=2) + "\n"
    )
    rows = [
        (
            row["sections"],
            row["scalar_s"],
            row["engine_s"],
            row["speedup"],
            row["report_speedup"],
        )
        for row in results["full_tree"]
    ]
    report.table(
        ("sections", "scalar_s", "engine_s", "speedup", "report_x"), rows
    )
    v = results["variation"]
    report.line(
        f"variation {v['scenarios']}x{v['sections']}: "
        f"{v['speedup']:.1f}x (drift {v['max_relative_drift']:.2e})"
    )
    assert all(results["satisfied"].values()), results["satisfied"]
