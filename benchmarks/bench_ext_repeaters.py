"""Extension — repeater insertion vs inductance (the follow-on result).

Sweeps a 10-mm line across inductance values and regenerates the
headline table of the authors' follow-on work: the RLC-aware optimal
repeater count and size drop as the line becomes inductance-dominated,
while the RC-driven answer (Bakoglu or numeric) cannot move. Asserts the
monotone count collapse and that every optimization ran simulation-free
on the closed forms.

Timed kernel: one full (count x size) optimization under the RLC model.
"""

from repro.apps import (
    LineParameters,
    RepeaterLibrary,
    bakoglu_rc,
    optimize_repeaters,
)

INDUCTANCE_PER_MM = (0.0, 0.1, 0.4, 1.0, 2.0)  # nH/mm


def test_repeater_count_vs_inductance(report, benchmark):
    library = RepeaterLibrary()
    rows = []
    rlc_counts = []
    for l_per_mm in INDUCTANCE_PER_MM:
        line = LineParameters(
            resistance=300.0,
            inductance=l_per_mm * 1e-8,  # nH/mm * 10 mm
            capacitance=2e-12,
        )
        closed = bakoglu_rc(line, library)
        rc_plan = optimize_repeaters(line, library, "rc")
        rlc_plan = optimize_repeaters(line, library, "rlc")
        rlc_counts.append(rlc_plan.count)
        rows.append(
            (
                l_per_mm,
                closed.count,
                rc_plan.count,
                round(rc_plan.size),
                rlc_plan.count,
                round(rlc_plan.size),
                rlc_plan.total_delay * 1e12,
            )
        )
    report.table(
        ["L (nH/mm)", "bakoglu k", "rc-opt k", "rc h", "rlc-opt k",
         "rlc h", "rlc delay (ps)"],
        rows,
    )
    report.line()
    report.line(
        "follow-on result (Ismail-Friedman TVLSI'00): inductance reduces "
        "both the optimal number and size of repeaters; the RC answer "
        "cannot see the knob at all."
    )

    heavy = LineParameters(resistance=300.0, inductance=2e-8,
                           capacitance=2e-12)
    plan = benchmark(lambda: optimize_repeaters(heavy, library, "rlc"))
    assert plan.count == rlc_counts[-1]

    # Monotone collapse, strictly fewer at the heavy end.
    assert all(a >= b for a, b in zip(rlc_counts, rlc_counts[1:]))
    assert rlc_counts[-1] < rlc_counts[0]
    # RC answers identical across the sweep (first vs last row).
    assert rows[0][2] == rows[-1][2]
