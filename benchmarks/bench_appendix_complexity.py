"""Appendix — O(n) evaluation: runtime scaling of the closed-form analysis.

The Appendix argues the whole model evaluates at all nodes with a number
of multiplications linear in the number of sections (two passes, ~2n
multiplies). This bench measures wall-clock runtime of the full
per-node analysis across tree sizes spanning two orders of magnitude and
fits the log-log slope — it must sit near 1 (linear), far from the
slope-3 dense eigensolve it replaces.

Timed kernel: the 4096-section tree analysis.
"""

import time

import numpy as np

from repro.analysis import TreeAnalyzer, multiplication_count
from repro.circuit import balanced_tree

SIZES = (6, 30, 126, 510, 2046, 8190)  # balanced binary depths 2..12 step 2


def build(sections_target):
    depth = int(np.log2(sections_target + 2)) - 1
    return balanced_tree(depth, 2, resistance=15.0, inductance=2e-9,
                         capacitance=0.2e-12)


def full_analysis(tree):
    analyzer = TreeAnalyzer(tree)
    return [analyzer.timing(node) for node in tree.nodes]


def test_appendix_linear_scaling(report, benchmark):
    rows = []
    times = []
    for target in SIZES:
        tree = build(target)
        # Median of 3 runs to tame allocator noise.
        samples = []
        for _ in range(3):
            start = time.perf_counter()
            result = full_analysis(tree)
            samples.append(time.perf_counter() - start)
        assert len(result) == tree.size
        elapsed = sorted(samples)[1]
        times.append((tree.size, elapsed))
        rows.append(
            (
                tree.size,
                multiplication_count(tree),
                elapsed * 1e3,
                elapsed / tree.size * 1e6,
            )
        )
    report.table(
        ["sections", "multiplies (2n)", "runtime (ms)", "us/section"], rows
    )

    sizes = np.log([n for n, _ in times])
    secs = np.log([s for _, s in times])
    slope = float(np.polyfit(sizes, secs, 1)[0])
    report.line()
    report.line(
        f"log-log runtime slope: {slope:.2f} "
        "(1.0 = linear, the Appendix claim; 3.0 = the dense eigensolve "
        "the closed form replaces)"
    )

    tree = build(4094)
    benchmark(lambda: full_analysis(tree))
    assert slope < 1.5


def test_appendix_per_section_cost_flat(report, benchmark):
    """us/section must not grow with n — the direct linearity check."""
    small = build(126)
    large = build(8190)

    def cost(tree):
        start = time.perf_counter()
        full_analysis(tree)
        return (time.perf_counter() - start) / tree.size

    small_cost = min(cost(small) for _ in range(3))
    large_cost = min(cost(large) for _ in range(3))
    report.line(
        f"per-section cost: {small_cost * 1e6:.2f} us (n={small.size}) vs "
        f"{large_cost * 1e6:.2f} us (n={large.size})"
    )
    benchmark(lambda: full_analysis(small))
    assert large_cost < 3.0 * small_cost
