"""Fig. 14 — effect of tree depth (REPRODUCTION DEVIATION, see notes below).

The paper asserts the closed form degrades as the number of levels grows
("the order of the transfer function at the sinks increases"). This
bench runs the sweep two ways — the paper's implicit setup (fixed
per-section values, deeper trees) and a zeta-controlled variant (every
depth rescaled to the same sink damping) — and in *both*, against the
machine-precision LTI solution, the sink error **decreases** with depth
in every regime we tested (sink zeta from 0.004 to 1.0; delay error,
waveform RMS, max pointwise error, and early-arrival error all shrink).

Two effects explain it: (a) with fixed element values, zeta at the sink
grows roughly linearly with depth (the Elmore sum grows ~n^2 vs ~n for
sqrt(T_LC)), so deeper trees are simply better damped; (b) even at fixed
sink zeta, a longer uniform structure attenuates its fast poles more
strongly at the far end, so the two dominant poles describe the sink
better, not worse. The trend the paper's Fig. 14 shows therefore appears
to be a property of its specific (unpublished) element values or its
visual comparison, not of balanced-tree depth per se. EXPERIMENTS.md
records this as the one shape deviation of the reproduction.

What *does* hold, and is asserted: delay error stays bounded (< 10%) at
every depth, and the deepest tree is never the worst case.

Timed kernel: closed-form analysis of the deepest (126-section) tree.
"""

from repro.analysis import TreeAnalyzer
from repro.circuit import balanced_tree, scale_tree_to_zeta
from repro.simulation import max_error, rms_error

from conftest import percent, simulated_step_metrics

DEPTHS = (2, 3, 4, 5, 6)


def sweep(normalize_zeta):
    rows = []
    for depth in DEPTHS:
        tree = balanced_tree(depth, 2, resistance=15.0, inductance=2e-9,
                             capacitance=0.3e-12)
        sink = tree.leaves()[0]
        if normalize_zeta:
            tree = scale_tree_to_zeta(tree, sink, 0.5)
        analyzer = TreeAnalyzer(tree)
        t, v, metrics = simulated_step_metrics(tree, sink)
        model_delay = analyzer.delay_50(sink)
        model_wave = analyzer.step_waveform(sink, t)
        rows.append(
            (
                depth,
                tree.size,
                analyzer.zeta(sink),
                percent(abs(model_delay - metrics.delay_50) / metrics.delay_50),
                rms_error(v, model_wave),
                max_error(v, model_wave),
            )
        )
    return rows


def test_fig14_depth_effect(report, benchmark):
    headers = ["levels", "sections", "zeta@sink", "delay err%",
               "waveform RMS", "waveform max"]
    fixed_rows = sweep(normalize_zeta=False)
    report.line("(a) fixed per-section values (paper's implicit setup):")
    report.table(headers, fixed_rows)
    report.line()
    normalized_rows = sweep(normalize_zeta=True)
    report.line("(b) every depth rescaled to sink zeta = 0.5:")
    report.table(headers, normalized_rows)
    report.line()
    report.line(
        "DEVIATION vs paper: Fig. 14 claims error grows with depth; both "
        "sweeps above show it shrinking (see module docstring for the "
        "mechanism). The bounded-error claim does hold at every depth."
    )

    deep = balanced_tree(6, 2, resistance=15.0, inductance=2e-9,
                         capacitance=0.3e-12)

    def analyze_deep():
        analyzer = TreeAnalyzer(deep)
        return [analyzer.timing(node) for node in deep.nodes]

    timings = benchmark(analyze_deep)
    assert len(timings) == deep.size

    for rows in (fixed_rows, normalized_rows):
        delay_errors = [row[3] for row in rows]
        assert max(delay_errors) < 10.0
        # The deepest tree is never the worst case in our data.
        assert delay_errors[-1] <= max(delay_errors)
        assert rows[-1][4] <= rows[0][4]  # RMS shrinks depth 2 -> 6
