"""Incremental delta-update engine — edits and sizing loops vs rebuilds.

Pytest front end for the incremental section of ``run_benchmarks.py``:
the ``perf``-marked quick test is the CI regression guard (relaxed
speedup floors at small sizes, the 1e-12 drift gate at full strength),
and the unmarked report test regenerates the paper-scale numbers behind
``BENCH_incremental.json``. Both live under ``benchmarks/`` and are
therefore outside the tier-1 ``tests/`` collection; run them with::

    pytest benchmarks/bench_incremental.py -m perf -s       # quick
    pytest benchmarks/bench_incremental.py -m "not perf" -s   # full
"""

import json

import pytest

import run_benchmarks


@pytest.mark.perf
def test_incremental_quick(tmp_path):
    """The --quick contract: relaxed speedup floors, full drift gate."""
    results = run_benchmarks.run_incremental(quick=True)
    (tmp_path / "BENCH_incremental.json").write_text(
        json.dumps(results, indent=2)
    )
    failures = run_benchmarks.check_incremental(results)
    assert not failures, failures


def test_incremental_speedup_targets(report):
    """Full paper-scale run; writes BENCH_incremental.json at the root."""
    results = run_benchmarks.run_incremental(quick=False)
    run_benchmarks.RESULT_INCREMENTAL_PATH.write_text(
        json.dumps(results, indent=2) + "\n"
    )
    e = results["single_edit"]
    w = results["optimize_width"]
    report.table(
        ("workload", "sections", "full_s", "incremental_s", "speedup"),
        [
            (
                "single_edit",
                e["sections"],
                e["full_per_edit_s"] * e["edits"],
                e["incremental_per_edit_s"] * e["edits"],
                e["speedup"],
            ),
            (
                "optimize_width",
                w["sections"],
                w["full_s"],
                w["incremental_s"],
                w["speedup"],
            ),
        ],
    )
    report.line(
        f"drift: single_edit {e['max_relative_drift']:.2e}, "
        f"optimize_width {w['max_relative_drift']:.2e} "
        f"(limit {results['drift_limit']:.0e})"
    )
    failures = run_benchmarks.check_incremental(results)
    assert not failures, failures
