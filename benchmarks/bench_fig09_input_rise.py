"""Fig. 9 — accuracy vs input rise time (exponential input, Fig. 8 tree).

The paper drives its Fig. 8 example tree with exponential inputs of
increasing rise time and shows the closed-form response (eqs. 44-48)
hugging the AS/X waveform ever more tightly. This bench reproduces the
series: waveform RMS error and 50% delay error of the second-order
closed form vs the exact simulator, as the input 0-90% rise time sweeps
from much faster to much slower than the tree's own time constants.

Timed kernel: one closed-form exponential-response evaluation (eq. 44)
over the full waveform grid.
"""

from repro.analysis import TreeAnalyzer
from repro.circuit import fig8_tree
from repro.simulation import (
    ExactSimulator,
    ExponentialSource,
    delay_50,
    rms_error,
)

from conftest import percent

#: Input 0-90% rise time as a multiple of the tree's unloaded 50% delay.
RISE_FACTORS = (0.1, 0.5, 1.0, 2.0, 5.0, 10.0)


def test_fig09_exponential_input_accuracy(report, benchmark):
    tree = fig8_tree()
    analyzer = TreeAnalyzer(tree)
    simulator = ExactSimulator(tree)
    base_delay = analyzer.delay_50("out")
    t = simulator.time_grid(points=12001, span_factor=16.0)

    rows = []
    for factor in RISE_FACTORS:
        source = ExponentialSource.from_rise_time(factor * base_delay)
        horizon_scale = max(1.0, 4.0 * factor * base_delay / t[-1])
        grid = t * horizon_scale
        exact = simulator.response(source, "out", grid)
        model = analyzer.waveform("out", source, grid)
        rms = rms_error(exact, model)
        delay_exact = delay_50(grid, exact)
        delay_model = delay_50(grid, model)
        rows.append(
            (
                factor,
                source.rise_time_90,
                rms,
                percent(abs(delay_model - delay_exact) / delay_exact),
            )
        )
    report.table(
        ["trise/tpd", "trise (s)", "waveform RMS", "delay err %"], rows
    )
    report.line()
    report.line(
        "paper claim (Sec. V-A): error is largest for a step (zero rise "
        "time) and shrinks as the input slows; the RMS column must be "
        "monotonically non-increasing down the table."
    )

    source = ExponentialSource.from_rise_time(2.0 * base_delay)
    waveform = benchmark(lambda: analyzer.waveform("out", source, t))
    assert waveform.shape == t.shape

    rms_series = [row[2] for row in rows]
    assert rms_series[-1] < rms_series[0]
    for earlier, later in zip(rms_series, rms_series[1:]):
        assert later <= earlier * 1.10  # allow small non-monotone wiggle
