"""Fig. 15 — effect of node position: error is smallest at the sinks.

In a 5-level balanced binary tree, evaluate the closed form at one node
of every level along a root-to-sink path. Nodes near the source see
fewer poles but extra finite zeros (less of the tree lies between them
and the input), which a zero-free 2-pole model cannot represent, so the
error grows toward the source — and the paper highlights that the sinks,
where it matters, are the best case.

Timed kernel: the per-node timing query after the one-time O(n) sweep.
"""

from repro.analysis import TreeAnalyzer
from repro.circuit import balanced_tree, scale_tree_to_zeta
from repro.simulation import rms_error

from conftest import percent, simulated_step_metrics


def test_fig15_node_position(report, benchmark):
    tree = balanced_tree(5, 2, resistance=12.0, inductance=3e-9,
                         capacitance=0.25e-12)
    sink = tree.leaves()[0]
    tree = scale_tree_to_zeta(tree, sink, 0.7)
    analyzer = TreeAnalyzer(tree)
    path = tree.path_to(sink)

    rows = []
    for level, node in enumerate(path, start=1):
        t, v, metrics = simulated_step_metrics(tree, node)
        model_delay = analyzer.delay_50(node)
        model_wave = analyzer.step_waveform(node, t)
        rows.append(
            (
                level,
                node,
                percent(abs(model_delay - metrics.delay_50) / metrics.delay_50),
                rms_error(v, model_wave),
            )
        )
    report.table(["level", "node", "delay err%", "waveform RMS"], rows)
    report.line()
    report.line(
        "paper: 'the error ... is least at the sinks which is typically "
        "the location of greatest interest' — the last row must carry "
        "the smallest waveform RMS on the path."
    )

    benchmark(lambda: analyzer.timing(sink))

    waveform_rms = [row[3] for row in rows]
    # The sink is dramatically better than the source side (levels 1-3);
    # between the last two levels the difference is within noise.
    assert waveform_rms[-1] < 0.25 * waveform_rms[0]
    assert waveform_rms[-1] <= min(waveform_rms[:3])
    delay_errors = [row[2] for row in rows]
    assert delay_errors[-1] < 0.1 * delay_errors[0]
