"""Fig. 12 / claim T2 — asymmetric trees: error grows with asym, up to ~20%.

The paper's asym parameter makes the left branch impedance ``asym`` times
the right at every branching point. This bench regenerates the error
series at node 7 (the light-path sink) for asym in {1, 2, 3, 4}: delay
error and waveform RMS of the closed form vs exact simulation. Text
claim T2: "The error in the propagation delay can reach 20% for highly
asymmetric trees" (vs < 4-7% balanced).

Timed kernel: analyzing every sink of an asym=3 tree.
"""

from repro.analysis import TreeAnalyzer
from repro.circuit import fig5_tree, scale_tree_to_zeta
from repro.simulation import rms_error

from conftest import percent, simulated_step_metrics

ASYMS = (1.0, 2.0, 3.0, 4.0)


def test_fig12_asymmetry_degradation(report, benchmark):
    rows = []
    for asym in ASYMS:
        tree = scale_tree_to_zeta(fig5_tree(asym=asym), "n7", 0.7)
        analyzer = TreeAnalyzer(tree)
        t, v, metrics = simulated_step_metrics(tree, "n7")
        model_delay = analyzer.delay_50("n7")
        model_wave = analyzer.step_waveform("n7", t)
        rows.append(
            (
                asym,
                metrics.delay_50,
                model_delay,
                percent(abs(model_delay - metrics.delay_50) / metrics.delay_50),
                rms_error(v, model_wave),
            )
        )
    report.table(
        ["asym", "sim delay", "eq35 delay", "delay err%", "waveform RMS"],
        rows,
    )
    errors = [row[3] for row in rows]
    report.line()
    report.line(
        "paper T2: error grows with asymmetry, reaching ~20% for highly "
        f"asymmetric trees. measured: {errors[0]:.2f}% (balanced) -> "
        f"{errors[-1]:.2f}% (asym=4)."
    )
    report.line(
        "waveform-shape error grows faster than delay error, as the paper "
        "notes ('the error in the waveform shape is even higher')."
    )

    tree = scale_tree_to_zeta(fig5_tree(asym=3.0), "n7", 0.7)

    def analyze_sinks():
        analyzer = TreeAnalyzer(tree)
        return [analyzer.timing(s) for s in tree.leaves()]

    benchmark(analyze_sinks)

    # Balanced must be the most accurate; asymmetric degrades but stays
    # bounded (the paper's ceiling plus margin).
    assert errors[0] == min(errors)
    assert max(errors) < 30.0
    assert max(errors) > errors[0]
