"""Extension — analytic gradients: accuracy and the speedup over FD.

The closed forms are differentiable in closed form (see
``repro.analysis.sensitivity``). This bench (a) verifies the analytic
gradient against central finite differences on a mid-size tree, and
(b) times both: the analytic gradient is one O(n) pass for *all* 3n
partials, where finite differences need 6n closed-form evaluations —
the gap a gradient-based sizing optimizer feels on every iteration.

Timed kernels: analytic full-tree gradient vs the FD equivalent.
"""

import numpy as np

from repro.analysis import TreeAnalyzer, delay_sensitivities
from repro.circuit import Section, balanced_tree


def build_tree():
    return balanced_tree(4, 2, resistance=20.0, inductance=3e-9,
                         capacitance=0.3e-12)


def fd_gradient(tree, node, h_rel=1e-6):
    """Central-difference gradient of the closed-form delay (reference)."""
    out = {}
    for section_name in tree.nodes:
        base = tree.section(section_name)
        values = {
            "resistance": base.resistance,
            "inductance": base.inductance,
            "capacitance": base.capacitance,
        }
        partials = {}
        for attribute in values:
            h = values[attribute] * h_rel

            def delay_with(delta):
                bumped = dict(values)
                bumped[attribute] += delta
                patched = tree.map_sections(
                    lambda n, s: Section(**bumped) if n == section_name else s
                )
                return TreeAnalyzer(patched).delay_50(node)

            partials[attribute] = (delay_with(h) - delay_with(-h)) / (2 * h)
        out[section_name] = partials
    return out


def test_gradient_accuracy_and_speed(report, benchmark):
    tree = build_tree()
    sink = tree.leaves()[0]

    analytic = delay_sensitivities(tree, sink)
    reference = fd_gradient(tree, sink)
    worst = 0.0
    for name in tree.nodes:
        for attribute, short in (
            ("resistance", "d_resistance"),
            ("inductance", "d_inductance"),
            ("capacitance", "d_capacitance"),
        ):
            a = getattr(analytic.sensitivities[name], short)
            n = reference[name][attribute]
            scale = max(abs(a), abs(n), 1e-30)
            worst = max(worst, abs(a - n) / scale)
    report.line(
        f"tree: {tree.size} sections -> {3 * tree.size} partial "
        f"derivatives; worst analytic-vs-FD relative gap: {worst:.2e}"
    )

    import time

    start = time.perf_counter()
    fd_gradient(tree, sink)
    fd_time = time.perf_counter() - start
    start = time.perf_counter()
    delay_sensitivities(tree, sink)
    analytic_time = time.perf_counter() - start
    report.line(
        f"one full gradient: analytic {analytic_time * 1e3:.2f} ms vs "
        f"finite differences {fd_time * 1e3:.1f} ms "
        f"({fd_time / analytic_time:.0f}x)"
    )

    benchmark(lambda: delay_sensitivities(tree, sink))
    assert worst < 1e-3
    assert analytic_time < fd_time


def test_gradient_descent_actually_descends(report, benchmark):
    """Use the gradient the way an optimizer would: shrink the delay by
    nudging capacitances against the gradient (shielding/spacing moves)."""
    tree = build_tree()
    sink = tree.leaves()[0]
    before = TreeAnalyzer(tree).delay_50(sink)

    def one_descent_step(current, step=0.02):
        grad = delay_sensitivities(current, sink)

        def nudge(name, section):
            g = grad.sensitivities[name].d_capacitance
            factor = 1.0 - step * np.sign(g)
            return Section(
                section.resistance,
                section.inductance,
                section.capacitance * factor,
            )

        return current.map_sections(nudge)

    current = tree
    for _ in range(5):
        current = one_descent_step(current)
    after = TreeAnalyzer(current).delay_50(sink)
    report.line(
        f"5 gradient steps on capacitances: delay {before * 1e12:.2f} ps "
        f"-> {after * 1e12:.2f} ps"
    )
    benchmark(lambda: one_descent_step(tree))
    assert after < before
