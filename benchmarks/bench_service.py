"""Service traffic-path benchmark — latency, throughput, coalescing.

A stdlib load generator drives the real HTTP socket path of
``repro.service`` at several offered-load levels (persistent keep-alive
connections, one thread per client) and records p50/p99 latency versus
achieved requests/sec plus the measured coalescing hit-rate into
``BENCH_service.json`` at the repository root.

The ``perf``-marked quick test is the CI smoke gate: boot the server,
run a short mixed workload (point + batch + a deterministic 429 under
saturation), and pin the acceptance bar — responses bitwise-identical
to direct :class:`ExecutionContext` calls, saturation answered with
429 + ``Retry-After`` and never a crashed pool. Run with::

    pytest benchmarks/bench_service.py -m perf -s        # quick gate
    pytest benchmarks/bench_service.py -m "not perf" -s  # full report
"""

import http.client
import json
import threading
import time

import numpy as np
import pytest

import run_benchmarks
from repro.circuit import dumps, fig5_tree
from repro.engine.compiled import compile_tree
from repro.runtime import ExecutionContext
from repro.service import BackgroundServer

RESULT_SERVICE_PATH = run_benchmarks.REPO_ROOT / "BENCH_service.json"

NETLIST = dumps(fig5_tree())
ANALYZE_BODY = json.dumps(
    {"netlist": NETLIST, "metrics": ["delay_50", "rise_time", "overshoot"]}
).encode()


def _post(conn: http.client.HTTPConnection, path: str, body: bytes):
    conn.request(
        "POST", path, body=body,
        headers={"Content-Type": "application/json"},
    )
    response = conn.getresponse()
    data = response.read()
    return response.status, dict(response.getheaders()), data


def run_load(port: int, clients: int, requests_per_client: int) -> dict:
    """Offered load: ``clients`` concurrent keep-alive connections, each
    firing ``requests_per_client`` identical point queries back-to-back.
    Returns achieved rps and per-request latency percentiles."""
    latencies = [[] for _ in range(clients)]
    statuses = [[] for _ in range(clients)]
    barrier = threading.Barrier(clients + 1)

    def client(index: int) -> None:
        conn = http.client.HTTPConnection("127.0.0.1", port, timeout=60)
        try:
            barrier.wait()
            for _ in range(requests_per_client):
                started = time.perf_counter()
                status, _, _ = _post(conn, "/analyze", ANALYZE_BODY)
                latencies[index].append(time.perf_counter() - started)
                statuses[index].append(status)
        finally:
            conn.close()

    threads = [
        threading.Thread(target=client, args=(i,)) for i in range(clients)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started

    flat = np.asarray([lat for per in latencies for lat in per])
    codes = [status for per in statuses for status in per]
    return {
        "clients": clients,
        "requests": len(codes),
        "elapsed_s": elapsed,
        "rps": len(codes) / elapsed if elapsed > 0 else 0.0,
        "p50_ms": float(np.percentile(flat, 50) * 1e3),
        "p99_ms": float(np.percentile(flat, 99) * 1e3),
        "ok": codes.count(200),
        "rejected_429": codes.count(429),
        "other": len(codes) - codes.count(200) - codes.count(429),
    }


def direct_reference(metrics=("delay_50", "rise_time", "overshoot")):
    """The bitwise ground truth: one direct context evaluation."""
    compiled = compile_tree(fig5_tree())
    rlc = np.stack(
        (compiled.resistance, compiled.inductance, compiled.capacitance)
    )[None]
    with ExecutionContext() as context:
        batch = context.batch(
            compiled, rlc, settle_band=0.1, metrics=list(metrics)
        )
        return {
            node: {
                metric: float(batch.column(metric, node)[0])
                for metric in metrics
            }
            for node in batch.names
        }


def assert_bitwise_identical(body: dict) -> None:
    reference = direct_reference()
    for node, row in body["nodes"].items():
        for metric, value in row.items():
            assert value == reference[node][metric], (
                f"{metric}@{node}: served {value!r} != "
                f"direct {reference[node][metric]!r}"
            )


@pytest.mark.perf
def test_service_smoke_quick():
    """CI gate: mixed workload, bitwise fidelity, one deterministic 429."""
    with BackgroundServer(max_inflight=8, coalesce_window=0.01) as bg:
        conn = http.client.HTTPConnection("127.0.0.1", bg.port, timeout=60)
        try:
            # Point query: bitwise identical to a direct context call.
            status, _, data = _post(conn, "/analyze", ANALYZE_BODY)
            assert status == 200
            assert_bitwise_identical(json.loads(data))

            # Batch query on the same connection.
            compiled = compile_tree(fig5_tree())
            rlc = np.stack(
                [
                    np.stack(
                        (
                            compiled.resistance * s,
                            compiled.inductance,
                            compiled.capacitance,
                        )
                    )
                    for s in (1.0, 2.0)
                ]
            )
            status, _, data = _post(
                conn,
                "/analyze_batch",
                json.dumps(
                    {
                        "netlist": NETLIST,
                        "rlc": rlc.tolist(),
                        "metrics": ["delay_50"],
                    }
                ).encode(),
            )
            assert status == 200
            served = np.asarray(json.loads(data)["metrics"]["delay_50"])
            with ExecutionContext() as context:
                expected = context.batch(
                    compiled, rlc, settle_band=0.1, metrics=["delay_50"]
                ).metrics.delay_50
            assert np.array_equal(served, expected)

            # One deterministic 429 under saturation: zero the admission
            # budget, observe the rejection, restore, observe recovery.
            bg.server.max_inflight = 0
            status, headers, _ = _post(conn, "/analyze", ANALYZE_BODY)
            assert status == 429
            assert int(headers["Retry-After"]) >= 1
            bg.server.max_inflight = 8
            status, _, _ = _post(conn, "/analyze", ANALYZE_BODY)
            assert status == 200, "the pool must survive saturation"
        finally:
            conn.close()

        # A concurrent burst must actually coalesce.
        burst = run_load(bg.port, clients=4, requests_per_client=5)
        assert burst["ok"] + burst["rejected_429"] == burst["requests"]
        stats = bg.server.service_stats()
        assert stats["coalescing"]["hit_rate"] > 0.0
        assert stats["errors_500"] == 0


def test_service_report(report):
    """Full load sweep; writes BENCH_service.json at the repo root."""
    levels = []
    with BackgroundServer(max_inflight=16, coalesce_window=0.005) as bg:
        # Fidelity first: the numbers under load are the same numbers.
        conn = http.client.HTTPConnection("127.0.0.1", bg.port, timeout=60)
        status, _, data = _post(conn, "/analyze", ANALYZE_BODY)
        conn.close()
        assert status == 200
        assert_bitwise_identical(json.loads(data))

        for clients in (1, 2, 4, 8, 16):
            before = bg.server.service_stats()["coalescing"]
            level = run_load(bg.port, clients, requests_per_client=40)
            after = bg.server.service_stats()["coalescing"]
            window_requests = after["requests"] - before["requests"]
            window_coalesced = (
                after["coalesced_requests"] - before["coalesced_requests"]
            )
            level["coalescing_hit_rate"] = (
                window_coalesced / window_requests if window_requests else 0.0
            )
            assert level["other"] == 0, "only 200/429 under saturation"
            levels.append(level)

        # Saturation probe: a tiny admission budget under a big burst
        # must shed load with 429s, never crash the pool.
        bg.server.max_inflight = 2
        saturated = run_load(bg.port, clients=12, requests_per_client=10)
        bg.server.max_inflight = 16
        conn = http.client.HTTPConnection("127.0.0.1", bg.port, timeout=60)
        try:
            recovery_status, _, _ = _post(conn, "/analyze", ANALYZE_BODY)
        finally:
            conn.close()
        stats = bg.server.service_stats()

    assert recovery_status == 200
    assert saturated["rejected_429"] > 0
    assert saturated["other"] == 0
    assert stats["errors_500"] == 0
    overall_hit_rate = stats["coalescing"]["hit_rate"]
    assert overall_hit_rate > 0.0, (
        "concurrent identical queries must coalesce"
    )

    report.table(
        ("clients", "rps", "p50_ms", "p99_ms", "ok", "429", "hit_rate"),
        [
            (
                level["clients"],
                level["rps"],
                level["p50_ms"],
                level["p99_ms"],
                level["ok"],
                level["rejected_429"],
                level["coalescing_hit_rate"],
            )
            for level in levels
        ],
    )
    report.line(
        f"saturation probe (max_inflight=2, 12 clients): "
        f"{saturated['ok']} served, {saturated['rejected_429']} shed "
        f"with 429; overall coalescing hit-rate "
        f"{overall_hit_rate:.2f}"
    )

    RESULT_SERVICE_PATH.write_text(
        json.dumps(
            {
                "bench": "service",
                "netlist_sections": fig5_tree().size,
                "max_inflight": 16,
                "coalesce_window_s": 0.005,
                "requests_per_client": 40,
                "levels": levels,
                "saturation": saturated,
                "coalescing": stats["coalescing"],
                "bitwise_identical_to_direct_context": True,
            },
            indent=2,
        )
        + "\n"
    )
    report.line(f"wrote {RESULT_SERVICE_PATH}")
