"""Lazy scenario expressions: sweep axes and derived per-section values.

A sweep is described, not materialized: axes (:func:`linspace`,
:func:`log_sample`, :func:`values_axis`, :func:`lognormal_factors`)
name the scenario dimensions, and ordinary arithmetic on their
``.values`` (or ``.factors`` for random-draw axes) builds a DAG of
:class:`Expr` nodes for the per-section ``(R, L, C)`` quantities. No
scenario row exists until the executor asks a chunk of the space to
evaluate itself, so an expression over ten million scenarios costs a
few interned nodes, not an ``(S, 3, n)`` block.

Nodes are **hash-consed**: structurally identical expressions intern to
the *same object*, so common subexpressions are shared by construction
and the compiler's CSE pass is a ref-count walk rather than a
tree-match. Intern keys embed child node ids drawn from a monotonic
counter that is never reused, so a key can never alias a structurally
different node after its children are garbage-collected. Scalar
constants intern on their raw IEEE-754 bits (``0.0`` and ``-0.0`` are
distinct nodes); array constants intern on shape plus content digest
and are frozen defensively.

Chunk evaluation is **bitwise-exact** against the eager equivalents:
:func:`linspace` replicates ``np.linspace``'s arithmetic (including the
denormal-step path of numpy gh-5437) so any chunk slice equals the
corresponding slice of the full grid, and :func:`lognormal_factors`
draws chunk-by-chunk from one seeded generator whose concatenated
blocks are bitwise the single full draw.
"""

from __future__ import annotations

import hashlib
import itertools
import math
import struct
import weakref
from typing import Callable, Optional, Tuple, Union

import numpy as np

from ..errors import ConfigurationError

__all__ = [
    "Axis",
    "Expr",
    "ScenarioSpace",
    "as_expr",
    "clip",
    "const",
    "cross",
    "exp",
    "linspace",
    "log",
    "log_sample",
    "lognormal_factors",
    "scenario_space",
    "sqrt",
    "values_axis",
    "zip_axes",
]

#: Structural key -> interned node. Values are weak: an expression
#: nothing references anymore is garbage and its key must not pin it.
_INTERN: "weakref.WeakValueDictionary" = weakref.WeakValueDictionary()

#: Monotonic node ids, never reused — keys embedding child ids stay
#: unambiguous even after those children are collected and re-made.
_UIDS = itertools.count(1)


def _interned(key, build: Callable[[], "_Interned"]):
    node = _INTERN.get(key)
    if node is None:
        node = build()
        node._uid = next(_UIDS)
        _INTERN[key] = node
    return node


class _Interned:
    """Base for hash-consed nodes.

    Equality and hashing stay at object identity *on purpose*: the
    intern table guarantees one live node per structural key, so
    ``a is b`` already means "same structure".
    """

    _uid: int = 0


Operand = Union["Expr", float, int, np.ndarray]


class Expr(_Interned):
    """One node of a lazy scenario-expression DAG.

    ``deps`` are the child expressions; ``_compute(ctx, args)`` maps
    their chunk values (``args``, one per dep) to this node's chunk
    value. Values broadcast numpy-style: scalars, per-section ``(n,)``
    vectors, per-scenario ``(chunk, 1)`` columns and full ``(chunk,
    n)`` blocks all compose.
    """

    deps: Tuple["Expr", ...] = ()
    #: True when evaluation consumes hidden state (RNG draws). Stateful
    #: nodes are memoized even when CSE is disabled so a shared stream
    #: never advances twice within one chunk.
    stateful: bool = False
    #: The sweep axis this node reads, if any (checked at compile time
    #: against the scenario space).
    axis: Optional["Axis"] = None

    def _compute(self, ctx, args):
        raise NotImplementedError

    # -- operator sugar ------------------------------------------------------

    def __add__(self, other: Operand) -> "Expr":
        return _binop("add", self, other)

    def __radd__(self, other: Operand) -> "Expr":
        return _binop("add", other, self)

    def __sub__(self, other: Operand) -> "Expr":
        return _binop("sub", self, other)

    def __rsub__(self, other: Operand) -> "Expr":
        return _binop("sub", other, self)

    def __mul__(self, other: Operand) -> "Expr":
        return _binop("mul", self, other)

    def __rmul__(self, other: Operand) -> "Expr":
        return _binop("mul", other, self)

    def __truediv__(self, other: Operand) -> "Expr":
        return _binop("div", self, other)

    def __rtruediv__(self, other: Operand) -> "Expr":
        return _binop("div", other, self)

    def __neg__(self) -> "Expr":
        return _unary("neg", self)


_BIN_UFUNCS = {
    "add": np.add,
    "sub": np.subtract,
    "mul": np.multiply,
    "div": np.divide,
}

_UNARY_UFUNCS = {
    "neg": np.negative,
    "exp": np.exp,
    "log": np.log,
    "sqrt": np.sqrt,
}


class _BinOp(Expr):
    def __init__(self, label: str, left: Expr, right: Expr):
        self.label = label
        self.deps = (left, right)

    def __repr__(self):
        return f"<{self.label} #{self._uid}>"

    def _compute(self, ctx, args):
        return _BIN_UFUNCS[self.label](args[0], args[1])


class _Unary(Expr):
    def __init__(self, label: str, child: Expr):
        self.label = label
        self.deps = (child,)

    def __repr__(self):
        return f"<{self.label} #{self._uid}>"

    def _compute(self, ctx, args):
        return _UNARY_UFUNCS[self.label](args[0])


class _Clip(Expr):
    def __init__(self, child: Expr, lower: float, upper: float):
        self.deps = (child,)
        self.lower = lower
        self.upper = upper

    def __repr__(self):
        return f"<clip[{self.lower}, {self.upper}] #{self._uid}>"

    def _compute(self, ctx, args):
        return np.clip(args[0], self.lower, self.upper)


class _Const(Expr):
    def __init__(self, value):
        self.value = value

    def __repr__(self):
        return f"<const #{self._uid}>"

    def _compute(self, ctx, args):
        return self.value


def _binop(label: str, left: Operand, right: Operand) -> Expr:
    left = as_expr(left)
    right = as_expr(right)
    key = ("bin", label, left._uid, right._uid)
    return _interned(key, lambda: _BinOp(label, left, right))


def _unary(label: str, value: Operand) -> Expr:
    child = as_expr(value)
    key = ("un", label, child._uid)
    return _interned(key, lambda: _Unary(label, child))


def const(value) -> Expr:
    """A scenario-invariant constant: scalar or per-section array.

    Interning is by content. Scalars key on their raw IEEE-754 bits, so
    ``0.0`` and ``-0.0`` are distinct nodes (they behave differently
    under division). Arrays key on shape plus a content digest and are
    copied and frozen, so later mutation of the caller's array cannot
    change — or silently *fail* to change — an interned node.
    """
    if isinstance(value, Expr):
        return value
    arr = np.asarray(value, dtype=float)
    if arr.ndim == 0:
        scalar = float(arr)
        key = ("const", struct.pack("<d", scalar))
        return _interned(key, lambda: _Const(scalar))
    frozen = arr.copy()
    frozen.setflags(write=False)
    digest = hashlib.sha1(frozen.tobytes()).digest()
    key = ("const", frozen.shape, digest)
    return _interned(key, lambda: _Const(frozen))


def as_expr(value: Operand) -> Expr:
    """Coerce a scalar/array operand to an expression node."""
    if isinstance(value, Expr):
        return value
    if isinstance(value, Axis):
        raise ConfigurationError(
            f"axis {value.name!r} is not an expression; read .values "
            "(or .factors for factor axes)"
        )
    return const(value)


def clip(value: Operand, lower: float, upper: float) -> Expr:
    """Elementwise ``np.clip(value, lower, upper)``."""
    child = as_expr(value)
    lower = float(lower)
    upper = float(upper)
    key = ("clip", child._uid, struct.pack("<dd", lower, upper))
    return _interned(key, lambda: _Clip(child, lower, upper))


def exp(value: Operand) -> Expr:
    """Elementwise ``np.exp``."""
    return _unary("exp", value)


def log(value: Operand) -> Expr:
    """Elementwise ``np.log``."""
    return _unary("log", value)


def sqrt(value: Operand) -> Expr:
    """Elementwise ``np.sqrt``."""
    return _unary("sqrt", value)


# -- axes --------------------------------------------------------------------


class Axis(_Interned):
    """One sweep dimension: a named, sized sequence of scenario values."""

    name: str = ""
    size: int = 0
    #: True when chunks must be evaluated in offset order (the axis
    #: streams from hidden state, e.g. an RNG, with no random access).
    sequential: bool = False

    def take(self, indices: np.ndarray) -> np.ndarray:
        """The axis values at ``indices`` (vectorized, chunk-exact)."""
        raise NotImplementedError

    def __repr__(self):
        return f"<{type(self).__name__} {self.name!r} size={self.size}>"

    @property
    def values(self) -> Expr:
        """This axis's per-scenario values as an expression.

        Evaluates to a ``(chunk, 1)`` column so arithmetic against
        per-section ``(n,)`` vectors broadcasts to ``(chunk, n)``.
        """
        return _interned(("axis-values", self._uid), lambda: _AxisValues(self))


class _AxisValues(Expr):
    def __init__(self, axis: Axis):
        self.axis = axis

    def __repr__(self):
        return f"<values[{self.axis.name}] #{self._uid}>"

    def _compute(self, ctx, args):
        return ctx.axis_column(self.axis)


def _grid_take(indices, start, stop, points):
    """``np.linspace(start, stop, points)[indices]`` without the grid.

    Replicates np.linspace's arithmetic step for step — including the
    degenerate ``step == 0`` branch (numpy gh-5437), where numpy
    divides indices by ``div`` *before* multiplying by the denormal
    ``delta`` — so chunk slices are bitwise equal to slices of the
    materialized grid.
    """
    if points == 1:
        return np.full(indices.shape, start, dtype=float)
    div = points - 1
    delta = stop - start
    step = delta / div
    out = indices.astype(float)
    if step == 0:
        out /= div
        out = out * delta
    else:
        out = out * step
    out += start
    out[indices == div] = stop
    return out


class _LinspaceAxis(Axis):
    def __init__(self, name: str, start: float, stop: float, points: int):
        self.name = name
        self.start = start
        self.stop = stop
        self.points = points
        self.size = points

    def take(self, indices):
        return _grid_take(indices, self.start, self.stop, self.points)


class _LogSampleAxis(Axis):
    def __init__(self, name: str, start: float, stop: float, points: int):
        self.name = name
        self.start = start
        self.stop = stop
        self.points = points
        self.size = points
        self._log_start = math.log(start)
        self._log_stop = math.log(stop)

    def take(self, indices):
        if self.points == 1:
            return np.full(indices.shape, self.start, dtype=float)
        out = np.exp(
            _grid_take(indices, self._log_start, self._log_stop, self.points)
        )
        # Exact endpoints: exp(log(x)) can be off by an ulp.
        out[indices == 0] = self.start
        out[indices == self.points - 1] = self.stop
        return out


class _ValuesAxis(Axis):
    def __init__(self, name: str, values: np.ndarray):
        self.name = name
        self._values = values
        self.size = int(values.size)

    def take(self, indices):
        return self._values[indices]


def linspace(name: str, start: float, stop: float, points: int) -> Axis:
    """An evenly spaced axis; any chunk slice is bitwise equal to the
    same slice of ``np.linspace(start, stop, points)``."""
    start = float(start)
    stop = float(stop)
    points = int(points)
    if points < 1:
        raise ConfigurationError("a linspace axis needs at least 1 point")
    key = ("linspace", name, struct.pack("<dd", start, stop), points)
    return _interned(key, lambda: _LinspaceAxis(name, start, stop, points))


def log_sample(name: str, start: float, stop: float, points: int) -> Axis:
    """A logarithmically spaced axis from ``start`` to ``stop``
    (endpoints exact, interior points ``exp``-mapped from an even grid
    in log space)."""
    start = float(start)
    stop = float(stop)
    points = int(points)
    if points < 1:
        raise ConfigurationError("a log_sample axis needs at least 1 point")
    if start <= 0.0 or stop <= 0.0:
        raise ConfigurationError(
            "log_sample needs positive start/stop, got "
            f"[{start}, {stop}]"
        )
    key = ("log-sample", name, struct.pack("<dd", start, stop), points)
    return _interned(key, lambda: _LogSampleAxis(name, start, stop, points))


def values_axis(name: str, values) -> Axis:
    """An axis over explicitly listed values (interned by content)."""
    arr = np.asarray(values, dtype=float)
    if arr.ndim != 1 or arr.size == 0:
        raise ConfigurationError(
            "a values axis needs a non-empty 1-D value list, got shape "
            f"{arr.shape}"
        )
    frozen = arr.copy()
    frozen.setflags(write=False)
    digest = hashlib.sha1(frozen.tobytes()).digest()
    key = ("values", name, frozen.size, digest)
    return _interned(key, lambda: _ValuesAxis(name, frozen))


class _LogNormalFactors(Axis):
    """Mean-preserving log-normal ``(3, n)`` factor draws per scenario.

    The draw stream replicates the eager Monte-Carlo arithmetic of
    :func:`repro.apps.sample_delays` exactly: one
    ``default_rng(seed)``, normals drawn in ``(count, sections, 3)``
    layout, shifted by ``-sigma^2/2`` and transposed to ``(count, 3,
    sections)``. Generator streams are prefix-stable, so chunked draws
    concatenate bitwise to the single full draw.
    """

    sequential = True

    def __init__(self, name, sigmas, sections, samples, seed):
        self.name = name
        self.sigmas = sigmas
        self.sections = sections
        self.size = samples
        self.seed = seed

    def take(self, indices):
        raise ConfigurationError(
            f"factor axis {self.name!r} has no scalar values; read "
            ".factors / .resistance / .inductance / .capacitance"
        )

    def start_stream(self) -> np.random.Generator:
        return np.random.default_rng(self.seed)

    def draw(self, rng: np.random.Generator, count: int) -> np.ndarray:
        sig = self.sigmas
        z = rng.standard_normal((count, self.sections, 3))
        return np.exp(-0.5 * sig * sig + sig * z).transpose(0, 2, 1)

    @property
    def factors(self) -> Expr:
        """The ``(chunk, 3, n)`` factor block as an expression."""
        return _interned(("factors", self._uid), lambda: _FactorBlock(self))

    @property
    def resistance(self) -> Expr:
        """The ``(chunk, n)`` resistance-factor rows."""
        return self._row(0)

    @property
    def inductance(self) -> Expr:
        """The ``(chunk, n)`` inductance-factor rows."""
        return self._row(1)

    @property
    def capacitance(self) -> Expr:
        """The ``(chunk, n)`` capacitance-factor rows."""
        return self._row(2)

    def _row(self, row: int) -> Expr:
        block = self.factors
        return _interned(
            ("elem", block._uid, row), lambda: _ElementRow(block, row)
        )


class _FactorBlock(Expr):
    stateful = True

    def __init__(self, axis: _LogNormalFactors):
        self.axis = axis

    def __repr__(self):
        return f"<factors[{self.axis.name}] #{self._uid}>"

    def _compute(self, ctx, args):
        return ctx.draw_block(self.axis)


class _ElementRow(Expr):
    def __init__(self, block: _FactorBlock, row: int):
        self.deps = (block,)
        self.row = row

    def __repr__(self):
        return f"<elem[{self.row}] #{self._uid}>"

    def _compute(self, ctx, args):
        return args[0][:, self.row, :]


def lognormal_factors(
    name: str,
    *,
    sigmas,
    sections: int,
    samples: int,
    seed: int,
) -> Axis:
    """A sequential Monte-Carlo axis of log-normal element factors.

    ``sigmas`` are the three per-element log-domain sigmas (the
    :meth:`~repro.apps.VariationModel.log_sigmas` triple). The axis is
    *sequential*: chunks must be evaluated in offset order because the
    generator stream has no random access, so it cannot appear in a
    :func:`cross` product.
    """
    sig = np.asarray(sigmas, dtype=float)
    if sig.shape != (3,):
        raise ConfigurationError(
            f"lognormal_factors needs exactly 3 sigmas, got shape {sig.shape}"
        )
    sections = int(sections)
    samples = int(samples)
    if sections < 1 or samples < 1:
        raise ConfigurationError(
            "lognormal_factors needs positive sections and samples"
        )
    frozen = sig.copy()
    frozen.setflags(write=False)
    key = ("lognormal", name, frozen.tobytes(), sections, samples, int(seed))
    return _interned(
        key,
        lambda: _LogNormalFactors(name, frozen, sections, samples, int(seed)),
    )


# -- scenario spaces ---------------------------------------------------------


class ScenarioSpace:
    """N axes glued into one scenario enumeration.

    ``zip`` mode pairs equal-length axes elementwise (scenario ``i``
    reads element ``i`` of every axis); ``cross`` mode enumerates the
    cartesian product in row-major order (first axis slowest).
    Sequential axes cannot be crossed — their streams have no random
    access — but a zip over one sequential axis streams fine.
    """

    def __init__(self, axes, mode: str):
        axes = tuple(axes)
        if not axes:
            raise ConfigurationError(
                "a scenario space needs at least one axis"
            )
        for axis in axes:
            if not isinstance(axis, Axis):
                raise ConfigurationError(
                    f"scenario spaces take Axis objects, got {axis!r}"
                )
        names = [axis.name for axis in axes]
        if len(set(names)) != len(names):
            raise ConfigurationError(
                f"axis names must be unique, got {names}"
            )
        if mode not in ("zip", "cross"):
            raise ConfigurationError(f"unknown scenario mode {mode!r}")
        if mode == "zip":
            sizes = {axis.size for axis in axes}
            if len(sizes) != 1:
                raise ConfigurationError(
                    "zip_axes needs equal-length axes, got sizes "
                    f"{[axis.size for axis in axes]}"
                )
            size = sizes.pop()
        else:
            sequential = [a.name for a in axes if a.sequential]
            if sequential:
                raise ConfigurationError(
                    f"sequential axes {sequential} cannot be crossed; "
                    "their draw streams have no random access"
                )
            size = 1
            for axis in axes:
                size *= axis.size
        self.axes = axes
        self.mode = mode
        self.size = size

    @property
    def sequential_axes(self) -> Tuple[Axis, ...]:
        return tuple(axis for axis in self.axes if axis.sequential)

    def axis_indices(self, axis: Axis, lo: int, hi: int) -> np.ndarray:
        """Per-axis element indices of flat scenarios ``[lo, hi)``."""
        if axis not in self.axes:
            raise ConfigurationError(
                f"axis {axis.name!r} is not part of this scenario space"
            )
        flat = np.arange(lo, hi)
        if self.mode == "zip":
            return flat
        stride = 1
        for later in self.axes[self.axes.index(axis) + 1:]:
            stride *= later.size
        return (flat // stride) % axis.size

    def axis_chunk(self, axis: Axis, lo: int, hi: int) -> np.ndarray:
        """The values ``axis`` contributes to scenarios ``[lo, hi)``."""
        return axis.take(self.axis_indices(axis, lo, hi))


def zip_axes(*axes: Axis) -> ScenarioSpace:
    """Pair equal-length axes elementwise into one scenario space."""
    return ScenarioSpace(axes, "zip")


def cross(*axes: Axis) -> ScenarioSpace:
    """The cartesian product of axes, row-major (first axis slowest)."""
    return ScenarioSpace(axes, "cross")


def scenario_space(*axes: Axis) -> ScenarioSpace:
    """:func:`zip_axes` under a name that reads better for one axis."""
    return ScenarioSpace(axes, "zip")
