"""Lazy scenario-expression DAGs compiled into chunked batch passes.

The sweep layer turns "evaluate the closed forms over S scenarios"
from an eager ``(S, 3, n)`` block into a three-step program:

1. **Describe** (:mod:`.expr`) — axes (:func:`linspace`,
   :func:`log_sample`, :func:`values_axis`,
   :func:`lognormal_factors`) combined by :func:`zip_axes` /
   :func:`cross`, with per-section ``(R, L, C)`` quantities written as
   ordinary arithmetic on expression nodes. Nodes are hash-consed, so
   shared subexpressions are shared objects.
2. **Compile** (:mod:`.compile`) — :func:`compile_sweep` linearizes
   the DAG into a post-order schedule with CSE counts and validates
   axes against the scenario space.
3. **Execute** (:mod:`.execute`) — :func:`iter_sweep` /
   :func:`run_sweep` stream bounded chunks through the execution
   runtime (planned per chunk across the calibrated serial/sharded
   crossover), evaluating each shared subtree once per chunk. Peak
   value-matrix memory is ``O(chunk x n)``, not ``O(S x n)``, and the
   results are bitwise identical to the eager batch path.

``repro.apps``'s Monte-Carlo sampling, width sweeps and clock tuning
build on this layer; the service ``/sweep`` endpoint and the CLI
``repro sweep`` command stream its chunks directly.
"""

from .compile import CompiledSweep, compile_sweep
from .execute import DEFAULT_CHUNK, SweepResult, iter_sweep, run_sweep
from .expr import (
    Axis,
    Expr,
    ScenarioSpace,
    as_expr,
    clip,
    const,
    cross,
    exp,
    linspace,
    log,
    log_sample,
    lognormal_factors,
    scenario_space,
    sqrt,
    values_axis,
    zip_axes,
)

__all__ = [
    "Axis",
    "CompiledSweep",
    "DEFAULT_CHUNK",
    "Expr",
    "ScenarioSpace",
    "SweepResult",
    "as_expr",
    "clip",
    "compile_sweep",
    "const",
    "cross",
    "exp",
    "iter_sweep",
    "linspace",
    "log",
    "log_sample",
    "lognormal_factors",
    "run_sweep",
    "scenario_space",
    "sqrt",
    "values_axis",
    "zip_axes",
]
