"""Compile a scenario-expression DAG into an ordered evaluation plan.

Because expression nodes are hash-consed (see :mod:`.expr`), common
subexpressions are already *shared objects*; compiling is a dependency
walk that linearizes the DAG into one post-order schedule and counts
how much sharing the walk found. The executor evaluates the schedule
top to bottom with a per-node memo, so every shared subtree is
computed once per chunk — classic CSE, obtained structurally instead
of by pattern matching.

Compilation also validates that every axis the expressions read is
part of the declared scenario space, so a mismatch fails at compile
time with a named axis instead of mid-sweep with a shape error.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Set, Tuple

from ..errors import ConfigurationError
from .expr import Expr, Operand, ScenarioSpace, as_expr

__all__ = ["CompiledSweep", "compile_sweep"]


@dataclass(frozen=True)
class CompiledSweep:
    """A scenario space plus its scheduled ``(R, L, C)`` expressions.

    ``order`` is a post-order schedule of the unique DAG nodes (every
    node after its dependencies). ``total_refs`` counts every edge
    reference the walk saw; ``cse_hits`` counts how many of those hit
    an already-scheduled node — the number of evaluations sharing
    saves per chunk. ``cse=False`` keeps the schedule but makes the
    executor re-evaluate shared subtrees at every reference (the
    measurable baseline for the CSE benchmark).
    """

    space: ScenarioSpace
    resistance: Expr
    inductance: Expr
    capacitance: Expr
    order: Tuple[Expr, ...]
    total_refs: int
    cse_hits: int
    cse: bool

    @property
    def roots(self) -> Tuple[Expr, Expr, Expr]:
        return (self.resistance, self.inductance, self.capacitance)

    @property
    def unique_nodes(self) -> int:
        return len(self.order)


def compile_sweep(
    space: ScenarioSpace,
    *,
    resistance: Operand,
    inductance: Operand,
    capacitance: Operand,
    cse: bool = True,
) -> CompiledSweep:
    """Schedule the three element expressions over ``space``.

    Scalars and arrays coerce to constants, so e.g. ``inductance=0.0``
    declares an RC sweep directly. Raises
    :class:`~repro.errors.ConfigurationError` when an expression reads
    an axis that is not part of ``space``.
    """
    if not isinstance(space, ScenarioSpace):
        raise ConfigurationError(
            f"compile_sweep needs a ScenarioSpace, got {space!r}"
        )
    roots = (as_expr(resistance), as_expr(inductance), as_expr(capacitance))
    order: List[Expr] = []
    seen: Set[Expr] = set()
    total_refs = 0
    cse_hits = 0
    stack = [(root, False) for root in reversed(roots)]
    while stack:
        node, expanded = stack.pop()
        if expanded:
            order.append(node)
            continue
        total_refs += 1
        if node in seen:
            cse_hits += 1
            continue
        seen.add(node)
        stack.append((node, True))
        for dep in reversed(node.deps):
            stack.append((dep, False))
    for node in order:
        axis = node.axis
        if axis is not None and axis not in space.axes:
            raise ConfigurationError(
                f"expression reads axis {axis.name!r}, which is not part "
                "of the scenario space"
            )
    return CompiledSweep(
        space=space,
        resistance=roots[0],
        inductance=roots[1],
        capacitance=roots[2],
        order=tuple(order),
        total_refs=total_refs,
        cse_hits=cse_hits,
        cse=bool(cse),
    )
