"""Chunked execution of compiled sweeps through the runtime.

The executor never materializes the ``(S, 3, n)`` value block. It asks
the engine's chunk iterator for one reused ``(chunk, 3, n)`` staging
buffer, evaluates the compiled expression schedule per chunk (shared
subtrees once, per the CSE schedule), and hands every staged chunk to
:meth:`repro.runtime.ExecutionContext.sweep_chunks`, where the planner
routes it through the calibrated serial/sharded crossover as a
``"sweep"`` workload. Peak value-matrix memory is ``O(chunk x n)``
regardless of the scenario count.

Sequential axes (RNG-backed factor draws) carry their generator in a
per-run stream table keyed by axis; the chunk context advances each
stream exactly once per chunk and refuses out-of-order evaluation, so
the concatenated draws are bitwise the eager single draw.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Sequence, Tuple, Union

import numpy as np

from ..circuit.tree import RLCTree
from ..engine import compile_tree
from ..engine.compiled import CompiledTree
from ..engine.table import BatchTiming
from ..errors import ConfigurationError
from ..runtime import ExecutionContext, RuntimeConfig, resolve_context
from .compile import CompiledSweep
from .expr import Axis, Expr

__all__ = ["DEFAULT_CHUNK", "SweepResult", "iter_sweep", "run_sweep"]

#: Default scenario rows per staged chunk: large enough to amortize
#: dispatch, small enough that a chunk of a wide tree stays cache-warm.
DEFAULT_CHUNK = 4096


class _ChunkContext:
    """Evaluation context of one scenario block ``[lo, hi)``."""

    def __init__(self, space, lo: int, hi: int, streams):
        self._space = space
        self.lo = lo
        self.hi = hi
        self._streams = streams

    def axis_column(self, axis: Axis) -> np.ndarray:
        """The axis's values for this block as a ``(chunk, 1)`` column."""
        return self._space.axis_chunk(axis, self.lo, self.hi).reshape(-1, 1)

    def draw_block(self, axis: Axis) -> np.ndarray:
        """The next block of a sequential axis's draw stream."""
        state = self._streams[axis]
        if state["next"] != self.lo:
            raise ConfigurationError(
                f"sequential axis {axis.name!r} must be evaluated in "
                f"chunk order: expected offset {state['next']}, got "
                f"{self.lo}"
            )
        block = axis.draw(state["rng"], self.hi - self.lo)
        state["next"] = self.hi
        return block


def _evaluate_roots(sweep: CompiledSweep, ctx: _ChunkContext):
    """The three root values for one chunk, honoring the CSE flag."""
    if sweep.cse:
        # Reference-counted schedule: drop a value from the memo the
        # moment its last consumer has run. Holding every intermediate
        # of the whole schedule alive defeats the allocator's buffer
        # reuse and costs more than the recomputation CSE saves.
        remaining: Dict[Expr, int] = {}
        for node in sweep.order:
            for dep in node.deps:
                remaining[dep] = remaining.get(dep, 0) + 1
        for root in sweep.roots:
            remaining[root] = remaining.get(root, 0) + 1
        memo: Dict[Expr, object] = {}
        for node in sweep.order:
            args = []
            for dep in node.deps:
                args.append(memo[dep])
                remaining[dep] -= 1
                if remaining[dep] == 0:
                    del memo[dep]
            memo[node] = node._compute(ctx, args)
        return tuple(memo[root] for root in sweep.roots)

    # CSE disabled: re-walk the expression *tree*, recomputing shared
    # subtrees at every reference. Stateful nodes stay memoized so an
    # RNG stream never advances twice within one chunk.
    stateful: Dict[Expr, object] = {}

    def evaluate(node: Expr):
        if node.stateful and node in stateful:
            return stateful[node]
        value = node._compute(ctx, [evaluate(dep) for dep in node.deps])
        if node.stateful:
            stateful[node] = value
        return value

    return tuple(evaluate(root) for root in sweep.roots)


def iter_sweep(
    sweep: CompiledSweep,
    tree: Union[RLCTree, CompiledTree],
    *,
    chunk_size: int = DEFAULT_CHUNK,
    settle_band: float = 0.1,
    metrics: Optional[Sequence[str]] = None,
    backend: Optional[str] = None,
    config: Optional[RuntimeConfig] = None,
    context: Optional[ExecutionContext] = None,
) -> Iterator[Tuple[int, BatchTiming]]:
    """Stream a compiled sweep over ``tree`` as ``(offset, BatchTiming)``
    chunks in offset order.

    Each chunk's metrics are bitwise identical to the corresponding
    rows of one eager :func:`~repro.engine.table.analyze_batch` over
    the full materialized block — the kernels see the same values in
    the same order, whatever ``chunk_size`` — so chunking is purely a
    memory/latency knob.
    """
    runtime = resolve_context(context, config)
    compiled = compile_tree(tree) if isinstance(tree, RLCTree) else tree
    chunk_size = int(chunk_size)
    if chunk_size < 1:
        raise ConfigurationError(
            f"chunk_size must be positive, got {chunk_size}"
        )
    streams = {
        axis: {"rng": axis.start_stream(), "next": 0}
        for axis in sweep.space.sequential_axes
    }

    def fill(view: np.ndarray, lo: int, hi: int) -> None:
        ctx = _ChunkContext(sweep.space, lo, hi, streams)
        r, l, c = _evaluate_roots(sweep, ctx)
        view[:, 0, :] = r
        view[:, 1, :] = l
        view[:, 2, :] = c

    return runtime.sweep_chunks(
        compiled,
        fill,
        sweep.space.size,
        chunk_size=chunk_size,
        settle_band=settle_band,
        metrics=metrics,
        backend=backend,
        provenance={
            "cse_hits": sweep.cse_hits,
            "unique_nodes": sweep.unique_nodes,
            "total_refs": sweep.total_refs,
        },
    )


@dataclass(frozen=True)
class SweepResult:
    """Materialized per-``(metric, node)`` columns of one executed sweep."""

    scenarios: int
    chunks: int
    columns: Dict[Tuple[str, str], np.ndarray]

    def column(self, metric: str, node: str) -> np.ndarray:
        """The ``(scenarios,)`` column of one metric at one node."""
        try:
            return self.columns[(metric, node)]
        except KeyError:
            raise ConfigurationError(
                f"({metric!r}, {node!r}) was not collected by this sweep"
            ) from None


def run_sweep(
    sweep: CompiledSweep,
    tree: Union[RLCTree, CompiledTree],
    *,
    nodes: Sequence[str],
    metrics: Sequence[str] = ("delay_50",),
    chunk_size: int = DEFAULT_CHUNK,
    settle_band: float = 0.1,
    backend: Optional[str] = None,
    config: Optional[RuntimeConfig] = None,
    context: Optional[ExecutionContext] = None,
) -> SweepResult:
    """Run a sweep to completion, keeping selected columns.

    Only the requested ``(metric, node)`` columns are accumulated —
    ``O(S)`` scalars each — while the value matrices stay chunked, so
    peak memory remains ``O(chunk x n)`` plus the output columns.
    """
    nodes = tuple(nodes)
    metrics = tuple(metrics)
    if not nodes:
        raise ConfigurationError("run_sweep needs at least one node")
    columns = {
        (metric, node): np.empty(sweep.space.size)
        for metric in metrics
        for node in nodes
    }
    chunks = 0
    for lo, batch in iter_sweep(
        sweep,
        tree,
        chunk_size=chunk_size,
        settle_band=settle_band,
        metrics=metrics,
        backend=backend,
        config=config,
        context=context,
    ):
        chunks += 1
        hi = lo + batch.scenarios
        for metric in metrics:
            for node in nodes:
                columns[(metric, node)][lo:hi] = batch.column(metric, node)
    return SweepResult(
        scenarios=sweep.space.size, chunks=chunks, columns=columns
    )
