"""Command-line interface: netlist in, timing out.

Gives the library the shape of a classic timing utility::

    python -m repro analyze net.sp                    # per-node timing table
    python -m repro analyze net.sp --node out --csv
    python -m repro simulate net.sp --node out        # waveform CSV
    python -m repro compare net.sp                    # model vs exact
    python -m repro sensitivity net.sp --node out     # delay gradient
    python -m repro fit --metric rise                 # re-run the Fig. 6 fit
    python -m repro window --width 4u --thickness 1u --height 2u \\
        --length 5m --rise-time 50p                   # does L matter?

All commands read SPICE-subset netlists (see ``repro.circuit.netlist``)
and print to stdout; ``main()`` returns a process exit code, so the test
suite can drive it without subprocesses.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

import numpy as np

from . import __version__
from .analysis import TreeAnalyzer, delay_sensitivities, fit_delay, fit_rise
from .circuit import WireGeometry, inductance_window
from .circuit.netlist import loads
from .errors import ReproError
from .runtime import BACKEND_NAMES, ExecutionContext, RuntimeConfig
from .simulation import (
    ExactSimulator,
    ExponentialSource,
    RampSource,
    StepSource,
)
from .units import format_value, parse_value

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Equivalent Elmore delay analysis for RLC trees "
        "(Ismail/Friedman/Neves, DAC 1999).",
    )
    parser.add_argument("--version", action="version", version=__version__)
    parser.add_argument(
        "--debug", action="store_true",
        help="print full tracebacks instead of one-line error messages, "
        "and dump the engine cache/counter statistics to stderr after "
        "the command",
    )
    parser.add_argument(
        "--shard-timeout", type=float, default=None, metavar="SECONDS",
        help="wall-clock budget per shard of a supervised multi-process "
        "dispatch; 0 or negative disables the deadline "
        "(default: the runtime's 30s)",
    )
    parser.add_argument(
        "--max-retries", type=int, default=None, metavar="N",
        help="re-dispatch attempts for a shard whose worker died or "
        "timed out before degrading to serial in-process evaluation "
        "(default: 2)",
    )
    parser.add_argument(
        "--array-backend", default=None, metavar="NAME",
        help="array backend for the compiled kernels: numpy, cupy, mlx "
        "or auto (best available, preferring accelerators); "
        "unavailable backends fail with a clear error "
        "(default: the process-wide active backend, normally numpy)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    analyze = commands.add_parser(
        "analyze", help="closed-form timing at every node of a netlist"
    )
    analyze.add_argument("netlist", help="netlist file, or - for stdin")
    analyze.add_argument(
        "--node", action="append", default=None,
        help="restrict to these nodes (repeatable; default: all)",
    )
    analyze.add_argument(
        "--settle-band", type=float, default=0.1,
        help="settling band as a fraction of final value (default 0.1)",
    )
    analyze.add_argument("--csv", action="store_true", help="CSV output")
    analyze.add_argument(
        "--unguarded", action="store_true",
        help="bypass the guarded fallback chain and use the raw closed "
        "forms (faster, but hostile netlists may fail)",
    )
    analyze.add_argument(
        "--repair", action="store_true",
        help="let the guarded analyzer auto-repair invalid element values "
        "(clamp NaN/inf, epsilon capacitance, merge shorts)",
    )
    analyze.add_argument(
        "--backend", choices=BACKEND_NAMES, default=None,
        help="force the execution backend instead of letting the runtime "
        "planner route by workload (default: auto)",
    )

    simulate = commands.add_parser(
        "simulate", help="exact waveform at a node (CSV to stdout)"
    )
    simulate.add_argument("netlist")
    simulate.add_argument("--node", required=True)
    simulate.add_argument(
        "--input", choices=("step", "exp", "ramp"), default="step"
    )
    simulate.add_argument(
        "--rise-time", default="100p",
        help="input 0-90%% rise time for exp/ramp inputs (default 100p)",
    )
    simulate.add_argument("--amplitude", type=float, default=1.0)
    simulate.add_argument("--points", type=int, default=1001)
    simulate.add_argument(
        "--t-end", default=None,
        help="simulation horizon (default: auto from settling)",
    )
    simulate.add_argument(
        "--model", action="store_true",
        help="also emit the closed-form second-order waveform column",
    )

    sensitivity = commands.add_parser(
        "sensitivity", help="analytic delay gradient at a node"
    )
    sensitivity.add_argument("netlist")
    sensitivity.add_argument("--node", required=True)
    sensitivity.add_argument(
        "--metric", choices=("delay", "rise"), default="delay"
    )
    sensitivity.add_argument(
        "--top", type=int, default=None,
        help="print only the K most impactful sections",
    )

    compare = commands.add_parser(
        "compare",
        help="closed-form vs exact simulated timing at every node",
    )
    compare.add_argument("netlist")
    compare.add_argument(
        "--node", action="append", default=None,
        help="restrict to these nodes (repeatable; default: all)",
    )
    compare.add_argument("--points", type=int, default=8001)
    compare.add_argument("--csv", action="store_true")

    fit = commands.add_parser(
        "fit", help="re-run the paper's Fig. 6 curve fit from scratch"
    )
    fit.add_argument("--metric", choices=("delay", "rise"), default="delay")

    sweep = commands.add_parser(
        "sweep",
        help="sweep one element of one section through the chunked "
        "lazy executor (CSV to stdout, streamed per chunk)",
    )
    sweep.add_argument("netlist", help="netlist file, or - for stdin")
    sweep.add_argument(
        "--section", required=True, metavar="NAME",
        help="section whose element is swept",
    )
    sweep.add_argument(
        "--element",
        choices=("resistance", "inductance", "capacitance"),
        default="resistance",
    )
    sweep.add_argument(
        "--start", required=True,
        help="first swept value (units accepted, e.g. 10 or 50m)",
    )
    sweep.add_argument(
        "--stop", required=True, help="last swept value",
    )
    sweep.add_argument(
        "--points", type=int, default=101,
        help="number of swept values (default 101)",
    )
    sweep.add_argument(
        "--log", action="store_true",
        help="logarithmic spacing instead of linear",
    )
    sweep.add_argument(
        "--node", action="append", default=None,
        help="observation nodes (repeatable; default: all leaves)",
    )
    sweep.add_argument(
        "--metric", action="append", default=None,
        help="batch metrics to emit (repeatable; default: delay_50)",
    )
    sweep.add_argument(
        "--chunk-size", type=int, default=None, metavar="N",
        help="scenarios staged per batch pass; bounds peak memory "
        "(default: the executor's default chunk)",
    )
    sweep.add_argument(
        "--settle-band", type=float, default=0.1,
        help="settling band as a fraction of final value (default 0.1)",
    )
    sweep.add_argument(
        "--backend", choices=BACKEND_NAMES, default=None,
        help="force the execution backend for every chunk "
        "(default: planner-routed per chunk)",
    )

    serve = commands.add_parser(
        "serve",
        help="long-lived analysis service: one warm runtime context "
        "behind an HTTP front with coalescing and admission control",
    )
    serve.add_argument(
        "--host", default="127.0.0.1",
        help="interface to bind (default 127.0.0.1)",
    )
    serve.add_argument(
        "--port", type=int, default=8341,
        help="TCP port; 0 picks a free one (default 8341)",
    )
    serve.add_argument(
        "--max-inflight", type=int, default=8, metavar="N",
        help="admitted analysis requests allowed at once; the next one "
        "gets 429 + Retry-After (default 8)",
    )
    serve.add_argument(
        "--coalesce-window", type=float, default=0.005, metavar="SECONDS",
        help="how long a point query waits to merge with concurrent "
        "same-topology queries (default 0.005)",
    )
    serve.add_argument(
        "--max-group", type=int, default=64, metavar="N",
        help="largest coalesced group; a full group flushes immediately "
        "(default 64)",
    )
    serve.add_argument(
        "--retry-after", type=float, default=1.0, metavar="SECONDS",
        help="Retry-After hint on 429 responses (default 1)",
    )
    serve.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="worker budget of the context's sharded backend "
        "(default: runtime default)",
    )
    serve.add_argument(
        "--calibration", default=None, metavar="PATH",
        help="install a persisted crossover calibration "
        "(BENCH_crossover.json) into the serving context",
    )
    serve.add_argument(
        "--max-requests", type=int, default=0, metavar="N",
        help="drain and exit after N admitted requests; 0 = run until "
        "SIGINT/SIGTERM (smoke-test knob, default 0)",
    )

    window = commands.add_parser(
        "window",
        help="the [8] inductance-importance window for a wire geometry",
    )
    for flag, required, default in (
        ("--width", True, None),
        ("--thickness", True, None),
        ("--height", True, None),
        ("--length", True, None),
        ("--rise-time", True, None),
        ("--resistivity", False, "2.65e-8"),
        ("--dielectric", False, "3.9"),
    ):
        window.add_argument(flag, required=required, default=default)

    return parser


def _read_tree(path: str):
    if path == "-":
        text = sys.stdin.read()
    else:
        with open(path) as handle:
            text = handle.read()
    return loads(text)


def _cmd_analyze(args) -> int:
    tree = _read_tree(args.netlist)
    if args.unguarded:
        analyzer = args.runtime.session(tree, args.settle_band)
    else:
        from .robustness import GuardedAnalyzer, RepairPolicy

        policy = RepairPolicy.repair_all() if args.repair else None
        analyzer = GuardedAnalyzer(
            tree, settle_band=args.settle_band, policy=policy,
            context=args.runtime,
        )
        for diagnostic in analyzer.validation.warnings():
            print(f"warning: {diagnostic}", file=sys.stderr)
        tree = analyzer.tree  # the (possibly repaired) tree
    nodes = args.node if args.node else list(tree.nodes)
    rows = [analyzer.timing(node) for node in nodes]
    if args.csv:
        print("node,zeta,omega_n,delay_50,rise_time,overshoot,settling,"
              "elmore_delay")
        for t in rows:
            print(
                f"{t.node},{t.zeta:.6g},{t.omega_n:.6g},{t.delay_50:.6g},"
                f"{t.rise_time:.6g},{t.overshoot:.6g},{t.settling:.6g},"
                f"{t.elmore_delay:.6g}"
            )
    else:
        print(f"{'node':>10} {'zeta':>8} {'50% delay':>12} {'rise':>12} "
              f"{'overshoot':>10} {'settling':>12} {'elmore':>12}")
        for t in rows:
            print(
                f"{t.node:>10} {t.zeta:>8.3f} "
                f"{format_value(t.delay_50, 's'):>12} "
                f"{format_value(t.rise_time, 's'):>12} "
                f"{t.overshoot:>9.1%} "
                f"{format_value(t.settling, 's'):>12} "
                f"{format_value(t.elmore_delay, 's'):>12}"
            )
    return 0


def _cmd_simulate(args) -> int:
    tree = _read_tree(args.netlist)
    simulator = ExactSimulator(tree)
    if args.input == "step":
        source = StepSource(amplitude=args.amplitude)
    elif args.input == "exp":
        source = ExponentialSource.from_rise_time(
            parse_value(args.rise_time), amplitude=args.amplitude
        )
    else:
        source = RampSource(
            amplitude=args.amplitude, rise_time=parse_value(args.rise_time)
        )
    t_end = parse_value(args.t_end) if args.t_end else None
    t = simulator.time_grid(points=args.points, t_end=t_end)
    exact = simulator.response(source, args.node, t)
    columns = [t, exact]
    header = "time,v_exact"
    if args.model:
        session = args.runtime.session(tree)
        analyzer = session.analyzer or TreeAnalyzer(tree)
        model = analyzer.model(args.node)
        if model is None:
            raise ReproError(
                f"node {args.node!r} is RC-limit; no second-order waveform"
            )
        from .analysis.response import model_response

        columns.append(model_response(model, source, t))
        header += ",v_model"
    print(header)
    for values in np.column_stack(columns):
        print(",".join(f"{v:.8g}" for v in values))
    return 0


def _cmd_sensitivity(args) -> int:
    tree = _read_tree(args.netlist)
    report = delay_sensitivities(tree, args.node, metric=args.metric)
    print(f"{args.metric} at {args.node}: {format_value(report.value, 's')}")
    order = report.steepest_sections(args.top or len(report.sensitivities))
    print(f"{'section':>10} {'d/dR (s/ohm)':>14} {'d/dL (s/H)':>14} "
          f"{'d/dC (s/F)':>14} {'rel impact':>12}")
    for name in order:
        s = report.sensitivities[name]
        print(
            f"{name:>10} {s.d_resistance:>14.4e} {s.d_inductance:>14.4e} "
            f"{s.d_capacitance:>14.4e} "
            f"{format_value(s.relative_impact, 's'):>12}"
        )
    return 0


def _cmd_compare(args) -> int:
    from .simulation.measures import delay_50 as measured_delay_50
    from .simulation.measures import rise_time_10_90

    tree = _read_tree(args.netlist)
    session = args.runtime.session(tree)
    simulator = ExactSimulator(tree)
    nodes = args.node if args.node else list(tree.nodes)
    t = simulator.time_grid(points=args.points, span_factor=14.0)
    waveforms = simulator.step_response(nodes, t)
    if len(nodes) == 1:
        waveforms = waveforms.reshape(1, -1)
    if args.csv:
        print("node,model_delay,exact_delay,delay_err_pct,"
              "model_rise,exact_rise,rise_err_pct")
    else:
        print(f"{'node':>10} {'model delay':>12} {'exact delay':>12} "
              f"{'err':>7} {'model rise':>12} {'exact rise':>12} {'err':>7}")
    for row, node in enumerate(nodes):
        exact_delay = measured_delay_50(t, waveforms[row])
        exact_rise = rise_time_10_90(t, waveforms[row])
        model_delay = session.value("delay_50", node)
        model_rise = session.value("rise_time", node)
        delay_err = 100.0 * abs(model_delay - exact_delay) / exact_delay
        rise_err = 100.0 * abs(model_rise - exact_rise) / exact_rise
        if args.csv:
            print(f"{node},{model_delay:.6g},{exact_delay:.6g},"
                  f"{delay_err:.3f},{model_rise:.6g},{exact_rise:.6g},"
                  f"{rise_err:.3f}")
        else:
            print(
                f"{node:>10} {format_value(model_delay, 's'):>12} "
                f"{format_value(exact_delay, 's'):>12} "
                f"{delay_err:>6.1f}% "
                f"{format_value(model_rise, 's'):>12} "
                f"{format_value(exact_rise, 's'):>12} "
                f"{rise_err:>6.1f}%"
            )
    return 0


def _cmd_fit(args) -> int:
    result = fit_delay() if args.metric == "delay" else fit_rise()
    print(f"metric: {args.metric}")
    print(f"form:   {result.form}")
    print("coefficients: "
          + ", ".join(f"{c:.6g}" for c in result.coefficients))
    print(f"max relative error over zeta grid: "
          f"{result.max_relative_error:.2%}")
    return 0


def _cmd_sweep(args) -> int:
    from .engine import compile_tree
    from .sweep import (
        DEFAULT_CHUNK,
        compile_sweep,
        const,
        iter_sweep,
        linspace,
        log_sample,
        scenario_space,
    )

    tree = _read_tree(args.netlist)
    compiled = compile_tree(tree)
    slot = compiled.topology.node_index(args.section)
    start = parse_value(args.start)
    stop = parse_value(args.stop)
    make_axis = log_sample if args.log else linspace
    axis = make_axis("value", start, stop, args.points)

    # Masked-expression override of the swept slot: the axis value
    # lands on the swept section (x * 1 + 0 == x), the nominal vector
    # survives everywhere else (x * 0 + base == base).
    hot = np.zeros(compiled.size)
    hot[slot] = 1.0
    base = {
        "resistance": compiled.resistance,
        "inductance": compiled.inductance,
        "capacitance": compiled.capacitance,
    }
    masked = base[args.element].copy()
    masked[slot] = 0.0
    roots = {element: const(vector) for element, vector in base.items()}
    roots[args.element] = axis.values * const(hot) + const(masked)
    sweep = compile_sweep(scenario_space(axis), **roots)

    nodes = args.node if args.node else list(tree.leaves())
    metrics = tuple(args.metric) if args.metric else ("delay_50",)
    chunk = DEFAULT_CHUNK if args.chunk_size is None else args.chunk_size
    print(
        "value,"
        + ",".join(f"{metric}:{node}" for metric in metrics for node in nodes)
    )
    for offset, batch in iter_sweep(
        sweep,
        compiled,
        chunk_size=chunk,
        settle_band=args.settle_band,
        metrics=metrics,
        backend=args.backend,
        context=args.runtime,
    ):
        values = sweep.space.axis_chunk(
            axis, offset, offset + batch.scenarios
        )
        columns = [
            batch.column(metric, node)
            for metric in metrics
            for node in nodes
        ]
        for i, value in enumerate(values):
            cells = ",".join(f"{column[i]:.9g}" for column in columns)
            print(f"{value:.9g},{cells}")
    return 0


def _cmd_window(args) -> int:
    geometry = WireGeometry(
        width=parse_value(args.width),
        thickness=parse_value(args.thickness),
        height=parse_value(args.height),
        resistivity=parse_value(args.resistivity),
        dielectric_constant=parse_value(args.dielectric),
    )
    window = inductance_window(geometry, args.length, args.rise_time)
    print(f"r = {format_value(geometry.resistance_per_meter * 1e-3, 'ohm')}/mm, "
          f"l = {format_value(geometry.inductance_per_meter * 1e-3, 'H')}/mm, "
          f"c = {format_value(geometry.capacitance_per_meter * 1e-3, 'F')}/mm")
    if window.exists:
        print(f"inductance matters for lengths in "
              f"({format_value(window.lower, 'm')}, "
              f"{format_value(window.upper, 'm')})")
    else:
        print("inductance window is empty: this wire is RC at any length")
    print(f"at {format_value(window.length, 'm')}: regime = {window.regime}")
    return 0


def _cmd_serve(args) -> int:
    import asyncio
    import signal

    from .service import AnalysisServer

    server = AnalysisServer(
        args.runtime,
        host=args.host,
        port=args.port,
        max_inflight=args.max_inflight,
        coalesce_window=args.coalesce_window,
        max_group=args.max_group,
        retry_after=args.retry_after,
        max_requests=args.max_requests,
    )

    def announce(ready) -> None:
        print(
            f"repro service listening on http://{args.host}:{ready.port} "
            f"(max_inflight={ready.max_inflight})",
            file=sys.stderr,
            flush=True,
        )

    async def run() -> None:
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, server.request_stop)
            except (NotImplementedError, RuntimeError):
                pass  # non-main thread or platform without signal support
        await server.serve(on_ready=announce)

    asyncio.run(run())
    print("repro service drained", file=sys.stderr, flush=True)
    return 0


_COMMANDS = {
    "analyze": _cmd_analyze,
    "compare": _cmd_compare,
    "simulate": _cmd_simulate,
    "sensitivity": _cmd_sensitivity,
    "fit": _cmd_fit,
    "sweep": _cmd_sweep,
    "window": _cmd_window,
    "serve": _cmd_serve,
}


def _print_cache_info(runtime: ExecutionContext) -> None:
    """Dump engine caches and runtime stats to stderr (``--debug``)."""
    from .engine import cache_info

    print("engine caches:", file=sys.stderr)
    for group, counters in cache_info().items():
        body = ", ".join(f"{key}={value}" for key, value in counters.items())
        print(f"  {group}: {body}", file=sys.stderr)
    stats = runtime.stats()
    print("runtime stats:", file=sys.stderr)
    for group in (
        "dispatch",
        "workloads",
        "plans",
        "pool",
        "supervision",
        "transport",
        "sweep",
    ):
        counters = stats[group]
        body = ", ".join(f"{key}={value}" for key, value in counters.items())
        print(f"  {group}: {body}", file=sys.stderr)
    for backend, state in stats["breakers"].items():
        print(
            f"  breaker[{backend}]: state={state['state']}, "
            f"consecutive_failures={state['consecutive_failures']}, "
            f"transitions={len(state['transitions'])}",
            file=sys.stderr,
        )
    phases = ", ".join(
        f"{name}={seconds:.6f}s" for name, seconds in stats["phases"].items()
    )
    print(f"  phases: {phases}", file=sys.stderr)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns a process exit code.

    Exit codes: 0 success, 2 for well-typed failures (a
    :class:`~repro.errors.ReproError` or a missing file), 3 for anything
    unexpected. ``--debug`` re-raises instead, for a full traceback, and
    prints the engine cache and runtime dispatch statistics to stderr.

    Every command runs inside one :class:`~repro.runtime.ExecutionContext`
    (``--backend`` forces its routing); the ``with`` block guarantees
    worker-pool and shared-memory teardown even when a command raises.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    overrides = {}
    if args.shard_timeout is not None:
        overrides["shard_timeout"] = (
            args.shard_timeout if args.shard_timeout > 0 else None
        )
    if args.max_retries is not None:
        overrides["max_retries"] = args.max_retries
    if args.array_backend is not None:
        overrides["array_backend"] = args.array_backend
    if getattr(args, "workers", None) is not None:
        overrides["workers"] = args.workers
    if getattr(args, "calibration", None):
        from pathlib import Path

        from .runtime import load_calibration

        calibration = load_calibration(Path(args.calibration))
        if calibration is not None:  # corrupt file degrades with a warning
            overrides["calibration"] = calibration
    config = RuntimeConfig(
        backend=getattr(args, "backend", None), **overrides
    )
    try:
        with ExecutionContext(config) as runtime:
            args.runtime = runtime
            exit_code = _COMMANDS[args.command](args)
            if args.debug:
                _print_cache_info(runtime)
            return exit_code
    except ReproError as exc:
        if args.debug:
            raise
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except FileNotFoundError as exc:
        if args.debug:
            raise
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except Exception as exc:  # the never-a-raw-traceback guarantee
        if args.debug:
            raise
        print(
            f"internal error ({type(exc).__name__}: {exc}); "
            "re-run with --debug for the traceback",
            file=sys.stderr,
        )
        return 3
