"""Engineering-notation helpers.

EDA tools live and die by unit suffixes: a clock-tree section is "25 ohm,
10 nH, 0.5 pF", not "25, 1e-8, 5e-13". This module converts between SPICE
style suffixed strings and floats, and formats floats back into the most
readable engineering form.

The accepted suffixes follow SPICE conventions (case-insensitive), with
``meg`` for 1e6 because ``m`` means milli::

    f=1e-15  p=1e-12  n=1e-9  u=1e-6  m=1e-3
    k=1e3    meg=1e6  g=1e9   t=1e12

Trailing unit names (``ohm``, ``f``, ``h``, ``s``, ``v``, ``a``) after the
suffix are ignored, as in SPICE (``10pF``, ``2.5nH``, ``50ohm``).
"""

from __future__ import annotations

import math
import re

from .errors import ElementValueError

__all__ = ["parse_value", "format_value", "SI_PREFIXES"]

#: Multipliers for SPICE-style suffixes, in lowercase.
SI_PREFIXES = {
    "f": 1e-15,
    "p": 1e-12,
    "n": 1e-9,
    "u": 1e-6,
    "m": 1e-3,
    "k": 1e3,
    "meg": 1e6,
    "g": 1e9,
    "t": 1e12,
}

# Number, then optional suffix, then optional alphabetic unit tail.
_VALUE_RE = re.compile(
    r"""^\s*
        (?P<number>[-+]?(\d+(\.\d*)?|\.\d+)([eE][-+]?\d+)?)
        (?P<suffix>meg|[fpnumkgt])?
        (?P<unit>[a-z]*)
        \s*$""",
    re.IGNORECASE | re.VERBOSE,
)

# Display prefixes for format_value, from largest to smallest.
_DISPLAY_PREFIXES = [
    (1e12, "T"),
    (1e9, "G"),
    (1e6, "M"),
    (1e3, "k"),
    (1.0, ""),
    (1e-3, "m"),
    (1e-6, "u"),
    (1e-9, "n"),
    (1e-12, "p"),
    (1e-15, "f"),
]


def parse_value(text: str | float | int) -> float:
    """Parse an engineering-notation value into a float.

    Floats and ints pass through unchanged, so APIs can accept either
    ``0.5e-12`` or ``"0.5pF"`` in the same argument.

    >>> parse_value("10pF")
    1e-11
    >>> parse_value("2.5nH")
    2.5e-09
    >>> parse_value("1meg")
    1000000.0
    >>> parse_value(42)
    42.0
    """
    if isinstance(text, (int, float)):
        value = float(text)
        if math.isnan(value):
            raise ElementValueError("value is NaN")
        return value

    match = _VALUE_RE.match(text)
    if match is None:
        raise ElementValueError(f"cannot parse value {text!r}")
    number = float(match.group("number"))
    suffix = match.group("suffix")
    if suffix is None:
        return number
    return number * SI_PREFIXES[suffix.lower()]


def format_value(value: float, unit: str = "", digits: int = 4) -> str:
    """Format ``value`` with the closest engineering prefix.

    >>> format_value(1e-11, "F")
    '10pF'
    >>> format_value(2.5e-9, "H")
    '2.5nH'
    >>> format_value(0.0, "s")
    '0s'
    """
    if value == 0.0:
        return f"0{unit}"
    if math.isnan(value) or math.isinf(value):
        return f"{value}{unit}"
    magnitude = abs(value)
    for scale, prefix in _DISPLAY_PREFIXES:
        if magnitude >= scale:
            scaled = value / scale
            text = f"{scaled:.{digits}g}"
            return f"{text}{prefix}{unit}"
    # Below 1e-15: fall back to scientific notation.
    return f"{value:.{digits}g}{unit}"
