"""Analytic sensitivities of the closed-form delay — O(n) gradients.

The paper's conclusion argues its expressions are "useful for
optimization and synthesis" because they are continuous. This module
completes that argument: the closed forms are also *differentiable in
closed form*, so a gradient-based optimizer (wire sizing, spacing,
shielding) gets the exact derivative of the 50% delay at a node with
respect to every section's R, L and C — computed for the whole tree in
O(n), the same cost as the delay itself.

The math, for target node ``i``:

* ``T_RC(i) = sum_{s in path(i)} R_s C_load(s)`` gives
  ``dT_RC/dR_s = C_load(s)`` for path sections (0 otherwise), and
  ``dT_RC/dC_k = R_ki`` — the common-path resistance — for every node
  ``k``. ``R_ki`` for all ``k`` at once is one preorder pass: it is the
  path prefix sum at the deepest path-of-``i`` ancestor of ``k``. The
  ``T_LC`` derivatives are the same shapes with L in place of R.
* With ``w_n = T_LC^(-1/2)`` and ``zeta = T_RC w_n / 2`` (eqs. 29-30),
  the chain rule through the fitted scaled delay ``g(zeta)`` (eq. 33)
  gives ``t_50 = g(zeta)/w_n`` and::

      dt/dx = g'(zeta)/w_n * dzeta/dx - g(zeta)/w_n^2 * dw_n/dx

  with ``g'`` analytic. RC-limit nodes (``T_LC = 0``) use the Elmore
  form ``t = ln 2 * T_RC`` whose gradient is ``ln 2 * dT_RC/dx``.

Every derivative is validated against central finite differences in the
test suite.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Literal, Tuple

from ..circuit.tree import RLCTree
from ..errors import ConfigurationError, TopologyError
from .fitting import DELAY_FIT_COEFFICIENTS, RISE_FIT_COEFFICIENTS
from .moments import capacitive_loads, second_order_sums

__all__ = [
    "SectionSensitivity",
    "SensitivityReport",
    "delay_sensitivities",
    "scaled_delay_derivative",
    "scaled_rise_derivative",
]

_LN2 = math.log(2.0)
_LN9 = math.log(9.0)

Metric = Literal["delay", "rise"]


def scaled_delay_derivative(zeta: float) -> float:
    """d/dzeta of the eq. 33 fit: ``-(a/b) e^(-zeta/b) + c``."""
    a, b, c = DELAY_FIT_COEFFICIENTS
    return -(a / b) * math.exp(-zeta / b) + c


def scaled_rise_derivative(zeta: float) -> float:
    """d/dzeta of the rise-time rational fit (quotient rule)."""
    n0, n1, n2, n3, d1, d2 = RISE_FIT_COEFFICIENTS
    num = n0 + zeta * (n1 + zeta * (n2 + zeta * n3))
    num_d = n1 + zeta * (2.0 * n2 + zeta * 3.0 * n3)
    den = 1.0 + zeta * (d1 + zeta * d2)
    den_d = d1 + 2.0 * d2 * zeta
    return (num_d * den - num * den_d) / (den * den)


def _scaled_metric(zeta: float, metric: Metric) -> Tuple[float, float]:
    """(g(zeta), g'(zeta)) for the chosen metric."""
    if metric == "delay":
        a, b, c = DELAY_FIT_COEFFICIENTS
        return a * math.exp(-zeta / b) + c * zeta, scaled_delay_derivative(zeta)
    n0, n1, n2, n3, d1, d2 = RISE_FIT_COEFFICIENTS
    num = n0 + zeta * (n1 + zeta * (n2 + zeta * n3))
    den = 1.0 + zeta * (d1 + zeta * d2)
    return num / den, scaled_rise_derivative(zeta)


@dataclass(frozen=True)
class SectionSensitivity:
    """Derivatives of one node's metric w.r.t. one section's values.

    Units: seconds per ohm / per henry / per farad respectively. The
    section's own values are carried along so relative (percent-change)
    impacts can be ranked without the tree at hand.
    """

    section: str
    d_resistance: float
    d_inductance: float
    d_capacitance: float
    resistance: float
    inductance: float
    capacitance: float

    @property
    def relative_impact(self) -> float:
        """|x * dmetric/dx| summed over R, L, C: the metric shift per
        unit *fractional* change of this section."""
        return (
            abs(self.resistance * self.d_resistance)
            + abs(self.inductance * self.d_inductance)
            + abs(self.capacitance * self.d_capacitance)
        )


@dataclass(frozen=True)
class SensitivityReport:
    """Gradient of one node's closed-form metric over the whole tree."""

    node: str
    metric: Metric
    value: float
    sensitivities: Dict[str, SectionSensitivity]

    def wrt_resistance(self, section: str) -> float:
        return self.sensitivities[section].d_resistance

    def wrt_inductance(self, section: str) -> float:
        return self.sensitivities[section].d_inductance

    def wrt_capacitance(self, section: str) -> float:
        return self.sensitivities[section].d_capacitance

    def steepest_sections(self, count: int = 5) -> Tuple[str, ...]:
        """Sections whose *relative* knobs move the metric most:
        ranked by |x * dmetric/dx| summed over R, L, C — the first
        places a sizing optimizer should look."""
        ranked = sorted(
            self.sensitivities.values(),
            key=lambda s: s.relative_impact,
            reverse=True,
        )
        return tuple(s.section for s in ranked[:count])


def delay_sensitivities(
    tree: RLCTree,
    node: str,
    metric: Metric = "delay",
) -> SensitivityReport:
    """Exact gradient of the closed-form metric at ``node``.

    Returns the metric value and, for every section in the tree, its
    partial derivatives. Total cost: three O(n) passes.
    """
    if node not in tree or node == tree.root:
        raise TopologyError(f"unknown node {node!r}")
    if metric not in ("delay", "rise"):
        raise ConfigurationError(
            f"unknown metric {metric!r}; use 'delay' or 'rise'"
        )

    t_rc_all, t_lc_all = second_order_sums(tree)
    t_rc, t_lc = t_rc_all[node], t_lc_all[node]
    loads = capacitive_loads(tree)
    path = set(tree.path_to(node))

    # Common-path prefix sums R_ki / L_ki for every k, one preorder pass:
    # carry the prefix at the deepest path-of-node ancestor seen so far.
    prefix_r: Dict[str, float] = {}
    prefix_l: Dict[str, float] = {}
    running_r: Dict[str, float] = {tree.root: 0.0}
    running_l: Dict[str, float] = {tree.root: 0.0}
    common_r: Dict[str, float] = {}
    common_l: Dict[str, float] = {}
    carry_r: Dict[str, float] = {tree.root: 0.0}
    carry_l: Dict[str, float] = {tree.root: 0.0}
    for name in tree.preorder():
        parent = tree.parent(name)
        section = tree.section(name)
        if name in path:
            prefix_r[name] = running_r[parent] + section.resistance
            prefix_l[name] = running_l[parent] + section.inductance
            running_r[name] = prefix_r[name]
            running_l[name] = prefix_l[name]
            carry_r[name] = prefix_r[name]
            carry_l[name] = prefix_l[name]
        else:
            running_r[name] = running_r[parent]
            running_l[name] = running_l[parent]
            carry_r[name] = carry_r[parent]
            carry_l[name] = carry_l[parent]
        common_r[name] = carry_r[name]
        common_l[name] = carry_l[name]

    # Chain rule factors.
    if t_lc > 0.0:
        omega = t_lc ** -0.5
        zeta = 0.5 * t_rc * omega
        g, g_prime = _scaled_metric(zeta, metric)
        value = g / omega
        # value = g(zeta) * sqrt(T_LC); zeta = T_RC / (2 sqrt(T_LC))
        sqrt_lc = math.sqrt(t_lc)
        dvalue_d_trc = g_prime * 0.5  # dzeta/dT_RC = 1/(2 sqrt) ; * sqrt
        dvalue_d_tlc = (
            g / (2.0 * sqrt_lc)
            - g_prime * t_rc / (4.0 * t_lc)
        )
    else:
        factor = _LN2 if metric == "delay" else _LN9
        value = factor * t_rc
        dvalue_d_trc = factor
        dvalue_d_tlc = 0.0

    sensitivities: Dict[str, SectionSensitivity] = {}
    for name in tree.nodes:
        on_path = name in path
        d_r = dvalue_d_trc * loads[name] if on_path else 0.0
        d_l = dvalue_d_tlc * loads[name] if on_path else 0.0
        d_c = (
            dvalue_d_trc * common_r[name] + dvalue_d_tlc * common_l[name]
        )
        section = tree.section(name)
        sensitivities[name] = SectionSensitivity(
            section=name,
            d_resistance=d_r,
            d_inductance=d_l,
            d_capacitance=d_c,
            resistance=section.resistance,
            inductance=section.inductance,
            capacitance=section.capacitance,
        )

    return SensitivityReport(
        node=node, metric=metric, value=value, sensitivities=sensitivities
    )
