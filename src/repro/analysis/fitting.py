"""Curve fitting of the time-scaled delay and rise time (Fig. 6).

Section IV's key observation: in scaled time ``tau = w_n t`` the step
response (eq. 32) depends on zeta alone, so the scaled 50% delay and
scaled 10-90% rise time are one-variable functions of zeta. The paper
computes them numerically on a zeta grid and fits closed forms (eqs. 33
and 34); dividing by ``w_n`` then yields the real-time metrics at any
node (eqs. 35-36).

This module reproduces the whole procedure:

* :func:`scaled_delay_exact` / :func:`scaled_rise_exact` — the numerically
  exact scaled metrics (root-finding on the closed-form scaled step
  response),
* :func:`fit_delay` / :func:`fit_rise` — re-run the least-squares fits,
* :func:`scaled_delay` / :func:`scaled_rise` — the fitted closed forms
  used everywhere else in the library.

For the 50% delay we use the paper's published eq. 33,
``1.047 exp(-zeta/0.85) + 1.39 zeta``, which our refit machinery confirms
(max relative error 2.5% over zeta in [0.02, 8], and a refit of the same
functional family lands on coefficients of the same quality — see
``tests/analysis/test_fitting.py``).

The published rise-time coefficients of eq. 34 did not survive in the
available scan of the paper, so the library carries its own fit, produced
by exactly the procedure above: a cubic-over-quadratic rational whose
max relative error over zeta in [0.02, 8] is 2.6% — the same error class
as eq. 33. Both asymptotics are right by construction: it approaches the
exact ``tau_r = ln(81)/... ~ 4.39 zeta`` single-pole behaviour for large
zeta and the lossless-ring value ``acos(0.1) - acos(0.9) = 1.02`` at
zeta -> 0.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional, Sequence, Tuple

import numpy as np
from scipy.optimize import brentq, curve_fit

from ..errors import FittingError
from .second_order import SecondOrderModel

__all__ = [
    "scaled_step_response",
    "scaled_threshold_crossing",
    "scaled_delay_exact",
    "scaled_rise_exact",
    "scaled_delay",
    "scaled_rise",
    "FitResult",
    "fit_delay",
    "fit_rise",
    "DELAY_FIT_COEFFICIENTS",
    "RISE_FIT_COEFFICIENTS",
]

#: Published eq. 33 coefficients: tau_50 = a exp(-zeta/b) + c zeta.
DELAY_FIT_COEFFICIENTS: Tuple[float, float, float] = (1.047, 0.85, 1.39)

#: This library's eq.-34 refit (see module docstring):
#: tau_r = (n0 + n1 z + n2 z^2 + n3 z^3) / (1 + d1 z + d2 z^2).
RISE_FIT_COEFFICIENTS: Tuple[float, float, float, float, float, float] = (
    0.97800,
    0.74802,
    -2.21472,
    5.29490,
    -0.81759,
    1.24810,
)

#: Default zeta grid for refits: log-dense near the underdamped knee.
_DEFAULT_GRID = np.concatenate(
    [np.linspace(0.02, 1.0, 40), np.geomspace(1.02, 8.0, 80)]
)


def scaled_step_response(zeta: float, tau: np.ndarray) -> np.ndarray:
    """Eq. 32: normalized step response in scaled time for one zeta."""
    return SecondOrderModel(zeta, 1.0).scaled_step_response(np.asarray(tau, float))


def scaled_threshold_crossing(zeta: float, level: float) -> float:
    """First scaled time where the normalized step response hits ``level``.

    For underdamped zeta the crossing must precede the first peak at
    ``tau = pi / sqrt(1 - zeta^2)``, which gives a guaranteed bracket;
    for monotone responses the bracket is grown geometrically.
    """
    if not 0.0 < level < 1.0:
        raise FittingError(f"threshold level must be in (0, 1), got {level!r}")
    if zeta <= 0.0 or not math.isfinite(zeta):
        raise FittingError(f"zeta must be positive and finite, got {zeta!r}")
    model = SecondOrderModel(zeta, 1.0)

    def error(tau: float) -> float:
        return float(model.scaled_step_response(np.array([tau]))[0]) - level

    if zeta < 1.0:
        hi = math.pi / math.sqrt(1.0 - zeta * zeta)
    else:
        hi = 1.0
        while error(hi) < 0.0:
            hi *= 2.0
            if hi > 1e9:
                raise FittingError("threshold crossing bracket failed")
    return float(brentq(error, 1e-15, hi, xtol=1e-13, rtol=1e-13))


def scaled_delay_exact(zeta: float) -> float:
    """Numerically exact scaled 50% delay (a Fig. 6 data point)."""
    return scaled_threshold_crossing(zeta, 0.5)


def scaled_rise_exact(zeta: float) -> float:
    """Numerically exact scaled 10-90% rise time (a Fig. 6 data point)."""
    return scaled_threshold_crossing(zeta, 0.9) - scaled_threshold_crossing(
        zeta, 0.1
    )


def scaled_delay(zeta: float | np.ndarray) -> float | np.ndarray:
    """Eq. 33: fitted scaled 50% delay, ``1.047 e^(-zeta/0.85) + 1.39 zeta``.

    Continuous over all damping conditions; approaches ``2 ln 2 * zeta``
    (the Elmore/Wyatt limit) for large zeta and ``pi/3`` at zeta -> 0.
    """
    a, b, c = DELAY_FIT_COEFFICIENTS
    zeta = np.asarray(zeta, dtype=float)
    out = a * np.exp(-zeta / b) + c * zeta
    return float(out) if out.ndim == 0 else out


def scaled_rise(zeta: float | np.ndarray) -> float | np.ndarray:
    """Eq. 34 (refit): fitted scaled 10-90% rise time.

    A cubic-over-quadratic rational in zeta; see the module docstring for
    why this library re-derived the coefficients.
    """
    n0, n1, n2, n3, d1, d2 = RISE_FIT_COEFFICIENTS
    zeta = np.asarray(zeta, dtype=float)
    numerator = n0 + zeta * (n1 + zeta * (n2 + zeta * n3))
    denominator = 1.0 + zeta * (d1 + zeta * d2)
    out = numerator / denominator
    return float(out) if out.ndim == 0 else out


@dataclass(frozen=True)
class FitResult:
    """Outcome of re-running the paper's fitting procedure."""

    coefficients: Tuple[float, ...]
    max_relative_error: float
    zeta_grid: Tuple[float, ...]
    form: str

    def __call__(self, zeta: float | np.ndarray) -> float | np.ndarray:
        zeta = np.asarray(zeta, dtype=float)
        out = _FORMS[self.form](zeta, *self.coefficients)
        return float(out) if out.ndim == 0 else out


def _exp_plus_linear(z: np.ndarray, a: float, b: float, c: float) -> np.ndarray:
    return a * np.exp(-z / b) + c * z


def _cubic_rational(
    z: np.ndarray, n0: float, n1: float, n2: float, n3: float, d1: float, d2: float
) -> np.ndarray:
    return (n0 + z * (n1 + z * (n2 + z * n3))) / (1.0 + z * (d1 + z * d2))


_FORMS: dict[str, Callable] = {
    "exp_plus_linear": _exp_plus_linear,
    "cubic_rational": _cubic_rational,
}

_INITIAL_GUESS = {
    "exp_plus_linear": (1.0, 0.8, 2.0 * math.log(2.0)),
    "cubic_rational": (1.0, 0.5, 0.0, 4.4, 0.0, 1.0),
}


def _fit_metric(
    metric: Callable[[float], float],
    zeta_grid: Optional[Sequence[float]],
    form: str,
) -> FitResult:
    if form not in _FORMS:
        raise FittingError(f"unknown fit form {form!r}; options: {sorted(_FORMS)}")
    grid = np.asarray(
        _DEFAULT_GRID if zeta_grid is None else list(zeta_grid), dtype=float
    )
    if grid.size < 8:
        raise FittingError("fit grid needs at least 8 zeta points")
    values = np.array([metric(z) for z in grid])
    try:
        coefficients, _ = curve_fit(
            _FORMS[form],
            grid,
            values,
            p0=_INITIAL_GUESS[form],
            sigma=values,  # relative-error weighting
            maxfev=200000,
        )
    except RuntimeError as exc:
        raise FittingError(f"curve fit did not converge: {exc}") from None
    fitted = _FORMS[form](grid, *coefficients)
    max_rel = float(np.max(np.abs(fitted - values) / values))
    return FitResult(
        coefficients=tuple(float(c) for c in coefficients),
        max_relative_error=max_rel,
        zeta_grid=tuple(float(z) for z in grid),
        form=form,
    )


def fit_delay(
    zeta_grid: Optional[Sequence[float]] = None, form: str = "exp_plus_linear"
) -> FitResult:
    """Re-run the eq. 33 fit from scratch (the Fig. 6 procedure)."""
    return _fit_metric(scaled_delay_exact, zeta_grid, form)


def fit_rise(
    zeta_grid: Optional[Sequence[float]] = None, form: str = "cubic_rational"
) -> FitResult:
    """Re-run the eq. 34 fit from scratch (the Fig. 6 procedure)."""
    return _fit_metric(scaled_rise_exact, zeta_grid, form)
