"""The paper's contribution: equivalent Elmore delay for RLC trees.

Submodules follow the paper's structure:

* :mod:`~repro.analysis.moments` — the O(n) sums of the Appendix plus an
  exact arbitrary-order moment engine,
* :mod:`~repro.analysis.second_order` — the per-node second-order model
  (Section III),
* :mod:`~repro.analysis.fitting` — the Fig. 6 scaled-metric fits
  (eqs. 33-34) and the machinery to re-derive them,
* :mod:`~repro.analysis.delay` — closed-form 50% delay and rise time
  (eqs. 35-38) with the RC Elmore limit,
* :mod:`~repro.analysis.oscillation` — overshoots and settling time
  (eqs. 39-42),
* :mod:`~repro.analysis.response` — closed-form waveforms for shaped
  inputs (eqs. 31, 44-48) and convolution for arbitrary ones,
* :mod:`~repro.analysis.analyzer` — :class:`TreeAnalyzer`, the one-shot
  front end.
"""

from .analyzer import NodeTiming, TreeAnalyzer
from .arbitrary_input import (
    ArbitraryInputMetrics,
    input_crossing,
    response_metrics,
)
from .delay import (
    delay_50,
    delay_50_from_sums,
    elmore_delay,
    elmore_time_constant,
    rise_time,
    rise_time_from_sums,
    wyatt_rise_time,
)
from .fitting import (
    DELAY_FIT_COEFFICIENTS,
    RISE_FIT_COEFFICIENTS,
    FitResult,
    fit_delay,
    fit_rise,
    scaled_delay,
    scaled_delay_exact,
    scaled_rise,
    scaled_rise_exact,
    scaled_step_response,
    scaled_threshold_crossing,
)
from .moments import (
    MomentSummary,
    capacitive_loads,
    elmore_sums,
    exact_moments,
    inductance_sums,
    moment_summary,
    multiplication_count,
    second_order_sums,
    weighted_path_sums,
)
from .oscillation import (
    Overshoot,
    overshoot_fraction,
    overshoot_time,
    overshoot_train,
    settling_oscillation_count,
    settling_time,
)
from .response import convolution_response, model_response
from .second_order import SecondOrderModel
from .sensitivity import (
    SectionSensitivity,
    SensitivityReport,
    delay_sensitivities,
    scaled_delay_derivative,
    scaled_rise_derivative,
)

__all__ = [
    "TreeAnalyzer",
    "NodeTiming",
    "SecondOrderModel",
    "second_order_sums",
    "elmore_sums",
    "inductance_sums",
    "capacitive_loads",
    "weighted_path_sums",
    "exact_moments",
    "moment_summary",
    "MomentSummary",
    "multiplication_count",
    "delay_50",
    "rise_time",
    "delay_50_from_sums",
    "rise_time_from_sums",
    "elmore_delay",
    "elmore_time_constant",
    "wyatt_rise_time",
    "scaled_delay",
    "scaled_rise",
    "scaled_delay_exact",
    "scaled_rise_exact",
    "scaled_step_response",
    "scaled_threshold_crossing",
    "fit_delay",
    "fit_rise",
    "FitResult",
    "DELAY_FIT_COEFFICIENTS",
    "RISE_FIT_COEFFICIENTS",
    "Overshoot",
    "overshoot_fraction",
    "overshoot_time",
    "overshoot_train",
    "settling_oscillation_count",
    "settling_time",
    "model_response",
    "convolution_response",
    "SectionSensitivity",
    "SensitivityReport",
    "delay_sensitivities",
    "scaled_delay_derivative",
    "scaled_rise_derivative",
    "ArbitraryInputMetrics",
    "input_crossing",
    "response_metrics",
]
