"""One-shot tree timing analysis — the library's main entry point.

:class:`TreeAnalyzer` runs the paper end to end on one tree: the O(n)
moment sweeps (Appendix), the per-node second-order models (Section III)
and the closed-form metrics (Section IV). Typical use::

    from repro import TreeAnalyzer
    from repro.circuit import fig5_tree

    analyzer = TreeAnalyzer(fig5_tree())
    timing = analyzer.timing("n7")
    print(timing.delay_50, timing.rise_time, timing.zeta)

Everything is computed from two depth-first passes over the tree plus
O(1) closed forms per node, so analyzing a million-node tree is entirely
practical — which is the paper's reason for existing. Nodes without
inductance on their weighted path (``T_LC = 0``) are handled through the
RC Elmore limit and report ``zeta = inf``.

Metric queries are backed by the compiled vectorized engine
(:mod:`repro.engine`) whenever every node lies inside the closed forms'
domain: the tree is flattened to arrays once (topology cached across
value-perturbed copies) and all per-node metrics are evaluated as array
kernels, which is 10-100x faster than per-node scalar evaluation for
full-tree reports. Trees outside that domain — corrupted values,
``T_RC <= 0`` where a model is required — fall back to the scalar path
so its typed errors surface unchanged; pass ``use_engine=False`` to
force the scalar path (see ``docs/PERFORMANCE.md``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import cached_property
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from ..circuit.tree import RLCTree
from ..errors import ConfigurationError, ElementValueError, TopologyError
from ..simulation.sources import Source
from .delay import elmore_delay, wyatt_rise_time
from .fitting import scaled_delay, scaled_rise
from .moments import second_order_sums
from .oscillation import overshoot_train, settling_time
from .response import model_response
from .second_order import SecondOrderModel

__all__ = ["NodeTiming", "TreeAnalyzer"]


@dataclass(frozen=True)
class NodeTiming:
    """All closed-form figures of merit for one node.

    ``overshoot`` is the first-overshoot excursion as a fraction of the
    final value (``Lambda_1``, eq. 39) — ``0.0`` for monotone nodes.
    ``settling`` uses the conventional 10% band. RC-limit nodes have
    ``zeta = inf`` and ``omega_n = inf`` with the Elmore/Wyatt metrics.
    """

    node: str
    t_rc: float
    t_lc: float
    zeta: float
    omega_n: float
    delay_50: float
    rise_time: float
    overshoot: float
    settling: float

    @property
    def elmore_delay(self) -> float:
        """The classic RC Elmore (Wyatt) delay of the same node."""
        return elmore_delay(self.t_rc)

    @property
    def is_underdamped(self) -> bool:
        return self.zeta < 1.0


class TreeAnalyzer:
    """Closed-form timing of every node of one RLC tree."""

    def __init__(
        self, tree: RLCTree, settle_band: float = 0.1, *, use_engine: bool = True
    ):
        if tree.size == 0:
            raise TopologyError("cannot analyze an empty tree")
        if not 0.0 < settle_band < 1.0:
            # A bad band is a bad *request*, not a bad circuit.
            raise ConfigurationError("settle_band must be in (0, 1)")
        self._tree = tree
        self._settle_band = settle_band
        self._use_engine = use_engine

    @property
    def tree(self) -> RLCTree:
        return self._tree

    @cached_property
    def _sums(self) -> Tuple[Dict[str, float], Dict[str, float]]:
        return second_order_sums(self._tree)

    @cached_property
    def _table(self):
        """The engine's full-tree metric table, or ``None``.

        ``None`` either by request (``use_engine=False``) or because
        some node falls outside the closed forms' domain, in which case
        the scalar path runs and raises its usual typed errors.
        """
        if not self._use_engine:
            return None
        from ..engine import timing_table

        return timing_table(self._tree, settle_band=self._settle_band)

    def timing_table(self):
        """The vectorized metric table backing the fast path, if engaged.

        Returns the :class:`~repro.engine.TimingTable` with every metric
        at every node as arrays, or ``None`` when the fast path cannot
        engage (engine disabled, or the tree needs the scalar path's
        error handling). Metric values read from the table and from the
        per-node accessors are identical.
        """
        return self._table

    # -- per-node primitives ---------------------------------------------------

    def sums(self, node: str) -> Tuple[float, float]:
        """``(T_RC, T_LC)`` at ``node``."""
        t_rc, t_lc = self._sums
        if node not in t_rc:
            raise TopologyError(f"unknown node {node!r}")
        return t_rc[node], t_lc[node]

    def zeta(self, node: str) -> float:
        """Equivalent damping factor (eq. 30); inf at RC-limit nodes."""
        if self._table is not None:
            return self._table.value("zeta", node)
        t_rc, t_lc = self.sums(node)
        if t_lc == 0.0:
            return math.inf
        return 0.5 * t_rc / math.sqrt(t_lc)

    def omega_n(self, node: str) -> float:
        """Equivalent natural frequency (eq. 29); inf at RC-limit nodes."""
        if self._table is not None:
            return self._table.value("omega_n", node)
        _, t_lc = self.sums(node)
        if t_lc == 0.0:
            return math.inf
        return 1.0 / math.sqrt(t_lc)

    def model(self, node: str) -> Optional[SecondOrderModel]:
        """The node's second-order model, or ``None`` in the RC limit."""
        t_rc, t_lc = self.sums(node)
        if t_lc == 0.0:
            return None
        return SecondOrderModel.from_sums(t_rc, t_lc)

    # -- closed-form metrics ------------------------------------------------------

    def delay_50(self, node: str) -> float:
        """Eq. 35 at ``node`` (RC limit: Elmore/Wyatt delay)."""
        if self._table is not None:
            return self._table.value("delay_50", node)
        t_rc, t_lc = self.sums(node)
        if t_lc == 0.0:
            return elmore_delay(t_rc)
        model = SecondOrderModel.from_sums(t_rc, t_lc)
        return scaled_delay(model.zeta) / model.omega_n

    def rise_time(self, node: str) -> float:
        """Eq. 36 at ``node`` (RC limit: single-pole rise time)."""
        if self._table is not None:
            return self._table.value("rise_time", node)
        t_rc, t_lc = self.sums(node)
        if t_lc == 0.0:
            return wyatt_rise_time(t_rc)
        model = SecondOrderModel.from_sums(t_rc, t_lc)
        return scaled_rise(model.zeta) / model.omega_n

    def elmore_delay(self, node: str) -> float:
        """The RC Elmore (Wyatt) delay, ignoring all inductance."""
        t_rc, _ = self.sums(node)
        return elmore_delay(t_rc)

    def overshoot(self, node: str) -> float:
        """First-overshoot fraction ``Lambda_1`` (eq. 39); 0 if monotone."""
        if self._table is not None:
            return self._table.value("overshoot", node)
        model = self.model(node)
        if model is None or model.zeta >= 1.0:
            return 0.0
        train = overshoot_train(model, max_count=1)
        return train[0].fraction if train else 0.0

    def overshoots(self, node: str, threshold: float = 1e-4):
        """Full ringing train at ``node`` (empty for monotone nodes)."""
        model = self.model(node)
        if model is None or model.zeta >= 1.0:
            return []
        return overshoot_train(model, threshold=threshold)

    def settling_time(self, node: str) -> float:
        """Eq. 42 at ``node`` (monotone nodes: dominant-pole band entry)."""
        if self._table is not None:
            return self._table.value("settling", node)
        model = self.model(node)
        if model is None:
            t_rc, _ = self.sums(node)
            return -math.log(self._settle_band) * t_rc
        return settling_time(model, self._settle_band)

    def timing(self, node: str) -> NodeTiming:
        """All metrics for one node in one object."""
        if self._table is not None:
            return self._table.timing(node)
        return self._scalar_timing(node)

    def _scalar_timing(self, node: str) -> NodeTiming:
        # The model is built exactly once and threaded through every
        # metric, instead of letting each accessor rebuild it.
        t_rc, t_lc = self.sums(node)
        band = self._settle_band
        if t_lc == 0.0:
            return NodeTiming(
                node=node,
                t_rc=t_rc,
                t_lc=t_lc,
                zeta=math.inf,
                omega_n=math.inf,
                delay_50=elmore_delay(t_rc),
                rise_time=wyatt_rise_time(t_rc),
                overshoot=0.0,
                settling=-math.log(band) * t_rc,
            )
        model = SecondOrderModel.from_sums(t_rc, t_lc)
        if model.zeta < 1.0:
            train = overshoot_train(model, max_count=1)
            overshoot = train[0].fraction if train else 0.0
        else:
            overshoot = 0.0
        return NodeTiming(
            node=node,
            t_rc=t_rc,
            t_lc=t_lc,
            zeta=0.5 * t_rc / math.sqrt(t_lc),
            omega_n=model.omega_n,
            delay_50=scaled_delay(model.zeta) / model.omega_n,
            rise_time=scaled_rise(model.zeta) / model.omega_n,
            overshoot=overshoot,
            settling=settling_time(model, band),
        )

    def report(self, nodes: Optional[List[str]] = None) -> List[NodeTiming]:
        """Per-node metrics for ``nodes`` (default: every node)."""
        if nodes is None:
            return self.report_all()
        return [self.timing(node) for node in nodes]

    def report_all(self) -> List[NodeTiming]:
        """Metrics for every node, in tree order, in one vectorized pass.

        With the engine engaged this materializes the whole table at
        once; otherwise it walks the scalar path node by node. Results
        are identical either way up to the documented 1e-12 tolerance.
        """
        table = self._table
        if table is not None:
            return table.timings()
        return [self._scalar_timing(node) for node in self._tree.nodes]

    def critical_sink(self) -> NodeTiming:
        """The sink with the largest 50% delay."""
        sinks = self._tree.leaves()
        return max((self.timing(s) for s in sinks), key=lambda x: x.delay_50)

    # -- waveforms --------------------------------------------------------------

    def step_waveform(
        self, node: str, t: np.ndarray, amplitude: float = 1.0
    ) -> np.ndarray:
        """Eq. 31 closed-form step response at ``node``.

        RC-limit nodes use the single-pole (Wyatt) response
        ``V (1 - exp(-t / T_RC))``.
        """
        model = self.model(node)
        t = np.asarray(t, dtype=float)
        if model is not None:
            return model.step_response(t, amplitude)
        t_rc, _ = self.sums(node)
        return amplitude * (1.0 - np.exp(-np.maximum(t, 0.0) / t_rc)) * (t >= 0.0)

    def waveform(
        self, node: str, source: Union[Source, callable], t: np.ndarray
    ) -> np.ndarray:
        """Closed-form response at ``node`` to any supported source."""
        model = self.model(node)
        if model is None:
            # The topology is fine; the *element values* put the node in
            # the RC limit where no second-order model exists.
            raise ElementValueError(
                f"node {node!r} is in the RC limit; use step_waveform or add "
                "inductance"
            )
        return model_response(model, source, t)

    def metrics_for(self, node: str, source) -> "ArbitraryInputMetrics":
        """Crossing metrics under a shaped input (Section IV's iterative
        method): input-referred 50% delay, rise time, overshoot."""
        from .arbitrary_input import ArbitraryInputMetrics, response_metrics

        model = self.model(node)
        if model is None:
            raise ElementValueError(
                f"node {node!r} is in the RC limit; shaped-input metrics "
                "need a finite second-order model"
            )
        return response_metrics(model, source)

    def time_grid(self, node: str, span: float = 4.0, points: int = 2001) -> np.ndarray:
        """A grid covering ``span`` times the node's settling time."""
        horizon = span * self.settling_time(node)
        if horizon <= 0.0:
            horizon = span * self.delay_50(node) * 4.0
        return np.linspace(0.0, horizon, points)
