"""The equivalent second-order model (paper Section III).

At every node of an RLC tree the paper approximates the exact transfer
function by the canonical second-order low-pass (eq. 13)::

            1
    H(s) = ---------------------------------
            1 + (2 zeta / w_n) s + s^2/w_n^2

with the damping factor ``zeta`` and natural frequency ``w_n`` chosen to
match the first moment exactly and the second moment in the Elmore-style
approximation (eqs. 28-30)::

    w_n  = 1 / sqrt(T_LC)
    zeta = T_RC / (2 sqrt(T_LC))

:class:`SecondOrderModel` packages one (zeta, w_n) pair with every
closed-form response the paper derives from it: step (eq. 31), the
time-scaled step (eq. 32), exponential input (eqs. 44-48), ramp, and
impulse. All damping regimes — underdamped, critically damped,
overdamped — are handled by a single continuous implementation, which is
the whole point of the paper's formulation.
"""

from __future__ import annotations

import cmath
import math
from dataclasses import dataclass
from typing import Tuple, Union

import numpy as np

from ..errors import ElementValueError

__all__ = ["SecondOrderModel"]

#: zeta values within this distance of 1.0 use the critically damped
#: closed forms; the generic two-pole expressions lose precision there.
_CRITICAL_BAND = 1e-7


@dataclass(frozen=True)
class SecondOrderModel:
    """One node's equivalent second-order approximation.

    Parameters
    ----------
    zeta:
        Equivalent damping factor (eq. 30). ``zeta < 1`` rings,
        ``zeta > 1`` is monotone, ``zeta = 1`` is critically damped.
    omega_n:
        Equivalent natural frequency in rad/s (eq. 29).
    """

    zeta: float
    omega_n: float

    def __post_init__(self):
        if not (self.zeta > 0.0 and math.isfinite(self.zeta)):
            raise ElementValueError(f"zeta must be positive/finite, got {self.zeta!r}")
        if not (self.omega_n > 0.0 and math.isfinite(self.omega_n)):
            raise ElementValueError(
                f"omega_n must be positive/finite, got {self.omega_n!r}"
            )

    # -- constructors -----------------------------------------------------

    @classmethod
    def from_sums(cls, t_rc: float, t_lc: float) -> "SecondOrderModel":
        """Build from the tree sums ``T_RC`` and ``T_LC`` (eqs. 29-30).

        ``T_LC`` must be positive: a zero-inductance node has no finite
        second-order model (its equivalent zeta is infinite); use the RC
        Elmore expressions in :mod:`repro.analysis.delay` instead.
        """
        if t_rc <= 0.0:
            raise ElementValueError(f"T_RC must be positive, got {t_rc!r}")
        if t_lc <= 0.0:
            raise ElementValueError(
                f"T_LC must be positive, got {t_lc!r}; an RC node has no "
                "finite second-order model (zeta is infinite)"
            )
        omega_n = 1.0 / math.sqrt(t_lc)
        zeta = 0.5 * t_rc * omega_n
        return cls(zeta=zeta, omega_n=omega_n)

    @classmethod
    def from_moments(cls, m1: float, m2: float) -> "SecondOrderModel":
        """Build by matching the first two moments exactly (eqs. 18-19).

        ``H(s) = 1 + m1 s + m2 s^2 + ...`` requires ``m1 < 0`` and
        ``m1^2 - m2 > 0`` for a realizable (stable) second-order model.
        """
        if m1 >= 0.0:
            raise ElementValueError(f"m1 must be negative, got {m1!r}")
        radicand = m1 * m1 - m2
        if radicand <= 0.0:
            raise ElementValueError(
                f"m1^2 - m2 = {radicand!r} must be positive for a stable "
                "second-order match"
            )
        omega_n = 1.0 / math.sqrt(radicand)
        zeta = -0.5 * m1 * omega_n
        return cls(zeta=zeta, omega_n=omega_n)

    # -- descriptive properties ---------------------------------------------

    @property
    def is_underdamped(self) -> bool:
        return self.zeta < 1.0

    @property
    def damped_frequency(self) -> float:
        """Ringing frequency ``w_n sqrt(1 - zeta^2)``; 0 when monotone."""
        if self.zeta >= 1.0:
            return 0.0
        return self.omega_n * math.sqrt(1.0 - self.zeta * self.zeta)

    @property
    def time_scale(self) -> float:
        """The ``1/w_n`` scale that maps eq. 32's tau to real time."""
        return 1.0 / self.omega_n

    def poles(self) -> Tuple[complex, complex]:
        """The model's two poles (eq. 16)."""
        root = cmath.sqrt(complex(self.zeta * self.zeta - 1.0, 0.0))
        return (
            self.omega_n * (-self.zeta + root),
            self.omega_n * (-self.zeta - root),
        )

    def moments(self, order: int = 2) -> Tuple[float, ...]:
        """Taylor coefficients ``m_0..m_order`` of H(s) (eq. 17 expanded).

        Satisfies the recursion
        ``m_j = -(2 zeta / w_n) m_{j-1} - m_{j-2} / w_n^2``.
        """
        coeff1 = -2.0 * self.zeta / self.omega_n
        coeff2 = -1.0 / (self.omega_n * self.omega_n)
        out = [1.0]
        if order >= 1:
            out.append(coeff1)
        for _ in range(2, order + 1):
            out.append(coeff1 * out[-1] + coeff2 * out[-2])
        return tuple(out[: order + 1])

    def transfer_function(
        self, s: Union[complex, np.ndarray]
    ) -> Union[complex, np.ndarray]:
        """Evaluate ``H(s)`` (eq. 13) at scalar or array ``s``."""
        s = np.asarray(s, dtype=complex)
        wn = self.omega_n
        h = 1.0 / (1.0 + (2.0 * self.zeta / wn) * s + (s / wn) ** 2)
        return h if h.ndim else complex(h)

    # -- time-domain responses -----------------------------------------------

    def scaled_step_response(self, tau: np.ndarray) -> np.ndarray:
        """Eq. 32: the step response in scaled time ``tau = w_n t``.

        Depends only on zeta — the scaling observation that makes the
        one-variable curve fits of Fig. 6 possible. Clamped to 0 for
        negative tau.
        """
        tau = np.asarray(tau, dtype=float)
        z = self.zeta
        t = np.maximum(tau, 0.0)
        if z < 1.0 - _CRITICAL_BAND:
            rad = math.sqrt(1.0 - z * z)
            phase = math.acos(z)
            v = 1.0 - np.exp(-z * t) * np.sin(rad * t + phase) / rad
        elif z <= 1.0 + _CRITICAL_BAND:
            v = 1.0 - (1.0 + t) * np.exp(-t)
        else:
            rad = math.sqrt(z * z - 1.0)
            s1 = -z + rad  # scaled poles (units of w_n)
            s2 = -z - rad
            v = 1.0 + (s2 * np.exp(s1 * t) - s1 * np.exp(s2 * t)) / (2.0 * rad)
        return np.where(tau >= 0.0, v, 0.0)

    def step_response(
        self, t: np.ndarray, amplitude: float = 1.0, delay: float = 0.0
    ) -> np.ndarray:
        """Eq. 31: step response in real time."""
        t = np.asarray(t, dtype=float)
        return amplitude * self.scaled_step_response(self.omega_n * (t - delay))

    def impulse_response(self, t: np.ndarray) -> np.ndarray:
        """Unit-impulse response (time derivative of the step response)."""
        t = np.asarray(t, dtype=float)
        tt = np.maximum(t, 0.0)
        z, wn = self.zeta, self.omega_n
        if z < 1.0 - _CRITICAL_BAND:
            wd = wn * math.sqrt(1.0 - z * z)
            v = (wn * wn / wd) * np.exp(-z * wn * tt) * np.sin(wd * tt)
        elif z <= 1.0 + _CRITICAL_BAND:
            v = wn * wn * tt * np.exp(-wn * tt)
        else:
            rad = math.sqrt(z * z - 1.0)
            s1 = wn * (-z + rad)
            s2 = wn * (-z - rad)
            v = (np.exp(s1 * tt) - np.exp(s2 * tt)) * wn / (2.0 * rad)
        return np.where(t >= 0.0, v, 0.0)

    # -- responses to shaped inputs --------------------------------------------

    def _residue_pairs(self) -> Tuple[Tuple[complex, complex], ...]:
        """Pole/residue pairs of H(s); nudges exact critical damping.

        ``H(s) = w_n^2 / ((s - s1)(s - s2)) = r/(s - s1) - r/(s - s2)``
        with ``r = w_n^2 / (s1 - s2)``. At zeta exactly 1 the poles
        collide; a 1e-7 relative nudge keeps the pair form valid with
        error far below the model's own approximation error.
        """
        z = self.zeta
        if abs(z - 1.0) <= _CRITICAL_BAND:
            z = 1.0 + 10.0 * _CRITICAL_BAND
        root = cmath.sqrt(complex(z * z - 1.0, 0.0))
        s1 = self.omega_n * (-z + root)
        s2 = self.omega_n * (-z - root)
        r = self.omega_n * self.omega_n / (s1 - s2)
        return ((s1, r), (s2, -r))

    def exponential_response(
        self,
        t: np.ndarray,
        tau: float,
        amplitude: float = 1.0,
        delay: float = 0.0,
    ) -> np.ndarray:
        """Eqs. 44-48: response to ``V (1 - exp(-t/tau)) u(t)``.

        ``tau`` is the input's exponential time constant (its 0-90% rise
        time is ``2.3 tau``, the paper's measure).
        """
        if tau <= 0.0:
            raise ElementValueError("input tau must be positive")
        t = np.asarray(t, dtype=float)
        tt = np.maximum(t - delay, 0.0)
        a = 1.0 / tau
        total = np.zeros(tt.shape, dtype=complex)
        for pole, residue in self._residue_pairs():
            step_part = (np.exp(pole * tt) - 1.0) / pole
            shift = pole + a
            if abs(shift) <= 1e-9 * (abs(pole) + a):
                exp_part = tt * np.exp(pole * tt)
            else:
                exp_part = (np.exp(pole * tt) - np.exp(-a * tt)) / shift
            total += residue * (step_part - exp_part)
        out = amplitude * total.real
        return np.where(t >= delay, out, 0.0)

    def ramp_response(
        self,
        t: np.ndarray,
        rise_time: float,
        amplitude: float = 1.0,
        delay: float = 0.0,
    ) -> np.ndarray:
        """Response to a saturating ramp (0 to ``amplitude`` over
        ``rise_time``), by superposing two analytic ramp responses."""
        if rise_time <= 0.0:
            raise ElementValueError("rise_time must be positive")
        t = np.asarray(t, dtype=float)
        slope = amplitude / rise_time
        return slope * (
            self._unit_ramp_response(t - delay)
            - self._unit_ramp_response(t - delay - rise_time)
        )

    def _unit_ramp_response(self, t: np.ndarray) -> np.ndarray:
        """Response to ``u(t) = t`` for ``t >= 0`` (unit slope)."""
        t = np.asarray(t, dtype=float)
        tt = np.maximum(t, 0.0)
        total = np.zeros(tt.shape, dtype=complex)
        for pole, residue in self._residue_pairs():
            total += residue * (np.exp(pole * tt) - 1.0 - pole * tt) / (pole * pole)
        return np.where(t >= 0.0, total.real, 0.0)
