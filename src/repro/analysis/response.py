"""Closed-form time-domain waveforms from the second-order model.

Section IV's recipe for an arbitrary input: multiply the input's Laplace
transform by the node's second-order transfer function and invert. For
the inputs the paper uses — step (eq. 31), exponential (eqs. 44-48),
ramp — :class:`~repro.analysis.second_order.SecondOrderModel` carries the
inverse transforms analytically; this module dispatches the library's
:mod:`~repro.simulation.sources` objects onto them and adds the general
fallback (numerical convolution with the model's impulse response) for
any other waveform, which is the "iterative method" the paper alludes to.
"""

from __future__ import annotations

from typing import Callable, Union

import numpy as np

from ..errors import SimulationError
from ..simulation.sources import (
    ExponentialSource,
    PWLSource,
    RampSource,
    Source,
    StepSource,
)
from .second_order import SecondOrderModel

__all__ = ["model_response", "convolution_response"]


def model_response(
    model: SecondOrderModel,
    source: Union[Source, Callable[[np.ndarray], np.ndarray]],
    t: np.ndarray,
) -> np.ndarray:
    """Second-order-model waveform at a node for any supported source.

    Steps, exponentials, ramps and PWL waveforms evaluate in closed form;
    arbitrary callables fall back to :func:`convolution_response` (which
    requires a uniform time grid).
    """
    t = np.asarray(t, dtype=float)
    if isinstance(source, StepSource):
        return model.step_response(t, source.amplitude, source.delay)
    if isinstance(source, ExponentialSource):
        return model.exponential_response(
            t, source.tau, source.amplitude, source.delay
        )
    if isinstance(source, RampSource):
        return model.ramp_response(t, source.rise_time, source.amplitude, source.delay)
    if isinstance(source, PWLSource):
        out = np.zeros_like(t)
        for start, slope_change in source.ramp_segments():
            out += slope_change * model._unit_ramp_response(t - start)
        return out
    if callable(source):
        return convolution_response(model, source, t)
    raise SimulationError(
        f"unsupported source type {type(source).__name__}"
    )


def convolution_response(
    model: SecondOrderModel,
    source: Callable[[np.ndarray], np.ndarray],
    t: np.ndarray,
) -> np.ndarray:
    """Numerical convolution of the model's impulse response with ``source``.

    ``t`` must be a uniform grid starting at (or before) the first
    nonzero input. Trapezoid-weighted discrete convolution; accuracy is
    second order in the step size, so sample a few hundred points per
    ringing period.
    """
    t = np.asarray(t, dtype=float)
    if t.ndim != 1 or t.size < 2:
        raise SimulationError("time grid needs at least two points")
    steps = np.diff(t)
    h = float(steps[0])
    if h <= 0.0 or not np.allclose(steps, h, rtol=1e-9, atol=0.0):
        raise SimulationError("convolution needs a uniform time grid")
    u = np.asarray(source(t), dtype=float)
    if u.shape != t.shape:
        raise SimulationError("source(t) must return an array shaped like t")
    impulse = model.impulse_response(t - t[0])
    # Trapezoid weights: half weight on the endpoints of the window.
    full = np.convolve(u, impulse)[: t.size] * h
    correction = 0.5 * h * (u[0] * impulse + u * impulse[0])
    return full - correction
