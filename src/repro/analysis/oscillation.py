"""Overshoot train and settling time of underdamped nodes (eqs. 39-42).

When ``zeta < 1`` the step response rings (Fig. 7). Setting the
derivative of eq. 31 to zero gives the extremum times — equally spaced at
half the damped period — and their values as geometrically decaying
excursions around the final value::

    t_n      = n pi / (w_n sqrt(1 - zeta^2))              (eq. 40)
    Lambda_n = exp(-n pi zeta / sqrt(1 - zeta^2))         (eq. 39)
    v(t_n)   = V (1 + (-1)^(n+1) Lambda_n)

Odd ``n`` are overshoots above the supply, even ``n`` undershoots below
it. The settling time is the time of the first extremum whose excursion
drops below ``x`` times the final value (eq. 42), with ``x = 0.1`` the
conventional choice the paper adopts from control theory.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List

from ..errors import ElementValueError
from .second_order import SecondOrderModel

__all__ = [
    "Overshoot",
    "overshoot_fraction",
    "overshoot_time",
    "overshoot_train",
    "settling_oscillation_count",
    "settling_time",
]


@dataclass(frozen=True)
class Overshoot:
    """One ringing extremum of an underdamped step response.

    ``index`` is the paper's ``n`` (1-based); odd = overshoot, even =
    undershoot. ``value`` is the node voltage at the extremum for a unit
    final value; ``fraction`` the excursion ``Lambda_n`` around it.
    """

    index: int
    time: float
    value: float
    fraction: float

    @property
    def is_overshoot(self) -> bool:
        return self.index % 2 == 1


def _require_underdamped(model: SecondOrderModel) -> float:
    if model.zeta >= 1.0:
        raise ElementValueError(
            f"overshoots exist only for zeta < 1 (got zeta = {model.zeta:g}); "
            "a monotone response has no ringing"
        )
    return math.sqrt(1.0 - model.zeta * model.zeta)


def overshoot_fraction(model: SecondOrderModel, n: int = 1) -> float:
    """Eq. 39: ``Lambda_n``, the n-th excursion as a fraction of final value."""
    if n < 1:
        raise ElementValueError("overshoot index n starts at 1")
    radical = _require_underdamped(model)
    return math.exp(-n * math.pi * model.zeta / radical)


def overshoot_time(model: SecondOrderModel, n: int = 1) -> float:
    """Eq. 40: time of the n-th extremum after the step."""
    if n < 1:
        raise ElementValueError("overshoot index n starts at 1")
    radical = _require_underdamped(model)
    return n * math.pi / (model.omega_n * radical)


def overshoot_train(
    model: SecondOrderModel,
    final_value: float = 1.0,
    threshold: float = 1e-4,
    max_count: int = 100,
) -> List[Overshoot]:
    """All extrema with excursion above ``threshold`` of the final value.

    Returns the alternating over/undershoot sequence of Fig. 7, largest
    (earliest) first, stopping once the ringing decays below
    ``threshold`` or after ``max_count`` entries.
    """
    if final_value <= 0.0:
        raise ElementValueError("final value must be positive")
    radical = _require_underdamped(model)
    decay = math.exp(-math.pi * model.zeta / radical)
    spacing = math.pi / (model.omega_n * radical)
    train: List[Overshoot] = []
    fraction = 1.0
    for n in range(1, max_count + 1):
        fraction *= decay
        if fraction < threshold:
            break
        sign = 1.0 if n % 2 == 1 else -1.0
        train.append(
            Overshoot(
                index=n,
                time=n * spacing,
                value=final_value * (1.0 + sign * fraction),
                fraction=fraction,
            )
        )
    return train


def settling_oscillation_count(model: SecondOrderModel, band: float = 0.1) -> int:
    """The ``n`` solving ``Lambda_n <= band`` (the eq. 41-42 derivation).

    The response is considered settled at the first extremum whose
    excursion stays within ``band`` of the final value.
    """
    if not 0.0 < band < 1.0:
        raise ElementValueError(f"band must be in (0, 1), got {band!r}")
    radical = _require_underdamped(model)
    per_cycle = math.pi * model.zeta / radical
    n = math.ceil(-math.log(band) / per_cycle)
    return max(n, 1)


def settling_time(model: SecondOrderModel, band: float = 0.1) -> float:
    """Eq. 42: the settling time of an underdamped node.

    For monotone nodes (``zeta >= 1``) settling in the eq.-42 sense never
    involves ringing; this function then returns the time the response
    enters the band for good, computed from the dominant pole:
    ``-ln(band) / |p_slow|``.
    """
    if not 0.0 < band < 1.0:
        raise ElementValueError(f"band must be in (0, 1), got {band!r}")
    if model.zeta < 1.0:
        n = settling_oscillation_count(model, band)
        return overshoot_time(model, n)
    # Monotone: v(t) ~ 1 - K exp(p_slow t); enter the band when the
    # residual decays to `band`. Using the slow pole alone slightly
    # underestimates K but matches the eq.-42 asymptote at zeta = 1.
    # zeta - sqrt(zeta^2 - 1) cancels catastrophically (underflowing to
    # zero for zeta >~ 1e8); the algebraically equal reciprocal form is
    # stable at any zeta, and writing the radical as 1 - 1/zeta^2 keeps
    # it free of overflow for zeta beyond sqrt(DBL_MAX) too.
    zeta = model.zeta
    slow = 1.0 / (zeta * (1.0 + math.sqrt(1.0 - 1.0 / (zeta * zeta))))
    p_slow = model.omega_n * slow
    return -math.log(band) / p_slow
