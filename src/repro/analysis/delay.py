"""Closed-form delay and rise-time expressions (paper Section IV).

The real-time figures of merit at node ``i`` follow from the scaled fits
by dividing out the natural frequency (eqs. 35-38)::

    t_50%(i)  = (1.047 e^(-zeta_i/0.85) + 1.39 zeta_i) / w_ni
    t_rise(i) = scaled_rise(zeta_i) / w_ni

For large zeta (weak inductance) these reduce to the Elmore (Wyatt)
expressions for RC trees — ``t_50% -> ln 2 * T_RC`` — which is the
paper's headline property: the RC Elmore delay is the limiting special
case of the RLC equivalent delay. The RC-only entry points here
(:func:`elmore_delay`, :func:`wyatt_rise_time`) implement that limit
directly so inductance-free trees never touch a division by
``w_n = infinity``.
"""

from __future__ import annotations

import math

from ..errors import ElementValueError
from .fitting import scaled_delay, scaled_rise
from .second_order import SecondOrderModel

__all__ = [
    "delay_50",
    "rise_time",
    "delay_50_from_sums",
    "rise_time_from_sums",
    "elmore_time_constant",
    "elmore_delay",
    "wyatt_rise_time",
]

_LN2 = math.log(2.0)
#: 10-90% span of a single-pole exponential: ln(0.9/0.1).
_LN9 = math.log(9.0)


def delay_50(model: SecondOrderModel) -> float:
    """Eq. 35: the 50% propagation delay of one node's model."""
    return scaled_delay(model.zeta) / model.omega_n


def rise_time(model: SecondOrderModel) -> float:
    """Eq. 36: the 10-90% rise time of one node's model."""
    return scaled_rise(model.zeta) / model.omega_n


def delay_50_from_sums(t_rc: float, t_lc: float) -> float:
    """50% delay straight from the tree sums (eqs. 29-30 then 35).

    Falls back to the Elmore (Wyatt) RC expression when ``T_LC`` is zero,
    making the function continuous across the RC limit: as T_LC -> 0,
    zeta -> infinity and the fitted formula's ``1.39 zeta / w_n`` term
    approaches ``0.695 T_RC ~ ln 2 * T_RC``.
    """
    if t_rc <= 0.0:
        raise ElementValueError(f"T_RC must be positive, got {t_rc!r}")
    if t_lc < 0.0:
        raise ElementValueError(f"T_LC must be non-negative, got {t_lc!r}")
    if t_lc == 0.0:
        return elmore_delay(t_rc)
    return delay_50(SecondOrderModel.from_sums(t_rc, t_lc))


def rise_time_from_sums(t_rc: float, t_lc: float) -> float:
    """10-90% rise time straight from the tree sums, RC limit included."""
    if t_rc <= 0.0:
        raise ElementValueError(f"T_RC must be positive, got {t_rc!r}")
    if t_lc < 0.0:
        raise ElementValueError(f"T_LC must be non-negative, got {t_lc!r}")
    if t_lc == 0.0:
        return wyatt_rise_time(t_rc)
    return rise_time(SecondOrderModel.from_sums(t_rc, t_lc))


def elmore_time_constant(t_rc: float) -> float:
    """Elmore's original delay estimate: the first moment itself (eq. 1).

    Elmore located the 50% point at the centroid ``T_RC``; Wyatt's
    refinement (used by everyone since under the name "Elmore delay")
    multiplies by ln 2. Exposed separately because some classic tools
    report the raw time constant.
    """
    return t_rc


def elmore_delay(t_rc: float) -> float:
    """The Elmore (Wyatt) 50% delay of an RC node: ``ln 2 * T_RC``."""
    if t_rc < 0.0:
        raise ElementValueError(f"T_RC must be non-negative, got {t_rc!r}")
    return _LN2 * t_rc


def wyatt_rise_time(t_rc: float) -> float:
    """Single-pole 10-90% rise time of an RC node: ``ln 9 * T_RC``."""
    if t_rc < 0.0:
        raise ElementValueError(f"T_RC must be non-negative, got {t_rc!r}")
    return _LN9 * t_rc
