"""O(n) moment computation for RLC trees (the paper's Appendix).

The second-order model at node ``i`` needs two sums over every capacitor
``k`` in the tree (eqs. 26-27)::

    T_RC(i) = sum_k C_k R_ki        T_LC(i) = sum_k C_k L_ki

Computing them naively costs O(n^2). The Appendix's insight (inherited
from Rubinstein-Penfield for RC trees) is that both can be rewritten as
path sums::

    T_RC(i) = sum_{s in path(i)} R_s * C_load(s)

where ``C_load(s)`` is the total capacitance of the subtree hanging off
section ``s`` — because section ``s`` is common to the root paths of
``i`` and ``k`` exactly when ``k`` is in ``s``'s subtree. Two depth-first
passes then evaluate the sums at *all* nodes:

1. ``Cal_Cap_Loads`` (postorder): accumulate subtree capacitances —
   additions only;
2. ``Cal_Summations`` (preorder): ``S(i) = S(parent) + R_i * C_load(i)``
   (and the L analogue) — two multiplications per section.

The same trick generalizes to *exact* transfer-function moments of any
order. Expanding the tree's exact node transfer functions in powers of
``s`` gives the recursion (derived from the path-trace expression of
eq. 20)::

    m_j(i) = - sum_k [ R_ki * C_k m_{j-1}(k)  +  L_ki * C_k m_{j-2}(k) ]

which is the same weighted-path-sum shape with weights
``C_k * m_{j-1}(k)`` and ``C_k * m_{j-2}(k)``; each moment order is one
more O(n) sweep. This exact engine powers the AWE baseline
(:mod:`repro.reduction.awe`) and the ablation that compares the paper's
approximate second moment (eq. 28) against the exact one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..circuit.tree import RLCTree
from ..errors import ReductionError

__all__ = [
    "capacitive_loads",
    "weighted_path_sums",
    "second_order_sums",
    "elmore_sums",
    "inductance_sums",
    "exact_moments",
    "MomentSummary",
    "moment_summary",
    "multiplication_count",
]


def capacitive_loads(tree: RLCTree) -> Dict[str, float]:
    """Total capacitance driven by each section (``Cal_Cap_Loads``).

    ``C_load(s)`` is the capacitance of the subtree rooted at ``s``
    (including ``s`` itself). Computed in one postorder pass with
    additions only.
    """
    loads: Dict[str, float] = {}
    for name in tree.postorder():
        total = tree.section(name).capacitance
        for child in tree.children(name):
            total += loads[child]
        loads[name] = total
    return loads


def weighted_path_sums(
    tree: RLCTree,
    resistance_weights: Dict[str, float],
    inductance_weights: Dict[str, float],
) -> Dict[str, float]:
    """Evaluate ``sum_k R_ki w_r(k) + sum_k L_ki w_l(k)`` at every node.

    This is the generalized ``Cal_Summations`` kernel: given per-node
    weights, one postorder pass accumulates subtree weight totals and one
    preorder pass propagates the path sums down from the root. Cost is
    O(n) with two multiplications per section.

    The classic sums are the special case ``w_r = w_l = C_k``; the exact
    moment recursion uses ``w_r(k) = C_k m_{j-1}(k)``,
    ``w_l(k) = C_k m_{j-2}(k)``.
    """
    subtree_r: Dict[str, float] = {}
    subtree_l: Dict[str, float] = {}
    for name in tree.postorder():
        total_r = resistance_weights.get(name, 0.0)
        total_l = inductance_weights.get(name, 0.0)
        for child in tree.children(name):
            total_r += subtree_r[child]
            total_l += subtree_l[child]
        subtree_r[name] = total_r
        subtree_l[name] = total_l

    sums: Dict[str, float] = {}
    for name in tree.preorder():
        section = tree.section(name)
        parent = tree.parent(name)
        upstream = sums[parent] if parent != tree.root else 0.0
        sums[name] = (
            upstream
            + section.resistance * subtree_r[name]
            + section.inductance * subtree_l[name]
        )
    return sums


def second_order_sums(tree: RLCTree) -> Tuple[Dict[str, float], Dict[str, float]]:
    """``(T_RC, T_LC)`` at every node in O(n) — the Appendix algorithm.

    Returns two dicts keyed by node name. ``T_RC`` is the Elmore sum of
    eq. 26; ``T_LC`` is its inductive analogue of eq. 27.
    """
    loads = capacitive_loads(tree)
    t_rc: Dict[str, float] = {}
    t_lc: Dict[str, float] = {}
    for name in tree.preorder():
        section = tree.section(name)
        parent = tree.parent(name)
        up_rc = t_rc[parent] if parent != tree.root else 0.0
        up_lc = t_lc[parent] if parent != tree.root else 0.0
        t_rc[name] = up_rc + section.resistance * loads[name]
        t_lc[name] = up_lc + section.inductance * loads[name]
    return t_rc, t_lc


def _single_weighted_sums(tree: RLCTree, attribute: str) -> Dict[str, float]:
    """Path sums of one element kind times the capacitive loads.

    Half of ``Cal_Summations``: the loads pass plus one preorder pass
    with a *single* multiplication per section, for callers that want
    only ``T_RC`` or only ``T_LC`` without paying for the other.
    """
    loads = capacitive_loads(tree)
    sums: Dict[str, float] = {}
    for name in tree.preorder():
        value = getattr(tree.section(name), attribute)
        parent = tree.parent(name)
        upstream = sums[parent] if parent != tree.root else 0.0
        sums[name] = upstream + value * loads[name]
    return sums


def elmore_sums(tree: RLCTree) -> Dict[str, float]:
    """``T_RC`` (the Elmore time constant sum) at every node, O(n)."""
    return _single_weighted_sums(tree, "resistance")


def inductance_sums(tree: RLCTree) -> Dict[str, float]:
    """``T_LC`` at every node, O(n)."""
    return _single_weighted_sums(tree, "inductance")


def exact_moments(
    tree: RLCTree, order: int, nodes: Sequence[str] | None = None
) -> Dict[str, List[float]]:
    """Exact transfer-function moments ``m_0 .. m_order`` per node.

    ``m_j`` is the coefficient of ``s^j`` in the node's exact normalized
    transfer function (eq. 11). ``m_0 = 1``; each further order is one
    O(n) weighted-path-sum sweep, so the total cost is O(n * order).

    The recursion inherently spans the whole tree (every node's moment
    feeds every ancestor's next order), but when ``nodes`` is given only
    those nodes' histories are kept and returned.
    """
    if order < 0:
        raise ReductionError("moment order must be non-negative")
    if nodes is None:
        selected: Tuple[str, ...] = tree.nodes
    else:
        selected = tuple(nodes)
        known = set(tree.nodes)
        for name in selected:
            if name not in known:
                raise ReductionError(f"unknown node {name!r}")
    moments: Dict[str, List[float]] = {name: [1.0] for name in selected}
    previous: Dict[str, float] = {name: 1.0 for name in tree.nodes}
    before_previous: Dict[str, float] = {name: 0.0 for name in tree.nodes}

    for _ in range(order):
        w_r = {
            name: tree.section(name).capacitance * previous[name]
            for name in tree.nodes
        }
        w_l = {
            name: tree.section(name).capacitance * before_previous[name]
            for name in tree.nodes
        }
        sums = weighted_path_sums(tree, w_r, w_l)
        current = {name: -sums[name] for name in tree.nodes}
        for name in selected:
            moments[name].append(current[name])
        before_previous = previous
        previous = current
    return moments


@dataclass(frozen=True)
class MomentSummary:
    """The low-order moment picture at one node.

    ``m2_approx`` is the paper's eq.-28 Elmore-style approximation
    ``T_RC^2 - T_LC``; ``m2_exact`` the true coefficient. Their gap is
    what the second-order model gives up for O(n) tractability, and the
    ``bench_ablation_m2`` benchmark quantifies its delay impact.
    """

    node: str
    t_rc: float
    t_lc: float
    m1: float
    m2_exact: float

    @property
    def m2_approx(self) -> float:
        return self.t_rc * self.t_rc - self.t_lc

    @property
    def m2_relative_gap(self) -> float:
        """|m2_approx - m2_exact| / |m2_exact| (0 when both vanish)."""
        if self.m2_exact == 0.0:
            return 0.0 if self.m2_approx == 0.0 else float("inf")
        return abs(self.m2_approx - self.m2_exact) / abs(self.m2_exact)


def moment_summary(tree: RLCTree, nodes: Sequence[str] | None = None) -> Dict[str, MomentSummary]:
    """Per-node :class:`MomentSummary` for ``nodes`` (default: all)."""
    t_rc, t_lc = second_order_sums(tree)
    exact = exact_moments(tree, 2, nodes)
    selected = tree.nodes if nodes is None else tuple(nodes)
    return {
        name: MomentSummary(
            node=name,
            t_rc=t_rc[name],
            t_lc=t_lc[name],
            m1=exact[name][1],
            m2_exact=exact[name][2],
        )
        for name in selected
    }


def multiplication_count(tree: RLCTree) -> int:
    """Multiplications to evaluate the model at all nodes (Appendix).

    ``Cal_Cap_Loads`` needs none; ``Cal_Summations`` needs two per
    section (``R_i * C_load`` and ``L_i * C_load``), so the count is
    ``2 n`` — exactly the order of the tree's characteristic polynomial
    (each section contributes one L state and one C state).
    """
    return 2 * tree.size
