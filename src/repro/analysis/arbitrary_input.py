"""Metrics under arbitrary inputs — the paper's "iterative method".

Section IV opens with the general recipe: multiply the input's transform
by the node's second-order transfer function, invert, then apply "an
iterative method ... to calculate the primary parameters that
characterize the time domain response such as the 50% propagation delay
and the 90% rise time". Only the step input admits the direct fitted
formulas (eqs. 33-36); for exponential, ramp or PWL drive the crossings
must be found numerically on the closed-form waveform.

This module is that iterative method: bracket each threshold crossing on
a coarse sample of the analytic response, then polish with Brent's
method on the *continuous* closed form (no waveform grid error). It also
defines the input-referred delay convention real timing flows use: the
reported delay is the time from the *input's* 50% crossing to the
node's, so a slow input does not inflate the wire's apparent delay.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Union

import numpy as np
from scipy.optimize import brentq

from ..errors import SimulationError
from ..simulation.sources import (
    ExponentialSource,
    PWLSource,
    RampSource,
    Source,
    StepSource,
)
from .response import model_response
from .second_order import SecondOrderModel

__all__ = ["ArbitraryInputMetrics", "input_crossing", "response_metrics"]

_EXPAND_LIMIT = 60


def _final_value(source: Source) -> float:
    value = source.final_value
    if value == 0.0:
        raise SimulationError(
            "source settles to zero; threshold metrics are undefined"
        )
    return value


def input_crossing(source: Source, level: float) -> float:
    """Time at which the *input* waveform crosses ``level`` x final value.

    Closed form for steps/ramps/exponentials; bisection on the callable
    for PWL.
    """
    if not 0.0 < level < 1.0:
        raise SimulationError(f"level must be in (0, 1), got {level!r}")
    final = _final_value(source)
    target = level * final
    if isinstance(source, StepSource):
        return source.delay
    if isinstance(source, RampSource):
        return source.delay + level * source.rise_time
    if isinstance(source, ExponentialSource):
        return source.delay - source.tau * math.log(1.0 - level)
    if isinstance(source, PWLSource):
        times = [0.0] + [p[0] + source.delay for p in source.points]
        horizon = times[-1] if times[-1] > 0 else 1.0

        def error(t: float) -> float:
            return float(source(t)) - target

        hi = horizon
        for _ in range(_EXPAND_LIMIT):
            if error(hi) >= 0.0:
                break
            hi *= 2.0
        else:
            raise SimulationError("input never reaches the threshold")
        return float(brentq(error, 0.0, hi, xtol=1e-18, rtol=1e-12))
    raise SimulationError(f"unsupported source type {type(source).__name__}")


@dataclass(frozen=True)
class ArbitraryInputMetrics:
    """Crossing-based metrics of one node's response to a shaped input.

    ``delay_50`` is input-referred (node 50% time minus input 50% time);
    ``t50_absolute`` is the raw crossing. ``overshoot`` is the peak
    fraction above the final value (0 for monotone responses).
    """

    t50_absolute: float
    delay_50: float
    rise_time: float
    overshoot: float
    input_t50: float


def _response_crossing(
    model: SecondOrderModel,
    source: Source,
    level: float,
    horizon_hint: float,
) -> float:
    """First time the closed-form response crosses ``level`` x final."""
    final = _final_value(source)
    target = level * final

    def value(t: float) -> float:
        return float(model_response(model, source, np.array([t]))[0]) - target

    # Bracket on a coarse analytic sampling, expanding the horizon as
    # needed (slow inputs can push crossings far past the model's own
    # settling time).
    horizon = horizon_hint
    for _ in range(_EXPAND_LIMIT):
        samples = np.linspace(0.0, horizon, 512)
        values = model_response(model, source, samples) - target
        above = np.nonzero(values >= 0.0)[0]
        if above.size and above[0] > 0:
            lo = samples[above[0] - 1]
            hi = samples[above[0]]
            return float(brentq(value, lo, hi, xtol=1e-20, rtol=1e-13))
        if above.size and above[0] == 0:
            return 0.0
        horizon *= 2.0
    raise SimulationError(
        f"response never crosses {level:.0%} of final value"
    )


def response_metrics(
    model: SecondOrderModel,
    source: Union[Source, None] = None,
) -> ArbitraryInputMetrics:
    """The paper's iterative method for one node and one shaped input.

    ``source`` defaults to a unit step (in which case the crossings land
    exactly on the eq. 33-36 fitted values, modulo fit error — asserted
    in the test suite).
    """
    if source is None:
        source = StepSource()
    horizon_hint = 40.0 * max(model.zeta, 1.0) / model.omega_n
    t10 = _response_crossing(model, source, 0.1, horizon_hint)
    t50 = _response_crossing(model, source, 0.5, horizon_hint)
    t90 = _response_crossing(model, source, 0.9, horizon_hint)
    input_t50 = input_crossing(source, 0.5)

    # Peak search: sample past the ringing, refine around the max.
    final = _final_value(source)
    horizon = max(horizon_hint, 4.0 * t90)
    samples = np.linspace(0.0, horizon, 4096)
    waveform = model_response(model, source, samples)
    peak = float(waveform.max())
    overshoot = max(peak / final - 1.0, 0.0)

    return ArbitraryInputMetrics(
        t50_absolute=t50,
        delay_50=t50 - input_t50,
        rise_time=t90 - t10,
        overshoot=overshoot,
        input_t50=input_t50,
    )
