"""Model-order-reduction baselines (paper Section II).

The comparators the paper measures its closed forms against:

* :mod:`~repro.reduction.pade` — Pade-from-moments machinery and the
  :class:`PoleResidueModel` reduced-model container,
* :mod:`~repro.reduction.awe` — Asymptotic Waveform Evaluation (RICE
  flow): exact moments -> q-pole model -> measured metrics,
* :mod:`~repro.reduction.kahng_muddu` — the two-pole, three-case RLC
  delay model of the paper's reference [30],
* :mod:`~repro.reduction.krylov` — Arnoldi projection (the numerically
  robust PRIMA-family alternative to explicit moment matching).
"""

from .awe import awe_delay_50, awe_model, awe_step_metrics
from .kahng_muddu import KahngMudduModel, kahng_muddu_model
from .krylov import ArnoldiReduction, arnoldi_model
from .pade import PoleResidueModel, pade_poles_residues

__all__ = [
    "PoleResidueModel",
    "pade_poles_residues",
    "awe_model",
    "awe_step_metrics",
    "awe_delay_50",
    "KahngMudduModel",
    "kahng_muddu_model",
    "ArnoldiReduction",
    "arnoldi_model",
]
