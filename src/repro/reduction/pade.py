"""Pade approximation from moments: the core of AWE.

Given the moment expansion ``H(s) = m_0 + m_1 s + m_2 s^2 + ...`` of a
transfer function, a ``[q-1 / q]`` Pade approximant matches the first
``2q`` moments with a q-pole rational function. Writing
``H ~ N(s)/D(s)`` with ``D(s) = 1 + d_1 s + ... + d_q s^q`` and
``deg N = q - 1``, the conditions ``(H D - N)`` being ``O(s^{2q})`` give
the classic AWE linear (Hankel) system for the denominator::

    m_j + sum_{l=1..q} d_l m_{j-l} = 0      for j = q .. 2q-1

The poles are the roots of ``D``; the residues follow from a Vandermonde
solve against the low-order moments. Moment matrices are notoriously
ill-conditioned, so all solves happen in time-normalized units
(moments scaled by ``|m_1|^j``), which keeps q up to ~8 usable in double
precision — comfortably beyond what interconnect analysis needs.

This is the "arbitrary accuracy at the price of stability and numerical
issues" baseline the paper positions its always-stable second-order model
against: the Pade table happily produces right-half-plane poles, which
:func:`pade_poles_residues` flags and (optionally) discards.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from ..errors import ReductionError

__all__ = ["PoleResidueModel", "pade_poles_residues"]


@dataclass(frozen=True)
class PoleResidueModel:
    """A reduced-order model ``H(s) = sum_i  r_i / (s - p_i)``.

    The standard output form of AWE-family reductions. All response
    helpers return real arrays (poles/residues occur in conjugate pairs
    for real systems; tiny imaginary residue from rounding is dropped).
    """

    poles: Tuple[complex, ...]
    residues: Tuple[complex, ...]

    def __post_init__(self):
        if len(self.poles) != len(self.residues):
            raise ReductionError("poles and residues must pair up")
        if not self.poles:
            raise ReductionError("model needs at least one pole")

    @property
    def order(self) -> int:
        return len(self.poles)

    def is_stable(self) -> bool:
        """True when every pole is strictly in the left half plane."""
        return all(p.real < 0.0 for p in self.poles)

    @property
    def stable_pole_ratio(self) -> float:
        """Fraction of poles strictly in the left half plane.

        1.0 for a fully stable model; a low ratio means the Pade table
        produced a mostly non-physical model whose stable remnant (after
        ``stable_only`` filtering) carries little of the matched moment
        content.
        """
        stable = sum(1 for p in self.poles if p.real < 0.0)
        return stable / len(self.poles)

    def dc_gain(self) -> float:
        """H(0) = sum -r_i / p_i; ~1 for a source-driven tree node."""
        return float(np.real(sum(-r / p for p, r in zip(self.poles, self.residues))))

    def transfer_function(self, s) -> np.ndarray:
        s = np.atleast_1d(np.asarray(s, dtype=complex))
        p = np.asarray(self.poles)
        r = np.asarray(self.residues)
        h = (r[None, :] / (s[:, None] - p[None, :])).sum(axis=1)
        return h if h.size > 1 else h.reshape(())

    def moments(self, order: int) -> np.ndarray:
        """Taylor coefficients m_0..m_order implied by the model."""
        p = np.asarray(self.poles)
        r = np.asarray(self.residues)
        out = [
            float(np.real((-r / p ** (j + 1)).sum())) for j in range(order + 1)
        ]
        return np.asarray(out)

    def step_response(self, t: np.ndarray, amplitude: float = 1.0) -> np.ndarray:
        """Response to a step of ``amplitude`` (zero initial state)."""
        t = np.asarray(t, dtype=float)
        tt = np.maximum(t, 0.0)
        p = np.asarray(self.poles)
        r = np.asarray(self.residues)
        with np.errstate(over="raise"):
            try:
                modal = (np.exp(np.outer(p, tt)) - 1.0) / p[:, None]
            except FloatingPointError:
                raise ReductionError(
                    "unstable reduced model: step response overflows "
                    "(a right-half-plane pole); filter with stable_only"
                ) from None
        out = amplitude * np.real(r @ modal)
        return np.where(t >= 0.0, out, 0.0)

    def impulse_response(self, t: np.ndarray) -> np.ndarray:
        t = np.asarray(t, dtype=float)
        tt = np.maximum(t, 0.0)
        p = np.asarray(self.poles)
        r = np.asarray(self.residues)
        out = np.real(r @ np.exp(np.outer(p, tt)))
        return np.where(t >= 0.0, out, 0.0)

    def dominant_time_constant(self) -> float:
        """1 / |Re p| of the slowest stable pole (for time-grid sizing)."""
        stable = [p for p in self.poles if p.real < 0.0]
        if not stable:
            raise ReductionError("model has no stable poles")
        return max(1.0 / abs(p.real) for p in stable)


def pade_poles_residues(
    moments: Sequence[float],
    order: int,
    stable_only: bool = False,
    min_stable_ratio: float = 0.0,
) -> PoleResidueModel:
    """Compute the ``[order-1 / order]`` Pade model from moments.

    Parameters
    ----------
    moments:
        ``m_0 .. m_{2*order - 1}`` at least (extra entries ignored);
        ``m_0`` must be 1 (normalized transfer function).
    order:
        Number of poles q.
    stable_only:
        Drop right-half-plane poles instead of returning them. Residues
        are then re-solved against the low-order moments so the surviving
        model still matches ``m_0 .. m_{q'-1}``. Raises if nothing stable
        survives.
    min_stable_ratio:
        Reject the reduction outright when fewer than this fraction of
        the ``order`` computed poles are stable, *before* any filtering.
        A mostly-unstable Pade table is a sign the moment matching broke
        down, and the stable remnant is then not a trustworthy model
        even though it can be simulated. 0.0 (default) disables the
        check and preserves historical behaviour.

    Raises
    ------
    ReductionError
        For insufficient moments, a singular Hankel system (the exact
        function has fewer than ``order`` poles — lower the order), a
        stable-pole ratio below ``min_stable_ratio``, or no surviving
        stable poles with ``stable_only``.
    """
    m = np.asarray(moments, dtype=float)
    if order < 1:
        raise ReductionError("order must be at least 1")
    if not 0.0 <= min_stable_ratio <= 1.0:
        raise ReductionError(
            f"min_stable_ratio must be in [0, 1], got {min_stable_ratio!r}"
        )
    if m.size < 2 * order:
        raise ReductionError(
            f"need {2 * order} moments for a {order}-pole model, got {m.size}"
        )
    if abs(m[0] - 1.0) > 1e-9:
        raise ReductionError("moments must be normalized (m_0 = 1)")
    if m[1] >= 0.0:
        raise ReductionError("m_1 must be negative for a causal low-pass")

    # Time normalization: work in units of |m_1| to tame conditioning.
    scale = abs(m[1])
    normalized = m[: 2 * order] / scale ** np.arange(2 * order)

    q = order
    hankel = np.empty((q, q))
    rhs = np.empty(q)
    for row in range(q):
        j = q + row
        for col in range(1, q + 1):
            hankel[row, col - 1] = normalized[j - col]
        rhs[row] = -normalized[j]
    condition = np.linalg.cond(hankel)
    if not np.isfinite(condition) or condition > 1e13:
        raise ReductionError(
            "singular moment matrix (condition "
            f"{condition:.2e}): the response has fewer than {order} "
            "effective poles, or the order exceeds double-precision "
            "moment matching; lower the order"
        )
    try:
        d = np.linalg.solve(hankel, rhs)
    except np.linalg.LinAlgError:
        raise ReductionError(
            "singular moment matrix: the response has fewer than "
            f"{order} effective poles; lower the order"
        ) from None

    # D(s') = 1 + d_1 s' + ... + d_q s'^q ; np.roots wants high->low.
    coeffs = np.concatenate([d[::-1], [1.0]])
    if abs(coeffs[0]) < 1e-300:
        raise ReductionError("degenerate denominator; lower the order")
    scaled_poles = np.roots(coeffs)
    poles = scaled_poles / scale

    if min_stable_ratio > 0.0:
        ratio = float(np.count_nonzero(scaled_poles.real < 0.0)) / order
        if ratio < min_stable_ratio:
            raise ReductionError(
                f"only {ratio:.0%} of the {order} Pade poles are stable "
                f"(required {min_stable_ratio:.0%}); the moment matching "
                "has broken down at this order"
            )

    if stable_only:
        keep = scaled_poles.real < 0.0
        if not keep.any():
            raise ReductionError(
                "no stable poles survived filtering; the Pade model of this "
                "order is entirely non-physical"
            )
        scaled_poles = scaled_poles[keep]
        poles = poles[keep]

    # Residues are solved in normalized time; with s = s'/scale and
    # p = p'/scale, H(s) = sum r'/(s' - p') = sum (r'/scale)/(s - p).
    residues = _solve_residues(scaled_poles, normalized) / scale

    return PoleResidueModel(
        poles=tuple(complex(p) for p in poles),
        residues=tuple(complex(r) for r in residues),
    )


def _solve_residues(poles: np.ndarray, normalized_moments: np.ndarray) -> np.ndarray:
    """Match residues to the low-order moments (Vandermonde in 1/p)."""
    q = poles.size
    vandermonde = np.empty((q, q), dtype=complex)
    for j in range(q):
        vandermonde[j, :] = poles ** (-(j + 1))
    rhs = -normalized_moments[:q].astype(complex)
    try:
        return np.linalg.solve(vandermonde, rhs)
    except np.linalg.LinAlgError:
        raise ReductionError(
            "repeated Pade poles: residue system singular; "
            "perturb the circuit or change the order"
        ) from None
