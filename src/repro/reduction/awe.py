"""Asymptotic Waveform Evaluation (AWE) for RLC trees.

The higher-order baseline of the paper's Section II: match ``2q`` exact
moments of a node's transfer function with a q-pole Pade model
[Pillage & Rohrer 1990, RICE 1991]. Arbitrary accuracy is available by
raising ``q`` — at the price of the numerical and stability issues the
paper cites as the reason the Elmore-style closed forms stay in use.

Moments come from the O(n)-per-order exact engine in
:mod:`repro.analysis.moments`, so AWE here is exactly the "RICE-style"
flow: tree -> moments -> Pade -> poles/residues -> waveform/metrics.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..analysis.moments import exact_moments
from ..circuit.tree import RLCTree
from ..errors import ReductionError
from ..simulation import measures
from .pade import PoleResidueModel, pade_poles_residues

__all__ = ["awe_model", "awe_step_metrics", "awe_delay_50"]


def awe_model(
    tree: RLCTree,
    node: str,
    order: int = 2,
    stable_only: bool = False,
    min_stable_ratio: float = 0.0,
) -> PoleResidueModel:
    """The q-pole AWE model of ``node``'s transfer function.

    ``order=2`` reproduces the moment content the paper's second-order
    model starts from, but with the *exact* second moment and no
    guarantee of stability; higher orders approach the exact response.
    ``min_stable_ratio`` rejects reductions whose Pade table is mostly
    unstable (see :func:`~repro.reduction.pade.pade_poles_residues`).
    """
    if node not in tree:
        raise ReductionError(f"unknown node {node!r}")
    moments = exact_moments(tree, 2 * order - 1)[node]
    return pade_poles_residues(
        moments, order, stable_only=stable_only,
        min_stable_ratio=min_stable_ratio,
    )


def awe_step_metrics(
    tree: RLCTree,
    node: str,
    order: int = 2,
    stable_only: bool = True,
    final_value: float = 1.0,
    points: int = 4001,
    span_factor: float = 10.0,
    t_end: Optional[float] = None,
    min_stable_ratio: float = 0.0,
    settle_band: float = 0.1,
) -> measures.WaveformMetrics:
    """Step-response metrics of the AWE model, measured off its waveform.

    Unlike the paper's model, AWE has no closed-form delay: the reduced
    waveform must be generated and measured, which is what every AWE
    timing flow does. ``stable_only`` defaults to True because an
    unstable reduced model has no measurable 50% delay at all.
    """
    model = awe_model(
        tree, node, order, stable_only=stable_only,
        min_stable_ratio=min_stable_ratio,
    )
    if t_end is None:
        t_end = span_factor * model.dominant_time_constant()
    t = np.linspace(0.0, t_end, points)
    v = model.step_response(t, amplitude=final_value)
    return measures.measure(
        t, v, final_value=final_value, settle_band=settle_band
    )


def awe_delay_50(
    tree: RLCTree,
    node: str,
    order: int = 2,
    stable_only: bool = True,
) -> float:
    """Convenience: the 50% delay of the AWE reduced model."""
    return awe_step_metrics(tree, node, order, stable_only=stable_only).delay_50
