"""The Kahng-Muddu two-pole RLC delay model (the paper's reference [30]).

A. B. Kahng and S. Muddu, "An analytical delay model for RLC
interconnects," IEEE TCAD vol. 16, Dec. 1997: characterize a node by a
two-pole transfer function built from the exact first and second moments,
with *three separate formulae* for the real-distinct, repeated and
complex pole cases. The Ismail-Friedman-Neves paper positions itself
against exactly this model, citing two drawbacks it removes:

* no single continuous expression — the three damping cases must be
  dispatched (awkward inside optimization loops), and
* no closed-form tree recursion for the moments in [30], and no
  characterization of overshoots or settling for underdamped nodes.

This module implements the model faithfully: exact ``m_1``/``m_2`` from
the moment engine, the case split, per-case closed-form step responses,
and a numerically measured 50% delay. The baseline benchmarks then
compare it against the paper's model (which uses the *approximate*
eq.-28 second moment but one continuous formula).
"""

from __future__ import annotations

import cmath
import math
from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..analysis.moments import exact_moments
from ..circuit.tree import RLCTree
from ..errors import ReductionError
from ..simulation import measures

__all__ = ["KahngMudduModel", "kahng_muddu_model"]

#: Relative pole separation below which the repeated-root formula is used.
_REPEATED_BAND = 1e-7


@dataclass(frozen=True)
class KahngMudduModel:
    """Two-pole model ``H(s) = 1 / (1 + b1 s + b2 s^2)`` from exact moments.

    ``case`` is one of ``"real"``, ``"repeated"``, ``"complex"`` — the
    three-formula split of [30].
    """

    b1: float
    b2: float

    def __post_init__(self):
        if self.b1 <= 0.0 or self.b2 <= 0.0:
            raise ReductionError(
                "Kahng-Muddu model needs b1, b2 > 0 "
                f"(got b1={self.b1!r}, b2={self.b2!r}); the node's exact "
                "moments do not admit a stable two-pole match"
            )

    @classmethod
    def from_moments(cls, m1: float, m2: float) -> "KahngMudduModel":
        """Match ``H(s) = 1 + m1 s + m2 s^2 + O(s^3)``.

        Expanding 1/(1 + b1 s + b2 s^2) gives ``m1 = -b1`` and
        ``m2 = b1^2 - b2``.
        """
        return cls(b1=-m1, b2=m1 * m1 - m2)

    # -- pole structure -------------------------------------------------------

    def poles(self) -> Tuple[complex, complex]:
        disc = cmath.sqrt(complex(self.b1 * self.b1 - 4.0 * self.b2, 0.0))
        return (
            (-self.b1 + disc) / (2.0 * self.b2),
            (-self.b1 - disc) / (2.0 * self.b2),
        )

    @property
    def discriminant(self) -> float:
        return self.b1 * self.b1 - 4.0 * self.b2

    @property
    def case(self) -> str:
        """The three-way dispatch of [30]."""
        if abs(self.discriminant) <= _REPEATED_BAND * self.b1 * self.b1:
            return "repeated"
        return "real" if self.discriminant > 0.0 else "complex"

    # -- responses ------------------------------------------------------------

    def step_response(self, t: np.ndarray, amplitude: float = 1.0) -> np.ndarray:
        """The case-dispatched closed-form step response of [30]."""
        t = np.asarray(t, dtype=float)
        tt = np.maximum(t, 0.0)
        case = self.case
        if case == "real":
            s1, s2 = (p.real for p in self.poles())
            v = 1.0 + (s2 * np.exp(s1 * tt) - s1 * np.exp(s2 * tt)) / (s1 - s2)
        elif case == "repeated":
            s = -self.b1 / (2.0 * self.b2)
            v = 1.0 - (1.0 - s * tt) * np.exp(s * tt)
        else:  # complex pair
            sigma = self.b1 / (2.0 * self.b2)
            omega_d = math.sqrt(4.0 * self.b2 - self.b1 * self.b1) / (2.0 * self.b2)
            v = 1.0 - np.exp(-sigma * tt) * (
                np.cos(omega_d * tt) + (sigma / omega_d) * np.sin(omega_d * tt)
            )
        return np.where(t >= 0.0, amplitude * v, 0.0)

    def dominant_time_constant(self) -> float:
        return max(1.0 / abs(p.real) for p in self.poles())

    def delay_50(
        self, points: int = 4001, span_factor: float = 12.0
    ) -> float:
        """Measured 50% delay of the model's step response.

        [30] reads delays off its formulae numerically as well; there is
        no single closed-form delay across the three cases, which is the
        gap the equivalent-Elmore paper fills.
        """
        t = np.linspace(0.0, span_factor * self.dominant_time_constant(), points)
        return measures.delay_50(t, self.step_response(t))

    def rise_time(
        self, points: int = 4001, span_factor: float = 12.0
    ) -> float:
        """Measured 10-90% rise time of the model's step response."""
        t = np.linspace(0.0, span_factor * self.dominant_time_constant(), points)
        return measures.rise_time_10_90(t, self.step_response(t))


def kahng_muddu_model(tree: RLCTree, node: str) -> KahngMudduModel:
    """Build the [30] model of ``node`` from the tree's exact moments."""
    if node not in tree:
        raise ReductionError(f"unknown node {node!r}")
    m = exact_moments(tree, 2)[node]
    return KahngMudduModel.from_moments(m[1], m[2])
