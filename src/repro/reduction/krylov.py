"""Krylov-subspace (Arnoldi) model-order reduction.

The numerically robust successor to explicit moment matching that the
paper's Section II surveys (Arnoldi, block Arnoldi, PRIMA, PVL): instead
of forming the ill-conditioned moment Hankel matrix, build an orthonormal
basis ``V`` of the Krylov space ``K_q(A^{-1}, A^{-1} b)`` and project::

    A_r = V^T A V,   b_r = V^T b,   c_r = V^T c

The reduced model matches the first ``q`` moments implicitly (through
the subspace, not through explicit moment arithmetic), so it stays
usable at orders where the explicit Pade solve in
:mod:`repro.reduction.pade` has long lost all precision. Like AWE it is
*not* guaranteed stable for our nonsymmetric A — PRIMA's passivity proof
needs the symmetric MNA form — and the baseline benchmark records how
often stability actually holds in practice.
"""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np

from ..circuit.tree import RLCTree
from ..errors import ReductionError
from ..simulation.state_space import build_state_space
from .pade import PoleResidueModel

__all__ = ["arnoldi_model", "ArnoldiReduction"]


@dataclass(frozen=True)
class ArnoldiReduction:
    """The projected reduced system plus its pole/residue form."""

    a_reduced: np.ndarray
    b_reduced: np.ndarray
    c_reduced: np.ndarray
    model: PoleResidueModel

    @property
    def order(self) -> int:
        return self.a_reduced.shape[0]


def arnoldi_model(
    tree: RLCTree,
    node: str,
    order: int,
) -> ArnoldiReduction:
    """Reduce ``node``'s transfer function to ``order`` poles via Arnoldi.

    Raises :class:`ReductionError` when the Krylov space collapses before
    reaching ``order`` (the exact system has fewer independent moments —
    lower the order) or when the reduced system is defective.
    """
    if order < 1:
        raise ReductionError("order must be at least 1")
    space = build_state_space(tree)
    if node not in space.node_index:
        raise ReductionError(f"unknown node {node!r}")
    n = space.order
    if order > n:
        raise ReductionError(
            f"requested order {order} exceeds system order {n}"
        )

    # Moments about s = 0 live in the Krylov space of A^{-1}.
    a_inverse = np.linalg.inv(space.a)  # A is small and dense; inverse is fine
    start = a_inverse @ space.b
    norm = np.linalg.norm(start)
    if norm == 0.0:
        raise ReductionError("input vector is zero; nothing to reduce")

    basis = np.empty((n, order))
    basis[:, 0] = start / norm
    for j in range(1, order):
        candidate = a_inverse @ basis[:, j - 1]
        pre_norm = np.linalg.norm(candidate)
        # Modified Gram-Schmidt with one re-orthogonalization pass.
        for _ in range(2):
            for i in range(j):
                candidate -= (basis[:, i] @ candidate) * basis[:, i]
        candidate_norm = np.linalg.norm(candidate)
        # Collapse is judged against the vector's own pre-orthogonalization
        # size: A^-1 scales every vector by ~1/|lambda|, so comparing with
        # the initial norm would misread plain scaling as collapse.
        if candidate_norm < 1e-10 * pre_norm:
            raise ReductionError(
                f"Krylov space collapsed at dimension {j}; the node has "
                f"fewer than {order} effective poles — lower the order"
            )
        basis[:, j] = candidate / candidate_norm

    a_reduced = basis.T @ space.a @ basis
    b_reduced = basis.T @ space.b
    c_reduced = basis.T @ space.output_row(node)

    eigenvalues, vectors = np.linalg.eig(a_reduced)
    condition = np.linalg.cond(vectors)
    if not np.isfinite(condition) or condition > 1e13:
        raise ReductionError("reduced system is numerically defective")
    beta = np.linalg.solve(vectors, b_reduced.astype(complex))
    gamma = c_reduced.astype(complex) @ vectors
    residues = gamma * beta

    model = PoleResidueModel(
        poles=tuple(complex(p) for p in eigenvalues),
        residues=tuple(complex(r) for r in residues),
    )
    return ArnoldiReduction(
        a_reduced=a_reduced,
        b_reduced=b_reduced,
        c_reduced=c_reduced,
        model=model,
    )
