"""Coupled two-line RLC simulation: crosstalk noise and delay push-out.

The paper treats isolated trees, but its authors' surrounding work (and
the introduction's motivation) is inductance-aware signal integrity:
neighbouring wires couple through fringe capacitance *and* mutual
inductance. This module builds the exact state-space model of two
identical parallel RLC lines with per-section coupling capacitance
``c_c`` and mutual inductance ``m``, solved with the same modal
machinery as :class:`~repro.simulation.exact.ExactSimulator`:

* KCL at node k of line x:
  ``(C_g + C_c) dv_xk/dt - C_c dv_yk/dt = i_xk - i_x,k+1``
* KVL on branch k of line x:
  ``L di_xk/dt + M di_yk/dt = v_x,k-1 - v_xk - R i_xk``

Both 2x2 coupling blocks are symmetric positive definite for
``c_c >= 0`` and ``|m| < L``, so the coupled system inherits passivity —
property-tested along with the classic even/odd *mode decomposition*:

* both lines driven identically (even mode): the coupling capacitor
  carries no current and the mutual flux adds, so each line behaves as
  an isolated line with ``L + M`` and ``C_g``;
* driven anti-phase (odd mode): the coupling capacitor sees twice the
  swing and the mutual flux cancels: ``L - M`` and ``C_g + 2 C_c``.

Those two exact equivalences pin the implementation against the
single-line solver. The user-facing analyses are
:func:`crosstalk_noise` (quiet victim, switching aggressor) and
:func:`switching_delay` (victim delay when the neighbour switches with
or against it — the inductive/capacitive "Miller" effect on timing).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Literal, Tuple

import numpy as np

from ..circuit.elements import Section
from ..errors import ElementValueError, SimulationError
from .measures import delay_50 as measure_delay_50

__all__ = ["CoupledLines", "CrosstalkNoise", "crosstalk_noise", "switching_delay"]


class CoupledLines:
    """Two identical parallel RLC lines with capacitive + inductive coupling.

    Parameters
    ----------
    num_sections:
        Sections per line.
    section:
        Per-section R, L, C of each line in isolation (C is the ground
        capacitance ``C_g``).
    coupling_capacitance:
        ``C_c`` per section between facing nodes (>= 0).
    mutual_inductance:
        ``M`` per section between facing branches; requires ``|M| < L``.
    """

    def __init__(
        self,
        num_sections: int,
        section: Section,
        coupling_capacitance: float = 0.0,
        mutual_inductance: float = 0.0,
    ):
        if num_sections < 1:
            raise SimulationError("need at least one section per line")
        if section.capacitance <= 0.0:
            raise SimulationError("sections need positive ground capacitance")
        if section.inductance <= 0.0:
            raise SimulationError(
                "coupled analysis needs L > 0 (set mutual_inductance=0 for "
                "capacitive-only coupling, but keep a physical self-L)"
            )
        if coupling_capacitance < 0.0:
            raise ElementValueError("coupling capacitance must be >= 0")
        if abs(mutual_inductance) >= section.inductance:
            raise ElementValueError(
                "mutual inductance must satisfy |M| < L for a passive pair"
            )
        self.num_sections = num_sections
        self.section = section
        self.coupling_capacitance = float(coupling_capacitance)
        self.mutual_inductance = float(mutual_inductance)

    # -- assembly ----------------------------------------------------------

    @cached_property
    def _system(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(A, b_aggressor, b_victim) of the 4n-state coupled system."""
        n = self.num_sections
        r = self.section.resistance
        l_self = self.section.inductance
        c_g = self.section.capacitance
        c_c = self.coupling_capacitance
        m = self.mutual_inductance

        # Per-node 2x2 capacitance block and its inverse.
        c_block = np.array([[c_g + c_c, -c_c], [-c_c, c_g + c_c]])
        c_inv = np.linalg.inv(c_block)
        # Per-branch 2x2 inductance block and its inverse.
        l_block = np.array([[l_self, m], [m, l_self]])
        l_inv = np.linalg.inv(l_block)

        size = 4 * n  # [v_a(0..n-1), v_v(0..n-1), i_a(0..n-1), i_v(0..n-1)]
        a = np.zeros((size, size))
        b_a = np.zeros(size)
        b_v = np.zeros(size)

        def vi(line: int, k: int) -> int:
            return line * n + k

        def ii(line: int, k: int) -> int:
            return 2 * n + line * n + k

        # KCL: C_block * d[v_ak, v_vk]/dt = [inj_a, inj_v]
        # injection at node k = i_k - i_{k+1} (i_{n} = 0).
        for k in range(n):
            for row in range(2):  # 0 = aggressor, 1 = victim
                for col in range(2):
                    coeff = c_inv[row, col]
                    a[vi(row, k), ii(col, k)] += coeff
                    if k + 1 < n:
                        a[vi(row, k), ii(col, k + 1)] -= coeff

        # KVL: L_block * d[i_ak, i_vk]/dt =
        #      [v_prev - v_k - R i]_a, [...]_v
        for k in range(n):
            for row in range(2):
                for col in range(2):
                    coeff = l_inv[row, col]
                    a[ii(row, k), vi(col, k)] -= coeff
                    a[ii(row, k), ii(col, k)] -= coeff * r
                    if k > 0:
                        a[ii(row, k), vi(col, k - 1)] += coeff
                    else:
                        # Branch 0 hangs off the (ideal) line driver.
                        if col == 0:
                            b_a[ii(row, k)] += coeff
                        else:
                            b_v[ii(row, k)] += coeff
        return a, b_a, b_v

    @cached_property
    def _modal(self):
        a, b_a, b_v = self._system
        w, v = np.linalg.eig(a)
        condition = np.linalg.cond(v)
        if not np.isfinite(condition) or condition > 1e13:
            raise SimulationError(
                "coupled system too close to defective; perturb values"
            )
        v_inv = np.linalg.inv(v)
        return w, v, v_inv @ b_a.astype(complex), v_inv @ b_v.astype(complex)

    # -- queries --------------------------------------------------------------

    @property
    def order(self) -> int:
        return 4 * self.num_sections

    def poles(self) -> np.ndarray:
        return self._modal[0].copy()

    def is_stable(self) -> bool:
        return bool(np.all(self._modal[0].real < 0.0))

    def node_index(self, line: Literal["aggressor", "victim"], k: int) -> int:
        """State index of node ``k`` (1-based, sink = num_sections)."""
        if not 1 <= k <= self.num_sections:
            raise SimulationError(f"node index {k} out of range")
        offset = 0 if line == "aggressor" else self.num_sections
        return offset + (k - 1)

    def time_grid(self, span_factor: float = 8.0, points: int = 4001) -> np.ndarray:
        w = self._modal[0]
        slowest = float(np.max(1.0 / np.abs(w.real)))
        return np.linspace(0.0, span_factor * slowest, points)

    def step_response(
        self,
        t: np.ndarray,
        aggressor_amplitude: float = 1.0,
        victim_amplitude: float = 0.0,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Sink voltages (aggressor, victim) for simultaneous step drives.

        A quiet line is a line whose driver holds it at 0 (amplitude 0) —
        the ideal-source formulation of the classic crosstalk setup.
        """
        w, v, beta_a, beta_v = self._modal
        t = np.asarray(t, dtype=float)
        beta = aggressor_amplitude * beta_a + victim_amplitude * beta_v
        modal = beta[:, None] * (np.exp(np.outer(w, t)) - 1.0) / w[:, None]
        sink_a = self.node_index("aggressor", self.num_sections)
        sink_v = self.node_index("victim", self.num_sections)
        out = v[[sink_a, sink_v], :] @ modal
        max_imag = float(np.max(np.abs(out.imag)))
        if max_imag > 1e-6 * max(float(np.max(np.abs(out))), 1e-12):
            raise SimulationError("modal recombination left imaginary residue")
        return out[0].real, out[1].real


@dataclass(frozen=True)
class CrosstalkNoise:
    """Peak noise coupled onto a quiet victim by a switching aggressor."""

    peak: float
    peak_time: float
    settle_value: float

    @property
    def peak_fraction(self) -> float:
        """Peak noise as a fraction of the aggressor swing (1.0 V drive)."""
        return abs(self.peak)


def crosstalk_noise(
    lines: CoupledLines,
    points: int = 6001,
    span_factor: float = 10.0,
) -> CrosstalkNoise:
    """Victim-sink noise waveform metrics for a unit aggressor step."""
    t = lines.time_grid(span_factor=span_factor, points=points)
    _, victim = lines.step_response(t, 1.0, 0.0)
    index = int(np.argmax(np.abs(victim)))
    return CrosstalkNoise(
        peak=float(victim[index]),
        peak_time=float(t[index]),
        settle_value=float(victim[-1]),
    )


def switching_delay(
    lines: CoupledLines,
    mode: Literal["quiet", "same", "opposite"],
    points: int = 6001,
    span_factor: float = 10.0,
) -> float:
    """Victim 50% delay when the aggressor is quiet / in-phase / anti-phase.

    The capacitive Miller effect: an anti-phase neighbour effectively
    doubles the coupling capacitance (slower), an in-phase one removes
    it (faster); mutual inductance pushes the other way. The spread
    between the three numbers is the timing-window cost of coupling.
    """
    amplitudes = {"quiet": 0.0, "same": 1.0, "opposite": -1.0}
    if mode not in amplitudes:
        raise SimulationError(f"unknown mode {mode!r}")
    t = lines.time_grid(span_factor=span_factor, points=points)
    _, victim = lines.step_response(
        t, aggressor_amplitude=amplitudes[mode], victim_amplitude=1.0
    )
    return measure_delay_50(t, victim, final_value=1.0)
