"""Trapezoidal transient integration.

A second, independent solver: fixed-step trapezoidal integration of the
same state-space model the exact solver uses. Trapezoidal is the
workhorse companion-model method of SPICE-class simulators — A-stable, no
numerical damping — so it is both a realistic "circuit simulator"
reference and a cross-check that the eigendecomposition path in
:mod:`repro.simulation.exact` was assembled correctly (the two agree to
integration tolerance on every supported input, which the test suite
asserts).

Unlike the exact solver it accepts *any* callable input waveform.
"""

from __future__ import annotations

from typing import Callable, Sequence, Tuple, Union

import numpy as np
from scipy.linalg import lu_factor, lu_solve

from ..circuit.tree import RLCTree
from ..errors import SimulationError
from .sources import Source
from .state_space import StateSpace, build_state_space

__all__ = ["TrapezoidalSimulator", "simulate_transient"]


class TrapezoidalSimulator:
    """Fixed-step trapezoidal integrator for one RLC tree.

    The step update for ``dx/dt = A x + b u`` is::

        (I - h/2 A) x[k+1] = (I + h/2 A) x[k] + h/2 b (u[k] + u[k+1])

    The left-hand matrix is LU-factorized once per step size, so a full
    transient costs one factorization plus one triangular solve per step.
    """

    def __init__(self, tree: RLCTree):
        self._tree = tree
        self._space: StateSpace = build_state_space(tree)
        self._cached_h: float | None = None
        self._cached_lu = None
        self._cached_rhs: np.ndarray | None = None

    @property
    def state_space(self) -> StateSpace:
        return self._space

    def _factor(self, h: float) -> None:
        if self._cached_h == h:
            return
        n = self._space.order
        identity = np.eye(n)
        self._cached_lu = lu_factor(identity - 0.5 * h * self._space.a)
        self._cached_rhs = identity + 0.5 * h * self._space.a
        self._cached_h = h

    def run(
        self,
        source: Union[Source, Callable[[float], float]],
        nodes: Union[str, Sequence[str]],
        t: np.ndarray,
    ) -> np.ndarray:
        """Integrate over the uniform grid ``t`` and sample node voltages.

        ``source`` may be any callable mapping time to source voltage.
        Returns an array shaped like ``t`` for a single node name, or
        ``(len(nodes), len(t))`` for a sequence.
        """
        t = np.asarray(t, dtype=float)
        if t.ndim != 1 or t.size < 2:
            raise SimulationError("time grid needs at least two points")
        steps = np.diff(t)
        h = float(steps[0])
        if h <= 0.0 or not np.allclose(steps, h, rtol=1e-9, atol=0.0):
            raise SimulationError("trapezoidal integration needs a uniform grid")
        self._factor(h)

        single = isinstance(nodes, str)
        names = [nodes] if single else list(nodes)
        c = self._space.output_matrix(names)

        u = np.asarray([float(source(time)) for time in t])
        x = np.zeros(self._space.order)
        out = np.empty((len(names), t.size))
        out[:, 0] = c @ x
        b = self._space.b
        for k in range(t.size - 1):
            rhs = self._cached_rhs @ x + 0.5 * h * b * (u[k] + u[k + 1])
            x = lu_solve(self._cached_lu, rhs)
            out[:, k + 1] = c @ x
        return out[0] if single else out


def simulate_transient(
    tree: RLCTree,
    source: Union[Source, Callable[[float], float]],
    nodes: Union[str, Sequence[str]],
    t_end: float,
    steps: int = 4000,
) -> Tuple[np.ndarray, np.ndarray]:
    """One-shot helper: build a grid, run the integrator, return (t, v)."""
    if t_end <= 0.0:
        raise SimulationError("t_end must be positive")
    if steps < 2:
        raise SimulationError("need at least two steps")
    t = np.linspace(0.0, t_end, steps + 1)
    return t, TrapezoidalSimulator(tree).run(source, nodes, t)
