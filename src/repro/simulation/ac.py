"""Frequency-domain analysis helpers.

Thin conveniences over :class:`~repro.simulation.exact.ExactSimulator`'s
exact transfer function: log-spaced sweeps, magnitude in dB, -3 dB
bandwidth and resonant peaking. The paper reasons in the time domain, but
the damping-factor story is easiest to *see* in frequency response — an
underdamped node shows a resonant peak exactly where the step response
rings — so the examples use these helpers for intuition plots.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..circuit.tree import RLCTree
from ..errors import SimulationError
from .exact import ExactSimulator

__all__ = ["FrequencySweep", "sweep", "bandwidth_3db", "resonant_peak_db"]


@dataclass(frozen=True)
class FrequencySweep:
    """Result of one AC sweep at a node."""

    node: str
    frequency: np.ndarray  # hertz
    response: np.ndarray  # complex H(j 2 pi f)

    @property
    def magnitude(self) -> np.ndarray:
        return np.abs(self.response)

    @property
    def magnitude_db(self) -> np.ndarray:
        return 20.0 * np.log10(np.maximum(self.magnitude, 1e-300))

    @property
    def phase_degrees(self) -> np.ndarray:
        return np.unwrap(np.angle(self.response)) * 180.0 / math.pi


def sweep(
    tree_or_simulator: "RLCTree | ExactSimulator",
    node: str,
    f_start: Optional[float] = None,
    f_stop: Optional[float] = None,
    points: int = 400,
) -> FrequencySweep:
    """Log-spaced AC sweep at ``node``.

    Default limits bracket the system's pole frequencies by a decade on
    each side, so the full roll-off (and any resonant peak) is visible.
    """
    simulator = (
        tree_or_simulator
        if isinstance(tree_or_simulator, ExactSimulator)
        else ExactSimulator(tree_or_simulator)
    )
    poles = simulator.poles()
    pole_freqs = np.abs(poles) / (2.0 * math.pi)
    if f_start is None:
        f_start = float(np.min(pole_freqs)) / 10.0
    if f_stop is None:
        f_stop = float(np.max(pole_freqs)) * 10.0
    if f_start <= 0.0 or f_stop <= f_start:
        raise SimulationError("need 0 < f_start < f_stop")
    frequency = np.logspace(math.log10(f_start), math.log10(f_stop), points)
    response = simulator.frequency_response(node, frequency)
    return FrequencySweep(node=node, frequency=frequency, response=response)


def bandwidth_3db(result: FrequencySweep) -> Optional[float]:
    """First frequency where |H| drops 3 dB below its DC value.

    Returns ``None`` when the sweep never crosses (widen the sweep).
    """
    target = result.magnitude_db[0] - 3.0
    below = result.magnitude_db <= target
    indices = np.nonzero(below)[0]
    if indices.size == 0:
        return None
    i = int(indices[0])
    if i == 0:
        return float(result.frequency[0])
    # Log-linear interpolation between the bracketing samples.
    f0, f1 = result.frequency[i - 1], result.frequency[i]
    m0, m1 = result.magnitude_db[i - 1], result.magnitude_db[i]
    frac = (target - m0) / (m1 - m0)
    return float(f0 * (f1 / f0) ** frac)


def resonant_peak_db(result: FrequencySweep) -> float:
    """Peak magnitude above DC in dB; 0 for a monotone (overdamped) node."""
    peak = float(np.max(result.magnitude_db) - result.magnitude_db[0])
    return max(peak, 0.0)
