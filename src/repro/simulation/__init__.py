"""Exact simulation of RLC trees — the reproduction's AS/X substitute.

Two independent engines share one state-space formulation:

* :class:`~repro.simulation.exact.ExactSimulator` — analytic modal
  solution (eigendecomposition); machine-precision responses for step,
  exponential, ramp and PWL inputs; exact poles and transfer functions.
* :class:`~repro.simulation.transient.TrapezoidalSimulator` — SPICE-style
  fixed-step trapezoidal integration for arbitrary waveforms.

:mod:`repro.simulation.measures` turns sampled waveforms into the paper's
figures of merit (50% delay, rise time, overshoots, settling time).

Beyond the paper's scope (but built on the same machinery):

* :class:`~repro.simulation.coupled.CoupledLines` — two coupled RLC
  lines (coupling C + mutual L) for crosstalk and Miller-window studies,
* :class:`~repro.simulation.transmission_line.TransmissionLine` — the
  exact distributed (telegraph-equation) reference, with fixed-Talbot
  numerical Laplace inversion for time-domain responses.
"""

from .ac import FrequencySweep, bandwidth_3db, resonant_peak_db, sweep
from .coupled import (
    CoupledLines,
    CrosstalkNoise,
    crosstalk_noise,
    switching_delay,
)
from .exact import ExactSimulator
from .measures import (
    WaveformMetrics,
    delay_50,
    find_extrema,
    max_error,
    measure,
    overshoots,
    rise_time_10_90,
    rms_error,
    settling_time,
    threshold_crossing,
)
from .sources import (
    ExponentialSource,
    PWLSource,
    RampSource,
    Source,
    StepSource,
)
from .state_space import StateSpace, build_state_space, ensure_positive_capacitance
from .transient import TrapezoidalSimulator, simulate_transient
from .transmission_line import TransmissionLine, talbot_inverse_laplace

__all__ = [
    "ExactSimulator",
    "TrapezoidalSimulator",
    "simulate_transient",
    "StateSpace",
    "build_state_space",
    "ensure_positive_capacitance",
    "Source",
    "StepSource",
    "RampSource",
    "ExponentialSource",
    "PWLSource",
    "WaveformMetrics",
    "measure",
    "threshold_crossing",
    "delay_50",
    "rise_time_10_90",
    "find_extrema",
    "overshoots",
    "settling_time",
    "rms_error",
    "max_error",
    "FrequencySweep",
    "sweep",
    "bandwidth_3db",
    "resonant_peak_db",
    "CoupledLines",
    "CrosstalkNoise",
    "crosstalk_noise",
    "switching_delay",
    "TransmissionLine",
    "talbot_inverse_laplace",
]
