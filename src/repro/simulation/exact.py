"""Exact LTI solver for RLC trees — the library's AS/X stand-in.

The paper validates its closed forms against AS/X, IBM's internal circuit
simulator. An RLC tree driven by an ideal source is a linear
time-invariant network, so its response can be computed to machine
precision from the eigendecomposition of the state matrix: every node
voltage is a sum of modal terms ``gamma_i * z_i(t)`` whose time functions
are known analytically for step, exponential, ramp and piecewise-linear
inputs. That analytic modal solution — not a time-stepping approximation —
is what this module provides, and it is the accuracy oracle for every
benchmark in the repository. The independent trapezoidal integrator in
:mod:`repro.simulation.transient` cross-checks it in the test suite.
"""

from __future__ import annotations

import math
from functools import cached_property
from typing import Dict, Optional, Sequence, Tuple, Union

import numpy as np

from ..circuit.tree import RLCTree
from ..errors import SimulationError
from .sources import ExponentialSource, PWLSource, RampSource, Source, StepSource
from .state_space import StateSpace, build_state_space

__all__ = ["ExactSimulator"]

#: Relative threshold below which ``w + 1/tau`` counts as resonant and the
#: limiting form ``t * exp(w t)`` is used instead of the difference quotient.
_RESONANCE_RTOL = 1e-9


class ExactSimulator:
    """Analytic modal solution of one RLC tree.

    Parameters
    ----------
    tree:
        The tree to solve. Every node must have positive capacitance
        (see :func:`repro.simulation.state_space.build_state_space`).

    Notes
    -----
    The eigendecomposition is computed once, lazily, and shared by all
    queries. For a tree with m inductive and n total sections the state
    order is n + m and a dense eigensolve costs O((n + m)^3) — entirely
    practical for the tree sizes of timing analysis, and the point of the
    paper is precisely that its O(n) closed forms avoid this cost.
    """

    def __init__(self, tree: RLCTree):
        self._tree = tree
        self._space: StateSpace = build_state_space(tree)

    # -- modal decomposition -------------------------------------------------

    @property
    def tree(self) -> RLCTree:
        return self._tree

    @property
    def state_space(self) -> StateSpace:
        return self._space

    @property
    def order(self) -> int:
        """System order (number of states)."""
        return self._space.order

    @cached_property
    def _modal(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(eigenvalues w, eigenvector matrix V, modal input beta)."""
        if not np.all(np.isfinite(self._space.a)):
            raise SimulationError(
                "state matrix contains non-finite entries; the tree's "
                "element values overflow the 1/(RC) and R/L rates in "
                "double precision — rescale to normalized units first"
            )
        w, v = np.linalg.eig(self._space.a)
        condition = np.linalg.cond(v)
        if not np.isfinite(condition) or condition > 1e13:
            raise SimulationError(
                "state matrix is too close to defective for a modal "
                f"solution (eigenvector condition {condition:.2e}); perturb "
                "element values slightly"
            )
        beta = np.linalg.solve(v, self._space.b.astype(complex))
        return w, v, beta

    def poles(self) -> np.ndarray:
        """Exact natural frequencies (eigenvalues of A), unsorted."""
        return self._modal[0].copy()

    def is_stable(self) -> bool:
        """True when every pole lies strictly in the left half plane."""
        return bool(np.all(self._modal[0].real < 0.0))

    def _gamma(self, node: str) -> np.ndarray:
        """Modal output weights for one node voltage."""
        _, v, _ = self._modal
        return self._space.output_row(node).astype(complex) @ v

    def residues(self, node: str) -> Tuple[np.ndarray, np.ndarray]:
        """Poles and residues of the exact transfer function at ``node``.

        ``H(s) = sum_i  r_i / (s - p_i)`` with ``r_i = gamma_i * beta_i``.
        """
        w, _, beta = self._modal
        return w.copy(), self._gamma(node) * beta

    def transfer_function(
        self, node: str, s: Union[complex, np.ndarray]
    ) -> np.ndarray:
        """Exact ``H(s)`` at ``node`` for scalar or array ``s``."""
        poles, residues = self.residues(node)
        s = np.atleast_1d(np.asarray(s, dtype=complex))
        h = (residues[None, :] / (s[:, None] - poles[None, :])).sum(axis=1)
        return h if h.size > 1 else h.reshape(())

    def dc_gain(self, node: str) -> float:
        """H(0); equals 1 for every node of a source-driven tree."""
        return float(np.real(self.transfer_function(node, 0.0)))

    # -- time grids -----------------------------------------------------------

    def time_grid(
        self,
        span_factor: float = 8.0,
        points: int = 2001,
        t_end: Optional[float] = None,
    ) -> np.ndarray:
        """A uniform grid long enough to capture settling.

        The horizon defaults to ``span_factor`` times the slowest modal
        decay constant, which comfortably covers the 50% delay, ringing
        and settling of every node.
        """
        if t_end is None:
            w = self._modal[0]
            decay = np.abs(w.real)
            decay = decay[decay > 0.0]
            if decay.size == 0:
                raise SimulationError(
                    "every mode is undamped (all eigenvalues on the "
                    "imaginary axis); pass t_end explicitly"
                )
            slowest = float(np.max(1.0 / decay))
            t_end = span_factor * slowest
        if t_end <= 0.0:
            raise SimulationError("time horizon must be positive")
        return np.linspace(0.0, t_end, points)

    # -- modal time functions --------------------------------------------------

    @staticmethod
    def _step_modal(w: np.ndarray, t: np.ndarray) -> np.ndarray:
        """z_i(t)/beta_i for a unit step: (exp(w t) - 1)/w."""
        wt = np.outer(w, t)
        return (np.exp(wt) - 1.0) / w[:, None]

    @staticmethod
    def _ramp_modal(w: np.ndarray, t: np.ndarray) -> np.ndarray:
        """z_i(t)/beta_i for a unit-slope ramp: (exp(wt) - 1 - wt)/w^2."""
        wt = np.outer(w, t)
        return (np.exp(wt) - 1.0 - wt) / (w[:, None] ** 2)

    @staticmethod
    def _exp_decay_modal(w: np.ndarray, t: np.ndarray, tau: float) -> np.ndarray:
        """z_i(t)/beta_i for input exp(-t/tau):
        (exp(w t) - exp(-t/tau)) / (w + 1/tau), with the resonant limit
        t * exp(w t) when w is within tolerance of -1/tau."""
        shift = w + 1.0 / tau
        resonant = np.abs(shift) <= _RESONANCE_RTOL * (np.abs(w) + 1.0 / tau)
        safe_shift = np.where(resonant, 1.0, shift)
        wt = np.outer(w, t)
        generic = (np.exp(wt) - np.exp(-t[None, :] / tau)) / safe_shift[:, None]
        limit = t[None, :] * np.exp(wt)
        return np.where(resonant[:, None], limit, generic)

    # -- responses ---------------------------------------------------------------

    def _combine(
        self,
        nodes: Sequence[str],
        modal_time: np.ndarray,
    ) -> np.ndarray:
        """Map modal trajectories to node voltages; verify realness."""
        _, _, beta = self._modal
        rows = np.vstack([self._gamma(n) for n in nodes])
        signal = rows @ (beta[:, None] * modal_time)
        max_signal = float(np.max(np.abs(signal))) or 1.0
        max_imag = float(np.max(np.abs(signal.imag)))
        if max_imag > 1e-6 * max_signal:
            raise SimulationError(
                f"modal recombination left imaginary residue {max_imag:.3e}"
            )
        return signal.real

    def step_response(
        self,
        nodes: Union[str, Sequence[str]],
        t: np.ndarray,
        amplitude: float = 1.0,
        delay: float = 0.0,
    ) -> np.ndarray:
        """Node voltages for a step input.

        Returns an array shaped like ``t`` for a single node name, or
        ``(len(nodes), len(t))`` for a sequence of names.
        """
        single = isinstance(nodes, str)
        names = [nodes] if single else list(nodes)
        w, _, _ = self._modal
        t = np.asarray(t, dtype=float)
        shifted = np.maximum(t - delay, 0.0)
        out = amplitude * self._combine(names, self._step_modal(w, shifted))
        out[:, t < delay] = 0.0
        return out[0] if single else out

    def response(
        self,
        source: Source,
        nodes: Union[str, Sequence[str]],
        t: np.ndarray,
    ) -> np.ndarray:
        """Node voltages for any supported source.

        Steps and exponentials are solved in closed modal form; ramps and
        PWL waveforms by superposing analytic ramp responses. All are
        exact (no time-stepping error).
        """
        single = isinstance(nodes, str)
        names = [nodes] if single else list(nodes)
        t = np.asarray(t, dtype=float)
        w, _, _ = self._modal

        if isinstance(source, StepSource):
            out = self.step_response(names, t, source.amplitude, source.delay)
        elif isinstance(source, ExponentialSource):
            shifted = np.maximum(t - source.delay, 0.0)
            modal = self._step_modal(w, shifted) - self._exp_decay_modal(
                w, shifted, source.tau
            )
            out = source.amplitude * self._combine(names, modal)
            out[:, t < source.delay] = 0.0
        elif isinstance(source, (RampSource, PWLSource)):
            modal = np.zeros((w.size, t.size), dtype=complex)
            for start, slope_change in source.ramp_segments():
                shifted = np.maximum(t - start, 0.0)
                modal += slope_change * self._ramp_modal(w, shifted)
            out = self._combine(names, modal)
        else:
            raise SimulationError(
                f"unsupported source type {type(source).__name__}; use the "
                "trapezoidal simulator for arbitrary waveforms"
            )
        return out[0] if single else out

    # -- convenience ---------------------------------------------------------

    def settle_time_estimate(self) -> float:
        """Crude upper bound on when all modes have decayed to < 0.03%."""
        w = self._modal[0]
        fastest_decay = float(np.min(np.abs(w.real)))
        if fastest_decay == 0.0:
            raise SimulationError(
                "an undamped mode never settles; no settle-time estimate"
            )
        return float(8.0 / fastest_decay)

    def health_report(self) -> list:
        """Numerical-health probes of the modal decomposition.

        Runs the eigensolve (if not already cached) and returns the
        :class:`~repro.robustness.health.HealthProbe` list for it:
        finiteness, eigenvector conditioning, and the backward residual
        of the decomposition. Raises :class:`SimulationError` only when
        the decomposition itself cannot be produced at all.
        """
        from ..robustness.health import eigensystem_probes

        w, v, _ = self._modal
        return eigensystem_probes(self._space.a, w, v)

    def node_names(self) -> Tuple[str, ...]:
        return self._tree.nodes

    def frequency_response(
        self, node: str, frequencies: np.ndarray
    ) -> np.ndarray:
        """H(j 2 pi f) at ``node`` over an array of frequencies in hertz."""
        s = 2j * math.pi * np.asarray(frequencies, dtype=float)
        return np.atleast_1d(self.transfer_function(node, s))

    def modal_summary(self) -> Dict[str, np.ndarray]:
        """Poles split into real and complex-pair groups, for reporting."""
        w = self._modal[0]
        complex_mask = np.abs(w.imag) > 1e-9 * np.abs(w.real)
        return {
            "real": np.sort(w[~complex_mask].real),
            "complex": w[complex_mask],
        }
