"""Exact distributed (lossy transmission-line) reference model.

Every tree in this library lumps wires into RLC sections. The *exact*
physics of a uniform wire is the lossy transmission line — the telegraph
equations — and the standard question about any lumped model is how many
sections it takes to stop mattering. This module answers it with the
distributed solution itself:

* frequency domain: the ABCD (chain) matrix of a uniform line of length
  ``d`` with per-unit-length ``r``, ``l``, ``c``::

      gamma(s) = sqrt((r + s l) * s c)        (propagation constant)
      Z0(s)    = sqrt((r + s l) / (s c))      (characteristic impedance)

      [A B; C D] = [cosh(gamma d),  Z0 sinh(gamma d);
                    sinh(gamma d)/Z0,  cosh(gamma d)]

  terminated by a source resistance ``R_s`` and a load capacitance
  ``C_L``, the source-to-load transfer function is::

      H(s) = 1 / (A + B Y_L + R_s (C + D Y_L)),    Y_L = s C_L

* time domain: the step response is the numerical inverse Laplace
  transform of ``H(s)/s`` by the fixed-Talbot method (Abate & Valko),
  which handles the oscillatory, time-of-flight-delayed responses of
  low-loss lines to ~1e-6 absolute accuracy with ~64 contour nodes
  (validated against closed forms and the modal solver in the tests).

The benchmarks use this as the convergence target: the lumped ladder's
response approaches the distributed one as the section count grows,
which quantifies the lumping error every experiment in the paper
implicitly accepts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Union

import numpy as np

from ..circuit.builders import distributed_line
from ..circuit.elements import Section
from ..circuit.tree import RLCTree
from ..errors import SimulationError

__all__ = ["TransmissionLine", "talbot_inverse_laplace"]


def talbot_inverse_laplace(
    transform: Callable[[complex], complex],
    t: np.ndarray,
    terms: int = 64,
) -> np.ndarray:
    """Fixed-Talbot numerical inverse Laplace transform.

    Evaluates ``f(t) = L^-1[F](t)`` on the deformed Bromwich contour of
    Abate & Valko (2004) with ``terms`` nodes. Accurate to ~1e-6 for
    transforms whose singularities lie in the left half plane (any
    stable network function); ``t <= 0`` returns 0. ``transform`` must
    accept complex scalars.
    """
    if terms < 8:
        raise SimulationError("Talbot inversion needs at least 8 terms")
    t = np.asarray(t, dtype=float)
    out = np.zeros(t.shape, dtype=float)
    for index, time in np.ndenumerate(t):
        if time <= 0.0:
            continue
        scale = 2.0 * terms / (5.0 * time)
        total = 0.5 * (transform(complex(scale)) * math.e ** (scale * time)).real
        for k in range(1, terms):
            theta = k * math.pi / terms
            cot = 1.0 / math.tan(theta)
            s = scale * theta * complex(cot, 1.0)
            sigma = theta + (theta * cot - 1.0) * cot
            total += (
                np.exp(time * s) * transform(s) * complex(1.0, sigma)
            ).real
        out[index] = (scale / terms) * total
    return out


@dataclass(frozen=True)
class TransmissionLine:
    """A uniform lossy line with resistive source and capacitive load.

    Per-unit-length values in SI (ohm/m, H/m, F/m); ``length`` in
    meters. ``inductance > 0`` is required (the distributed RC line is a
    different special function; use a dense lumped ladder for that
    limit).
    """

    resistance: float  # per meter
    inductance: float  # per meter
    capacitance: float  # per meter
    length: float
    source_resistance: float = 0.0
    load_capacitance: float = 0.0

    def __post_init__(self):
        if self.resistance < 0.0 or self.source_resistance < 0.0:
            raise SimulationError("resistances must be non-negative")
        if self.inductance <= 0.0 or self.capacitance <= 0.0:
            raise SimulationError("per-unit l and c must be positive")
        if self.length <= 0.0:
            raise SimulationError("length must be positive")
        if self.load_capacitance < 0.0:
            raise SimulationError("load capacitance must be non-negative")

    # -- physical constants -------------------------------------------------

    @property
    def time_of_flight(self) -> float:
        """``d sqrt(l c)``: the earliest the far end can move."""
        return self.length * math.sqrt(self.inductance * self.capacitance)

    @property
    def characteristic_impedance(self) -> float:
        """Lossless ``sqrt(l/c)`` (the high-frequency limit of Z0)."""
        return math.sqrt(self.inductance / self.capacitance)

    @property
    def total_resistance(self) -> float:
        return self.resistance * self.length

    @property
    def attenuation(self) -> float:
        """Low-loss amplitude attenuation ``exp(-R_t / (2 Z0))``."""
        return math.exp(
            -self.total_resistance / (2.0 * self.characteristic_impedance)
        )

    # -- frequency domain ----------------------------------------------------

    def transfer_function(
        self, s: Union[complex, np.ndarray]
    ) -> Union[complex, np.ndarray]:
        """Exact ``V_load / V_source`` at complex frequency ``s``."""
        scalar = np.isscalar(s)
        s = np.atleast_1d(np.asarray(s, dtype=complex))
        series = self.resistance + s * self.inductance
        shunt = s * self.capacitance
        gamma = np.sqrt(series * shunt)  # principal root: Re(gamma) >= 0
        z0 = np.sqrt(series / shunt)
        gd = gamma * self.length
        # Exponentially scaled form: with E = exp(-2 gd) (|E| <= 1),
        # cosh = e^gd (1 + E)/2 and sinh = e^gd (1 - E)/2, so
        # H = 2 e^-gd / [(1+E)(1 + Rs Y_L) + (1-E)(Z0 Y_L + Rs/Z0)],
        # which never overflows for Re(gd) >= 0.
        y_load = s * self.load_capacitance
        r_s = self.source_resistance
        decay = np.exp(-gd)
        double_decay = decay * decay
        denominator = (1.0 + double_decay) * (1.0 + r_s * y_load) + (
            1.0 - double_decay
        ) * (z0 * y_load + r_s / z0)
        h = 2.0 * decay / denominator
        return complex(h[0]) if scalar else h

    def frequency_response(self, frequencies: np.ndarray) -> np.ndarray:
        """``H(j 2 pi f)`` over an array of frequencies in hertz."""
        s = 2j * math.pi * np.asarray(frequencies, dtype=float)
        return np.atleast_1d(self.transfer_function(s))

    # -- time domain -----------------------------------------------------------

    def step_response(
        self, t: np.ndarray, amplitude: float = 1.0, terms: int = 64
    ) -> np.ndarray:
        """Exact step response by Talbot inversion of ``H(s)/s``."""
        def transform(s: complex) -> complex:
            return complex(self.transfer_function(s)) / s

        return amplitude * talbot_inverse_laplace(transform, t, terms=terms)

    def time_grid(self, flights: float = 20.0, points: int = 1001) -> np.ndarray:
        """A grid spanning ``flights`` times of flight (skipping t = 0)."""
        end = flights * self.time_of_flight
        return np.linspace(end / points, end, points)

    # -- lumped approximations ----------------------------------------------

    def lumped_ladder(self, num_sections: int) -> RLCTree:
        """The ``num_sections``-section lumped model, driver included.

        The returned tree has a ``drv`` section carrying the source
        resistance (with negligible capacitance) so its sink response is
        directly comparable to :meth:`step_response`.
        """
        line = distributed_line(
            self.total_resistance,
            self.inductance * self.length,
            self.capacitance * self.length,
            num_sections=num_sections,
            load_capacitance=self.load_capacitance,
        )
        if self.source_resistance == 0.0:
            return line
        tree = RLCTree(line.root)
        tree.add_section(
            "drv", line.root, section=Section(self.source_resistance, 0.0, 1e-18)
        )
        for name in line.nodes:
            parent = line.parent(name)
            tree.add_section(
                name,
                "drv" if parent == line.root else parent,
                section=line.section(name),
            )
        return tree

    def sink_name(self, num_sections: int) -> str:
        return f"n{num_sections}"
