"""Waveform metrology.

Every figure of merit the paper reports — 50% propagation delay, 10-90%
rise time, overshoot magnitudes/times, settling time — must be measured
from *simulated* waveforms to have something to compare the closed forms
against. This module extracts those measures from sampled ``(t, v)``
arrays with linear interpolation between samples, mirroring how a
designer reads them off a SPICE/AS/X plot.

Conventions (matching the paper):

* the 50% delay is the *first* crossing of half the final value,
* the rise time is the first 10% crossing to the first 90% crossing,
* overshoot n = 1, 3, ... are maxima above the final value, n = 2, 4, ...
  minima below it (Fig. 7),
* the settling time is when oscillation around the final value last
  exceeds ``x`` (default 0.1, i.e. 10%) of the final value.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..errors import SimulationError

__all__ = [
    "threshold_crossing",
    "delay_50",
    "rise_time_10_90",
    "find_extrema",
    "overshoots",
    "settling_time",
    "WaveformMetrics",
    "measure",
    "rms_error",
    "max_error",
]


def _validate(t: np.ndarray, v: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    t = np.asarray(t, dtype=float)
    v = np.asarray(v, dtype=float)
    if t.ndim != 1 or v.shape != t.shape:
        raise SimulationError("t and v must be 1-D arrays of equal length")
    if t.size < 2:
        raise SimulationError("waveform needs at least two samples")
    return t, v


def threshold_crossing(
    t: np.ndarray,
    v: np.ndarray,
    threshold: float,
    rising: bool = True,
) -> Optional[float]:
    """First time ``v`` crosses ``threshold`` (linear interpolation).

    Returns ``None`` if the waveform never crosses.
    """
    t, v = _validate(t, v)
    if rising:
        above = v >= threshold
    else:
        above = v <= threshold
    if above[0]:
        return float(t[0])
    indices = np.nonzero(above[1:] & ~above[:-1])[0]
    if indices.size == 0:
        return None
    i = int(indices[0])
    v0, v1 = v[i], v[i + 1]
    if v1 == v0:
        return float(t[i + 1])
    frac = (threshold - v0) / (v1 - v0)
    return float(t[i] + frac * (t[i + 1] - t[i]))


def delay_50(
    t: np.ndarray, v: np.ndarray, final_value: float = 1.0
) -> float:
    """50% propagation delay: first crossing of ``final_value / 2``."""
    crossing = threshold_crossing(t, v, 0.5 * final_value)
    if crossing is None:
        raise SimulationError(
            "waveform never reaches 50% of its final value; "
            "extend the time grid"
        )
    return crossing


def rise_time_10_90(
    t: np.ndarray, v: np.ndarray, final_value: float = 1.0
) -> float:
    """10%-to-90% rise time (the paper's rise-time definition)."""
    t10 = threshold_crossing(t, v, 0.1 * final_value)
    t90 = threshold_crossing(t, v, 0.9 * final_value)
    if t10 is None or t90 is None:
        raise SimulationError(
            "waveform never spans 10%..90% of its final value; "
            "extend the time grid"
        )
    return t90 - t10


def find_extrema(
    t: np.ndarray, v: np.ndarray
) -> List[Tuple[float, float, str]]:
    """Interior local extrema as ``(time, value, 'max'|'min')``.

    Uses sign changes of the discrete derivative with parabolic
    refinement of the extremum location, so the returned peak values are
    sub-sample accurate for smooth waveforms.
    """
    t, v = _validate(t, v)
    dv = np.diff(v)
    out: List[Tuple[float, float, str]] = []
    for i in range(1, dv.size):
        if dv[i - 1] == 0.0:
            continue
        if dv[i - 1] > 0.0 and dv[i] <= 0.0:
            kind = "max"
        elif dv[i - 1] < 0.0 and dv[i] >= 0.0:
            kind = "min"
        else:
            continue
        time, value = _refine_extremum(t, v, i)
        out.append((time, value, kind))
    return out


def _refine_extremum(
    t: np.ndarray, v: np.ndarray, i: int
) -> Tuple[float, float]:
    """Parabolic fit through samples i-1, i, i+1 around an extremum."""
    if i == 0 or i >= t.size - 1:
        return float(t[i]), float(v[i])
    y0, y1, y2 = v[i - 1], v[i], v[i + 1]
    denom = y0 - 2.0 * y1 + y2
    if denom == 0.0:
        return float(t[i]), float(v[i])
    offset = 0.5 * (y0 - y2) / denom
    offset = float(np.clip(offset, -1.0, 1.0))
    h = t[i + 1] - t[i]
    value = y1 - 0.25 * (y0 - y2) * offset
    return float(t[i] + offset * h), float(value)


def overshoots(
    t: np.ndarray,
    v: np.ndarray,
    final_value: float = 1.0,
    minimum_size: float = 1e-4,
) -> List[Tuple[float, float]]:
    """Alternating over/undershoot peaks of a ringing response.

    Returns ``(time, value)`` pairs: entry 0 is the first overshoot (a
    maximum above the final value), entry 1 the first undershoot, and so
    on — the paper's ``t_1, t_2, ...`` of Fig. 7. Peaks smaller than
    ``minimum_size * final_value`` away from the final value are ignored
    (they are numerically indistinguishable from settled behaviour).
    """
    extrema = find_extrema(t, v)
    threshold = abs(final_value) * minimum_size
    peaks: List[Tuple[float, float]] = []
    expect = "max"
    for time, value, kind in extrema:
        if abs(value - final_value) < threshold:
            continue
        if kind != expect:
            continue
        if kind == "max" and value <= final_value:
            continue
        if kind == "min" and value >= final_value:
            continue
        peaks.append((time, value))
        expect = "min" if expect == "max" else "max"
    return peaks


def settling_time(
    t: np.ndarray,
    v: np.ndarray,
    final_value: float = 1.0,
    band: float = 0.1,
) -> float:
    """Last time the waveform leaves the ``±band * final_value`` envelope.

    Matches the paper's definition: the response is settled once the
    oscillations around the steady state stay below ``x`` (band) times
    the steady-state value. Returns 0.0 for a waveform that never leaves
    the band (already settled).
    """
    t, v = _validate(t, v)
    limit = abs(final_value) * band
    outside = np.abs(v - final_value) > limit
    if not outside.any():
        return 0.0
    last = int(np.nonzero(outside)[0][-1])
    if last == t.size - 1:
        raise SimulationError(
            "waveform has not settled by the end of the grid; "
            "extend the time horizon"
        )
    # Interpolate the band exit between samples last and last+1.
    v0, v1 = v[last], v[last + 1]
    edge = final_value + limit * math.copysign(1.0, v0 - final_value)
    if v1 == v0:
        return float(t[last + 1])
    frac = (edge - v0) / (v1 - v0)
    frac = float(np.clip(frac, 0.0, 1.0))
    return float(t[last] + frac * (t[last + 1] - t[last]))


@dataclass(frozen=True)
class WaveformMetrics:
    """All paper figures of merit for one measured waveform."""

    delay_50: float
    rise_time: float
    overshoots: Tuple[Tuple[float, float], ...]
    settling_time: float
    final_value: float

    @property
    def first_overshoot_fraction(self) -> Optional[float]:
        """Peak of the first overshoot as a fraction above final value."""
        if not self.overshoots:
            return None
        _, value = self.overshoots[0]
        return (value - self.final_value) / self.final_value


def measure(
    t: np.ndarray,
    v: np.ndarray,
    final_value: float = 1.0,
    settle_band: float = 0.1,
) -> WaveformMetrics:
    """Extract every metric at once from a sampled waveform."""
    return WaveformMetrics(
        delay_50=delay_50(t, v, final_value),
        rise_time=rise_time_10_90(t, v, final_value),
        overshoots=tuple(overshoots(t, v, final_value)),
        settling_time=settling_time(t, v, final_value, settle_band),
        final_value=final_value,
    )


def rms_error(reference: np.ndarray, candidate: np.ndarray) -> float:
    """Root-mean-square difference between two same-grid waveforms."""
    reference = np.asarray(reference, dtype=float)
    candidate = np.asarray(candidate, dtype=float)
    if reference.shape != candidate.shape:
        raise SimulationError("waveforms must share a grid")
    return float(np.sqrt(np.mean((reference - candidate) ** 2)))


def max_error(reference: np.ndarray, candidate: np.ndarray) -> float:
    """Maximum absolute difference between two same-grid waveforms."""
    reference = np.asarray(reference, dtype=float)
    candidate = np.asarray(candidate, dtype=float)
    if reference.shape != candidate.shape:
        raise SimulationError("waveforms must share a grid")
    return float(np.max(np.abs(reference - candidate)))
