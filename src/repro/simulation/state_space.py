"""State-space formulation of an RLC tree.

For a tree driven by an ideal voltage source at the root, the natural
state vector is::

    x = [ v_1 .. v_n , i_1 .. i_m ]

with one capacitor voltage per node and one current per *inductive*
section (L > 0). Sections with L = 0 contribute an algebraic branch
current ``(v_parent - v_node) / R`` and no state, so pure RC trees get the
classic n-state formulation and the RLC/RC treatment is uniform.

The dynamics are ``dx/dt = A x + b u`` with ``u`` the source voltage and
every node voltage directly readable from the state, so the output map is
a row selector. The KCL/KVL stamps are:

* node k (capacitance C_k):
  ``C_k dv_k/dt = i_in(k) - sum_children i_in(c)``
* inductive section k:  ``L_k di_k/dt = v_parent(k) - v_k - R_k i_k``
* resistive section k:  ``i_in(k) = (v_parent(k) - v_k) / R_k``

Every node must carry positive capacitance: a zero-capacitance node would
turn the ODE into a DAE. :func:`ensure_positive_capacitance` adds a
configurable floor for trees imported from netlists with pure branching
nodes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from ..circuit.elements import Section
from ..circuit.tree import RLCTree
from ..errors import SimulationError

__all__ = ["StateSpace", "build_state_space", "ensure_positive_capacitance"]


@dataclass(frozen=True)
class StateSpace:
    """``dx/dt = A x + b u`` plus the node-voltage bookkeeping.

    Attributes
    ----------
    a : (N, N) system matrix.
    b : (N,) input vector (u is the root voltage).
    node_index : state index of each node's capacitor voltage.
    inductor_index : state index of each inductive section's current.
    """

    a: np.ndarray
    b: np.ndarray
    node_index: Dict[str, int]
    inductor_index: Dict[str, int]

    @property
    def order(self) -> int:
        """Number of states (order of the characteristic polynomial)."""
        return self.a.shape[0]

    def output_row(self, node: str) -> np.ndarray:
        """Selector row c such that v_node = c @ x."""
        if node not in self.node_index:
            raise SimulationError(f"node {node!r} is not a state")
        row = np.zeros(self.order)
        row[self.node_index[node]] = 1.0
        return row

    def output_matrix(self, nodes: Sequence[str]) -> np.ndarray:
        """Stacked selector rows for several nodes."""
        return np.vstack([self.output_row(n) for n in nodes])


def build_state_space(tree: RLCTree) -> StateSpace:
    """Assemble the state-space model of ``tree``.

    Raises :class:`SimulationError` when a node carries zero capacitance
    (see module docstring) or the tree is empty.
    """
    if tree.size == 0:
        raise SimulationError("cannot simulate an empty tree")
    nodes = list(tree.nodes)
    for name in nodes:
        if tree.section(name).capacitance <= 0.0:
            raise SimulationError(
                f"node {name!r} has zero capacitance; transient analysis "
                "needs C > 0 at every node "
                "(see ensure_positive_capacitance)"
            )

    node_index = {name: i for i, name in enumerate(nodes)}
    inductive = [name for name in nodes if tree.section(name).inductance > 0.0]
    inductor_index = {
        name: len(nodes) + j for j, name in enumerate(inductive)
    }
    order = len(nodes) + len(inductive)
    a = np.zeros((order, order))
    b = np.zeros(order)

    for name in nodes:
        section = tree.section(name)
        parent = tree.parent(name)
        k = node_index[name]
        c_k = section.capacitance
        parent_is_root = parent == tree.root

        if section.inductance > 0.0:
            j = inductor_index[name]
            inv_l = 1.0 / section.inductance
            # KVL for the inductor current.
            a[j, k] -= inv_l
            a[j, j] -= section.resistance * inv_l
            if parent_is_root:
                b[j] += inv_l
            else:
                a[j, node_index[parent]] += inv_l
            # KCL contributions of this branch current.
            a[k, j] += 1.0 / c_k
            if not parent_is_root:
                p = node_index[parent]
                a[p, j] -= 1.0 / tree.section(parent).capacitance
        else:
            g = 1.0 / section.resistance
            # Branch current (v_parent - v_k) * g enters node k ...
            a[k, k] -= g / c_k
            if parent_is_root:
                b[k] += g / c_k
            else:
                a[k, node_index[parent]] += g / c_k
            # ... and leaves the parent node.
            if not parent_is_root:
                p = node_index[parent]
                c_p = tree.section(parent).capacitance
                a[p, p] -= g / c_p
                a[p, k] += g / c_p

    return StateSpace(a=a, b=b, node_index=node_index, inductor_index=inductor_index)


def ensure_positive_capacitance(
    tree: RLCTree, floor: float = 1e-18
) -> RLCTree:
    """Return a tree whose every node has at least ``floor`` capacitance.

    Netlists can legitimately contain capacitance-free branching nodes;
    simulation cannot. A 1-attofarad floor (default) perturbs any
    realistic interconnect response by far less than solver tolerance.
    Returns the original object when nothing needed fixing.
    """
    if floor <= 0.0:
        raise SimulationError("capacitance floor must be positive")
    if all(s.capacitance > 0.0 for _, s in tree.sections()):
        return tree
    return tree.map_sections(
        lambda _, s: s
        if s.capacitance > 0.0
        else Section(s.resistance, s.inductance, floor)
    )
