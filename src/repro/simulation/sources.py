"""Input sources for transient analysis.

The paper's experiments use three input families: the ideal step (worst
case for the second-order model, Section V-A), the exponential
``V * (1 - exp(-t/tau))`` of eq. (43) whose 90% rise time is
``2.3 * tau``, and ramps (mentioned as the less realistic alternative).
All are expressible as piecewise-linear-plus-exponential segments, which
both simulators in :mod:`repro.simulation` understand analytically.

Each source is callable: ``source(t)`` evaluates the waveform at scalar or
array ``t`` (zero for ``t < delay``). Sources also expose
``ramp_segments()`` so the exact solver can superpose analytic ramp
responses for PWL inputs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

import numpy as np

from ..errors import SimulationError

__all__ = [
    "Source",
    "StepSource",
    "RampSource",
    "ExponentialSource",
    "PWLSource",
]

#: 90% rise time of (1 - exp(-t/tau)) in units of tau: -ln(0.1).
_EXP_RISE_FACTOR = math.log(10.0)


@dataclass(frozen=True)
class Source:
    """Base class: a causal input waveform with amplitude and delay."""

    amplitude: float = 1.0
    delay: float = 0.0

    def __post_init__(self):
        if self.delay < 0.0:
            raise SimulationError("source delay must be non-negative")

    def __call__(self, t):
        t = np.asarray(t, dtype=float)
        shifted = t - self.delay
        out = np.where(shifted >= 0.0, self._value(np.maximum(shifted, 0.0)), 0.0)
        if out.ndim == 0:
            return float(out)
        return out

    def _value(self, t: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    @property
    def final_value(self) -> float:
        """Steady-state value the waveform settles to."""
        return self.amplitude


@dataclass(frozen=True)
class StepSource(Source):
    """Ideal step: 0 before ``delay``, ``amplitude`` after."""

    def _value(self, t: np.ndarray) -> np.ndarray:
        return np.full_like(t, self.amplitude)

    def ramp_segments(self) -> List[Tuple[float, float]]:
        """A step is the zero-rise-time limit; represented as slope jumps
        is impossible, so the exact solver special-cases steps."""
        return []


@dataclass(frozen=True)
class RampSource(Source):
    """Saturating ramp: linear rise over ``rise_time``, then flat.

    ``rise_time`` here is the full 0-100% ramp duration (the conventional
    SPICE PWL ramp), not the 10-90% measure.
    """

    rise_time: float = 1e-9

    def __post_init__(self):
        super().__post_init__()
        if self.rise_time <= 0.0:
            raise SimulationError("ramp rise_time must be positive")

    def _value(self, t: np.ndarray) -> np.ndarray:
        return self.amplitude * np.clip(t / self.rise_time, 0.0, 1.0)

    def ramp_segments(self) -> List[Tuple[float, float]]:
        """The ramp as (start_time, slope) pairs summing to the waveform."""
        slope = self.amplitude / self.rise_time
        return [(self.delay, slope), (self.delay + self.rise_time, -slope)]


@dataclass(frozen=True)
class ExponentialSource(Source):
    """The paper's eq. (43): ``V * (1 - exp(-t/tau)) * u(t)``.

    Its 10-90% rise time is ``(ln 9) * tau`` and its 0-90% rise time — the
    measure the paper quotes ("the 90% rise time of the input signal is
    2.3 tau") — is ``ln(10) * tau``.
    """

    tau: float = 1e-9

    def __post_init__(self):
        super().__post_init__()
        if self.tau <= 0.0:
            raise SimulationError("exponential tau must be positive")

    def _value(self, t: np.ndarray) -> np.ndarray:
        return self.amplitude * (1.0 - np.exp(-t / self.tau))

    @property
    def rise_time_90(self) -> float:
        """0-90% rise time: 2.3 * tau (paper's figure-of-merit)."""
        return _EXP_RISE_FACTOR * self.tau

    @classmethod
    def from_rise_time(
        cls, rise_time_90: float, amplitude: float = 1.0, delay: float = 0.0
    ) -> "ExponentialSource":
        """Build the source from its 0-90% rise time instead of tau."""
        if rise_time_90 <= 0.0:
            raise SimulationError("rise time must be positive")
        return cls(amplitude=amplitude, delay=delay, tau=rise_time_90 / _EXP_RISE_FACTOR)


@dataclass(frozen=True)
class PWLSource(Source):
    """Piecewise-linear waveform through ``(time, value)`` points.

    Before the first point the value is the first point's value only if
    the first time is 0; otherwise the waveform starts at 0 and ramps to
    the first point. After the last point the value holds.
    The ``amplitude`` field is ignored; ``final_value`` is the last point.
    """

    points: Tuple[Tuple[float, float], ...] = field(default_factory=tuple)

    def __post_init__(self):
        super().__post_init__()
        if len(self.points) < 1:
            raise SimulationError("PWL source needs at least one point")
        times = [p[0] for p in self.points]
        if any(b <= a for a, b in zip(times, times[1:])):
            raise SimulationError("PWL times must be strictly increasing")
        if times[0] < 0.0:
            raise SimulationError("PWL times must be non-negative")

    @classmethod
    def from_points(
        cls, points: Sequence[Tuple[float, float]], delay: float = 0.0
    ) -> "PWLSource":
        return cls(amplitude=1.0, delay=delay, points=tuple(points))

    def _value(self, t: np.ndarray) -> np.ndarray:
        times = np.array([0.0] + [p[0] for p in self.points])
        values = np.array([0.0 if self.points[0][0] > 0.0 else self.points[0][1]]
                          + [p[1] for p in self.points])
        return np.interp(t, times, values)

    @property
    def final_value(self) -> float:
        return self.points[-1][1]

    def ramp_segments(self) -> List[Tuple[float, float]]:
        """Decompose into superposed ramps: (start_time, slope_change)."""
        times = [0.0] + [p[0] + self.delay for p in self.points]
        start = 0.0 if self.points[0][0] > 0.0 else self.points[0][1]
        values = [start] + [p[1] for p in self.points]
        segments: List[Tuple[float, float]] = []
        previous_slope = 0.0
        for (t0, v0), (t1, v1) in zip(
            zip(times, values), zip(times[1:], values[1:])
        ):
            if t1 == t0:
                continue
            slope = (v1 - v0) / (t1 - t0)
            if slope != previous_slope:
                segments.append((t0, slope - previous_slope))
                previous_slope = slope
        if previous_slope != 0.0:
            segments.append((times[-1], -previous_slope))
        return segments
