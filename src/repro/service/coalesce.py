"""Request coalescing: concurrent point queries become one batch call.

The service's hot workload is many clients asking for metrics on
value-perturbed copies of the *same* net — a sizing loop here, a
Monte-Carlo client there, all sharing one topology fingerprint. Each
query alone is a tiny ``(1, 3, n)`` batch; dispatched individually they
pay the per-call routing/kernel overhead S times. The
:class:`PointCoalescer` merges them: requests arriving within a short
window (or while the executor is busy with the previous group) are
stacked into one ``(S, 3, n)`` value block and answered by a single
:meth:`ExecutionContext.batch` call, then each member extracts its own
scenario row.

Correctness contract (pinned in ``tests/service/test_coalesce.py``):

* metrics extracted from a coalesced group are **bitwise identical** to
  a direct ``ExecutionContext`` evaluation of the same tree — the batch
  kernels are row-independent, so sharing an array pass changes
  nothing;
* a member that fails validation (unknown node, out-of-domain request)
  fails **alone** — its future gets the exception, every other member
  of the group still resolves.

The coalescer is asyncio-native and single-loop: all bookkeeping runs
on the event loop, only the engine call crosses into the executor
thread, so no locks are needed.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..engine.compiled import CompiledTree, topology_key
from ..engine.table import BatchTiming
from ..errors import ReproError

__all__ = ["PointCoalescer", "extract_point"]


def extract_point(
    batch: BatchTiming,
    scenario: int,
    nodes: Sequence[str],
    metrics: Sequence[str],
) -> Dict[str, Dict[str, float]]:
    """One member's ``{node: {metric: value}}`` slice of a group batch.

    Raises (:class:`~repro.errors.TopologyError` for unknown nodes,
    :class:`~repro.errors.ReductionError` for unevaluated metrics)
    without touching any other member's data — the failure-isolation
    seam of the coalescer.
    """
    out: Dict[str, Dict[str, float]] = {}
    for node in nodes:
        column = batch.index(node)  # raises on unknown node
        row: Dict[str, float] = {}
        for metric in metrics:
            values = getattr(batch.metrics, metric, None)
            if values is None:
                # Metric not evaluated; batch.column raises the typed
                # error with the canonical message.
                batch.column(metric, node)
            row[metric] = float(values[scenario, column])
        out[node] = row
    return out


@dataclass
class _Member:
    """One pending point query inside a group."""

    compiled: CompiledTree
    nodes: Tuple[str, ...]
    metrics: Tuple[str, ...]
    future: "asyncio.Future"


@dataclass
class _Group:
    """Pending members sharing one (fingerprint, settle_band) key."""

    key: Tuple
    settle_band: float
    members: List[_Member] = field(default_factory=list)
    timer: Optional["asyncio.Task"] = None


class PointCoalescer:
    """Merge concurrent same-topology point queries into batch calls.

    ``window`` is how long the first member of a group waits for
    company (seconds); under load the executor queue makes the window
    mostly irrelevant — whole bursts arrive while the previous group
    computes and merge for free. ``max_group`` bounds a group's size so
    one topology cannot monopolize the executor (the group flushes
    immediately when full).
    """

    def __init__(
        self,
        context,
        executor,
        *,
        window: float = 0.005,
        max_group: int = 64,
    ):
        if window < 0:
            raise ReproError("coalesce window must be non-negative")
        if max_group < 1:
            raise ReproError("max_group must be at least 1")
        self._context = context
        self._executor = executor
        self.window = float(window)
        self.max_group = int(max_group)
        self._pending: Dict[Tuple, _Group] = {}
        # Counters behind the service's coalescing hit-rate.
        self.groups_flushed = 0
        self.members_served = 0
        self.members_coalesced = 0
        self.largest_group = 0

    # -- the public entry point --------------------------------------------

    async def analyze(
        self,
        compiled: CompiledTree,
        settle_band: float,
        nodes: Sequence[str],
        metrics: Sequence[str],
    ) -> Tuple[Dict[str, Dict[str, float]], int]:
        """Resolve one point query, possibly merged with concurrent ones.

        Returns ``(result, group_size)`` — the size is surfaced in the
        response provenance so clients and tests can observe merging.
        """
        loop = asyncio.get_running_loop()
        key = (topology_key(compiled.topology), float(settle_band))
        group = self._pending.get(key)
        if group is None:
            group = _Group(key=key, settle_band=float(settle_band))
            self._pending[key] = group
            group.timer = loop.create_task(self._flush_after_window(key))
        member = _Member(
            compiled=compiled,
            nodes=tuple(nodes),
            metrics=tuple(metrics),
            future=loop.create_future(),
        )
        group.members.append(member)
        if len(group.members) >= self.max_group:
            self._begin_flush(key)
        return await member.future

    # -- flushing ----------------------------------------------------------

    async def _flush_after_window(self, key: Tuple) -> None:
        try:
            await asyncio.sleep(self.window)
        except asyncio.CancelledError:
            return
        self._begin_flush(key, cancel_timer=False)

    def _begin_flush(self, key: Tuple, cancel_timer: bool = True) -> None:
        group = self._pending.pop(key, None)
        if group is None:
            return
        if cancel_timer and group.timer is not None:
            group.timer.cancel()
        asyncio.get_running_loop().create_task(self._flush(group))

    async def _flush(self, group: _Group) -> None:
        members = group.members
        size = len(members)
        self.groups_flushed += 1
        self.members_served += size
        self.members_coalesced += size - 1
        self.largest_group = max(self.largest_group, size)
        rlc = np.stack(
            [
                np.stack(
                    (m.compiled.resistance, m.compiled.inductance,
                     m.compiled.capacitance)
                )
                for m in members
            ]
        )
        loop = asyncio.get_running_loop()
        representative = members[0].compiled
        try:
            batch = await loop.run_in_executor(
                self._executor,
                lambda: self._context.batch(
                    representative, rlc, settle_band=group.settle_band
                ),
            )
        except Exception as exc:
            # The whole group failed below the member level (engine or
            # dispatch error): every member sees the same failure.
            for member in members:
                if not member.future.done():
                    member.future.set_exception(exc)
            return
        for scenario, member in enumerate(members):
            if member.future.done():
                continue
            try:
                result = extract_point(
                    batch, scenario, member.nodes, member.metrics
                )
            except Exception as exc:
                # Per-member validation failure: this member alone.
                member.future.set_exception(exc)
            else:
                member.future.set_result((result, size))

    # -- observability -----------------------------------------------------

    @property
    def pending(self) -> int:
        """Members currently waiting in unflushed groups."""
        return sum(len(g.members) for g in self._pending.values())

    def stats(self) -> dict:
        served = self.members_served
        return {
            "groups": self.groups_flushed,
            "requests": served,
            "coalesced_requests": self.members_coalesced,
            "hit_rate": (self.members_coalesced / served) if served else 0.0,
            "largest_group": self.largest_group,
            "pending": self.pending,
        }

    async def drain(self) -> None:
        """Flush every pending group and wait for their futures."""
        keys = list(self._pending)
        futures = [
            m.future for g in self._pending.values() for m in g.members
        ]
        for key in keys:
            self._begin_flush(key)
        if futures:
            await asyncio.gather(*futures, return_exceptions=True)
