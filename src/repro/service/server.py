"""Analysis-as-a-service: a long-lived HTTP server over one warm context.

:class:`AnalysisServer` owns a single persistent
:class:`~repro.runtime.ExecutionContext` — warm topology LRU, live
supervised pool, installed calibration — and serves the runtime's
workloads over plain HTTP/1.1 (stdlib :mod:`asyncio`, zero
dependencies):

========  =================  ==========================================
method    path               what
========  =================  ==========================================
POST      ``/analyze``       point/table metrics; coalesced per
                             topology fingerprint
POST      ``/analyze_batch`` an ``(S, 3, n)`` scenario batch
POST      ``/sweep``         one-axis sweep, streamed back in chunks
GET       ``/stats``         ``context.stats()`` + the ``service`` group
GET       ``/healthz``       liveness/drain state
========  =================  ==========================================

The traffic path is the engineering:

* **request coalescing** — concurrent ``/analyze`` calls on the same
  topology fingerprint merge into one ``analyze_batch`` dispatch
  (:mod:`~repro.service.coalesce`);
* **admission control** — at most ``max_inflight`` requests hold
  engine work at once; the next one gets ``429`` with a
  ``Retry-After`` hint instead of a place in an unbounded queue;
* **cache affinity** — requests carrying a ``session`` id get a
  per-session response LRU, so a sizing loop replaying the same query
  never re-enters the engine;
* **streaming** — sweeps go out ``Transfer-Encoding: chunked``, one
  NDJSON line per scenario chunk, so a million-point sweep never
  materializes as one response buffer;
* **graceful drain** — shutdown stops admitting, finishes in-flight
  work, then tears down pool and arenas through the context-manager
  path the runtime already guarantees.

Engine work runs on a small thread executor so the event loop stays
free to accept, queue and merge — which is exactly what makes
coalescing effective under load.
"""

from __future__ import annotations

import asyncio
import threading
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, Optional, Tuple

from ..engine.compiled import compile_tree
from ..errors import ReproError
from ..runtime import ExecutionContext
from ..sweep import compile_sweep, const, iter_sweep, scenario_space, values_axis
from . import protocol
from .coalesce import PointCoalescer

__all__ = ["AnalysisServer", "BackgroundServer"]

#: Largest request body the server will read (bytes).
MAX_BODY = 64 * 1024 * 1024

_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class _HttpError(Exception):
    """An HTTP-level failure with a status code."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status


def _head(
    status: int,
    length: Optional[int],
    extra: Tuple[Tuple[str, str], ...] = (),
    *,
    chunked: bool = False,
    keep_alive: bool = True,
) -> bytes:
    lines = [f"HTTP/1.1 {status} {_STATUS_TEXT[status]}"]
    lines.append("Content-Type: application/json")
    if chunked:
        lines.append("Transfer-Encoding: chunked")
    elif length is not None:
        lines.append(f"Content-Length: {length}")
    lines.append(f"Connection: {'keep-alive' if keep_alive else 'close'}")
    for name, value in extra:
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")


class AnalysisServer:
    """One warm :class:`ExecutionContext` behind an asyncio HTTP front.

    ``context=None`` builds (and owns) a default context; a caller that
    passes its own context keeps responsibility for closing it. All
    other parameters are the service knobs the CLI exposes:
    ``max_inflight`` bounds concurrently admitted analysis requests,
    ``coalesce_window``/``max_group`` shape the merging, ``retry_after``
    is the hint (seconds) on 429 responses, ``max_requests`` (when
    positive) drains the server after that many admitted requests have
    completed — the smoke-test/CI knob.
    """

    def __init__(
        self,
        context: Optional[ExecutionContext] = None,
        *,
        host: str = "127.0.0.1",
        port: int = 8341,
        max_inflight: int = 8,
        coalesce_window: float = 0.005,
        max_group: int = 64,
        retry_after: float = 1.0,
        affinity_capacity: int = 256,
        executor_threads: int = 1,
        max_requests: int = 0,
    ):
        if max_inflight < 0:
            raise ReproError("max_inflight must be non-negative")
        self._owns_context = context is None
        self._context = context if context is not None else ExecutionContext()
        self._host = host
        self._requested_port = port
        self.port: Optional[int] = None
        self.max_inflight = int(max_inflight)
        self.retry_after = float(retry_after)
        self.max_requests = int(max_requests)
        self._executor = ThreadPoolExecutor(
            max_workers=max(1, executor_threads),
            thread_name_prefix="repro-service",
        )
        self._coalescer = PointCoalescer(
            self._context,
            self._executor,
            window=coalesce_window,
            max_group=max_group,
        )
        self._affinity: "OrderedDict[Tuple[str, bytes], dict]" = OrderedDict()
        self._affinity_capacity = int(affinity_capacity)
        self._inflight = 0
        self._completed = 0
        self._draining = False
        self._counters: Dict[str, int] = {
            "requests": 0,
            "analyze": 0,
            "analyze_batch": 0,
            "sweep": 0,
            "stats": 0,
            "rejected_429": 0,
            "rejected_503": 0,
            "errors_400": 0,
            "errors_500": 0,
            "stream_chunks": 0,
            "affinity_hits": 0,
        }
        self._server: Optional[asyncio.AbstractServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_requested: Optional[asyncio.Event] = None
        self._idle: Optional[asyncio.Event] = None
        self._writers: set = set()
        self._context.add_stats_group("service", self.service_stats)

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Bind the listening socket; ``self.port`` becomes the real port."""
        self._loop = asyncio.get_running_loop()
        self._stop_requested = asyncio.Event()
        self._idle = asyncio.Event()
        self._idle.set()
        self._server = await asyncio.start_server(
            self._handle_client, host=self._host, port=self._requested_port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    def request_stop(self) -> None:
        """Ask the server to drain and exit; safe from any thread."""
        if self._loop is None or self._stop_requested is None:
            return
        try:
            self._loop.call_soon_threadsafe(self._stop_requested.set)
        except RuntimeError:
            pass  # loop already closed: the server has stopped itself

    async def drain(self) -> None:
        """Stop admitting, finish in-flight work, release everything.

        New requests arriving during the drain get ``503`` with
        ``Connection: close``; in-flight requests (including running
        sweep streams) complete normally. Teardown of the worker pool
        and the shared-memory arenas goes through the runtime's
        context-manager path when the server owns its context.
        """
        self._draining = True
        if self._server is not None:
            self._server.close()
        await self._coalescer.drain()
        if self._idle is not None:
            await self._idle.wait()
        for writer in list(self._writers):
            writer.close()
        self._executor.shutdown(wait=True)
        if self._owns_context:
            # The existing context-manager teardown: pool shutdown plus
            # shared-memory release, exception-safe.
            self._context.__exit__(None, None, None)

    async def serve(self, on_ready=None) -> None:
        """Start, run until :meth:`request_stop` (or ``max_requests``),
        then drain. ``on_ready(server)`` fires once the port is bound."""
        await self.start()
        if on_ready is not None:
            on_ready(self)
        try:
            await self._stop_requested.wait()
        finally:
            await self.drain()

    @property
    def context(self) -> ExecutionContext:
        return self._context

    @property
    def draining(self) -> bool:
        return self._draining

    # -- instrumentation ---------------------------------------------------

    def service_stats(self) -> dict:
        stats = dict(self._counters)
        stats["inflight"] = self._inflight
        stats["max_inflight"] = self.max_inflight
        stats["draining"] = self._draining
        stats["coalescing"] = self._coalescer.stats()
        return stats

    # -- connection handling -----------------------------------------------

    async def _handle_client(self, reader, writer) -> None:
        self._writers.add(writer)
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                keep_alive = await self._respond(writer, *request)
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            pass  # loop shutdown cancelled an idle keep-alive connection
        finally:
            self._writers.discard(writer)
            try:
                writer.close()
            except (ConnectionError, OSError):
                pass

    async def _read_request(self, reader):
        request_line = await reader.readline()
        if not request_line:
            return None
        parts = request_line.decode("latin-1").strip().split()
        if len(parts) != 3:
            raise _HttpError(400, "malformed request line")
        method, target, _version = parts
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"", b"\r\n", b"\n"):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", 0) or 0)
        if length > MAX_BODY:
            raise _HttpError(413, "request body too large")
        body = await reader.readexactly(length) if length else b""
        return method, target.split("?", 1)[0], headers, body

    async def _send(
        self,
        writer,
        status: int,
        payload,
        extra: Tuple[Tuple[str, str], ...] = (),
        *,
        keep_alive: bool = True,
    ) -> bool:
        body = protocol.encode_json(payload)
        writer.write(
            _head(status, len(body), extra, keep_alive=keep_alive) + body
        )
        await writer.drain()
        return keep_alive

    async def _respond(self, writer, method, path, headers, body) -> bool:
        keep_alive = headers.get("connection", "").lower() != "close"
        self._counters["requests"] += 1
        try:
            if path == "/healthz" and method == "GET":
                return await self._send(
                    writer,
                    200,
                    {"status": "draining" if self._draining else "ok"},
                    keep_alive=keep_alive,
                )
            if path == "/stats" and method == "GET":
                self._counters["stats"] += 1
                return await self._send(
                    writer, 200, self._context.stats(), keep_alive=keep_alive
                )
            if path in ("/analyze", "/analyze_batch", "/sweep"):
                if method != "POST":
                    return await self._send(
                        writer,
                        405,
                        {"error": f"{path} requires POST"},
                        keep_alive=keep_alive,
                    )
                return await self._admit(
                    writer, path, body, keep_alive=keep_alive
                )
            return await self._send(
                writer,
                404,
                {"error": f"unknown endpoint {method} {path}"},
                keep_alive=keep_alive,
            )
        except _HttpError as exc:
            status = exc.status
            self._counters["errors_400" if status < 500 else "errors_500"] += 1
            return await self._send(
                writer, status, {"error": str(exc)}, keep_alive=False
            )

    # -- admission control -------------------------------------------------

    async def _admit(self, writer, path: str, body: bytes, *, keep_alive):
        """The bounded front door for the three analysis endpoints."""
        if self._draining:
            self._counters["rejected_503"] += 1
            return await self._send(
                writer,
                503,
                {"error": "server is draining"},
                keep_alive=False,
            )
        if self._inflight >= self.max_inflight:
            self._counters["rejected_429"] += 1
            retry = max(1, int(-(-self.retry_after // 1)))
            return await self._send(
                writer,
                429,
                {
                    "error": "server is at max_inflight="
                    f"{self.max_inflight}; retry later",
                },
                (("Retry-After", str(retry)),),
                keep_alive=keep_alive,
            )
        self._inflight += 1
        self._idle.clear()
        try:
            handler = {
                "/analyze": self._handle_analyze,
                "/analyze_batch": self._handle_batch,
                "/sweep": self._handle_sweep,
            }[path]
            return await handler(writer, body, keep_alive=keep_alive)
        except protocol.BadRequest as exc:
            self._counters["errors_400"] += 1
            return await self._send(
                writer, 400, {"error": str(exc)}, keep_alive=keep_alive
            )
        except ReproError as exc:
            # Typed analysis failures (unknown node, metric, domain):
            # the request was wrong, not the server.
            self._counters["errors_400"] += 1
            return await self._send(
                writer,
                400,
                {"error": f"{type(exc).__name__}: {exc}"},
                keep_alive=keep_alive,
            )
        except Exception as exc:  # the never-a-crashed-pool guarantee
            self._counters["errors_500"] += 1
            return await self._send(
                writer,
                500,
                {"error": f"internal error ({type(exc).__name__}: {exc})"},
                keep_alive=False,
            )
        finally:
            self._inflight -= 1
            if self._inflight == 0:
                self._idle.set()
            self._completed += 1
            if self.max_requests and self._completed >= self.max_requests:
                self._stop_requested.set()

    # -- endpoint handlers -------------------------------------------------

    async def _handle_analyze(self, writer, body: bytes, *, keep_alive):
        request = protocol.parse_analyze(protocol.decode_json(body))
        affinity_key = None
        if request.session is not None:
            affinity_key = (request.session, body)
            cached = self._affinity.get(affinity_key)
            if cached is not None:
                self._affinity.move_to_end(affinity_key)
                self._counters["affinity_hits"] += 1
                self._counters["analyze"] += 1
                payload = dict(cached)
                payload["service"] = dict(
                    payload["service"], affinity_hit=True
                )
                return await self._send(
                    writer, 200, payload, keep_alive=keep_alive
                )
        self._counters["analyze"] += 1
        compiled = compile_tree(request.tree)
        nodes, group_size = await self._coalescer.analyze(
            compiled, request.settle_band, request.nodes, request.metrics
        )
        payload = {
            "nodes": nodes,
            "service": {"group_size": group_size, "affinity_hit": False},
        }
        if affinity_key is not None:
            self._affinity[affinity_key] = payload
            while len(self._affinity) > self._affinity_capacity:
                self._affinity.popitem(last=False)
        return await self._send(writer, 200, payload, keep_alive=keep_alive)

    async def _handle_batch(self, writer, body: bytes, *, keep_alive):
        request = protocol.parse_batch(protocol.decode_json(body))
        self._counters["analyze_batch"] += 1
        compiled = compile_tree(request.tree)
        loop = asyncio.get_running_loop()
        batch = await loop.run_in_executor(
            self._executor,
            lambda: self._context.batch(
                compiled,
                request.rlc,
                settle_band=request.settle_band,
                metrics=request.metrics,
            ),
        )
        payload = {
            "names": list(batch.names),
            "scenarios": batch.scenarios,
            "metrics": {
                metric: getattr(batch.metrics, metric).tolist()
                for metric in request.metrics
            },
        }
        return await self._send(writer, 200, payload, keep_alive=keep_alive)

    async def _handle_sweep(self, writer, body: bytes, *, keep_alive):
        import numpy as np

        request = protocol.parse_sweep(protocol.decode_json(body))
        self._counters["sweep"] += 1
        compiled = compile_tree(request.tree)
        slot = compiled.topology.node_index(request.section)
        n = compiled.size
        total = int(request.values.size)
        loop = asyncio.get_running_loop()

        # The swept element row as a masked expression: `values` land
        # on the swept slot (x * 1 + 0 == x for finite x, enforced by
        # parse_sweep) and the nominal vector everywhere else
        # (x * 0 + base == base). The other two rows stay constant.
        axis = values_axis("value", request.values)
        hot = np.zeros(n)
        hot[slot] = 1.0
        base = {
            "resistance": compiled.resistance,
            "inductance": compiled.inductance,
            "capacitance": compiled.capacitance,
        }
        masked = base[request.element].copy()
        masked[slot] = 0.0
        roots = {element: const(vector) for element, vector in base.items()}
        roots[request.element] = axis.values * const(hot) + const(masked)
        sweep = compile_sweep(scenario_space(axis), **roots)
        iterator = iter_sweep(
            sweep,
            compiled,
            chunk_size=request.chunk,
            settle_band=request.settle_band,
            metrics=request.metrics,
            context=self._context,
        )

        # Stream: headers first, then one NDJSON line per chunk. The
        # chunked lazy executor stages one chunk x 3 x n block at a
        # time, so memory is bounded by the chunk size, not the sweep
        # size, and the first line goes out after the first chunk.
        writer.write(_head(200, None, chunked=True, keep_alive=keep_alive))
        await writer.drain()

        async def emit(obj) -> None:
            data = protocol.encode_json(obj) + b"\n"
            writer.write(f"{len(data):X}\r\n".encode("latin-1"))
            writer.write(data + b"\r\n")
            await writer.drain()

        chunks = 0
        while True:
            item = await loop.run_in_executor(
                self._executor, lambda: next(iterator, None)
            )
            if item is None:
                break
            offset, batch = item
            values = request.values[offset : offset + batch.scenarios]
            line = {
                "offset": offset,
                "values": values.tolist(),
                "metrics": {
                    metric: {
                        node: batch.column(metric, node).tolist()
                        for node in request.nodes
                    }
                    for metric in request.metrics
                },
            }
            chunks += 1
            self._counters["stream_chunks"] += 1
            await emit(line)
        await emit({"done": True, "chunks": chunks, "scenarios": total})
        writer.write(b"0\r\n\r\n")
        await writer.drain()
        return keep_alive


class BackgroundServer:
    """An :class:`AnalysisServer` on a daemon thread — tests and the
    load-generator benchmark drive the real socket path through this.

    Usage::

        with BackgroundServer(max_inflight=4) as server:
            ...  # http requests against server.port
    """

    def __init__(self, context=None, **kwargs):
        kwargs.setdefault("port", 0)
        self._server = AnalysisServer(context, **kwargs)
        self._ready = threading.Event()
        self._error: Optional[BaseException] = None
        self._thread = threading.Thread(
            target=self._run, name="repro-service-loop", daemon=True
        )

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # surfaced on join
            self._error = exc
            self._ready.set()

    async def _main(self) -> None:
        await self._server.start()
        self._ready.set()
        try:
            await self._server._stop_requested.wait()
        finally:
            await self._server.drain()

    def __enter__(self) -> "BackgroundServer":
        self._thread.start()
        self._ready.wait(timeout=30)
        if self._error is not None:
            raise RuntimeError("server failed to start") from self._error
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    @property
    def port(self) -> int:
        return self._server.port

    @property
    def server(self) -> AnalysisServer:
        return self._server

    def stop(self, timeout: float = 30.0) -> None:
        self._server.request_stop()
        self._thread.join(timeout=timeout)
        if self._thread.is_alive():
            raise RuntimeError("service thread did not stop in time")
        if self._error is not None:
            raise RuntimeError("server thread failed") from self._error

    def join(self, timeout: float = 30.0) -> None:
        """Wait for a self-stopping server (``max_requests``) to exit."""
        self._thread.join(timeout=timeout)
