"""Wire protocol of the analysis service: typed requests, exact JSON.

The service speaks plain JSON over HTTP, but two properties matter more
than the framing:

* **Bitwise fidelity** — metric values cross the wire as JSON numbers
  serialized from python ``repr``, which round-trips every finite
  double exactly (and ``NaN`` survives via the JSON extension both
  :mod:`json` directions support). A client that parses the response
  holds the *same* floats a direct
  :class:`~repro.runtime.ExecutionContext` call would have returned.
* **Validation before admission** — request bodies are checked here,
  before they can join a coalescing group or occupy an executor slot,
  so a malformed request costs a 400 and nothing else.

Every schema violation raises :class:`BadRequest` (a
:class:`~repro.errors.ConfigurationError`), which the HTTP layer maps
to a 400 response.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..circuit.netlist import loads
from ..circuit.tree import RLCTree
from ..engine.kernels import METRIC_NAMES
from ..errors import ConfigurationError, ReproError

__all__ = [
    "BadRequest",
    "AnalyzeRequest",
    "BatchRequest",
    "SweepRequest",
    "parse_analyze",
    "parse_batch",
    "parse_sweep",
    "encode_json",
    "decode_json",
]

#: Elements a sweep axis may vary.
SWEEP_ELEMENTS = ("resistance", "inductance", "capacitance")

#: Hard cap on scenario counts accepted over the wire — a service must
#: bound the memory one request can pin, whatever the client asks for.
MAX_SCENARIOS = 1_000_000


class BadRequest(ConfigurationError):
    """A request body failed validation; maps to HTTP 400."""


def decode_json(body: bytes) -> dict:
    """Parse a request body; non-JSON or non-object bodies are 400s."""
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise BadRequest(f"request body is not valid JSON: {exc}") from None
    if not isinstance(payload, dict):
        raise BadRequest("request body must be a JSON object")
    return payload


def encode_json(payload) -> bytes:
    """Serialize a response payload; floats go out via exact ``repr``."""
    return json.dumps(payload, allow_nan=True).encode("utf-8")


def _parse_tree(payload: dict) -> RLCTree:
    netlist = payload.get("netlist")
    if not isinstance(netlist, str) or not netlist.strip():
        raise BadRequest("field 'netlist' must be a non-empty string")
    try:
        return loads(netlist)
    except ReproError as exc:
        raise BadRequest(f"netlist rejected: {exc}") from None


def _parse_settle_band(payload: dict) -> float:
    settle_band = payload.get("settle_band", 0.1)
    if not isinstance(settle_band, (int, float)) or not 0 < settle_band < 1:
        raise BadRequest("field 'settle_band' must be a number in (0, 1)")
    return float(settle_band)


def _parse_metrics(payload: dict) -> Tuple[str, ...]:
    metrics = payload.get("metrics")
    if metrics is None:
        return METRIC_NAMES
    if not isinstance(metrics, list) or not all(
        isinstance(m, str) for m in metrics
    ):
        raise BadRequest("field 'metrics' must be a list of metric names")
    unknown = [m for m in metrics if m not in METRIC_NAMES]
    if unknown:
        raise BadRequest(
            f"unknown metrics {unknown}; choose from {list(METRIC_NAMES)}"
        )
    if not metrics:
        raise BadRequest("field 'metrics' must not be empty")
    return tuple(metrics)


def _parse_nodes(payload: dict, tree: RLCTree) -> Tuple[str, ...]:
    nodes = payload.get("nodes")
    if nodes is None:
        return tuple(tree.nodes)
    if not isinstance(nodes, list) or not all(
        isinstance(n, str) for n in nodes
    ):
        raise BadRequest("field 'nodes' must be a list of node names")
    if not nodes:
        raise BadRequest("field 'nodes' must not be empty")
    # Deliberately NOT resolved against the tree here: unknown nodes
    # surface per-member at extraction time, which is what the
    # coalescer's failure-isolation contract is tested against.
    return tuple(nodes)


@dataclass(frozen=True)
class AnalyzeRequest:
    """One point/table query: closed-form metrics at named nodes."""

    tree: RLCTree
    nodes: Tuple[str, ...]
    metrics: Tuple[str, ...]
    settle_band: float
    session: Optional[str] = None


def parse_analyze(payload: dict) -> AnalyzeRequest:
    tree = _parse_tree(payload)
    session = payload.get("session")
    if session is not None and not isinstance(session, str):
        raise BadRequest("field 'session' must be a string")
    return AnalyzeRequest(
        tree=tree,
        nodes=_parse_nodes(payload, tree),
        metrics=_parse_metrics(payload),
        settle_band=_parse_settle_band(payload),
        session=session,
    )


@dataclass(frozen=True)
class BatchRequest:
    """An ``(S, 3, n)`` scenario batch over one topology."""

    tree: RLCTree
    rlc: np.ndarray
    metrics: Tuple[str, ...]
    settle_band: float


def parse_batch(payload: dict) -> BatchRequest:
    tree = _parse_tree(payload)
    raw = payload.get("rlc")
    if not isinstance(raw, list) or not raw:
        raise BadRequest(
            "field 'rlc' must be a non-empty (S, 3, n) nested list"
        )
    try:
        rlc = np.asarray(raw, dtype=float)
    except (TypeError, ValueError) as exc:
        raise BadRequest(f"field 'rlc' is not numeric: {exc}") from None
    if rlc.ndim != 3 or rlc.shape[1] != 3 or rlc.shape[2] != tree.size:
        raise BadRequest(
            f"field 'rlc' must have shape (S, 3, {tree.size}), "
            f"got {rlc.shape}"
        )
    if rlc.shape[0] > MAX_SCENARIOS:
        raise BadRequest(
            f"batch of {rlc.shape[0]} scenarios exceeds the service cap "
            f"of {MAX_SCENARIOS}"
        )
    return BatchRequest(
        tree=tree,
        rlc=rlc,
        metrics=_parse_metrics(payload),
        settle_band=_parse_settle_band(payload),
    )


@dataclass(frozen=True)
class SweepRequest:
    """A one-axis parameter sweep, streamed back in scenario chunks."""

    tree: RLCTree
    section: str
    element: str
    values: np.ndarray
    nodes: Tuple[str, ...]
    metrics: Tuple[str, ...]
    settle_band: float
    chunk: int = 256


def parse_sweep(payload: dict) -> SweepRequest:
    tree = _parse_tree(payload)
    section = payload.get("section")
    if not isinstance(section, str) or section not in tree.nodes:
        raise BadRequest(
            f"field 'section' must name a section of the tree, "
            f"got {section!r}"
        )
    element = payload.get("element")
    if element not in SWEEP_ELEMENTS:
        raise BadRequest(
            f"field 'element' must be one of {list(SWEEP_ELEMENTS)}, "
            f"got {element!r}"
        )
    raw = payload.get("values")
    if isinstance(raw, dict):
        spec = {"start", "stop", "points"}
        if set(raw) != spec or not all(
            isinstance(raw[k], (int, float)) for k in spec
        ):
            raise BadRequest(
                "field 'values' as an object needs numeric "
                "'start'/'stop'/'points'"
            )
        points = int(raw["points"])
        if not 2 <= points <= MAX_SCENARIOS:
            raise BadRequest(
                f"'values.points' must be in [2, {MAX_SCENARIOS}]"
            )
        values = np.linspace(float(raw["start"]), float(raw["stop"]), points)
    elif isinstance(raw, list) and raw:
        try:
            values = np.asarray(raw, dtype=float)
        except (TypeError, ValueError) as exc:
            raise BadRequest(
                f"field 'values' is not numeric: {exc}"
            ) from None
        if values.ndim != 1 or values.size > MAX_SCENARIOS:
            raise BadRequest(
                f"field 'values' must be a flat list of at most "
                f"{MAX_SCENARIOS} numbers"
            )
    else:
        raise BadRequest(
            "field 'values' must be a non-empty list or a "
            "start/stop/points object"
        )
    if not np.all(np.isfinite(values)):
        raise BadRequest("sweep values must be finite")
    if np.any(values <= 0) and element != "inductance":
        raise BadRequest(
            f"sweep values for {element} must be positive"
        )
    chunk = payload.get("chunk", 256)
    if not isinstance(chunk, int) or chunk < 1:
        raise BadRequest("field 'chunk' must be a positive integer")
    return SweepRequest(
        tree=tree,
        section=section,
        element=element,
        values=values,
        nodes=_parse_nodes(payload, tree),
        metrics=_parse_metrics(payload),
        settle_band=_parse_settle_band(payload),
        chunk=chunk,
    )
