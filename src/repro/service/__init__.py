"""Analysis-as-a-service: long-lived HTTP serving over the runtime.

The :mod:`repro.service` package turns the one-shot runtime into a
daemon: a single warm :class:`~repro.runtime.ExecutionContext` (hot
topology LRU, live supervised pool, installed calibration) behind a
stdlib-asyncio HTTP front with request coalescing, bounded admission,
session cache affinity, and chunked streaming for sweeps. Start it with
``repro serve`` or embed :class:`AnalysisServer` directly.
"""

from .coalesce import PointCoalescer, extract_point
from .protocol import (
    AnalyzeRequest,
    BadRequest,
    BatchRequest,
    SweepRequest,
    decode_json,
    encode_json,
    parse_analyze,
    parse_batch,
    parse_sweep,
)
from .server import AnalysisServer, BackgroundServer

__all__ = [
    "AnalysisServer",
    "BackgroundServer",
    "PointCoalescer",
    "extract_point",
    "AnalyzeRequest",
    "BatchRequest",
    "SweepRequest",
    "BadRequest",
    "parse_analyze",
    "parse_batch",
    "parse_sweep",
    "encode_json",
    "decode_json",
]
