"""repro — Equivalent Elmore Delay for RLC Trees.

A complete reproduction of Y. I. Ismail, E. G. Friedman and J. L. Neves,
"Equivalent Elmore Delay for RLC Trees" (DAC 1999; IEEE TCAD vol. 19
no. 1, Jan. 2000): closed-form 50% delay, rise time, overshoots and
settling time for every node of an RLC interconnect tree, computed in
O(n) with the same fidelity characteristics as the Elmore delay has for
RC trees — plus the full validation apparatus (exact simulators, AWE and
two-pole baselines) the paper measured itself against.

Quick start::

    from repro import TreeAnalyzer
    from repro.circuit import fig5_tree

    analyzer = TreeAnalyzer(fig5_tree())
    for timing in analyzer.report():
        print(timing.node, timing.zeta, timing.delay_50)

Package layout:

* :mod:`repro.circuit` — tree topology, element values, builders, netlists
* :mod:`repro.analysis` — the paper's closed forms (the contribution)
* :mod:`repro.simulation` — exact LTI solvers (the AS/X substitute)
* :mod:`repro.reduction` — AWE and Kahng-Muddu baselines
* :mod:`repro.engine` — compiled vectorized kernels, delta updates and
  the multi-process dispatch layer
* :mod:`repro.runtime` — the unified execution runtime: backend
  registry, workload-aware routing and one instrumentation surface
* :mod:`repro.apps` — buffer insertion, wire sizing, clock skew built on
  the continuous RLC delay model
* :mod:`repro.robustness` — validation, numerical-health probes and the
  guarded fallback-chain analyzer (finite metrics or a typed error)
"""

from .analysis import NodeTiming, SecondOrderModel, TreeAnalyzer
from .circuit import RLCTree, Section
from .errors import (
    CircuitError,
    ConfigurationError,
    ElementValueError,
    FallbackExhaustedError,
    FittingError,
    NetlistError,
    NumericalHealthError,
    ReductionError,
    ReproError,
    SimulationError,
    TopologyError,
    ValidationError,
)
from .robustness import (
    GuardedAnalyzer,
    RepairPolicy,
    RobustnessReport,
    sanitize,
    validate_tree,
)
from .runtime import (
    ExecutionContext,
    RuntimeConfig,
    Workload,
    default_context,
)

__version__ = "1.0.0"

__all__ = [
    "TreeAnalyzer",
    "NodeTiming",
    "SecondOrderModel",
    "RLCTree",
    "Section",
    "ReproError",
    "CircuitError",
    "TopologyError",
    "ElementValueError",
    "NetlistError",
    "SimulationError",
    "ReductionError",
    "FittingError",
    "ConfigurationError",
    "ValidationError",
    "NumericalHealthError",
    "FallbackExhaustedError",
    "GuardedAnalyzer",
    "RobustnessReport",
    "RepairPolicy",
    "validate_tree",
    "sanitize",
    "ExecutionContext",
    "RuntimeConfig",
    "Workload",
    "default_context",
    "__version__",
]
