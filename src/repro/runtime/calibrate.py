"""Auto-calibrated serial/sharded crossover for the planner.

``sharded_min_cells`` is a guess; this module replaces it with a
measurement. :func:`run_calibration` times the *same* scenario batch
through the serial in-process engine and through the warm sharded pool
at a few sizes, fits the linear cost model

    ``cost(cells) = overhead + per_cell * cells``

to each curve, and solves for the break-even batch size. The resulting
:class:`CrossoverCalibration` plugs into
:class:`~repro.runtime.config.RuntimeConfig` (``calibration=``), where
the planner consults :meth:`CrossoverCalibration.sharded_wins` instead
of the static ``sharded_min_cells`` threshold — the *never slower than
serial* guarantee: below break-even the batch stays on the in-process
kernels (identical numbers, no dispatch overhead), above it the pool
pays off.

On a box where sharding never wins (one effective core, enormous
dispatch overhead), the fitted curves do not cross and
``breakeven_cells`` is ``None`` — the planner then routes *everything*
serial, which is exactly right there.

Calibrations persist as JSON (``BENCH_crossover.json`` at the repo
root by convention) so one measurement serves many runs:
:func:`save_calibration` / :func:`load_calibration`.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
import warnings
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Callable, Optional, Sequence, Set, Tuple, Union

import numpy as np

from ..circuit.builders import balanced_tree
from ..errors import ConfigurationError
from ..engine import dispatch as _dispatch
from ..engine.compiled import compile_tree
from ..engine.sharded import analyze_batch_sharded, dispatch_pool
from ..engine.table import analyze_batch

__all__ = [
    "CrossoverCalibration",
    "run_calibration",
    "save_calibration",
    "load_calibration",
    "plan_shards",
    "reset_calibration_warnings",
]

#: Common prefix of every calibration warning; the targeted pytest
#: ``filterwarnings`` entry in pyproject.toml matches on it.
_CALIBRATION_PREFIX = "repro.runtime calibration"

#: Warn-once keys that already fired this process.
_calibration_warned: Set[str] = set()


def _warn_calibration(key: str, message: str) -> None:
    """Warn (once per key) about a degraded calibration situation."""
    if key in _calibration_warned:
        return
    _calibration_warned.add(key)
    warnings.warn(
        f"{_CALIBRATION_PREFIX}: {message}", RuntimeWarning, stacklevel=3
    )


def reset_calibration_warnings() -> None:
    """Forget which calibration problems already warned (test isolation)."""
    _calibration_warned.clear()

#: Default file name for a persisted calibration (repo-root convention,
#: matching the ``BENCH_*.json`` benchmark artifacts).
CALIBRATION_FILE = "BENCH_crossover.json"

#: Batch sizes (scenario counts) the default calibration samples.
DEFAULT_SIZES: Tuple[int, ...] = (64, 256, 1024, 4096)

#: Nodes in the synthetic calibration tree (balanced binary, 5 levels).
_CALIBRATION_LEVELS = 5


@dataclass(frozen=True)
class CrossoverCalibration:
    """A fitted serial-vs-sharded cost model for one machine.

    ``serial_overhead``/``serial_per_cell`` and ``sharded_overhead``/
    ``sharded_per_cell`` are the fitted coefficients of
    ``cost(cells) = overhead + per_cell * cells`` in seconds;
    ``breakeven_cells`` is the batch size (scenarios x nodes) where the
    curves cross, or ``None`` when sharding never wins on this machine.
    ``samples`` keeps the raw ``(cells, serial_s, sharded_s)`` points
    for inspection and re-fitting.
    """

    workers: int
    serial_overhead: float
    serial_per_cell: float
    sharded_overhead: float
    sharded_per_cell: float
    breakeven_cells: Optional[int]
    samples: Tuple[Tuple[int, float, float], ...] = ()

    def __post_init__(self):
        # Costs are physical: a noisy least-squares fit can hand back a
        # (slightly) negative intercept, which would make
        # predicted_serial() negative for small batches and skew every
        # downstream break-even comparison. Clamp at construction so
        # every path in — run_calibration, load_calibration of a legacy
        # file, hand-built test fixtures — gets a sane model.
        for name in (
            "serial_overhead",
            "serial_per_cell",
            "sharded_overhead",
            "sharded_per_cell",
        ):
            value = getattr(self, name)
            if value < 0.0:
                object.__setattr__(self, name, 0.0)

    def sharded_wins(self, cells: int) -> bool:
        """True when the fitted model says the pool beats serial."""
        return self.breakeven_cells is not None and cells >= self.breakeven_cells

    def predicted_serial(self, cells: int) -> float:
        return self.serial_overhead + self.serial_per_cell * cells

    def predicted_sharded(self, cells: int) -> float:
        return self.sharded_overhead + self.sharded_per_cell * cells


def _fit_line(xs: Sequence[float], ys: Sequence[float]) -> Tuple[float, float]:
    """Least-squares ``(overhead, per_cell)`` for ``y = a + b*x``.

    The intercept is clamped at zero: timings are positive, so a
    negative fitted overhead is pure regression noise (small samples
    dominated by the per-cell term), and letting it through would
    predict negative cost for small batches.
    """
    x = np.asarray(xs, dtype=float)
    y = np.asarray(ys, dtype=float)
    if x.size == 1:
        return 0.0, float(y[0] / max(x[0], 1.0))
    coeffs = np.polyfit(x, y, 1)
    return max(0.0, float(coeffs[1])), float(coeffs[0])


def _breakeven(
    serial: Tuple[float, float], sharded: Tuple[float, float]
) -> Optional[int]:
    """Cells where the sharded line drops below the serial line.

    ``None`` when the sharded slope is not strictly smaller — then the
    pool loses at every size and the planner should never route to it.
    """
    a_s, b_s = serial
    a_p, b_p = sharded
    if b_p >= b_s:
        return None
    crossing = (a_p - a_s) / (b_s - b_p)
    return max(1, int(np.ceil(crossing)))


def run_calibration(
    workers: Optional[int] = None,
    *,
    sizes: Sequence[int] = DEFAULT_SIZES,
    repeats: int = 3,
    measure: Optional[Callable[[str, int, int], float]] = None,
) -> CrossoverCalibration:
    """Measure serial vs sharded cost and fit the crossover model.

    For each scenario count in ``sizes``, the same random batch over a
    fixed balanced tree is timed ``repeats`` times through the serial
    :func:`~repro.engine.table.analyze_batch` and through
    :func:`~repro.engine.sharded.analyze_batch_sharded` inside a warm
    :func:`~repro.engine.dispatch.dispatch_pool` (pool spin-up is paid
    once, not charged to any sample — matching how a calibrated
    long-running process actually dispatches). The best-of-``repeats``
    time per point feeds the linear fit.

    ``measure`` is the injectable timing hook for deterministic tests:
    ``measure(mode, scenarios, cells) -> seconds`` with ``mode`` in
    ``{"serial", "sharded"}``; when given, no engine work runs at all.
    """
    if repeats < 1:
        raise ConfigurationError(f"repeats must be >= 1, got {repeats}")
    if not sizes:
        raise ConfigurationError("sizes must not be empty")
    if workers is None:
        workers = _dispatch.effective_cpu_count()
    workers = max(1, int(workers))

    tree = balanced_tree(
        _CALIBRATION_LEVELS,
        resistance=10.0,
        inductance=1e-9,
        capacitance=1e-13,
    )
    compiled = compile_tree(tree)
    n = compiled.size
    rng = np.random.default_rng(20260808)

    def _measure(mode: str, scenarios: int, cells: int) -> float:
        if measure is not None:
            return measure(mode, scenarios, cells)
        rlc = rng.uniform(0.5, 2.0, size=(scenarios, 3, n))
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            if mode == "serial":
                analyze_batch(compiled, rlc)
            else:
                analyze_batch_sharded(
                    compiled, rlc, shards=workers, workers=workers
                )
            best = min(best, time.perf_counter() - start)
        return best

    samples = []
    if measure is None and workers > 1:
        with dispatch_pool(workers=workers):
            # Warm the pool and the arenas before the first timed run.
            warm = rng.uniform(0.5, 2.0, size=(max(sizes), 3, n))
            analyze_batch_sharded(compiled, warm, shards=workers, workers=workers)
            for scenarios in sizes:
                cells = scenarios * n
                serial_s = _measure("serial", scenarios, cells)
                sharded_s = _measure("sharded", scenarios, cells)
                samples.append((cells, serial_s, sharded_s))
    else:
        for scenarios in sizes:
            cells = scenarios * n
            serial_s = _measure("serial", scenarios, cells)
            sharded_s = _measure("sharded", scenarios, cells)
            samples.append((cells, serial_s, sharded_s))

    xs = [cells for cells, _, _ in samples]
    serial_fit = _fit_line(xs, [s for _, s, _ in samples])
    sharded_fit = _fit_line(xs, [p for _, _, p in samples])
    breakeven = _breakeven(serial_fit, sharded_fit)
    if workers <= 1:
        # One effective worker: the pool cannot beat serial, whatever a
        # noisy fit happens to say — route everything in-process.
        breakeven = None
    return CrossoverCalibration(
        workers=workers,
        serial_overhead=serial_fit[0],
        serial_per_cell=serial_fit[1],
        sharded_overhead=sharded_fit[0],
        sharded_per_cell=sharded_fit[1],
        breakeven_cells=breakeven,
        samples=tuple(samples),
    )


def save_calibration(
    calibration: CrossoverCalibration, path: Union[str, Path] = CALIBRATION_FILE
) -> Path:
    """Persist a calibration as JSON; returns the written path.

    The write is atomic: the payload goes to a temporary file in the
    destination directory and lands via :func:`os.replace`, so a crash
    mid-write leaves either the old file or the new one — never a
    truncated JSON document that poisons every later
    :func:`load_calibration`.
    """
    path = Path(path)
    payload = asdict(calibration)
    payload["samples"] = [list(sample) for sample in calibration.samples]
    text = json.dumps(payload, indent=2) + "\n"
    fd, tmp_name = tempfile.mkstemp(
        dir=str(path.parent) or ".", prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


def load_calibration(
    path: Union[str, Path] = CALIBRATION_FILE,
) -> Optional[CrossoverCalibration]:
    """Load a persisted calibration; ``None`` when the file is corrupt.

    A missing file still raises :exc:`FileNotFoundError` (the caller
    asked for a specific path that is not there), but a file that
    exists and cannot be decoded degrades to *uncalibrated* — a
    warn-once ``RuntimeWarning`` names the file and the runtime falls
    back to the static routing thresholds instead of refusing to start.
    A long-lived service must not be held down across restarts by one
    bad artifact on disk.
    """
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
        return CrossoverCalibration(
            workers=int(payload["workers"]),
            serial_overhead=float(payload["serial_overhead"]),
            serial_per_cell=float(payload["serial_per_cell"]),
            sharded_overhead=float(payload["sharded_overhead"]),
            sharded_per_cell=float(payload["sharded_per_cell"]),
            breakeven_cells=(
                None
                if payload["breakeven_cells"] is None
                else int(payload["breakeven_cells"])
            ),
            samples=tuple(
                (int(c), float(s), float(p)) for c, s, p in payload["samples"]
            ),
        )
    except FileNotFoundError:
        raise
    except (KeyError, TypeError, ValueError, json.JSONDecodeError) as exc:
        _warn_calibration(
            f"corrupt:{path}",
            f"calibration file {path} is corrupt ({exc}); continuing "
            "uncalibrated — re-run the crossover benchmark to regenerate it",
        )
        return None


def plan_shards(
    cells: int,
    workers: int,
    calibration: Optional[CrossoverCalibration] = None,
) -> int:
    """Cost-model shard count: fewer, larger shards when overhead bites.

    Per-shard dispatch overhead is amortized over the shard's cells, so
    a batch near the break-even point wants *fewer* shards than workers
    — each extra shard buys parallelism but costs one more round of
    descriptor pickling and result handling. Without a calibration (or
    below break-even), this degrades to ``workers`` shards, the
    pre-calibration behaviour.
    """
    workers = max(1, workers)
    if (
        calibration is None
        or calibration.breakeven_cells is None
        or cells <= 0
    ):
        return workers
    # Each shard should carry at least ~half the break-even cell count;
    # smaller shards spend more on dispatch than they win back in
    # parallelism. Cap at the worker count — more shards than workers
    # only adds queueing.
    min_cells_per_shard = max(1, calibration.breakeven_cells // 2)
    return max(1, min(workers, cells // min_cells_per_shard))
