"""Per-backend circuit breakers for the execution runtime.

The supervised dispatch layer (:mod:`repro.engine.dispatch`) makes a
single sharded call survive worker death; the breaker makes the *next*
call cheap when the pool keeps dying. Classic three-state machine, one
per backend:

* **closed** — healthy, requests flow;
* **open** — tripped by ``threshold`` consecutive failures or by one
  pool rebuild (a rebuild means a worker died — the expensive incident
  the breaker exists to not repeat); the planner routes around the
  backend until ``cooldown`` seconds pass;
* **half-open** — the cooldown expired; the next request is a probe.
  Success closes the breaker, failure re-opens it for another full
  cooldown.

The breaker never *blocks* anything itself: it only answers
:meth:`CircuitBreaker.allow`, and the planner's graceful-degradation
step (:func:`repro.runtime.planner.plan` with ``unavailable=``) does
the actual rerouting — always to a backend whose results are
numerically identical, so a tripped breaker costs throughput, never
correctness. State transitions are recorded so ``context.stats()`` can
show the whole history.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Tuple

from ..errors import ConfigurationError

__all__ = ["CircuitBreaker", "BreakerBoard"]

#: The three breaker states.
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """One backend's failure-rate guard.

    ``threshold`` consecutive :meth:`record_failure` calls (or one
    :meth:`trip`) open the breaker for ``cooldown`` seconds; the first
    request after the cooldown runs as a half-open probe. ``clock`` is
    injectable for deterministic tests (defaults to
    :func:`time.monotonic`).
    """

    def __init__(
        self,
        threshold: int = 3,
        cooldown: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if threshold < 1:
            raise ConfigurationError(
                f"breaker threshold must be >= 1, got {threshold!r}"
            )
        if cooldown < 0:
            raise ConfigurationError(
                f"breaker cooldown must be non-negative, got {cooldown!r}"
            )
        self.threshold = threshold
        self.cooldown = cooldown
        self._clock = clock
        self._consecutive_failures = 0
        self._opened_at: Optional[float] = None
        self._probing = False
        self._transitions: List[Tuple[str, str]] = []

    # -- state -------------------------------------------------------------

    @property
    def state(self) -> str:
        """``"closed"``, ``"open"`` or ``"half_open"`` — cooldown-aware."""
        if self._opened_at is None:
            return CLOSED
        if self._clock() - self._opened_at >= self.cooldown:
            return HALF_OPEN
        return OPEN

    def allow(self) -> bool:
        """May a request use this backend right now?

        Closed: yes. Open: no. Half-open: yes — and that request is the
        probe whose outcome decides the next state.
        """
        state = self.state
        if state == OPEN:
            return False
        if state == HALF_OPEN:
            self._probing = True
        return True

    # -- transitions -------------------------------------------------------

    def _open(self, reason: str) -> None:
        self._transitions.append((OPEN, reason))
        self._opened_at = self._clock()
        self._probing = False

    def record_success(self) -> None:
        """A request finished cleanly; a half-open probe closes us."""
        self._consecutive_failures = 0
        if self._opened_at is not None and (
            self._probing or self.state == HALF_OPEN
        ):
            self._transitions.append((CLOSED, "half-open probe succeeded"))
            self._opened_at = None
            self._probing = False

    def record_failure(self, reason: str = "shard failure") -> None:
        """A request failed; enough of these in a row open the breaker."""
        self._consecutive_failures += 1
        if self._opened_at is not None:
            # A failure while open or probing restarts the full cooldown.
            self._open(f"{reason} (re-opened)")
        elif self._consecutive_failures >= self.threshold:
            self._open(
                f"{self._consecutive_failures} consecutive failures "
                f"(last: {reason})"
            )

    def trip(self, reason: str) -> None:
        """Open immediately, whatever the failure count (pool rebuild)."""
        self._consecutive_failures = max(
            self._consecutive_failures, self.threshold
        )
        self._open(reason)

    def reset(self) -> None:
        """Back to pristine closed (test isolation)."""
        self._consecutive_failures = 0
        self._opened_at = None
        self._probing = False
        self._transitions.clear()

    def snapshot(self) -> Dict:
        """Plain-dict state for ``context.stats()`` (json-safe)."""
        return {
            "state": self.state,
            "consecutive_failures": self._consecutive_failures,
            "threshold": self.threshold,
            "cooldown_s": self.cooldown,
            "transitions": [
                {"to": to, "reason": reason}
                for to, reason in self._transitions
            ],
        }


class BreakerBoard:
    """The per-backend breaker set one :class:`ExecutionContext` owns.

    Breakers are created lazily per backend name, all sharing the same
    ``threshold``/``cooldown``/``clock``. :meth:`open_backends` is what
    the planner consumes: only *open* breakers make a backend
    unavailable — a half-open breaker lets its probe through.
    """

    def __init__(
        self,
        threshold: int = 3,
        cooldown: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        self._threshold = threshold
        self._cooldown = cooldown
        self._clock = clock
        self._breakers: Dict[str, CircuitBreaker] = {}

    def breaker(self, backend: str) -> CircuitBreaker:
        breaker = self._breakers.get(backend)
        if breaker is None:
            breaker = CircuitBreaker(
                threshold=self._threshold,
                cooldown=self._cooldown,
                clock=self._clock,
            )
            self._breakers[backend] = breaker
        return breaker

    def open_backends(self) -> Tuple[str, ...]:
        """Backends whose breaker is open right now (not half-open)."""
        return tuple(
            name
            for name, breaker in sorted(self._breakers.items())
            if breaker.state == OPEN
        )

    def snapshot(self) -> Dict[str, Dict]:
        """Every breaker that has seen traffic, keyed by backend."""
        return {
            name: breaker.snapshot()
            for name, breaker in sorted(self._breakers.items())
        }

    def reset(self) -> None:
        for breaker in self._breakers.values():
            breaker.reset()
        self._breakers.clear()
