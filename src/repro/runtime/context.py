"""The execution context: one front door to all four engines.

:class:`ExecutionContext` owns the routing policy
(:class:`~repro.runtime.config.RuntimeConfig` +
:func:`~repro.runtime.planner.plan`), the backend registry, the
instrumentation counters and — when the sharded backend engages — the
worker pool and shared-memory lifetime. Apps, the CLI and the guarded
pipeline all go through it:

* :meth:`ExecutionContext.session` — per-tree point/table/edit work,
  returning a :class:`Session` whose backend was chosen by the planner
  (or forced);
* :meth:`ExecutionContext.batch` / :meth:`ExecutionContext.analyze_many`
  — scenario-batch and multi-tree work;
* :meth:`ExecutionContext.sweep_chunks` — chunked lazy sweeps: every
  staged scenario block is planned and dispatched individually as a
  ``"sweep"`` workload, so the calibrated serial/sharded crossover
  applies per chunk;
* :meth:`ExecutionContext.track` — an instrumentation hook for code
  that drives engine primitives directly but still wants its work
  counted on the one surface;
* :meth:`ExecutionContext.stats` — the single instrumentation snapshot.

Used as a context manager, the context guarantees worker-pool shutdown
and shared-memory release even when the protected block raises — the
leak path ``analyze_many`` callers used to have on error exits.
"""

from __future__ import annotations

import warnings
from typing import Callable, List, Optional, Sequence, Set, Tuple, Union

import numpy as np

from ..analysis.analyzer import NodeTiming, TreeAnalyzer
from ..circuit.tree import RLCTree
from ..engine.compiled import CompiledTree
from ..engine.incremental import IncrementalAnalyzer
from ..engine.sharded import ShardError
from ..engine.table import BatchTiming, TimingTable, iter_analyze_batch
from ..errors import DispatchError
from .backends import BackendRegistry, SessionState, default_registry
from .breaker import BreakerBoard
from .config import RuntimeConfig
from .planner import ExecutionPlan, Workload, plan
from .stats import RuntimeStats

__all__ = [
    "ExecutionContext",
    "Session",
    "default_context",
    "set_default_context",
    "reset_default_context",
    "resolve_context",
    "reset_degradation_warnings",
]

TreeSource = Union[RLCTree, CompiledTree]

#: Common prefix of every degradation warning; the targeted pytest
#: ``filterwarnings`` entry in pyproject.toml matches on it.
_DEGRADED_PREFIX = "repro.runtime degraded"

#: (from_backend, to_backend) pairs that already warned this process.
_degraded_warned: Set[Tuple[str, str]] = set()


def _warn_degraded(from_backend: str, to_backend: str) -> None:
    """Warn (once per route) that a tripped breaker rerouted a plan."""
    key = (from_backend, to_backend)
    if key in _degraded_warned:
        return
    _degraded_warned.add(key)
    warnings.warn(
        f"{_DEGRADED_PREFIX}: backend {from_backend!r} circuit breaker is "
        f"open; routing to {to_backend!r} instead (results are identical, "
        "throughput is reduced until the breaker closes)",
        RuntimeWarning,
        stacklevel=3,
    )


def reset_degradation_warnings() -> None:
    """Forget which degradations already warned (test isolation)."""
    _degraded_warned.clear()


class Session:
    """One tree bound to one planned backend, with cached state.

    Obtained from :meth:`ExecutionContext.session`; every query is
    counted against the owning context's stats under the session's
    workload kind.
    """

    def __init__(
        self,
        context: "ExecutionContext",
        state: SessionState,
        execution_plan: ExecutionPlan,
    ):
        self._context = context
        self._state = state
        self._plan = execution_plan

    @property
    def plan(self) -> ExecutionPlan:
        """The routing decision (backend + provenance) behind this session."""
        return self._plan

    @property
    def backend(self) -> str:
        return self._plan.backend

    @property
    def analyzer(self) -> Optional[TreeAnalyzer]:
        """The underlying :class:`TreeAnalyzer`, for scalar/compiled states."""
        return self._state.analyzer

    def value(self, metric: str, node: str) -> float:
        with self._record():
            return self._state.value(metric, node)

    def timing(self, node: str) -> NodeTiming:
        with self._record():
            return self._state.timing(node)

    def sums(self, node: str):
        with self._record():
            return self._state.sums(node)

    def report(self, nodes: Optional[Sequence[str]] = None) -> List[NodeTiming]:
        with self._record():
            return self._state.report(nodes)

    def table(self) -> Optional[TimingTable]:
        with self._record():
            return self._state.table()

    def editor(self) -> IncrementalAnalyzer:
        """The live delta-update analyzer (incremental sessions only)."""
        return self._state.editor()

    def _record(self):
        return self._context._stats.record(
            self._plan.backend, self._plan.workload.kind
        )


class ExecutionContext:
    """Routing, caching and instrumentation for one runtime scope."""

    def __init__(
        self,
        config: Optional[RuntimeConfig] = None,
        registry: Optional[BackendRegistry] = None,
    ):
        self._config = config or RuntimeConfig()
        self._registry = registry or default_registry()
        self._stats = RuntimeStats()
        # A calibration measured under a different worker budget must
        # not drive this context's routing: its sharded cost curve was
        # fitted for another pool shape, so its break-even point is
        # meaningless here. Ignore it (warn once) and record the
        # staleness so stats()/operators can see why routing fell back
        # to the static thresholds.
        self._calibration_stale = False
        calibration = self._config.calibration
        if (
            calibration is not None
            and self._config.workers is not None
            and getattr(calibration, "workers", None)
            not in (None, self._config.workers)
        ):
            from dataclasses import replace

            from .calibrate import _warn_calibration

            self._calibration_stale = True
            _warn_calibration(
                f"stale-workers:{calibration.workers}->{self._config.workers}",
                f"ignoring calibration measured at workers="
                f"{calibration.workers} for a context configured with "
                f"workers={self._config.workers}; re-run run_calibration "
                "with the current worker budget",
            )
            self._config = replace(self._config, calibration=None)
        self._breakers = BreakerBoard(
            threshold=self._config.breaker_threshold,
            cooldown=self._config.breaker_cooldown,
        )
        # Resolve the array backend once, up front: an unusable name
        # (unknown, or import/probe failure) errors at construction,
        # not mid-dispatch. None keeps the process-wide active backend.
        self._array_backend = None
        if self._config.array_backend is not None:
            from ..engine.backend import get_array_backend

            self._array_backend = get_array_backend(
                self._config.array_backend
            )
        self._closed = False

    # -- policy ------------------------------------------------------------

    @property
    def config(self) -> RuntimeConfig:
        return self._config

    @property
    def registry(self) -> BackendRegistry:
        return self._registry

    @property
    def breakers(self) -> BreakerBoard:
        """The per-backend circuit breakers this context maintains."""
        return self._breakers

    def plan(
        self, workload: Workload, backend: Optional[str] = None
    ) -> ExecutionPlan:
        """Route one workload; forced ``backend`` always wins.

        Backends whose circuit breaker is open are routed around
        (``sharded -> compiled -> scalar``); the returned plan records
        the degradation in its provenance and a warn-once
        ``RuntimeWarning`` flags the first occurrence of each route.
        """
        decision = plan(
            workload,
            self._config,
            backend,
            unavailable=self._breakers.open_backends(),
        )
        # Surface capability mismatches at plan time, not mid-dispatch.
        self._registry.get(decision.backend).require(workload.kind)
        self._stats.record_plan(decision.forced, decision.degraded)
        if decision.degraded:
            _warn_degraded(decision.degraded_from, decision.backend)
        return decision

    def _dispatch(self, decision: ExecutionPlan, call: Callable):
        """Run one backend call and keep its circuit breaker informed.

        Every call runs with this context's array backend active (a
        no-op when the config names none), so kernel work the backends
        trigger — including inside pool workers' serial fallbacks —
        uses the configured device.

        For the sharded backend the dispatch-layer telemetry delta is
        the health signal: a pool rebuild during the call trips the
        breaker immediately (a worker died — the next calls should not
        pay for respawning workers again), a serial fallback counts as
        a failure, a clean run counts as a success (closing a half-open
        breaker). A :class:`~repro.errors.DispatchError` — shards
        failed outright — always counts as a failure, whatever the
        backend.
        """
        from ..engine.backend import use_array_backend

        breaker = self._breakers.breaker(decision.backend)
        if decision.backend != "sharded":
            try:
                with use_array_backend(self._array_backend):
                    return call()
            except DispatchError as exc:
                breaker.record_failure(str(exc))
                raise
        from ..engine.dispatch import dispatch_telemetry

        before = dispatch_telemetry()
        try:
            with use_array_backend(self._array_backend):
                result = call()
        except DispatchError as exc:
            breaker.record_failure(str(exc))
            raise
        after = dispatch_telemetry()
        if after["rebuilds"] > before["rebuilds"]:
            breaker.trip("worker pool rebuilt during dispatch")
        elif after["serial_fallbacks"] > before["serial_fallbacks"]:
            breaker.record_failure("shard exhausted retries")
        else:
            breaker.record_success()
        return result

    # -- per-tree sessions -------------------------------------------------

    def session(
        self,
        tree: TreeSource,
        settle_band: float = 0.1,
        *,
        backend: Optional[str] = None,
        kind: Optional[str] = None,
        edits_expected: int = 0,
    ) -> Session:
        """Open per-tree state on the backend the planner picks.

        ``kind`` overrides the inferred workload kind (``"edit"`` when
        ``edits_expected`` is positive, else ``"table"``); pass
        ``kind="point"`` for one-shot single-node queries so small
        trees route to the scalar sweep.
        """
        size = tree.size if isinstance(tree, RLCTree) else tree.topology.size
        if kind is None:
            kind = "edit" if edits_expected > 0 else "table"
        workload = Workload(
            kind=kind, tree_size=size, edit_count=edits_expected
        )
        decision = self.plan(workload, backend)
        adapter = self._registry.get(decision.backend)
        with self._stats.record(decision.backend, kind):
            state = self._dispatch(
                decision,
                lambda: adapter.open(tree, settle_band, self._config),
            )
        return Session(self, state, decision)

    # -- bulk dispatch -----------------------------------------------------

    def batch(
        self,
        compiled: CompiledTree,
        rlc: np.ndarray,
        *,
        settle_band: float = 0.1,
        metrics: Optional[Sequence[str]] = None,
        backend: Optional[str] = None,
    ) -> BatchTiming:
        """Evaluate an ``(S, 3, n)`` value block over one topology."""
        rlc = np.asarray(rlc)
        workload = Workload(
            kind="batch",
            tree_size=compiled.topology.size,
            scenarios=int(rlc.shape[0]),
        )
        decision = self.plan(workload, backend)
        adapter = self._registry.get(decision.backend)
        with self._stats.record(decision.backend, "batch"):
            return self._dispatch(
                decision,
                lambda: adapter.batch(
                    compiled, rlc, settle_band, metrics, self._config
                ),
            )

    def sweep_chunks(
        self,
        compiled: CompiledTree,
        fill: Callable[[np.ndarray, int, int], None],
        scenarios: int,
        *,
        chunk_size: int,
        settle_band: float = 0.1,
        metrics: Optional[Sequence[str]] = None,
        backend: Optional[str] = None,
        provenance: Optional[dict] = None,
    ):
        """Stream an S-scenario sweep as chunked batch dispatches.

        The lazy-sweep executor (:func:`repro.sweep.iter_sweep`) comes
        through here: ``fill(view, lo, hi)`` stages scenario rows
        ``[lo, hi)`` into one reused ``(chunk, 3, n)`` buffer (see
        :func:`~repro.engine.table.iter_analyze_batch`) and every
        staged chunk is planned and dispatched *individually* as a
        ``"sweep"`` workload — the calibrated serial/sharded crossover
        decides per chunk, each chunk's backend and staged bytes land
        in ``stats()["sweep"]``, and a breaker tripping mid-sweep
        degrades the remaining chunks without losing the stream.
        ``provenance`` carries the sweep compiler's CSE counters into
        the same stats group. Returns an iterator of ``(offset,
        BatchTiming)`` pairs in offset order.
        """
        size = compiled.topology.size
        self._stats.record_sweep_run(provenance or {})

        def evaluate(view: np.ndarray, lo: int, hi: int) -> BatchTiming:
            workload = Workload(
                kind="sweep", tree_size=size, scenarios=hi - lo
            )
            decision = self.plan(workload, backend)
            adapter = self._registry.get(decision.backend)
            with self._stats.record(decision.backend, "sweep"):
                result = self._dispatch(
                    decision,
                    lambda: adapter.batch(
                        compiled, view, settle_band, metrics, self._config
                    ),
                )
            self._stats.record_sweep_chunk(
                decision.backend, int(view.nbytes)
            )
            return result

        return iter_analyze_batch(
            compiled,
            fill,
            scenarios,
            chunk_size=chunk_size,
            settle_band=settle_band,
            metrics=metrics,
            evaluate=evaluate,
        )

    def analyze_many(
        self,
        trees: Sequence[TreeSource],
        *,
        settle_band: float = 0.1,
        metrics: Optional[Sequence[str]] = None,
        backend: Optional[str] = None,
    ) -> List[Union[TimingTable, ShardError]]:
        """Evaluate independent trees; one result per input, in order."""
        trees = list(trees)
        sizes = [
            t.size if isinstance(t, RLCTree) else t.topology.size
            for t in trees
        ]
        workload = Workload(
            kind="many",
            tree_size=max(sizes, default=0),
            tree_count=len(trees),
        )
        decision = self.plan(workload, backend)
        adapter = self._registry.get(decision.backend)
        with self._stats.record(decision.backend, "many"):
            return self._dispatch(
                decision,
                lambda: adapter.many(
                    trees, settle_band, metrics, self._config
                ),
            )

    # -- calibration -------------------------------------------------------

    @property
    def array_backend(self):
        """The resolved array backend, or None (process default)."""
        return self._array_backend

    def calibrate(self, **kwargs):
        """Measure the serial/sharded crossover and adopt it for routing.

        Runs :func:`~repro.runtime.calibrate.run_calibration` with this
        context's worker budget (keyword arguments are forwarded, e.g.
        ``sizes=``/``repeats=``/``measure=``), installs the result as
        ``config.calibration`` so subsequent batch plans route by the
        measured break-even point, and returns the calibration for
        persisting via
        :func:`~repro.runtime.calibrate.save_calibration`.
        """
        from dataclasses import replace

        from .calibrate import run_calibration

        calibration = run_calibration(workers=self._config.workers, **kwargs)
        self._config = replace(self._config, calibration=calibration)
        return calibration

    # -- instrumentation ---------------------------------------------------

    def track(self, backend: str, kind: str):
        """Count and time engine work driven outside the dispatch methods.

        For app code that calls engine primitives directly (vectorized
        DP kernels, hand-rolled probe loops) but should still show up
        in :meth:`stats` — use as ``with context.track("compiled",
        "batch"): ...``.
        """
        self._registry.get(backend)  # validate the name
        return self._stats.record(backend, kind)

    def add_stats_group(self, name: str, provider: Callable[[], dict]) -> None:
        """Register an extra named group in :meth:`stats` snapshots.

        The seam higher layers (the analysis service, future MCP
        frontends) use to surface their own counters on the one
        instrumentation surface: ``provider()`` is called at snapshot
        time and its dict lands under ``stats()[name]``.
        """
        self._stats.register_group(name, provider)

    def stats(self) -> dict:
        """The one instrumentation snapshot (see :class:`RuntimeStats`).

        On top of the :class:`RuntimeStats` groups, ``"breakers"``
        holds this context's per-backend circuit-breaker states and
        transition history, ``"calibration_stale"`` flags a persisted
        crossover calibration that was ignored at construction because
        it was measured under a different worker budget, and any groups
        registered via :meth:`add_stats_group` (e.g. the analysis
        service's ``"service"`` group) appear under their own names.
        """
        snapshot = self._stats.snapshot()
        snapshot["breakers"] = self._breakers.snapshot()
        snapshot["calibration_stale"] = self._calibration_stale
        return snapshot

    def reset_stats(self) -> None:
        self._stats.reset()

    # -- lifecycle ---------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Tear down pool workers and release shared-memory blocks.

        Idempotent. The dispatch pool is process-global, so closing a
        context also closes the pool for sibling contexts — they will
        lazily respawn it. Long-lived services should keep one context
        open rather than wrapping every call.
        """
        if self._closed:
            return
        self._closed = True
        from ..engine import shutdown_pool
        from ..engine.dispatch import _live_blocks, release_arenas

        shutdown_pool()
        for block in list(_live_blocks):
            block.close()
        release_arenas()

    def __enter__(self) -> "ExecutionContext":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # Teardown runs on exceptions too: the pool/SharedBlock leak
        # fix for error paths through analyze_many and friends.
        self.close()


_default_context: Optional[ExecutionContext] = None


def default_context() -> ExecutionContext:
    """The process-wide context used when callers pass none.

    Lazily created; never closed automatically (the dispatch layer's
    own ``atexit`` hooks release the pool and shared memory at process
    exit).
    """
    global _default_context
    if _default_context is None or _default_context.closed:
        _default_context = ExecutionContext()
    return _default_context


def set_default_context(context: ExecutionContext) -> None:
    global _default_context
    _default_context = context


def reset_default_context() -> None:
    """Drop the process default (a fresh one is created on next use)."""
    global _default_context
    _default_context = None


def resolve_context(
    context: Optional[ExecutionContext] = None,
    config: Optional[RuntimeConfig] = None,
) -> ExecutionContext:
    """The context an app entry point should use.

    An explicit ``context`` wins; an explicit ``config`` gets its own
    (unclosed) context so the override cannot leak into the shared
    default; otherwise the process default is returned.
    """
    if context is not None:
        if config is not None:
            raise_config_conflict()
        return context
    if config is not None:
        return ExecutionContext(config)
    return default_context()


def raise_config_conflict() -> None:
    from ..errors import ConfigurationError

    raise ConfigurationError(
        "pass either context= or config=, not both; build the context "
        "from the config first"
    )
