"""The one instrumentation surface of the execution runtime.

:class:`RuntimeStats` aggregates everything a production operator wants
from one place: per-backend dispatch counts, per-workload-kind wall
clock, plan provenance tallies, the engine-layer cache counters
(topology LRU, incremental engine) and the dispatch pool's state.
``ExecutionContext.stats()`` returns its snapshot; the CLI prints it
under ``--debug``.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Callable, Dict

__all__ = ["RuntimeStats"]


class RuntimeStats:
    """Mutable counters for one :class:`ExecutionContext`."""

    def __init__(self):
        self._dispatch: Dict[str, int] = {}
        self._workloads: Dict[str, int] = {}
        self._phase_seconds: Dict[str, float] = {}
        self._plans = {"auto": 0, "forced": 0, "degraded": 0}
        self._pool_dispatches = 0
        self._sweep_runs = 0
        self._sweep_chunks = 0
        self._sweep_cse_hits = 0
        self._sweep_unique_nodes = 0
        self._sweep_total_refs = 0
        self._sweep_peak_chunk_bytes = 0
        self._sweep_backends: Dict[str, int] = {}
        self._groups: Dict[str, Callable[[], dict]] = {}

    # -- recording ---------------------------------------------------------

    def register_group(self, name: str, provider: Callable[[], dict]) -> None:
        """Attach an extra named snapshot group (e.g. ``"service"``).

        ``provider()`` runs at :meth:`snapshot` time; registering the
        same name again replaces the provider. Registered groups
        survive :meth:`reset` — a counter reset must not silently
        unhook a live service's instrumentation.
        """
        self._groups[name] = provider

    def record_plan(self, forced: bool, degraded: bool = False) -> None:
        self._plans["forced" if forced else "auto"] += 1
        if degraded:
            self._plans["degraded"] += 1

    @contextmanager
    def record(self, backend: str, kind: str):
        """Count one dispatch and time it into the kind's phase bucket."""
        self._dispatch[backend] = self._dispatch.get(backend, 0) + 1
        self._workloads[kind] = self._workloads.get(kind, 0) + 1
        if backend == "sharded":
            self._pool_dispatches += 1
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self._phase_seconds[kind] = (
                self._phase_seconds.get(kind, 0.0) + elapsed
            )

    def record_sweep_run(self, provenance: Dict[str, int]) -> None:
        """Count one lazy-sweep run and fold in its compiler counters.

        ``provenance`` carries the compiled sweep's ``cse_hits`` /
        ``unique_nodes`` / ``total_refs`` (missing keys count zero).
        """
        self._sweep_runs += 1
        self._sweep_cse_hits += int(provenance.get("cse_hits", 0))
        self._sweep_unique_nodes += int(provenance.get("unique_nodes", 0))
        self._sweep_total_refs += int(provenance.get("total_refs", 0))

    def record_sweep_chunk(self, backend: str, staged_bytes: int) -> None:
        """Count one executed sweep chunk and its staged-buffer size."""
        self._sweep_chunks += 1
        self._sweep_backends[backend] = (
            self._sweep_backends.get(backend, 0) + 1
        )
        self._sweep_peak_chunk_bytes = max(
            self._sweep_peak_chunk_bytes, int(staged_bytes)
        )

    # -- reporting ---------------------------------------------------------

    def snapshot(self) -> Dict[str, Dict]:
        """Everything, as one nested plain-dict (safe to json-dump).

        Keys: ``"dispatch"`` (per-backend call counts), ``"workloads"``
        (per-kind call counts), ``"phases"`` (per-kind wall-clock
        seconds), ``"plans"`` (auto vs forced vs breaker-degraded
        decisions), ``"caches"`` (the engine layer's
        :func:`~repro.engine.cache_info` groups), ``"pool"`` (worker
        pool size and generation, sharded dispatches through this
        context, live shared-memory blocks process-wide),
        ``"supervision"`` (the dispatch layer's process-wide failure
        telemetry: timeouts, retries, rebuilds, worker deaths, serial
        fallbacks, per-worker failure counts), ``"transport"`` (the
        zero-copy story made observable: bytes pickled to and from
        workers, arena-segment reuse hits and each persistent arena's
        capacity/generation) and ``"sweep"`` (the lazy-sweep executor:
        runs and chunks executed, the compiler's CSE hit/node/ref
        tallies, the largest staged chunk in bytes and per-backend
        chunk counts).
        """
        from ..engine import cache_info
        from ..engine.dispatch import (
            _live_blocks,
            arena_info,
            dispatch_telemetry,
            pool_generation,
            pool_size,
        )

        telemetry = dispatch_telemetry()
        snapshot = {
            "dispatch": dict(self._dispatch),
            "workloads": dict(self._workloads),
            "phases": dict(self._phase_seconds),
            "plans": dict(self._plans),
            "caches": cache_info(),
            "pool": {
                "workers": pool_size(),
                "generation": pool_generation(),
                "sharded_dispatches": self._pool_dispatches,
                "live_blocks": len(_live_blocks),
            },
            "supervision": telemetry,
            "transport": {
                "bytes_shipped": telemetry["bytes_shipped"],
                "bytes_returned": telemetry["bytes_returned"],
                "arena_hits": telemetry["arena_hits"],
                "arenas": arena_info(),
            },
            "sweep": {
                "runs": self._sweep_runs,
                "chunks": self._sweep_chunks,
                "cse_hits": self._sweep_cse_hits,
                "unique_nodes": self._sweep_unique_nodes,
                "total_refs": self._sweep_total_refs,
                "peak_chunk_bytes": self._sweep_peak_chunk_bytes,
                "backends": dict(self._sweep_backends),
            },
        }
        for name, provider in self._groups.items():
            snapshot[name] = provider()
        return snapshot

    def reset(self) -> None:
        groups = self._groups
        self.__init__()
        self._groups = groups
