"""Workload-aware backend routing.

The planner is the "model the cost, then dispatch" step: a
:class:`Workload` describes *what* is being asked (one point query? an
``(S, n)`` scenario batch? an edit stream?), :func:`plan` decides *which
engine* answers it, and the returned :class:`ExecutionPlan` records why
— every decision carries its provenance so ``context.stats()`` and the
CLI can explain a routing choice after the fact.

Routing rules (first match wins), with the boundaries taken from
:class:`~repro.runtime.config.RuntimeConfig`:

========  ============================================  ===========
kind      condition                                     backend
========  ============================================  ===========
any       ``backend=`` forced (call or config)          as forced
edit      always (delta updates are the whole point)    incremental
many      ``workers > 1`` and ``tree_count >= 2``       sharded
many      otherwise                                     compiled
batch     calibrated: ``cells >= breakeven_cells``      sharded
batch     ``workers > 1`` and ``cells >= min_cells``    sharded
batch     otherwise                                     compiled
sweep     same rules as ``batch``, per chunk            sharded/compiled
table     always (one vectorized pass)                  compiled
point     ``tree_size <= point_scalar_max``             scalar
point     otherwise                                     compiled
========  ============================================  ===========

When a backend is *unavailable* — its circuit breaker tripped after
repeated shard failures or a pool rebuild — the auto-routing degrades
along ``sharded -> compiled -> scalar`` instead, stopping at the last
backend that still supports the workload (batch/many never drop below
``compiled``). The resulting plan is marked ``degraded`` and carries
the skipped backend in its provenance; results are numerically
identical on every rung of the chain, so degradation costs throughput,
never correctness. A *forced* backend is never rerouted — an explicit
``backend=`` wins over the breaker, and the caller owns the outcome.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from ..errors import ConfigurationError
from .config import RuntimeConfig

__all__ = ["WORKLOAD_KINDS", "Workload", "ExecutionPlan", "plan"]

#: Degradation chain: a tripped backend falls back to the next one
#: whose results are numerically identical for the workload.
_DEGRADE = {"sharded": "compiled", "compiled": "scalar"}

#: Workload kinds the scalar backend cannot serve — their degradation
#: chain bottoms out at ``compiled``.
_COMPILED_FLOOR = frozenset({"batch", "many", "table", "edit", "sweep"})

#: The six workload shapes the runtime routes.
WORKLOAD_KINDS: Tuple[str, ...] = (
    "point",
    "table",
    "batch",
    "edit",
    "many",
    "sweep",
)


@dataclass(frozen=True)
class Workload:
    """One unit of work, described by shape rather than by API call.

    ``kind`` is one of :data:`WORKLOAD_KINDS`: ``"point"`` (one metric
    at one node), ``"table"`` (every metric at every node of one tree),
    ``"batch"`` (``scenarios`` value-rows over one topology),
    ``"edit"`` (a stream of element edits interleaved with queries),
    ``"many"`` (independent, possibly heterogeneous trees) and
    ``"sweep"`` (one staged chunk of a lazy scenario sweep —
    ``scenarios`` rows over one topology, planned chunk by chunk so
    the serial/sharded crossover applies per block).
    """

    kind: str
    tree_size: int = 0
    scenarios: int = 0
    edit_count: int = 0
    tree_count: int = 1

    def __post_init__(self):
        if self.kind not in WORKLOAD_KINDS:
            raise ConfigurationError(
                f"unknown workload kind {self.kind!r}; choose from "
                f"{WORKLOAD_KINDS}"
            )

    @property
    def cells(self) -> int:
        """Total kernel lanes of a batch: scenarios x nodes."""
        return self.scenarios * self.tree_size


@dataclass(frozen=True)
class ExecutionPlan:
    """A routing decision plus its provenance.

    ``degraded`` marks a plan the breaker rerouted: ``degraded_from``
    is the backend the heuristics *wanted* and ``backend`` the healthy
    one that will actually serve — the reasons tuple records the walk.
    """

    backend: str
    workload: Workload
    forced: bool
    reasons: Tuple[str, ...]
    degraded: bool = False
    degraded_from: Optional[str] = None

    def __str__(self) -> str:
        tag = "forced" if self.forced else "auto"
        if self.degraded:
            tag += f", degraded from {self.degraded_from}"
        return (
            f"{self.workload.kind} -> {self.backend} [{tag}] "
            f"({'; '.join(self.reasons)})"
        )


def _degrade(
    chosen: str, workload: Workload, unavailable: Sequence[str]
) -> Tuple[str, Tuple[str, ...]]:
    """Walk the degradation chain past every unavailable backend.

    Returns the healthy backend plus the provenance entries describing
    each step. The walk stops at the workload's capability floor: a
    batch/many/table workload never drops below ``compiled`` even when
    that breaker is open too — degradation must not change what the
    call can compute, and at the floor the supervised dispatch layer's
    own serial fallback is the remaining safety net.
    """
    reasons = []
    current = chosen
    while current in unavailable:
        fallback = _DEGRADE.get(current)
        if fallback is None:
            break
        if fallback == "scalar" and workload.kind in _COMPILED_FLOOR:
            reasons.append(
                f"breaker open for {current!r} but {workload.kind!r} "
                "needs the compiled kernels; keeping it"
            )
            break
        reasons.append(
            f"breaker open for {current!r} -> degraded to {fallback!r}"
        )
        current = fallback
    return current, tuple(reasons)


def plan(
    workload: Workload,
    config: Optional[RuntimeConfig] = None,
    backend: Optional[str] = None,
    unavailable: Sequence[str] = (),
) -> ExecutionPlan:
    """Pick a backend for ``workload`` and say why.

    ``backend`` (per-call) beats ``config.backend`` beats the
    size/batch/edit-count heuristics; a forced backend always wins and
    is recorded as such in the provenance. ``unavailable`` names
    backends whose circuit breaker is open right now — the auto chosen
    backend degrades along ``sharded -> compiled -> scalar`` past them
    (forced backends do not: an explicit choice beats the breaker).
    """
    config = config or RuntimeConfig()
    forced = backend or config.backend
    if forced is not None:
        origin = "call" if backend else "config"
        # Validate through RuntimeConfig's name check.
        config.with_backend(forced)
        reasons = [f"backend {forced!r} forced by {origin}"]
        if forced in unavailable:
            reasons.append(
                f"breaker open for {forced!r} ignored: forced by {origin}"
            )
        return ExecutionPlan(
            backend=forced,
            workload=workload,
            forced=True,
            reasons=tuple(reasons),
        )

    reasons = []
    if workload.kind == "edit":
        chosen = "incremental"
        reasons.append(
            f"edit stream ({workload.edit_count or 'unbounded'} edits) "
            "-> delta updates"
        )
    elif workload.kind == "many":
        if config.parallel and workload.tree_count >= 2:
            chosen = "sharded"
            reasons.append(
                f"{workload.tree_count} trees with workers="
                f"{config.workers} -> pool dispatch"
            )
        else:
            chosen = "compiled"
            reasons.append(
                f"{workload.tree_count} tree(s) in-process "
                f"(workers={config.workers}) -> serial vectorized"
            )
    elif workload.kind in ("batch", "sweep"):
        calibration = config.calibration
        if calibration is not None:
            # A measured crossover beats the static guess: route by the
            # fitted break-even point, which is the never-slower-than-
            # serial guarantee (below it the pool cannot pay off).
            breakeven = calibration.breakeven_cells
            if config.parallel and calibration.sharded_wins(workload.cells):
                chosen = "sharded"
                reasons.append(
                    f"{workload.cells} cells >= calibrated break-even="
                    f"{breakeven} with workers={config.workers} "
                    "-> pool dispatch"
                )
            else:
                chosen = "compiled"
                reasons.append(
                    f"{workload.cells} cells below calibrated "
                    f"break-even={breakeven} or workers<=1 "
                    "-> in-process vectorized (never slower than serial)"
                )
        elif config.parallel and workload.cells >= config.sharded_min_cells:
            chosen = "sharded"
            reasons.append(
                f"{workload.cells} cells >= sharded_min_cells="
                f"{config.sharded_min_cells} with workers="
                f"{config.workers} -> pool dispatch"
            )
        else:
            chosen = "compiled"
            reasons.append(
                f"{workload.cells} cells below sharded_min_cells="
                f"{config.sharded_min_cells} or workers<=1 "
                "-> in-process vectorized"
            )
    elif workload.kind == "table":
        chosen = "compiled"
        reasons.append("full table -> one vectorized pass")
    else:  # point
        if workload.tree_size <= config.point_scalar_max:
            chosen = "scalar"
            reasons.append(
                f"{workload.tree_size} nodes <= point_scalar_max="
                f"{config.point_scalar_max} -> dict sweep"
            )
        else:
            chosen = "compiled"
            reasons.append(
                f"{workload.tree_size} nodes > point_scalar_max="
                f"{config.point_scalar_max} -> compiled table"
            )
    final, degrade_reasons = _degrade(chosen, workload, unavailable)
    return ExecutionPlan(
        backend=final,
        workload=workload,
        forced=False,
        reasons=tuple(reasons) + degrade_reasons,
        degraded=final != chosen,
        degraded_from=chosen if final != chosen else None,
    )
