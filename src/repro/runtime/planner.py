"""Workload-aware backend routing.

The planner is the "model the cost, then dispatch" step: a
:class:`Workload` describes *what* is being asked (one point query? an
``(S, n)`` scenario batch? an edit stream?), :func:`plan` decides *which
engine* answers it, and the returned :class:`ExecutionPlan` records why
— every decision carries its provenance so ``context.stats()`` and the
CLI can explain a routing choice after the fact.

Routing rules (first match wins), with the boundaries taken from
:class:`~repro.runtime.config.RuntimeConfig`:

========  ============================================  ===========
kind      condition                                     backend
========  ============================================  ===========
any       ``backend=`` forced (call or config)          as forced
edit      always (delta updates are the whole point)    incremental
many      ``workers > 1`` and ``tree_count >= 2``       sharded
many      otherwise                                     compiled
batch     ``workers > 1`` and ``cells >= min_cells``    sharded
batch     otherwise                                     compiled
table     always (one vectorized pass)                  compiled
point     ``tree_size <= point_scalar_max``             scalar
point     otherwise                                     compiled
========  ============================================  ===========
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..errors import ConfigurationError
from .config import RuntimeConfig

__all__ = ["WORKLOAD_KINDS", "Workload", "ExecutionPlan", "plan"]

#: The five workload shapes the runtime routes.
WORKLOAD_KINDS: Tuple[str, ...] = ("point", "table", "batch", "edit", "many")


@dataclass(frozen=True)
class Workload:
    """One unit of work, described by shape rather than by API call.

    ``kind`` is one of :data:`WORKLOAD_KINDS`: ``"point"`` (one metric
    at one node), ``"table"`` (every metric at every node of one tree),
    ``"batch"`` (``scenarios`` value-rows over one topology),
    ``"edit"`` (a stream of element edits interleaved with queries) and
    ``"many"`` (independent, possibly heterogeneous trees).
    """

    kind: str
    tree_size: int = 0
    scenarios: int = 0
    edit_count: int = 0
    tree_count: int = 1

    def __post_init__(self):
        if self.kind not in WORKLOAD_KINDS:
            raise ConfigurationError(
                f"unknown workload kind {self.kind!r}; choose from "
                f"{WORKLOAD_KINDS}"
            )

    @property
    def cells(self) -> int:
        """Total kernel lanes of a batch: scenarios x nodes."""
        return self.scenarios * self.tree_size


@dataclass(frozen=True)
class ExecutionPlan:
    """A routing decision plus its provenance."""

    backend: str
    workload: Workload
    forced: bool
    reasons: Tuple[str, ...]

    def __str__(self) -> str:
        tag = "forced" if self.forced else "auto"
        return (
            f"{self.workload.kind} -> {self.backend} [{tag}] "
            f"({'; '.join(self.reasons)})"
        )


def plan(
    workload: Workload,
    config: Optional[RuntimeConfig] = None,
    backend: Optional[str] = None,
) -> ExecutionPlan:
    """Pick a backend for ``workload`` and say why.

    ``backend`` (per-call) beats ``config.backend`` beats the
    size/batch/edit-count heuristics; a forced backend always wins and
    is recorded as such in the provenance.
    """
    config = config or RuntimeConfig()
    forced = backend or config.backend
    if forced is not None:
        origin = "call" if backend else "config"
        # Validate through RuntimeConfig's name check.
        config.with_backend(forced)
        return ExecutionPlan(
            backend=forced,
            workload=workload,
            forced=True,
            reasons=(f"backend {forced!r} forced by {origin}",),
        )

    reasons = []
    if workload.kind == "edit":
        chosen = "incremental"
        reasons.append(
            f"edit stream ({workload.edit_count or 'unbounded'} edits) "
            "-> delta updates"
        )
    elif workload.kind == "many":
        if config.parallel and workload.tree_count >= 2:
            chosen = "sharded"
            reasons.append(
                f"{workload.tree_count} trees with workers="
                f"{config.workers} -> pool dispatch"
            )
        else:
            chosen = "compiled"
            reasons.append(
                f"{workload.tree_count} tree(s) in-process "
                f"(workers={config.workers}) -> serial vectorized"
            )
    elif workload.kind == "batch":
        if config.parallel and workload.cells >= config.sharded_min_cells:
            chosen = "sharded"
            reasons.append(
                f"{workload.cells} cells >= sharded_min_cells="
                f"{config.sharded_min_cells} with workers="
                f"{config.workers} -> pool dispatch"
            )
        else:
            chosen = "compiled"
            reasons.append(
                f"{workload.cells} cells below sharded_min_cells="
                f"{config.sharded_min_cells} or workers<=1 "
                "-> in-process vectorized"
            )
    elif workload.kind == "table":
        chosen = "compiled"
        reasons.append("full table -> one vectorized pass")
    else:  # point
        if workload.tree_size <= config.point_scalar_max:
            chosen = "scalar"
            reasons.append(
                f"{workload.tree_size} nodes <= point_scalar_max="
                f"{config.point_scalar_max} -> dict sweep"
            )
        else:
            chosen = "compiled"
            reasons.append(
                f"{workload.tree_size} nodes > point_scalar_max="
                f"{config.point_scalar_max} -> compiled table"
            )
    return ExecutionPlan(
        backend=chosen,
        workload=workload,
        forced=False,
        reasons=tuple(reasons),
    )
